"""Tests for netlist statistics and technology JSON I/O."""

import pytest

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder
from repro.netlist.stats import (
    collect_stats,
    depth_histogram,
    format_stats,
)
from repro.sta import register_boundaries
from repro.tech import CMOS250_ASIC, CMOS180_CUSTOM, TechnologyError
from repro.tech.io import (
    load_technology,
    save_technology,
    technology_from_dict,
    technology_to_dict,
)

RICH = rich_asic_library(CMOS250_ASIC)


class TestNetlistStats:
    @pytest.fixture(scope="class")
    def adder(self):
        return register_boundaries(kogge_stone_adder(8, RICH), RICH)

    def test_counts(self, adder):
        stats = collect_stats(adder, RICH)
        assert stats.instances == adder.instance_count()
        assert stats.nets == adder.net_count()
        # input registers (a0-7, b0-7, cin) + output registers (s0-7, cout)
        assert stats.sequential == 17 + 9
        assert stats.depth > 5

    def test_area_positive_with_library(self, adder):
        stats = collect_stats(adder, RICH)
        assert stats.area_um2 > 0
        assert sum(stats.area_by_base.values()) == pytest.approx(
            stats.area_um2
        )

    def test_without_library_parses_names(self, adder):
        stats = collect_stats(adder)
        assert stats.area_um2 == 0.0
        assert stats.by_base.get("AND2", 0) > 0
        assert 2.0 in stats.by_drive

    def test_histogram_sums_to_instances(self, adder):
        hist = depth_histogram(adder, RICH.sequential_cell_names())
        assert sum(hist.values()) == adder.instance_count()

    def test_format(self, adder):
        text = format_stats(collect_stats(adder, RICH))
        assert "instances" in text
        assert "drives" in text
        assert "um2" in text


class TestTechnologyIO:
    def test_round_trip_dict(self):
        data = technology_to_dict(CMOS180_CUSTOM)
        back = technology_from_dict(data)
        assert back == CMOS180_CUSTOM

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(CMOS250_ASIC, str(path))
        back = load_technology(str(path))
        assert back == CMOS250_ASIC
        assert back.fo4_delay_ps == pytest.approx(90.0)

    def test_missing_field(self):
        data = technology_to_dict(CMOS250_ASIC)
        del data["leff_um"]
        with pytest.raises(TechnologyError, match="leff_um"):
            technology_from_dict(data)

    def test_bad_schema(self):
        data = technology_to_dict(CMOS250_ASIC)
        data["schema"] = 99
        with pytest.raises(TechnologyError, match="schema"):
            technology_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TechnologyError, match="invalid"):
            load_technology(str(path))

    def test_not_an_object(self):
        with pytest.raises(TechnologyError):
            technology_from_dict([1, 2, 3])

    def test_loaded_technology_drives_library(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(CMOS250_ASIC, str(path))
        tech = load_technology(str(path))
        library = rich_asic_library(tech)
        assert len(library) > 100
