"""BACPAC-style analytical wire delay models.

Section 5 of the paper rests on simulations with BACPAC (footnote 3), a
system-level interconnect estimator: "wire-delays associated with 'global'
wires between physical modules can be a dominant portion of the total path
delay ... using careful floorplanning and placement to minimize wire
lengths may increase circuit speed by up to 25%".

We implement the same class of model:

* Elmore delay of a distributed RC line with a lumped driver and load;
* optimal repeater insertion (size and count), giving the classic
  delay-per-length that scales as sqrt(R0 C0 r c);
* a chip-level global-wire estimator parameterised by die area, used to
  compare a critical path localised inside a module against one crossing
  a 100 mm^2 die.

Delay units ps, lengths um, resistance ohm, capacitance fF
(1 ohm * 1 fF = 1e-3 ps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.process import ProcessTechnology, TechnologyError

#: ln(2): step-response coefficient for the lumped driver term.
_LN2 = math.log(2.0)
#: Distributed-line Elmore coefficient.
_DISTRIBUTED = 0.38

#: ohm * fF -> ps conversion.
_OHM_FF_TO_PS = 1.0e-3


def unrepeated_wire_delay_ps(
    tech: ProcessTechnology,
    length_um: float,
    driver_resistance_ohm: float | None = None,
    load_ff: float = 0.0,
    width_um: float | None = None,
) -> float:
    """Elmore delay of a bare (unrepeated) wire.

    ``t = ln2 * Rd * (Cw + CL) + 0.38 * Rw * Cw + ln2 * Rw * CL``

    Args:
        tech: process technology (provides r, c per um).
        length_um: wire length.
        driver_resistance_ohm: driver's effective resistance; defaults to
            the technology's unit inverter.
        load_ff: lumped receiver load.
        width_um: wire width (wider = lower resistance, Section 6).
    """
    if length_um < 0 or load_ff < 0:
        raise TechnologyError("length and load must be non-negative")
    rd = (
        driver_resistance_ohm
        if driver_resistance_ohm is not None
        else tech.unit_drive_resistance_ohm
    )
    rw = tech.interconnect.wire_resistance(length_um, width_um)
    cw = tech.interconnect.wire_capacitance(length_um, width_um)
    delay_ohm_ff = _LN2 * rd * (cw + load_ff) + _DISTRIBUTED * rw * cw + (
        _LN2 * rw * load_ff
    )
    return delay_ohm_ff * _OHM_FF_TO_PS


@dataclass(frozen=True)
class RepeaterPlan:
    """Result of optimal repeater insertion on one wire.

    Attributes:
        length_um: wire length covered.
        num_repeaters: inserted inverter count (0 for short wires).
        repeater_drive: drive strength of each repeater relative to the
            unit inverter.
        delay_ps: total wire delay with the repeaters in place.
        segment_um: spacing between repeaters.
    """

    length_um: float
    num_repeaters: int
    repeater_drive: float
    delay_ps: float
    segment_um: float


def optimal_segment_um(tech: ProcessTechnology) -> float:
    """Delay-optimal repeater spacing for minimum-width wire."""
    r = tech.interconnect.resistance_ohm_per_um
    c = tech.interconnect.capacitance_ff_per_um
    return math.sqrt(
        2.0 * tech.unit_drive_resistance_ohm * tech.unit_input_cap_ff / (r * c)
    )


def optimal_repeater_plan(
    tech: ProcessTechnology,
    length_um: float,
    width_um: float | None = None,
) -> RepeaterPlan:
    """Insert delay-optimal repeaters on a wire (Bakoglu's construction).

    Optimal segment length and size:

    ``L_seg = sqrt(2 * Rd0 * C0 * (1 - ?) / (r * c))``    (per classic
    derivation, constants folded), ``h_opt = sqrt(Rd0 * c / (r * C0))``.

    For wires shorter than one optimal segment the plan has zero
    repeaters and falls back to the bare-wire delay.
    """
    if length_um < 0:
        raise TechnologyError("length must be non-negative")
    r = tech.interconnect.resistance_ohm_per_um
    c = tech.interconnect.capacitance_ff_per_um
    if width_um is not None:
        scale_r = tech.interconnect.wire_resistance(1.0, width_um) / (
            tech.interconnect.wire_resistance(1.0)
        )
        scale_c = tech.interconnect.wire_capacitance(1.0, width_um) / (
            tech.interconnect.wire_capacitance(1.0)
        )
        r *= scale_r
        c *= scale_c
    rd0 = tech.unit_drive_resistance_ohm
    c0 = tech.unit_input_cap_ff
    segment = math.sqrt(2.0 * rd0 * c0 / (r * c))
    drive = max(1.0, math.sqrt(rd0 * c / (r * c0)))
    n = int(length_um // segment)
    seg_len = length_um / (n + 1)
    # Every segment -- including the first -- is driven by a sized stage:
    # "proper driving of a wire depends on sizing of drivers and insertion
    # of repeaters" (Section 5).  Each stage also pays its own parasitic
    # switching delay, and all but the last drive the next stage's input.
    repeater_self = tech.tau_ps * tech.inverter_parasitic
    per_segment = unrepeated_wire_delay_ps(
        tech,
        seg_len,
        driver_resistance_ohm=rd0 / drive,
        load_ff=drive * c0,
        width_um=width_um,
    )
    last_segment = unrepeated_wire_delay_ps(
        tech,
        seg_len,
        driver_resistance_ohm=rd0 / drive,
        load_ff=0.0,
        width_um=width_um,
    )
    total = n * per_segment + last_segment + (n + 1) * repeater_self
    return RepeaterPlan(
        length_um=length_um,
        num_repeaters=n,
        repeater_drive=drive,
        delay_ps=total,
        segment_um=seg_len,
    )


def wire_delay_ps(
    tech: ProcessTechnology,
    length_um: float,
    repeaters: bool = True,
    width_um: float | None = None,
) -> float:
    """Delay of a wire, with or without optimal repeaters.

    The cheaper of the repeated and unrepeated realisations is returned
    when ``repeaters`` is enabled (a repeater never hurts a short wire
    because the plan degenerates to zero repeaters).
    """
    bare = unrepeated_wire_delay_ps(tech, length_um, width_um=width_um)
    if not repeaters:
        return bare
    plan = optimal_repeater_plan(tech, length_um, width_um=width_um)
    return min(bare, plan.delay_ps)


@dataclass(frozen=True)
class ChipWireModel:
    """Chip-scale wire-length statistics for a square die.

    Attributes:
        die_area_mm2: total die area (the paper's example is a 100 mm^2
            chip).
        tech: process technology.
    """

    die_area_mm2: float
    tech: ProcessTechnology

    def __post_init__(self) -> None:
        if self.die_area_mm2 <= 0:
            raise TechnologyError("die area must be positive")

    @property
    def edge_um(self) -> float:
        """Die edge length."""
        return math.sqrt(self.die_area_mm2) * 1000.0

    def cross_chip_length_um(self) -> float:
        """Representative corner-to-corner Manhattan global wire."""
        return 2.0 * self.edge_um

    def cross_chip_delay_ps(self, repeaters: bool = True) -> float:
        """Delay of a repeated global wire crossing the die."""
        return wire_delay_ps(self.tech, self.cross_chip_length_um(), repeaters)

    def module_local_length_um(self, module_area_mm2: float) -> float:
        """Representative wire length inside one floorplanned module.

        Half the module perimeter -- the scale careful floorplanning
        confines critical wires to (Section 5.1's "localizing critical
        paths to within a module").
        """
        if module_area_mm2 <= 0:
            raise TechnologyError("module area must be positive")
        edge = math.sqrt(module_area_mm2) * 1000.0
        return edge

    def module_local_delay_ps(
        self, module_area_mm2: float, repeaters: bool = True
    ) -> float:
        """Delay of a representative intra-module wire."""
        return wire_delay_ps(
            self.tech, self.module_local_length_um(module_area_mm2), repeaters
        )

    def floorplanning_speedup(
        self,
        logic_delay_ps: float,
        module_area_mm2: float = 1.0,
        global_hops: int = 1,
    ) -> float:
        """Speedup from localising a path's wires inside one module.

        Compares ``logic + hops * cross_chip`` against
        ``logic + hops * local`` -- the Section 5.1 experiment shape.
        """
        if logic_delay_ps <= 0:
            raise TechnologyError("logic delay must be positive")
        if global_hops < 0:
            raise TechnologyError("hop count must be non-negative")
        sprawled = logic_delay_ps + global_hops * self.cross_chip_delay_ps()
        localised = logic_delay_ps + global_hops * self.module_local_delay_ps(
            module_area_mm2
        )
        return sprawled / localised
