"""The custom implementation flow, as a stage composition on the engine.

The full-custom methodology of the paper's Sections 4-8, with every lever
pulled: a short-Leff custom process, deeper pipelining, continuous
transistor sizing, hand-quality (careful, annealed) placement, a 5%-skew
hand-balanced clock with latch-based time borrowing available, domino
logic on the critical path, and flagship-bin silicon instead of a
worst-case quote.

Like :mod:`repro.flows.asic`, the flow is a declarative
:class:`~repro.flows.engine.StageGraph` (:func:`custom_flow_graph`);
instrumentation, degradation, fingerprint caching and checkpoint/resume
come from the shared engine.

Failure policy mirrors the ASIC flow: ``on_error="raise"`` aborts with a
stage-tagged :class:`FlowError`; ``on_error="keep_going"`` records
failures into ``FlowResult.diagnostics`` and degrades.
"""

from __future__ import annotations

from repro.cells.builder import custom_library
from repro.circuit.families import DOMINO_PROFILE
from repro.flows.asic import WORKLOADS
from repro.flows.engine import FlowContext, Stage, StageGraph
from repro.flows.options import CustomFlowOptions
from repro.flows.registry import Backend, register_backend, run_backend_flow
from repro.flows.results import FlowResult
from repro.physical.placement import place
from repro.pipeline.pipeliner import pipeline_module
from repro.robust.degrade import StageRunner, fallback_timing
from repro.robust.guards import (
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.robust.validate import preflight
from repro.sizing.buffering import buffer_high_fanout
from repro.sizing.tilos import total_area_um2
from repro.sta.clocking import custom_clock
from repro.sta.engine import solve_min_period
from repro.sta.sequential import register_boundaries
from repro.tech.process import CMOS250_CUSTOM, ProcessTechnology
from repro.variation.binning import custom_flagship_frequency
from repro.variation.components import NEW_PROCESS
from repro.variation.montecarlo import sample_chip_speeds


def _stages_for_target(
    comb,
    library,
    tech: ProcessTechnology,
    target_fo4: float,
    use_latches: bool,
    use_domino: bool,
) -> int:
    """Stage count landing the cycle near a target FO4 depth.

    A quick unplaced STA measures the total combinational depth; the
    per-stage sequencing budget (register overhead plus the skew share)
    then fixes how many slices fit.
    """
    probe = register_boundaries(comb, library, use_latches=use_latches)
    clock = custom_clock(40.0 * tech.fo4_delay_ps)
    timing = solve_min_period(probe, library, clock)
    logic_fo4 = timing.logic_delay_ps / tech.fo4_delay_ps
    if use_domino:
        logic_fo4 /= DOMINO_PROFILE.combinational_speedup
    overhead_fo4 = (
        timing.min_period_ps - timing.logic_delay_ps
    ) / tech.fo4_delay_ps
    usable = max(target_fo4 - overhead_fo4, 1.0)
    return max(1, min(10, round(logic_fo4 / usable)))


def _stage_map(ctx: FlowContext) -> None:
    options = ctx.options
    library = custom_library(ctx.tech)
    comb = WORKLOADS[options.workload](options.bits, library)

    stages_wanted = options.pipeline_stages
    if options.target_cycle_fo4 is not None:
        try:
            stages_wanted = _stages_for_target(
                comb, library, ctx.tech, options.target_cycle_fo4,
                options.use_latches, options.use_domino,
            )
        except Exception as exc:
            # The probe is an optimisation, not a requirement: under
            # keep_going fall back to the fixed stage count instead of
            # losing the whole flow.
            if not ctx.keep_going:
                raise
            ctx.note(
                f"stage-count probe failed "
                f"({type(exc).__name__}: {exc}); using fixed "
                f"pipeline_stages={options.pipeline_stages}",
                hint="check target_cycle_fo4 and the library",
            )

    if stages_wanted > 1:
        report = pipeline_module(
            comb, library, stages_wanted,
            use_latches=options.use_latches,
        )
        module = report.module
        stages = report.stages
    else:
        module = register_boundaries(
            comb, library, use_latches=options.use_latches
        )
        stages = 1
    ctx["library"] = library
    ctx["module"] = module
    ctx["stages"] = stages
    ctx["clock"] = custom_clock(20.0 * ctx.tech.fo4_delay_ps)
    ctx.span.set(cells=module.instance_count(), stages=stages,
                 library=library.name)


def _stage_place(ctx: FlowContext) -> None:
    placement = place(
        ctx["module"], ctx["library"], quality="careful",
        seed=ctx.options.seed,
    )
    ctx["placement"] = placement
    ctx["wire"] = placement.parasitics(ctx["library"])
    ctx.notes["wirelength_um"] = placement.total_wirelength_um()
    ctx.span.set(wirelength_um=placement.total_wirelength_um())


def _recover_place(ctx: FlowContext) -> None:
    ctx.notes["wirelength_um"] = 0.0


def _stage_cts(ctx: FlowContext) -> None:
    clock = ctx["clock"]
    buffered = buffer_high_fanout(ctx["module"], ctx["library"],
                                  max_fanout=10)
    ctx.notes["buffers_added"] = float(buffered.buffers_added)
    ctx.span.set(buffers_added=buffered.buffers_added,
                 skew_fraction=clock.skew_fraction)


def _stage_size(ctx: FlowContext) -> None:
    options = ctx.options
    if options.sizing_moves > 0:
        sizing = guarded_size_for_speed(
            ctx["module"], ctx["library"], ctx["clock"],
            wire=ctx.get("wire"), max_moves=options.sizing_moves,
        )
        ctx.notes["sizing_moves"] = float(sizing.moves)
        ctx.notes["sizing_speedup"] = sizing.speedup
        ctx.span.set(moves=sizing.moves, speedup=sizing.speedup,
                     area_growth=sizing.area_growth)


def _stage_sta(ctx: FlowContext) -> None:
    options = ctx.options
    timing = guarded_solve_min_period(
        ctx["module"], ctx["library"], ctx["clock"], wire=ctx.get("wire"),
        use_array=options.use_array, check_array=options.check_array,
    )
    period_ps = timing.min_period_ps
    logic_ps = timing.logic_delay_ps

    if options.use_domino:
        # Domino accelerates the combinational portion only; registers,
        # skew and wires keep their cost (Section 7.1's dilution from
        # 50-100% combinational to ~50% sequential).  The speedup
        # constant is the family profile, itself validated against
        # gate-level domino mappings in the test suite and bench E9.
        domino_factor = DOMINO_PROFILE.combinational_speedup
        period_ps = period_ps - logic_ps + logic_ps / domino_factor
        logic_ps = logic_ps / domino_factor
        ctx.notes["domino_factor"] = domino_factor
    ctx["period_ps"] = period_ps
    ctx["logic_ps"] = logic_ps
    ctx.span.set(min_period_ps=period_ps)


def _recover_sta(ctx: FlowContext) -> None:
    degraded = fallback_timing(ctx["module"], ctx["library"], ctx["clock"])
    ctx["period_ps"] = degraded.min_period_ps
    ctx["logic_ps"] = degraded.logic_delay_ps


def _stage_quote(ctx: FlowContext) -> None:
    options = ctx.options
    typical_mhz = 1.0e6 / ctx["period_ps"]
    dist = sample_chip_speeds(typical_mhz, NEW_PROCESS, count=4000,
                              seed=options.seed)
    if options.flagship_silicon:
        quoted = custom_flagship_frequency(dist)
        ctx.notes["quote_method"] = 2.0  # 2 = flagship bin
    else:
        quoted = dist.median_mhz
        ctx.notes["quote_method"] = 3.0  # 3 = typical silicon
    ctx["quoted"] = quoted
    ctx.span.set(quoted_mhz=quoted)


def _recover_quote(ctx: FlowContext) -> None:
    ctx["quoted"] = 1.0e6 / ctx["period_ps"]
    ctx.notes["quote_method"] = -1.0  # -1 = quote stage degraded


def _preflight_hook(ctx: FlowContext, runner: StageRunner) -> None:
    # Pre-flight lint after buffering (so fanout findings are real, not
    # about-to-be-fixed) but before sizing/STA.
    if runner.keep_going and "module" in ctx:
        runner.diagnostics.extend(preflight(ctx["module"], ctx["library"]))


def _summary_attrs(ctx: FlowContext) -> dict:
    attrs: dict = {}
    if "module" in ctx:
        attrs["cells"] = ctx["module"].instance_count()
    if "period_ps" in ctx:
        attrs["min_period_ps"] = ctx["period_ps"]
    if "quoted" in ctx:
        attrs["quoted_mhz"] = ctx["quoted"]
    return attrs


def custom_flow_graph() -> StageGraph:
    """The custom flow's declarative stage graph."""
    return StageGraph(
        flow="custom",
        stages=(
            Stage(
                name="map", run=_stage_map, critical=True,
                outputs=("module", "library", "stages", "clock"),
                params=("workload", "bits", "pipeline_stages",
                        "target_cycle_fo4", "use_latches", "use_domino"),
            ),
            Stage(
                name="place", run=_stage_place,
                inputs=("module", "library"),
                outputs=("placement", "wire"),
                params=("seed",),
                recover=_recover_place,
            ),
            Stage(
                name="cts", run=_stage_cts,
                inputs=("module", "library", "clock"),
                # Buffer insertion synthesises exactly-sized BUF cells
                # through the continuous factory, so the library is
                # rewritten alongside the netlist.
                outputs=("module", "library"),
            ),
            Stage(
                name="size", run=_stage_size,
                inputs=("module", "library", "clock", "wire"),
                # Continuous sizing registers freshly generated drive
                # variants in the library, so the library is rewritten
                # here too -- a cache replay must restore both.
                outputs=("module", "library"),
                params=("sizing_moves",),
            ),
            Stage(
                name="sta", run=_stage_sta,
                inputs=("module", "library", "clock", "wire"),
                outputs=("period_ps", "logic_ps"),
                params=("use_domino",),
                recover=_recover_sta,
            ),
            Stage(
                name="quote", run=_stage_quote,
                inputs=("period_ps",),
                outputs=("quoted",),
                params=("flagship_silicon", "seed"),
                recover=_recover_quote,
            ),
        ),
        hooks={"cts": _preflight_hook},
        root_attrs=lambda ctx: {"workload": ctx.options.workload,
                                "bits": ctx.options.bits},
        summary_attrs=_summary_attrs,
    )


#: Module-level graph instance the flow entry point and the CLI share.
CUSTOM_GRAPH = custom_flow_graph()


def finalize_custom(ctx: FlowContext,
                    tech: ProcessTechnology) -> FlowResult:
    """Build the result record from a completed custom flow context."""
    options = ctx.options
    module = ctx["module"]
    period_ps = ctx["period_ps"]
    logic_ps = ctx["logic_ps"]
    return FlowResult(
        name=f"custom_{options.workload}{options.bits}_s{ctx['stages']}",
        style="custom",
        technology=tech,
        library_name=ctx["library"].name,
        typical_frequency_mhz=1.0e6 / period_ps,
        quoted_frequency_mhz=ctx["quoted"],
        min_period_ps=period_ps,
        fo4_depth=period_ps / tech.fo4_delay_ps,
        logic_fo4=logic_ps / tech.fo4_delay_ps,
        overhead_fraction=1.0 - logic_ps / period_ps,
        pipeline_stages=ctx["stages"],
        gate_count=module.instance_count(),
        area_um2=total_area_um2(module, ctx["library"]),
        notes=ctx.notes,
        diagnostics=ctx.diagnostics,
        stage_records=ctx.stage_records,
    )


def _cli_options(args, on_error: str) -> CustomFlowOptions:
    """Build custom options from parsed ``flow`` subcommand arguments."""
    return CustomFlowOptions(
        workload=args.workload or "alu_macro",
        bits=args.bits,
        pipeline_stages=args.stages,
        target_cycle_fo4=args.target_fo4,
        sizing_moves=args.sizing_moves,
        seed=args.seed,
        on_error=on_error,
        fault=args.inject_fault,
        use_array=not args.no_array,
        check_array=args.check_array,
    )


def _gap_options(bits: int, sizing_moves: int, target_fo4: float,
                 on_error: str) -> CustomFlowOptions:
    """The custom design point the ``gap`` comparison runs."""
    return CustomFlowOptions(bits=bits, target_cycle_fo4=target_fo4,
                             sizing_moves=sizing_moves, on_error=on_error)


#: The registered custom backend (also importable for direct engine use).
CUSTOM_BACKEND = register_backend(Backend(
    name="custom",
    graph=CUSTOM_GRAPH,
    options_cls=CustomFlowOptions,
    default_tech=CMOS250_CUSTOM,
    finalize=finalize_custom,
    default_workload="alu_macro",
    description="full-custom flow: short-Leff process, continuous "
                "sizing, domino, flagship silicon",
    cli_options=_cli_options,
    gap_options=_gap_options,
))


def run_custom_flow(
    options: CustomFlowOptions = CustomFlowOptions(),
    tech: ProcessTechnology = CMOS250_CUSTOM,
    checkpoint: str | None = None,
    resume: bool = False,
    from_stage: str | None = None,
) -> FlowResult:
    """Run the full custom flow and return its result record.

    Args:
        options: flow knobs.
        tech: process technology.
        checkpoint: snapshot the context here after every stage.
        resume: restore completed stages from ``checkpoint``.
        from_stage: with ``resume``, re-run from this stage onward.

    Raises:
        FlowError: for unknown workloads or -- under
            ``on_error="raise"`` -- any stage failure (with the stage
            name attached and the cause chained).
    """
    return run_backend_flow(
        CUSTOM_BACKEND, options, tech, checkpoint=checkpoint, resume=resume,
        from_stage=from_stage,
    )
