"""Unit tests for repro.synth.optimize."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import (
    And,
    Const,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
    balance,
    flatten,
    optimize,
    parse_expression,
    simplify,
)

A, B, C, D = Var("a"), Var("b"), Var("c"), Var("d")


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(And((A, TRUE))) == A
        assert simplify(And((A, FALSE))) == FALSE
        assert simplify(Or((A, TRUE))) == TRUE
        assert simplify(Or((A, FALSE))) == A

    def test_double_negation(self):
        assert simplify(Not(Not(A))) == A
        assert simplify(Not(Not(Not(A)))) == Not(A)

    def test_xor_identities(self):
        assert simplify(Xor(A, FALSE)) == A
        assert simplify(Xor(A, TRUE)) == Not(A)
        assert simplify(Xor(A, A)) == FALSE

    def test_duplicate_removal(self):
        assert simplify(And((A, A, B))) == And((A, B))
        assert simplify(Or((A, A))) == A

    def test_not_constant(self):
        assert simplify(Not(TRUE)) == FALSE
        assert simplify(Not(FALSE)) == TRUE


class TestFlattenBalance:
    def test_flatten_merges_nested(self):
        nested = And((And((A, B)), And((C, D))))
        flat = flatten(nested)
        assert isinstance(flat, And)
        assert len(flat.children) == 4

    def test_balance_reduces_depth(self):
        # Chain a & (b & (c & (d & ...))) over 8 vars.
        vars_ = [Var(f"v{i}") for i in range(8)]
        chain = vars_[0]
        for v in vars_[1:]:
            chain = And((chain, v))
        assert chain.depth() == 7
        balanced = optimize(chain)
        assert balanced.depth() == 3  # ceil(log2(8))

    def test_balance_respects_max_arity(self):
        wide = And(tuple(Var(f"v{i}") for i in range(9)))
        b2 = balance(wide, max_arity=2)
        b4 = balance(wide, max_arity=4)
        assert _max_arity(b2) <= 2
        assert _max_arity(b4) <= 4
        assert b4.depth() <= b2.depth()

    def test_balance_rejects_arity_one(self):
        with pytest.raises(Exception):
            balance(And((A, B)), max_arity=1)


def _max_arity(expr) -> int:
    if isinstance(expr, (And, Or)):
        return max(
            [len(expr.children)] + [_max_arity(c) for c in expr.children]
        )
    if isinstance(expr, Not):
        return _max_arity(expr.child)
    if isinstance(expr, Xor):
        return max(2, _max_arity(expr.left), _max_arity(expr.right))
    return 0


# ----------------------------------------------------------------------
# Property: optimisation preserves semantics
# ----------------------------------------------------------------------

_VARS = ["a", "b", "c", "d", "e"]


@st.composite
def random_expr(draw, depth=0):
    if depth > 4 or draw(st.booleans()) and depth > 1:
        choice = draw(st.integers(0, 5))
        if choice == 0:
            return TRUE
        if choice == 1:
            return FALSE
        return Var(draw(st.sampled_from(_VARS)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Not(draw(random_expr(depth=depth + 1)))
    if kind == 1:
        n = draw(st.integers(2, 4))
        return And(tuple(draw(random_expr(depth=depth + 1)) for _ in range(n)))
    if kind == 2:
        n = draw(st.integers(2, 4))
        return Or(tuple(draw(random_expr(depth=depth + 1)) for _ in range(n)))
    return Xor(draw(random_expr(depth=depth + 1)), draw(random_expr(depth=depth + 1)))


@settings(max_examples=120, deadline=None)
@given(random_expr())
def test_optimize_preserves_semantics(expr):
    optimised = optimize(expr)
    for bits in range(32):
        env = {v: bool((bits >> i) & 1) for i, v in enumerate(_VARS)}
        assert optimised.evaluate(env) == expr.evaluate(env)


def _chain(expr):
    """Rewrite n-ary nodes as worst-case left-to-right 2-input chains."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Not):
        return Not(_chain(expr.child))
    if isinstance(expr, Xor):
        return Xor(_chain(expr.left), _chain(expr.right))
    op = type(expr)
    acc = _chain(expr.children[0])
    for child in expr.children[1:]:
        acc = op((acc, _chain(child)))
    return acc


@settings(max_examples=120, deadline=None)
@given(random_expr())
def test_optimize_no_deeper_than_chained_form(expr):
    # Balancing must never do worse than naive chain decomposition to the
    # same 2-input arity.
    chained = _chain(flatten(simplify(expr)))
    optimised = optimize(expr)
    assert optimised.depth() <= max(chained.depth(), 1)


@settings(max_examples=60, deadline=None)
@given(random_expr())
def test_optimize_idempotent(expr):
    once = optimize(expr)
    twice = optimize(once)
    for bits in range(32):
        env = {v: bool((bits >> i) & 1) for i, v in enumerate(_VARS)}
        assert once.evaluate(env) == twice.evaluate(env)
    assert twice.depth() <= once.depth()
