"""Observability: tracing, metrics, and profiling for the flow stack.

The reproduction's measurement layer.  Flow stages, the STA engine, the
sizers, and the Monte Carlo sampler all emit spans and metrics through
the module-level helpers here; ``repro-gap --profile``, ``--trace`` and
``repro-gap stats`` surface them.  Disabled by default, and a single
flag check when disabled, so the instrumented hot paths stay at seed
speed unless someone is looking.
"""

from repro.obs.clock import MONOTONIC, TickClock
from repro.obs.events import Event, EventError, parse_event, read_events
from repro.obs.export import (
    metrics_to_flat,
    metrics_to_prom,
    report,
    span_to_dict,
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_metrics,
    write_prom,
    write_trace,
)
from repro.obs.instrument import (
    NOOP_SPAN,
    count,
    disable,
    enable,
    enabled,
    gauge,
    get_metrics,
    get_tracer,
    observe,
    render_report,
    reset,
    span,
    traced,
)
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
)
from repro.obs.live import (
    Dashboard,
    EventBus,
    Heartbeat,
    StallDetector,
    StallReport,
    Subscription,
    SweepAggregate,
    WatchConfig,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    Hotspot,
    StageProbe,
    check_budgets,
    cprofile_to_collapsed,
    critical_path,
    load_budgets,
    render_self_report,
    self_time_rollup,
    spans_to_collapsed,
    stage_probe,
    write_collapsed,
)
from repro.obs.regress import (
    Finding,
    RegressionReport,
    Thresholds,
)
from repro.obs.render import (
    aggregate_spans,
    render_run,
    render_span_tree,
    render_waterfall,
)
from repro.obs.trace import ObsError, Span, SpanStats, Tracer

__all__ = [
    "MONOTONIC",
    "NOOP_SPAN",
    "Counter",
    "Dashboard",
    "Event",
    "EventBus",
    "EventError",
    "Finding",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "Hotspot",
    "MetricsRegistry",
    "ObsError",
    "RegressionReport",
    "RunLedger",
    "RunRecord",
    "Span",
    "SpanStats",
    "StageProbe",
    "StallDetector",
    "StallReport",
    "Subscription",
    "SweepAggregate",
    "Thresholds",
    "TickClock",
    "Tracer",
    "WatchConfig",
    "aggregate_spans",
    "check_budgets",
    "count",
    "cprofile_to_collapsed",
    "critical_path",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_metrics",
    "get_tracer",
    "load_budgets",
    "metrics_to_flat",
    "metrics_to_prom",
    "observe",
    "parse_event",
    "read_events",
    "render_report",
    "render_run",
    "render_self_report",
    "render_span_tree",
    "render_waterfall",
    "report",
    "reset",
    "self_time_rollup",
    "span",
    "span_to_dict",
    "spans_to_collapsed",
    "stage_probe",
    "trace_to_chrome",
    "trace_to_jsonl",
    "traced",
    "write_chrome_trace",
    "write_collapsed",
    "write_metrics",
    "write_prom",
    "write_trace",
]
