"""Process-generation scaling.

Section 2 of the paper calibrates the size of the ASIC-custom gap in units
of process generations: "If we put the speed improvement due to one process
generation (e.g. 0.35um to 0.25um) as 1.5x then this gap is equivalent to
that of five process generations or nearly a decade of process
improvement."

This module provides that conversion plus simple generation-to-generation
technology projection used by migration analyses (Section 8.3: ASICs
retarget easily across generations, custom designs do not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.process import ProcessTechnology, TechnologyError

#: Speed improvement per process generation (Section 2).
SPEEDUP_PER_GENERATION = 1.5

#: Linear shrink factor per generation (0.35 -> 0.25 -> 0.18 -> 0.13 ...).
SHRINK_PER_GENERATION = 1.0 / math.sqrt(2.0)

#: Approximate years between process generations in the late-1990s cadence.
YEARS_PER_GENERATION = 2.0


def generations_equivalent(speed_ratio: float) -> float:
    """Express a speed ratio as a number of process generations.

    ``generations_equivalent(6.0)`` to ``generations_equivalent(8.0)``
    reproduces the paper's "equivalent to five process generations" claim
    for the 6-8x ASIC-custom gap.

    Raises:
        TechnologyError: if the ratio is not greater than zero.
    """
    if speed_ratio <= 0:
        raise TechnologyError("speed ratio must be positive")
    return math.log(speed_ratio) / math.log(SPEEDUP_PER_GENERATION)


def years_equivalent(speed_ratio: float) -> float:
    """Express a speed ratio as years of process improvement.

    The paper calls the 6-8x gap "nearly a decade of process improvement".
    """
    return generations_equivalent(speed_ratio) * YEARS_PER_GENERATION


def speedup_over_generations(generations: float) -> float:
    """Speed improvement accumulated over a number of generations."""
    return SPEEDUP_PER_GENERATION**generations


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of retargeting a design to a newer technology.

    Attributes:
        technology: the projected target technology.
        speedup: frequency gain relative to the source technology.
        redesign_effort: dimensionless effort score; 0 for a pure library
            remap (ASIC), 1 for a full transistor-level redesign (custom).
    """

    technology: ProcessTechnology
    speedup: float
    redesign_effort: float


def project_technology(
    tech: ProcessTechnology, generations: int = 1
) -> ProcessTechnology:
    """Project a technology forward by the given number of generations.

    Channel lengths and wire geometry shrink by ``SHRINK_PER_GENERATION``
    per step; supply voltage follows constant-field scaling; wire
    resistance per micrometre rises as the cross-section shrinks while
    capacitance per micrometre stays approximately constant (the standard
    first-order interconnect-scaling result).
    """
    if generations < 0:
        raise TechnologyError("generations must be non-negative")
    shrink = SHRINK_PER_GENERATION**generations
    inner = tech.interconnect
    new_interconnect = type(inner)(
        resistance_ohm_per_um=inner.resistance_ohm_per_um / shrink,
        capacitance_ff_per_um=inner.capacitance_ff_per_um,
        min_width_um=inner.min_width_um * shrink,
        min_spacing_um=inner.min_spacing_um * shrink,
        is_copper=inner.is_copper,
    )
    return tech.scaled(
        name=f"{tech.name}_shrunk{generations}",
        drawn_length_um=tech.drawn_length_um * shrink,
        leff_um=tech.leff_um * shrink,
        vdd=tech.vdd * shrink,
        interconnect=new_interconnect,
        unit_nmos_width_um=tech.unit_nmos_width_um * shrink,
    )


def migrate_asic(tech: ProcessTechnology, generations: int = 1) -> MigrationResult:
    """Retarget an ASIC design to a newer process.

    Section 8.3: "ASIC designs are typically easy to migrate between
    technology generations, as they are retargetable to different
    processes".  The design is simply re-mapped to the new library, so the
    full generation speedup is realised at negligible redesign effort.
    """
    new_tech = project_technology(tech, generations)
    return MigrationResult(
        technology=new_tech,
        speedup=speedup_over_generations(generations),
        redesign_effort=0.05 * generations,
    )


def migrate_custom(
    tech: ProcessTechnology, generations: int = 1, redesign: bool = True
) -> MigrationResult:
    """Retarget a custom design to a newer process.

    Section 8.3: custom designs "must have transistors resized and circuits
    altered to account for design rules, voltage, current and power
    considerations not scaling linearly".  Without redesign only a partial
    optical-shrink speedup is available (we use 60% of the generation gain,
    consistent with Intel's 5% shrink yielding 18% speed in Section 8.1.1
    being well below a full generation); with redesign the full speedup is
    recovered at high effort.
    """
    new_tech = project_technology(tech, generations)
    if redesign:
        speedup = speedup_over_generations(generations)
        effort = 1.0 * generations
    else:
        speedup = speedup_over_generations(0.6 * generations)
        effort = 0.1 * generations
    return MigrationResult(technology=new_tech, speedup=speedup, redesign_effort=effort)
