"""Pipelining overhead arithmetic (Section 4 of the paper).

The paper's own calculation: "Estimating the pipelining overheads, such
as clock skew and latch overheads, as about 30% for an ASIC design, the
Tensilica pipelined ASIC processor with five stages is about 3.8 times
faster due to pipelining.  Estimating the clock skew and latch overheads
as about 20% for a custom design, the IBM PowerPC processor with four
pipeline stages is about 3.4 times faster with pipelining."

That is: a pipeline of N stages whose sequencing overhead consumes a
fraction ``v`` of each cycle speeds execution up by ``N * (1 - v)``
relative to the unpipelined datapath.  This module provides that formula
and the more explicit FO4-budget version used by the flows.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's overhead estimates.
ASIC_OVERHEAD_FRACTION = 0.30
CUSTOM_OVERHEAD_FRACTION = 0.20


class PipelineError(ValueError):
    """Raised for unphysical pipeline parameters."""


def ideal_pipeline_speedup(stages: int, overhead_fraction: float) -> float:
    """The paper's headline formula: ``speedup = N * (1 - v)``.

    ``ideal_pipeline_speedup(5, 0.30)`` = 3.5 and the paper quotes "about
    3.8" for the Xtensa (it rounds the overheads); ``(4, 0.20)`` = 3.2
    against the quoted "about 3.4" for the PowerPC.
    """
    if stages < 1:
        raise PipelineError("stage count must be at least 1")
    if not 0.0 <= overhead_fraction < 1.0:
        raise PipelineError("overhead fraction must be in [0, 1)")
    return stages * (1.0 - overhead_fraction)


def pipeline_speedup_fo4(
    logic_depth_fo4: float,
    stages: int,
    per_stage_overhead_fo4: float,
) -> float:
    """Explicit FO4-budget speedup of pipelining a block of logic.

    Unpipelined: one cycle of ``logic + overhead``.  Pipelined into N
    ideal (perfectly balanced) stages: cycles of ``logic/N + overhead``.

        speedup = (logic + ovh) / (logic / N + ovh)

    This saturates at ``1 + logic/ovh`` -- the Section 4.1 limit where
    "simply increasing the clock speed by adding latches would only
    increase latency due to the additional latch setup and hold times".
    """
    if logic_depth_fo4 <= 0 or per_stage_overhead_fo4 < 0:
        raise PipelineError("logic depth must be positive, overhead >= 0")
    if stages < 1:
        raise PipelineError("stage count must be at least 1")
    unpipelined = logic_depth_fo4 + per_stage_overhead_fo4
    pipelined = logic_depth_fo4 / stages + per_stage_overhead_fo4
    return unpipelined / pipelined


def overhead_fraction_at(
    logic_depth_fo4: float, stages: int, per_stage_overhead_fo4: float
) -> float:
    """Fraction of the pipelined cycle consumed by sequencing overhead."""
    if stages < 1:
        raise PipelineError("stage count must be at least 1")
    cycle = logic_depth_fo4 / stages + per_stage_overhead_fo4
    if cycle <= 0:
        raise PipelineError("empty cycle")
    return per_stage_overhead_fo4 / cycle


def max_useful_stages(
    logic_depth_fo4: float,
    per_stage_overhead_fo4: float,
    max_overhead_fraction: float = 0.5,
) -> int:
    """Deepest pipeline keeping overhead below a budget fraction.

    Beyond this depth each extra stage mostly adds latch/skew cost --
    the knee the paper's 13-15 FO4 custom designs sit near.
    """
    if not 0.0 < max_overhead_fraction < 1.0:
        raise PipelineError("overhead budget must be in (0, 1)")
    if per_stage_overhead_fo4 <= 0:
        raise PipelineError("overhead must be positive to bound depth")
    # overhead / (logic/N + overhead) <= f  =>  N <= logic*f/(ovh*(1-f)).
    bound = (
        logic_depth_fo4
        * max_overhead_fraction
        / (per_stage_overhead_fo4 * (1.0 - max_overhead_fraction))
    )
    return max(1, int(bound))


@dataclass(frozen=True)
class PipelineBudget:
    """FO4 budget of one pipeline configuration.

    Attributes:
        logic_depth_fo4: total combinational depth being pipelined.
        stages: number of pipeline stages.
        per_stage_overhead_fo4: latch + skew cost per stage.
    """

    logic_depth_fo4: float
    stages: int
    per_stage_overhead_fo4: float

    @property
    def cycle_fo4(self) -> float:
        """FO4 depth of one pipelined cycle."""
        return self.logic_depth_fo4 / self.stages + self.per_stage_overhead_fo4

    @property
    def speedup(self) -> float:
        return pipeline_speedup_fo4(
            self.logic_depth_fo4, self.stages, self.per_stage_overhead_fo4
        )

    @property
    def overhead_fraction(self) -> float:
        return overhead_fraction_at(
            self.logic_depth_fo4, self.stages, self.per_stage_overhead_fo4
        )
