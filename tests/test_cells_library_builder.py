"""Unit tests for repro.cells.library and repro.cells.builder."""

import pytest

from repro.cells import (
    CellError,
    CellKind,
    LogicFamily,
    STATIC_TEMPLATES,
    build_library,
    custom_library,
    domino_library,
    make_combinational_cell,
    poor_asic_library,
    rich_asic_library,
)
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM


@pytest.fixture(scope="module")
def rich():
    return rich_asic_library(CMOS250_ASIC)


@pytest.fixture(scope="module")
def poor():
    return poor_asic_library(CMOS250_ASIC)


@pytest.fixture(scope="module")
def custom():
    return custom_library(CMOS250_CUSTOM)


@pytest.fixture(scope="module")
def domino():
    return domino_library(CMOS250_CUSTOM)


class TestBuilder:
    def test_rich_has_many_drives(self, rich):
        assert rich.drive_count("NAND2") == 8
        assert rich.mean_drives_per_base() >= 6

    def test_poor_has_two_drives(self, poor):
        assert poor.drive_count("NAND2") == 2
        assert not poor.has_base("AND2")
        assert not poor.has_base("AOI21")

    def test_rich_dual_polarity(self, rich, poor):
        assert rich.has_dual_polarity("NAND2")
        assert rich.has_dual_polarity("OR3")
        assert not poor.has_dual_polarity("NAND2")

    def test_inverter_fo4_calibration(self, rich):
        # An inverter driving 4x its own input cap should take about one
        # FO4 (the guard band makes the ASIC library slightly slower).
        inv = rich.inverter()
        load = 4.0 * inv.input_cap_ff("A")
        delay = inv.delay_ps("A", load)
        fo4 = CMOS250_ASIC.fo4_delay_ps
        assert fo4 <= delay <= 1.15 * fo4

    def test_larger_drive_is_faster_at_fixed_load(self, rich):
        small = rich.get("NAND2_X1")
        big = rich.get("NAND2_X8")
        assert big.delay_ps("A", 20.0) < small.delay_ps("A", 20.0)
        assert big.input_cap_ff("A") > small.input_cap_ff("A")

    def test_cell_functions_evaluate(self, rich):
        nand3 = rich.get("NAND3_X1")
        assert nand3.evaluate({"A": True, "B": True, "C": True}) is False
        assert nand3.evaluate({"A": True, "B": False, "C": True}) is True
        mux = rich.get("MUX2_X1")
        assert mux.evaluate({"A": True, "B": False, "S": False}) is True
        assert mux.evaluate({"A": True, "B": False, "S": True}) is False

    def test_sequential_cells_present(self, rich):
        ff = rich.flip_flop()
        assert ff.kind is CellKind.FLIP_FLOP
        latch = rich.latch()
        assert latch.sequential.transparent

    def test_asic_flop_slower_than_custom(self, rich, custom):
        # Same drawn geometry class; ASIC flop overhead must exceed custom.
        asic_ovh = rich.flip_flop().sequential.overhead_ps
        custom_ovh = custom.flip_flop().sequential.overhead_ps
        # Normalise out the different FO4s to compare per-FO4 overheads.
        asic_fo4 = asic_ovh / CMOS250_ASIC.fo4_delay_ps
        custom_fo4 = custom_ovh / CMOS250_CUSTOM.fo4_delay_ps
        assert asic_fo4 > custom_fo4

    def test_nldm_option(self):
        lib = rich_asic_library(CMOS250_ASIC, use_nldm=True)
        cell = lib.get("NAND2_X2")
        delay = cell.delay_ps("A", 5.0, 10.0)
        assert delay > 0

    def test_unknown_template_rejected(self):
        from repro.cells import LibrarySpec

        with pytest.raises(CellError, match="no template"):
            build_library(
                CMOS250_ASIC, LibrarySpec(name="x", bases=("NAND17",))
            )

    def test_guard_band_slows_cells(self):
        template = STATIC_TEMPLATES["INV"]
        plain = make_combinational_cell(CMOS250_ASIC, template, 1.0)
        banded = make_combinational_cell(
            CMOS250_ASIC, template, 1.0, guard_band=1.2
        )
        assert banded.delay_ps("A", 5.0) > plain.delay_ps("A", 5.0)


class TestDomino:
    def test_domino_cells_non_inverting(self, domino):
        for cell in domino:
            if cell.kind is CellKind.COMBINATIONAL:
                assert not cell.inverting
                assert cell.family is LogicFamily.DOMINO

    def test_domino_faster_than_static_chain(self, rich, domino):
        # Section 7.1: 50-100% faster for the same function.  Compare a
        # self-loaded AND2 stage (fanout-of-1 chain step).
        static_and = rich.get("AND2_X4")
        domino_and = domino.get("DAND2_X4")
        d_static = static_and.delay_ps("A", static_and.input_cap_ff("A"))
        d_domino = domino_and.delay_ps("A", domino_and.input_cap_ff("A"))
        ratio = d_static / d_domino
        assert 1.5 <= ratio <= 3.5

    def test_wide_or_available(self, domino):
        or8 = domino.get("DOR8_X1")
        assert or8.num_inputs == 8


class TestLibraryQueries:
    def test_get_unknown_mentions_similar(self, rich):
        with pytest.raises(CellError, match="NAND2"):
            rich.get("NAND2_X99")

    def test_drives_sorted(self, rich):
        drives = [c.drive for c in rich.drives_of("INV")]
        assert drives == sorted(drives)

    def test_select_drive_scales_with_load(self, rich):
        light = rich.select_drive("INV", 2.0)
        heavy = rich.select_drive("INV", 150.0)
        assert heavy.drive > light.drive

    def test_select_drive_continuous(self, custom):
        cell = custom.select_drive("INV", 37.0)
        # Continuous sizing: input cap tracks load / 4 exactly.
        assert cell.input_cap_ff("A") == pytest.approx(37.0 / 4.0, rel=0.01)

    def test_select_drive_rejects_negative_load(self, rich):
        with pytest.raises(CellError):
            rich.select_drive("INV", -1.0)

    def test_sequential_names_and_output_pins(self, rich):
        seq = rich.sequential_cell_names()
        assert any(n.startswith("DFF") for n in seq)
        pin_map = rich.output_pin_map()
        assert pin_map["NAND2_X1"] == {"Y"}
        assert pin_map[rich.flip_flop().name] == {"Q"}

    def test_summary_mentions_name(self, rich):
        assert "asic_rich" in rich.summary()

    def test_duplicate_cell_rejected(self, rich):
        cell = rich.get("INV_X1")
        with pytest.raises(CellError):
            rich.add(cell)
