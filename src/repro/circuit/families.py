"""Logic-family models: static CMOS versus domino dynamic logic.

Section 7: "Dynamic logic can be used to speed up critical paths within
the circuit, by reducing gate delays.  It is significantly faster than
static CMOS logic and smaller area, but requires careful design to ensure
no glitching of input signals.  Static CMOS logic has far less
sensitivity to noise and consumes less power."

The quantitative anchors (Section 7.1): "Dynamic logic functions used in
the IBM 1.0 GHz design are 50% to 100% faster than static CMOS
combinational logic with the same functionality ... This implies that
sequential circuitry using dynamic logic will be about 50% faster."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import LogicFamily


class FamilyError(ValueError):
    """Raised for invalid family-model queries."""


@dataclass(frozen=True)
class FamilyProfile:
    """Engineering profile of a logic family.

    Attributes:
        family: which family this profiles.
        combinational_speedup: speed of same-function combinational logic
            relative to static CMOS (1.0 for static itself).
        sequential_speedup: achievable whole-pipeline speedup once
            registers/skew are included.
        relative_noise_margin: noise margin relative to static CMOS.
        relative_power: power for the same function and frequency.
        relative_area: layout area for the same function.
        requires_monotone: True if only monotone (non-inverting) logic is
            realisable (the domino constraint).
        requires_precharge_clock: True if gates need clocking.
        synthesizable: True if commercial ASIC flows can target it
            (Section 7.2: domino synthesis "has yet to produce
            commercially available libraries").
    """

    family: LogicFamily
    combinational_speedup: float
    sequential_speedup: float
    relative_noise_margin: float
    relative_power: float
    relative_area: float
    requires_monotone: bool
    requires_precharge_clock: bool
    synthesizable: bool

    def __post_init__(self) -> None:
        for value in (
            self.combinational_speedup,
            self.sequential_speedup,
            self.relative_noise_margin,
            self.relative_power,
            self.relative_area,
        ):
            if value <= 0:
                raise FamilyError("profile ratios must be positive")


#: Static CMOS: the reference point.
STATIC_PROFILE = FamilyProfile(
    family=LogicFamily.STATIC,
    combinational_speedup=1.0,
    sequential_speedup=1.0,
    relative_noise_margin=1.0,
    relative_power=1.0,
    relative_area=1.0,
    requires_monotone=False,
    requires_precharge_clock=False,
    synthesizable=True,
)

#: Domino, calibrated to Section 7.1: combinational 1.5-2x (midpoint
#: 1.75), sequential ~1.5x; noisier, hungrier, denser.
DOMINO_PROFILE = FamilyProfile(
    family=LogicFamily.DOMINO,
    combinational_speedup=1.75,
    sequential_speedup=1.5,
    relative_noise_margin=0.4,
    relative_power=1.8,
    relative_area=0.7,
    requires_monotone=True,
    requires_precharge_clock=True,
    synthesizable=False,
)

PROFILES: dict[LogicFamily, FamilyProfile] = {
    LogicFamily.STATIC: STATIC_PROFILE,
    LogicFamily.DOMINO: DOMINO_PROFILE,
}


def profile_of(family: LogicFamily) -> FamilyProfile:
    """Profile for a logic family."""
    return PROFILES[family]


def sequential_speedup_from_combinational(
    combinational_speedup: float, logic_fraction: float = 0.75
) -> float:
    """Derive whole-cycle speedup from a combinational-only speedup.

    Only the logic portion of the cycle accelerates; registers, skew and
    wires do not.  With logic occupying ``logic_fraction`` of the cycle:

        speedup = 1 / (logic_fraction / s + (1 - logic_fraction))

    Section 7.1's step from "50% to 100% faster" combinational logic to
    "about 50% faster" sequential circuitry is this dilution.
    """
    if combinational_speedup <= 0:
        raise FamilyError("combinational speedup must be positive")
    if not 0.0 < logic_fraction <= 1.0:
        raise FamilyError("logic fraction must be in (0, 1]")
    return 1.0 / (
        logic_fraction / combinational_speedup + (1.0 - logic_fraction)
    )
