"""End-to-end implementation flows: ASIC vs custom methodology."""

from repro.flows.asic import AsicFlowOptions, WORKLOADS, run_asic_flow
from repro.flows.custom import CustomFlowOptions, run_custom_flow
from repro.flows.results import FlowError, FlowResult

__all__ = [
    "AsicFlowOptions",
    "CustomFlowOptions",
    "FlowError",
    "FlowResult",
    "WORKLOADS",
    "run_asic_flow",
    "run_custom_flow",
]
