"""Micro-architecture substrate: pipelining, retiming, CPI models."""

from repro.pipeline.microarch import (
    ALPHA_21264A,
    IBM_POWERPC_1GHZ,
    MicroArchitecture,
    TENSILICA_XTENSA,
    TYPICAL_WORKLOAD,
    UNPIPELINED_ASIC,
    Workload,
    best_pipeline_depth,
)
from repro.pipeline.overheads import (
    ASIC_OVERHEAD_FRACTION,
    CUSTOM_OVERHEAD_FRACTION,
    PipelineBudget,
    PipelineError,
    ideal_pipeline_speedup,
    max_useful_stages,
    overhead_fraction_at,
    pipeline_speedup_fo4,
)
from repro.pipeline.balance import (
    BalanceReport,
    balanced_stage_assignment,
    estimate_gate_delays,
    pipeline_module_balanced,
)
from repro.pipeline.pipeliner import PipelineReport, pipeline_module
from repro.pipeline.retiming import (
    RetimingResult,
    clock_period,
    feasible,
    make_retiming_graph,
    opt_period,
    retime,
)

__all__ = [
    "BalanceReport",
    "balanced_stage_assignment",
    "estimate_gate_delays",
    "pipeline_module_balanced",
    "ALPHA_21264A",
    "ASIC_OVERHEAD_FRACTION",
    "CUSTOM_OVERHEAD_FRACTION",
    "IBM_POWERPC_1GHZ",
    "MicroArchitecture",
    "PipelineBudget",
    "PipelineError",
    "PipelineReport",
    "RetimingResult",
    "TENSILICA_XTENSA",
    "TYPICAL_WORKLOAD",
    "UNPIPELINED_ASIC",
    "Workload",
    "best_pipeline_depth",
    "clock_period",
    "feasible",
    "ideal_pipeline_speedup",
    "make_retiming_graph",
    "max_useful_stages",
    "opt_period",
    "overhead_fraction_at",
    "pipeline_module",
    "pipeline_speedup_fo4",
    "retime",
]
