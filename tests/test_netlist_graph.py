"""Unit tests for repro.netlist.graph."""

import pytest

from repro.netlist import (
    CombinationalLoopError,
    Module,
    fanin_cone,
    fanout_cone,
    find_combinational_loop,
    instance_graph,
    levelize,
    logic_depth,
    max_fanout,
    primary_input_instances,
    primary_output_instances,
    topological_order,
)

SEQ = {"DFF_X1"}


def chain_module(n: int) -> Module:
    """in -> INV * n -> out."""
    m = Module("chain")
    prev = m.add_input("a")
    for i in range(n):
        nxt = f"w{i}"
        m.add_instance(f"i{i}", "INV_X1", inputs={"A": prev}, outputs={"Y": nxt})
        prev = nxt
    m.add_output("y")
    m.add_instance("buf", "BUF_X1", inputs={"A": prev}, outputs={"Y": "y"})
    return m


def pipelined_module() -> Module:
    """Two 2-gate stages separated by a flop."""
    m = Module("pipe")
    m.add_input("a")
    m.add_input("clk")
    m.add_output("y")
    m.add_instance("s1a", "INV_X1", inputs={"A": "a"}, outputs={"Y": "w1"})
    m.add_instance("s1b", "INV_X1", inputs={"A": "w1"}, outputs={"Y": "w2"})
    m.add_instance(
        "ff", "DFF_X1", inputs={"D": "w2", "CK": "clk"}, outputs={"Q": "w3"}
    )
    m.add_instance("s2a", "INV_X1", inputs={"A": "w3"}, outputs={"Y": "w4"})
    m.add_instance("s2b", "INV_X1", inputs={"A": "w4"}, outputs={"Y": "y"})
    return m


class TestOrdering:
    def test_topological_order_respects_edges(self):
        m = chain_module(5)
        order = topological_order(m)
        pos = {name: i for i, name in enumerate(order)}
        for i in range(4):
            assert pos[f"i{i}"] < pos[f"i{i+1}"]

    def test_loop_detection(self):
        m = Module("loop")
        m.add_instance("g1", "INV_X1", inputs={"A": "n2"}, outputs={"Y": "n1"})
        m.add_instance("g2", "INV_X1", inputs={"A": "n1"}, outputs={"Y": "n2"})
        assert find_combinational_loop(m) is not None
        with pytest.raises(CombinationalLoopError):
            topological_order(m)

    def test_flop_breaks_loop(self):
        m = Module("fsm")
        m.add_input("clk")
        m.add_instance("g", "INV_X1", inputs={"A": "q"}, outputs={"Y": "d"})
        m.add_instance(
            "ff", "DFF_X1", inputs={"D": "d", "CK": "clk"}, outputs={"Q": "q"}
        )
        assert find_combinational_loop(m, SEQ) is None
        order = topological_order(m, SEQ)
        assert set(order) == {"g", "ff"}


class TestLevels:
    def test_chain_depth(self):
        assert logic_depth(chain_module(7)) == 8  # 7 INV + 1 BUF

    def test_empty_module_depth_zero(self):
        assert logic_depth(Module("empty")) == 0

    def test_pipeline_halves_depth(self):
        m = pipelined_module()
        assert logic_depth(m, SEQ) == 2
        assert logic_depth(m, sequential_cells=()) > 2

    def test_levelize_flop_at_zero(self):
        levels = levelize(pipelined_module(), SEQ)
        assert levels["ff"] == 0
        assert levels["s2a"] == 0  # first gate after the register
        assert levels["s2b"] == 1
        assert levels["s1b"] == 1

    def test_levels_monotone_along_edges(self):
        m = chain_module(6)
        levels = levelize(m)
        graph = instance_graph(m)
        for u, v in graph.edges:
            assert levels[v] > levels[u]


class TestCones:
    def test_fanin_cone_of_output(self):
        m = chain_module(3)
        cone = fanin_cone(m, "buf")
        assert cone == {"buf", "i0", "i1", "i2"}

    def test_fanout_cone_of_input_gate(self):
        m = chain_module(3)
        cone = fanout_cone(m, "i0")
        assert cone == {"i0", "i1", "i2", "buf"}

    def test_cone_stops_at_flop(self):
        m = pipelined_module()
        cone = fanin_cone(m, "s2b", SEQ)
        assert "ff" in cone
        assert "s1a" not in cone  # the flop blocks traversal

    def test_unknown_instance_raises(self):
        with pytest.raises(Exception):
            fanin_cone(chain_module(2), "missing")


class TestEndpoints:
    def test_primary_endpoints(self):
        m = pipelined_module()
        starts = set(primary_input_instances(m, SEQ))
        ends = set(primary_output_instances(m, SEQ))
        assert "s1a" in starts and "ff" in starts
        assert "s2b" in ends
        assert "s1b" in ends  # its only fanout is the (cut) register D pin

    def test_max_fanout(self):
        m = Module("fan")
        m.add_input("a")
        for i in range(5):
            m.add_instance(
                f"g{i}", "INV_X1", inputs={"A": "a"}, outputs={"Y": f"w{i}"}
            )
        assert max_fanout(m) == 5
