"""The CellLibrary container and its selection queries.

A library is the fixed menu an ASIC flow chooses from (Section 6).  Its
"richness" -- how many drive strengths per function, and whether both
polarities of each function are present -- is one of the paper's measured
factors: "a cell library with only two drive strengths may be 25% slower
than an ASIC library with a rich selection of drive strengths and buffer
sizes, as well as dual polarities for functions".
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.cells.cell import Cell, CellError, CellKind, LogicFamily
from repro.tech.process import ProcessTechnology


class CellLibrary:
    """A named collection of cells built for one process technology.

    Attributes:
        name: library name, e.g. ``"asic_rich_cmos250"``.
        technology: the process the cells are characterised for.
        continuous_factory: optional callable ``(base_name, drive) -> Cell``
            enabling custom-style continuous sizing (Section 6: "only in a
            custom design methodology can this ideal be realized").
    """

    def __init__(
        self,
        name: str,
        technology: ProcessTechnology,
        cells: Iterable[Cell] = (),
        continuous_factory=None,
    ) -> None:
        self.name = name
        self.technology = technology
        self.continuous_factory = continuous_factory
        self._cells: dict[str, Cell] = {}
        self._by_base: dict[str, list[Cell]] = {}
        for cell in cells:
            self.add(cell)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add(self, cell: Cell) -> None:
        """Register a cell; names must be unique."""
        if cell.name in self._cells:
            raise CellError(f"duplicate cell {cell.name!r} in library {self.name}")
        self._cells[cell.name] = cell
        self._by_base.setdefault(cell.base_name, []).append(cell)
        self._by_base[cell.base_name].sort(key=lambda c: c.drive)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> Cell:
        """Cell by full name.

        Raises:
            CellError: if absent, listing a few similar names.
        """
        try:
            return self._cells[name]
        except KeyError:
            base = name.split("_")[0]
            hints = [c for c in self._cells if c.startswith(base)][:5]
            raise CellError(
                f"no cell {name!r} in library {self.name}"
                + (f"; similar: {hints}" if hints else "")
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cells(self) -> dict[str, Cell]:
        return dict(self._cells)

    def bases(self) -> list[str]:
        """All function families present, sorted."""
        return sorted(self._by_base)

    def has_base(self, base_name: str) -> bool:
        return base_name in self._by_base

    def drives_of(self, base_name: str) -> list[Cell]:
        """All drive variants of one function, ascending drive order."""
        try:
            return list(self._by_base[base_name])
        except KeyError:
            raise CellError(
                f"library {self.name} has no cells of base {base_name!r}; "
                f"bases: {self.bases()}"
            ) from None

    def smallest(self, base_name: str) -> Cell:
        """Minimum-drive variant of a function."""
        return self.drives_of(base_name)[0]

    def largest(self, base_name: str) -> Cell:
        """Maximum-drive variant of a function."""
        return self.drives_of(base_name)[-1]

    def select_drive(self, base_name: str, load_ff: float) -> Cell:
        """Pick the discrete drive variant best suited to a load.

        Chooses the smallest cell whose delay-optimal load range covers
        the given load: the smallest drive with ``load <= max_load`` whose
        stage effort stays moderate, falling back to the largest cell for
        loads beyond every limit.  With a continuous factory installed,
        synthesises an exactly-sized cell instead.
        """
        if load_ff < 0:
            raise CellError("load must be non-negative")
        if self.continuous_factory is not None:
            unit_cap = self.technology.unit_input_cap_ff
            drive = max(0.25, load_ff / (4.0 * unit_cap))
            cell = self.continuous_factory(base_name, drive)
            if cell.name not in self._cells:
                self.add(cell)
            return self._cells[cell.name]
        variants = self.drives_of(base_name)
        for cell in variants:
            # Target: keep electrical effort (load / drive*Cunit) near the
            # optimal ~4 of logical-effort design.
            target = 4.0 * cell.drive * self.technology.unit_input_cap_ff
            if load_ff <= target and not cell.load_violated(load_ff):
                return cell
        for cell in variants:
            if not cell.load_violated(load_ff):
                return cell
        return variants[-1]

    # ------------------------------------------------------------------
    # Structure queries used by netlist/STA layers
    # ------------------------------------------------------------------

    def sequential_cell_names(self) -> set[str]:
        """Names of all flip-flop and latch cells (for graph cutting)."""
        return {c.name for c in self._cells.values() if c.is_sequential}

    def output_pin_map(self) -> dict[str, set[str]]:
        """Map cell name -> set of output pin names (for Verilog reading)."""
        return {c.name: {c.output} for c in self._cells.values()}

    def flip_flop(self) -> Cell:
        """The library's default flip-flop (smallest DFF variant)."""
        for base in self.bases():
            variants = self._by_base[base]
            if variants[0].kind is CellKind.FLIP_FLOP:
                return variants[0]
        raise CellError(f"library {self.name} has no flip-flop")

    def latch(self) -> Cell:
        """The library's default level-sensitive latch."""
        for base in self.bases():
            variants = self._by_base[base]
            if variants[0].kind is CellKind.LATCH:
                return variants[0]
        raise CellError(f"library {self.name} has no latch")

    def inverter(self) -> Cell:
        """The unit inverter."""
        return self.smallest("INV")

    def buffer(self) -> Cell:
        """The unit buffer."""
        return self.smallest("BUF")

    # ------------------------------------------------------------------
    # Richness metrics (Section 6)
    # ------------------------------------------------------------------

    def drive_count(self, base_name: str) -> int:
        """Number of drive variants available for a function."""
        return len(self.drives_of(base_name))

    def mean_drives_per_base(self) -> float:
        """Average drive variants per combinational function."""
        comb = [
            variants
            for variants in self._by_base.values()
            if not variants[0].is_sequential
        ]
        if not comb:
            return 0.0
        return sum(len(v) for v in comb) / len(comb)

    def has_dual_polarity(self, base_name: str) -> bool:
        """True if both polarities of a function exist (e.g. AND2 & NAND2)."""
        duals = {
            "NAND2": "AND2", "NAND3": "AND3", "NAND4": "AND4",
            "NOR2": "OR2", "NOR3": "OR3", "NOR4": "OR4",
            "XOR2": "XNOR2",
            "AND2": "NAND2", "AND3": "NAND3", "AND4": "NAND4",
            "OR2": "NOR2", "OR3": "NOR3", "OR4": "NOR4",
            "XNOR2": "XOR2",
        }
        dual = duals.get(base_name)
        return dual is not None and self.has_base(dual)

    def families(self) -> set[LogicFamily]:
        """Logic families present in the library."""
        return {c.family for c in self._cells.values()}

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        seq = len(self.sequential_cell_names())
        return (
            f"library {self.name}: {len(self)} cells, "
            f"{len(self.bases())} functions, "
            f"{self.mean_drives_per_base():.1f} drives/function, "
            f"{seq} sequential, technology {self.technology.name}"
        )
