"""Unit tests for the N-way gap decomposition (synthetic results).

The integration-level three-way analysis (real flows) lives in
``test_flows_integration.py``; here we pin the algebra and the error
paths of :func:`analyze_multi_gap` with hand-built
:class:`FlowResult` values so failures point at the gap code, not at
the flows.
"""

import pytest

from repro.core import GapError, analyze_gap, analyze_multi_gap
from repro.flows import FlowResult
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM


def _result(style, quote_factor, fo4, logic_fo4, tech=CMOS250_ASIC):
    # Internally consistent numbers: the exact decomposition rests on
    # f = quote_factor / (fo4_depth * fo4_delay), which real flows
    # satisfy by construction.
    period_ps = fo4 * tech.fo4_delay_ps
    typical = 1.0e6 / period_ps
    return FlowResult(
        name=f"{style}_alu8",
        style=style,
        technology=tech,
        library_name="rich_asic",
        typical_frequency_mhz=typical,
        quoted_frequency_mhz=typical * quote_factor,
        min_period_ps=period_ps,
        fo4_depth=fo4,
        logic_fo4=logic_fo4,
        overhead_fraction=1.0 - logic_fo4 / fo4,
        pipeline_stages=2,
        gate_count=100,
        area_um2=1000.0,
    )


@pytest.fixture()
def spectrum():
    asic = _result("asic", quote_factor=0.6, fo4=40.0, logic_fo4=30.0)
    structured = _result("structured", quote_factor=1.0,
                         fo4=28.0, logic_fo4=22.0)
    custom = _result("custom", quote_factor=1.2,
                     fo4=14.0, logic_fo4=11.0, tech=CMOS250_CUSTOM)
    return [asic, structured, custom]


class TestAnalyzeMultiGap:
    def test_pairwise_matches_two_arg_core(self, spectrum):
        gap = analyze_multi_gap(spectrum)
        for other in spectrum[1:]:
            direct = analyze_gap(spectrum[0], other)
            report = gap.report_for(other.style)
            assert report.total_ratio == direct.total_ratio
            assert report.cycle_depth_factor == direct.cycle_depth_factor
            assert report.technology_factor == direct.technology_factor
            assert report.quoting_factor == direct.quoting_factor

    def test_factor_product_identity_per_column(self, spectrum):
        gap = analyze_multi_gap(spectrum)
        for report in gap.pairwise:
            assert report.factor_product() == pytest.approx(
                report.total_ratio, rel=1e-9
            )

    def test_results_ordered_baseline_first(self, spectrum):
        gap = analyze_multi_gap(spectrum, baseline="structured")
        assert gap.styles() == ["structured", "asic", "custom"]
        assert gap.baseline.style == "structured"
        # An asic-vs-structured column inverts the structured ratio.
        assert gap.report_for("asic").total_ratio < 1.0

    def test_two_results_is_the_n2_special_case(self, spectrum):
        asic, _, custom = spectrum
        gap = analyze_multi_gap([asic, custom])
        direct = analyze_gap(asic, custom)
        assert gap.report_for("custom").total_ratio == direct.total_ratio
        assert gap.styles() == ["asic", "custom"]

    def test_report_for_unknown_or_baseline_style(self, spectrum):
        gap = analyze_multi_gap(spectrum)
        with pytest.raises(GapError, match="no pairwise report"):
            gap.report_for("asic")  # the baseline has no column
        with pytest.raises(GapError, match="no pairwise report"):
            gap.report_for("fpga")

    def test_needs_two_results(self, spectrum):
        with pytest.raises(GapError, match="at least two"):
            analyze_multi_gap(spectrum[:1])

    def test_rejects_duplicate_styles(self, spectrum):
        with pytest.raises(GapError, match="duplicate"):
            analyze_multi_gap([spectrum[0], spectrum[0]])

    def test_rejects_missing_baseline(self, spectrum):
        with pytest.raises(GapError, match="baseline"):
            analyze_multi_gap(spectrum[1:], baseline="asic")

    def test_table_has_summary_and_factor_columns(self, spectrum):
        text = analyze_multi_gap(spectrum).table()
        assert "total quoted-frequency ratio" in text
        assert "structured" in text and "custom" in text
        assert "equivalent process generations" in text

    def test_to_dict_shape(self, spectrum):
        payload = analyze_multi_gap(spectrum).to_dict()
        assert payload["baseline"] == "asic"
        assert set(payload["styles"]) == {"asic", "structured", "custom"}
        assert set(payload["pairwise"]) == {"structured", "custom"}
        column = payload["pairwise"]["custom"]
        assert column["total_ratio"] == pytest.approx(
            spectrum[2].quoted_frequency_mhz
            / spectrum[0].quoted_frequency_mhz
        )
        assert {"cycle_depth_factor", "technology_factor",
                "quoting_factor", "generations"} <= set(column)
