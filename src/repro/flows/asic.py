"""The ASIC implementation flow.

The standard-cell methodology as the paper describes it: RTL-ish entry,
mapping onto a fixed library, automatic placement, discrete post-layout
sizing, a synthesised (10%-class) clock tree, and -- crucially, Section 8
-- a worst-case-corner frequency quote rather than typical-silicon
performance.  Every lever the paper says ASICs lack is an option here so
the benchmarks can turn them on one at a time and price them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.cells.builder import poor_asic_library, rich_asic_library
from repro.datapath.alu import alu
from repro.datapath.adders import kogge_stone_adder, ripple_carry_adder
from repro.datapath.cpu import cpu_execute_stage
from repro.datapath.multiplier import array_multiplier, wallace_multiplier
from repro.flows.results import FlowError, FlowResult
from repro.netlist.module import Module
from repro.physical.placement import place
from repro.pipeline.pipeliner import pipeline_module
from repro.sizing.buffering import buffer_high_fanout
from repro.sizing.tilos import size_for_speed, total_area_um2
from repro.sta.clocking import asic_clock
from repro.sta.engine import solve_min_period
from repro.sta.fo4 import fo4_depth, fo4_logic_depth
from repro.sta.sequential import register_boundaries
from repro.tech.process import CMOS250_ASIC, ProcessTechnology
from repro.variation.binning import asic_worst_case_quote, speed_tested_quote
from repro.variation.components import MATURE_PROCESS
from repro.variation.montecarlo import sample_chip_speeds

#: Named workload generators: (callable(bits, library), description).
WORKLOADS = {
    "alu": lambda bits, lib: alu(bits, lib, fast_adder=False),
    "alu_macro": lambda bits, lib: alu(bits, lib, fast_adder=True),
    "adder_ripple": ripple_carry_adder,
    "adder_kogge_stone": kogge_stone_adder,
    "multiplier_array": array_multiplier,
    "multiplier_wallace": wallace_multiplier,
    "cpu": lambda bits, lib: cpu_execute_stage(bits, lib, fast_adder=False),
    "cpu_macro": lambda bits, lib: cpu_execute_stage(
        bits, lib, fast_adder=True
    ),
}


@dataclass(frozen=True)
class AsicFlowOptions:
    """Knobs of the ASIC flow.

    Attributes:
        workload: one of :data:`WORKLOADS`.
        bits: datapath width.
        pipeline_stages: 1 = registered boundaries only.
        rich_library: rich vs two-drive impoverished library (Section 6).
        careful_placement: good floorplanning/placement vs scatter
            (Section 5).
        sizing_moves: post-layout resizing budget (Section 6.2; 0 = skip).
        speed_test: at-speed test instead of worst-case quote (Sec. 8.3).
        seed: placement RNG seed.
    """

    workload: str = "alu"
    bits: int = 8
    pipeline_stages: int = 1
    rich_library: bool = True
    careful_placement: bool = True
    sizing_moves: int = 30
    speed_test: bool = False
    seed: int = 1


def run_asic_flow(
    options: AsicFlowOptions = AsicFlowOptions(),
    tech: ProcessTechnology = CMOS250_ASIC,
) -> FlowResult:
    """Run the full ASIC flow and return its result record.

    Raises:
        FlowError: for unknown workloads or inconsistent options.
    """
    if options.workload not in WORKLOADS:
        raise FlowError(
            f"unknown workload {options.workload!r}; "
            f"known: {sorted(WORKLOADS)}"
        )
    with obs.span("flow.asic", workload=options.workload,
                  bits=options.bits) as flow_span:
        with obs.span("flow.asic.map") as sp:
            library = (
                rich_asic_library(tech)
                if options.rich_library
                else poor_asic_library(tech)
            )
            comb = WORKLOADS[options.workload](options.bits, library)

            if options.pipeline_stages > 1:
                report = pipeline_module(
                    comb, library, options.pipeline_stages
                )
                module = report.module
                stages = report.stages
            else:
                module = register_boundaries(comb, library)
                stages = 1
            sp.set(cells=module.instance_count(), stages=stages,
                   library=library.name)

        with obs.span("flow.asic.place") as sp:
            quality = "careful" if options.careful_placement else "sloppy"
            placement = place(
                module, library, quality=quality, seed=options.seed
            )
            wire = placement.parasitics(library)
            sp.set(quality=quality,
                   wirelength_um=placement.total_wirelength_um())

        notes: dict[str, float] = {
            "wirelength_um": placement.total_wirelength_um(),
        }
        with obs.span("flow.asic.cts") as sp:
            if library.has_base("BUF"):
                buffered = buffer_high_fanout(module, library, max_fanout=10)
                notes["buffers_added"] = float(buffered.buffers_added)
                sp.set(buffers_added=buffered.buffers_added)
            clock = asic_clock(20.0 * tech.fo4_delay_ps)
            sp.set(skew_fraction=clock.skew_fraction)

        with obs.span("flow.asic.size") as sp:
            if options.sizing_moves > 0:
                sizing = size_for_speed(
                    module, library, clock, wire=wire,
                    max_moves=options.sizing_moves,
                )
                notes["sizing_moves"] = float(sizing.moves)
                notes["sizing_speedup"] = sizing.speedup
                sp.set(moves=sizing.moves, speedup=sizing.speedup,
                       area_growth=sizing.area_growth)

        with obs.span("flow.asic.sta") as sp:
            timing = solve_min_period(module, library, clock, wire=wire)
            typical_mhz = timing.max_frequency_mhz
            sp.set(min_period_ps=timing.min_period_ps,
                   typical_mhz=typical_mhz)

        with obs.span("flow.asic.quote") as sp:
            dist = sample_chip_speeds(typical_mhz, MATURE_PROCESS,
                                      count=4000, seed=options.seed)
            if options.speed_test:
                quoted = speed_tested_quote(dist)
                notes["quote_method"] = 1.0  # 1 = speed tested
            else:
                quoted = asic_worst_case_quote(dist)
                notes["quote_method"] = 0.0  # 0 = worst-case corner
            sp.set(quoted_mhz=quoted)

        flow_span.set(cells=module.instance_count(),
                      min_period_ps=timing.min_period_ps,
                      quoted_mhz=quoted)

    return FlowResult(
        name=f"asic_{options.workload}{options.bits}_s{stages}",
        style="asic",
        technology=tech,
        library_name=library.name,
        typical_frequency_mhz=typical_mhz,
        quoted_frequency_mhz=quoted,
        min_period_ps=timing.min_period_ps,
        fo4_depth=fo4_depth(timing, tech),
        logic_fo4=fo4_logic_depth(timing, tech),
        overhead_fraction=timing.overhead_fraction(),
        pipeline_stages=stages,
        gate_count=module.instance_count(),
        area_um2=total_area_um2(module, library),
        notes=notes,
    )
