"""Declarative stage-graph engine behind the implementation flows.

The paper's argument is a *composition of stages* -- microarchitecture,
floorplanning, sizing, circuit style and process variation multiply into
the ASIC/custom gap -- and the flows mirror that: each flow is a
:class:`StageGraph` of first-class :class:`Stage` objects with declared
inputs/outputs over a shared :class:`FlowContext`, and one
:class:`FlowEngine` runs any graph with

* deterministic topological ordering (declaration order breaks ties, and
  a stage that rewrites a key runs after every earlier-declared reader of
  that key, so in-place netlist mutation keeps its sequencing);
* engine-level span instrumentation (``flow.<flow>`` and
  ``flow.<flow>.<stage>`` spans, replacing per-flow obs plumbing);
* engine-level degradation: stage bodies run under a
  :class:`~repro.robust.degrade.StageRunner`, failures become
  diagnostics under ``on_error="keep_going"``, and a failed stage's
  declared ``recover`` hook installs its fallback artifacts;
* per-stage result caching keyed on input fingerprints
  (:mod:`repro.flows.cache`), so sweep points sharing a stage prefix
  replay the prefix from the cache;
* checkpoint/resume: after every completed stage the context is
  snapshotted to an optional checkpoint file, and an interrupted flow
  picks up from the last snapshot (``repro-gap flow --resume``).

Fingerprints chain: a stage's fingerprint hashes its name, the
technology, the option fields it declares as ``params``, and the
fingerprints of whichever stages last wrote its inputs -- so changing a
sizing knob invalidates sizing and everything downstream while the
map/place prefix keeps hitting.
"""

from __future__ import annotations

import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

import os

from repro import obs
from repro.obs import ledger as run_ledger
from repro.obs import live as obs_live
from repro.obs import profile as obs_profile
from repro.flows import cache as stage_cache
from repro.flows.options import FlowOptions, digest, options_fingerprint
from repro.flows.results import FlowError, StageRecord
from repro.robust.degrade import StageRunner
from repro.robust.faults import maybe_trip
from repro.robust.validate import Diagnostic
from repro.tech.process import ProcessTechnology

#: Fingerprint-scheme version; bump to invalidate every existing cache.
FINGERPRINT_VERSION = 1

#: Checkpoint file format version.
CHECKPOINT_VERSION = 1


class FlowContext:
    """Typed shared state one flow run threads through its stages.

    Artifacts (netlist, library, placement, parasitics, timing...) live
    in a key/value store the stages read and write through their
    declared inputs/outputs; ``notes`` is the scalar annotation dict
    that ends up on :class:`~repro.flows.results.FlowResult`.

    Attributes:
        flow: flow label (``"asic"`` / ``"custom"``).
        options: the option record of the run.
        tech: process technology of the run.
        artifacts: named stage products.
        notes: scalar annotations for the result record.
        stage_records: per-stage execution records, in run order.
        diagnostics: structured findings (filled from the stage runner).
        span: the live span of the currently executing stage (engine-set;
            a no-op object when observability is off).
    """

    def __init__(self, flow: str, options: FlowOptions,
                 tech: ProcessTechnology) -> None:
        self.flow = flow
        self.options = options
        self.tech = tech
        self.artifacts: dict[str, Any] = {}
        self.notes: dict[str, float] = {}
        self.stage_records: list[StageRecord] = []
        self.diagnostics: list[Diagnostic] = []
        self.span = obs.NOOP_SPAN
        self._runner: StageRunner | None = None
        self._stage: str | None = None

    def __getitem__(self, key: str) -> Any:
        try:
            return self.artifacts[key]
        except KeyError:
            stage = f" (stage {self._stage!r})" if self._stage else ""
            raise FlowError(
                f"flow context has no artifact {key!r}{stage}; "
                f"present: {sorted(self.artifacts)}",
                stage=self._stage,
            ) from None

    def __setitem__(self, key: str, value: Any) -> None:
        self.artifacts[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.artifacts

    def get(self, key: str, default: Any = None) -> Any:
        return self.artifacts.get(key, default)

    @property
    def keep_going(self) -> bool:
        """Whether the run degrades through failures instead of raising."""
        return self._runner is not None and self._runner.keep_going

    def note(self, message: str, hint: str = "") -> None:
        """Record a non-fatal warning against the current stage."""
        if self._runner is not None and self._stage is not None:
            self._runner.note(self._stage, message, hint=hint)


@dataclass(frozen=True)
class Stage:
    """One first-class flow stage.

    Attributes:
        name: stage name (span suffix, checkpoint key, CLI argument).
        run: stage body; reads/writes ``ctx`` artifacts and notes, may
            set span attributes through ``ctx.span``.
        inputs: artifact keys the stage reads (dependency edges).
        outputs: artifact keys the stage writes; a key in both inputs
            and outputs marks in-place mutation and sequences the stage
            after earlier-declared readers.
        params: option-field names that feed the stage's fingerprint.
        critical: the flow cannot continue without this stage; failures
            raise even under ``keep_going``.
        cacheable: snapshot the outputs under the input fingerprint.
        recover: fallback installed when the stage fails under
            ``keep_going`` (e.g. clock-period timing after an STA loss).
    """

    name: str
    run: Callable[[FlowContext], None]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    params: tuple[str, ...] = ()
    critical: bool = False
    cacheable: bool = True
    recover: Callable[[FlowContext], None] | None = None


class StageGraph:
    """A named, declaratively ordered set of stages.

    Args:
        flow: flow label; span names are ``flow.<flow>.<stage>``.
        stages: the stage set, in declaration order (used as the
            deterministic tie-break of the topological order).
        hooks: optional per-stage callbacks ``(ctx, runner) -> None``
            run after the named stage completes (also on cache hits and
            recovered failures) -- the engine-level guard hook, e.g. the
            post-CTS pre-flight lint.
        root_attrs: attributes for the flow-level span.
        summary_attrs: attributes set on the flow-level span at the end.
    """

    def __init__(
        self,
        flow: str,
        stages: Sequence[Stage],
        hooks: Mapping[str, Callable[[FlowContext, StageRunner], None]]
        | None = None,
        root_attrs: Callable[[FlowContext], dict] | None = None,
        summary_attrs: Callable[[FlowContext], dict] | None = None,
    ) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise FlowError(f"duplicate stage names in {flow!r} graph: "
                            f"{names}")
        self.flow = flow
        self.stages = tuple(stages)
        self.hooks = dict(hooks or {})
        self.root_attrs = root_attrs or (lambda ctx: {})
        self.summary_attrs = summary_attrs or (lambda ctx: {})
        unknown = set(self.hooks) - set(names)
        if unknown:
            raise FlowError(
                f"hooks reference unknown stages: {sorted(unknown)}"
            )
        self._order = self._topological_order()

    def _edges(self) -> dict[int, set[int]]:
        """Dependency edges between stage declaration indices.

        Producer-before-consumer for every input key, plus
        anti-dependencies: a stage that (re)writes a key runs after the
        key's previous producer and after every earlier-declared reader,
        so in-place mutation cannot leapfrog a reader of the old value.

        A consumer's producer is the last one declared before it; a
        consumer declared ahead of every producer of its key reads the
        first-declared one (the original value -- any rewrite is
        sequenced after it by the reader anti-dependency).  Keys nobody
        produces are external seeds and add no edge.
        """
        edges: dict[int, set[int]] = {i: set() for i in
                                      range(len(self.stages))}
        first_producer: dict[str, int] = {}
        for index, stage in enumerate(self.stages):
            for key in stage.outputs:
                first_producer.setdefault(key, index)
        producer: dict[str, int] = {}
        readers: dict[str, list[int]] = {}
        for index, stage in enumerate(self.stages):
            for key in stage.inputs:
                source = producer.get(key, first_producer.get(key))
                if source is not None and source != index:
                    edges[source].add(index)
            for key in stage.outputs:
                if key in producer and producer[key] != index:
                    edges[producer[key]].add(index)
                if first_producer[key] != index:
                    # A rewriter, not the original producer: earlier
                    # readers see the old value, so they run first.
                    for reader in readers.get(key, ()):
                        if reader != index:
                            edges[reader].add(index)
            for key in stage.inputs:
                readers.setdefault(key, []).append(index)
            for key in stage.outputs:
                producer[key] = index
        for index in edges:
            edges[index].discard(index)
        return edges

    def _topological_order(self) -> tuple[Stage, ...]:
        """Deterministic Kahn ordering; declaration index breaks ties."""
        edges = self._edges()
        indegree = {i: 0 for i in range(len(self.stages))}
        for targets in edges.values():
            for target in targets:
                indegree[target] += 1
        ready = sorted(i for i, deg in indegree.items() if deg == 0)
        order: list[Stage] = []
        while ready:
            index = ready.pop(0)
            order.append(self.stages[index])
            inserted = False
            for target in sorted(edges[index]):
                indegree[target] -= 1
                if indegree[target] == 0:
                    ready.append(target)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self.stages):
            stuck = sorted(
                self.stages[i].name for i, deg in indegree.items()
                if deg > 0
            )
            raise FlowError(
                f"stage graph {self.flow!r} has a dependency cycle "
                f"through: {stuck}"
            )
        return tuple(order)

    def order(self) -> tuple[Stage, ...]:
        """Stages in execution order (computed once, deterministic)."""
        return self._order

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self._order]

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._order)

    def get(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise FlowError(
            f"unknown stage {name!r} in {self.flow!r} flow; "
            f"known: {self.stage_names()}"
        )

    def describe(self) -> str:
        """Human-readable table of the graph (``--list-stages``)."""
        lines = [f"{self.flow} flow stages (execution order):"]
        for stage in self._order:
            flags = []
            if stage.critical:
                flags.append("critical")
            if stage.cacheable:
                flags.append("cacheable")
            if stage.recover is not None:
                flags.append("recoverable")
            lines.append(
                f"  {stage.name:<8s} in: {', '.join(stage.inputs) or '-':<32s}"
                f" out: {', '.join(stage.outputs) or '-'}"
            )
            lines.append(
                f"  {'':<8s} params: {', '.join(stage.params) or '-'}"
                f"   [{', '.join(flags) or '-'}]"
            )
        return "\n".join(lines)


def stage_fingerprint(
    graph: StageGraph,
    stage: Stage,
    options: FlowOptions,
    tech: ProcessTechnology,
    key_fingerprints: Mapping[str, str],
) -> str:
    """Fingerprint of one stage invocation.

    Hashes the stage identity, the technology, the declared option
    params, and -- recursively, through ``key_fingerprints`` -- the
    fingerprints of whichever stages last wrote this stage's inputs.
    An input no stage has produced hashes as an external seed key.
    """
    payload = {
        "v": FINGERPRINT_VERSION,
        "flow": graph.flow,
        "stage": stage.name,
        "tech": tech.name,
        "params": {name: getattr(options, name) for name in stage.params},
        "upstream": {
            key: key_fingerprints.get(key, f"seed:{key}")
            for key in stage.inputs
        },
    }
    return digest(payload)


@dataclass
class _Snapshot:
    """Post-stage context snapshot stored in a checkpoint file."""

    stage: str
    record: StageRecord
    blob: bytes  # pickle of (artifacts, notes, diagnostics)


@dataclass
class _Checkpoint:
    """On-disk resume state of one flow run."""

    flow: str
    options_fp: str
    snapshots: list[_Snapshot] = field(default_factory=list)

    def stage_names(self) -> list[str]:
        return [snap.stage for snap in self.snapshots]

    def save(self, path: str) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "flow": self.flow,
            "options_fp": self.options_fp,
            "snapshots": self.snapshots,
        }
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "_Checkpoint":
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise FlowError(
                f"cannot load flow checkpoint {path!r}: {exc}"
            ) from exc
        if payload.get("version") != CHECKPOINT_VERSION:
            raise FlowError(
                f"checkpoint {path!r} has version "
                f"{payload.get('version')!r}; expected "
                f"{CHECKPOINT_VERSION}"
            )
        return cls(
            flow=payload["flow"],
            options_fp=payload["options_fp"],
            snapshots=list(payload["snapshots"]),
        )


class FlowEngine:
    """Runs a :class:`StageGraph` with caching, degradation and resume.

    Args:
        graph: the stage graph to execute.
        cache: stage cache override (None = the process-global cache of
            :mod:`repro.flows.cache`, honouring its enable switch).
    """

    def __init__(self, graph: StageGraph,
                 cache: stage_cache.StageCache | None = None) -> None:
        self.graph = graph
        self._cache = cache

    def _active_cache(self) -> stage_cache.StageCache | None:
        if self._cache is not None:
            return self._cache
        if stage_cache.enabled():
            return stage_cache.get_cache()
        return None

    def run(
        self,
        options: FlowOptions,
        tech: ProcessTechnology,
        checkpoint: str | None = None,
        resume: bool = False,
        from_stage: str | None = None,
        until: str | None = None,
    ) -> FlowContext:
        """Execute the graph and return the final context.

        Args:
            options: flow options (policy fields drive degradation and
                fault injection; the rest drive fingerprints).
            tech: process technology.
            checkpoint: path to snapshot the context to after every
                completed stage (also the resume source).
            resume: restore the longest usable prefix from
                ``checkpoint`` instead of recomputing it.
            from_stage: with ``resume``, re-run from this stage even if
                the checkpoint already covers it.
            until: stop after this stage (later stages are recorded as
                skipped); the partial context is checkpointed, so a
                later ``resume`` completes the flow.

        Raises:
            FlowError: unknown stage names, checkpoint mismatches, or --
                under ``on_error="raise"`` -- any stage failure.
        """
        order = self.graph.order()
        names = [stage.name for stage in order]
        if until is not None and until not in names:
            raise FlowError(f"unknown --until stage {until!r}; "
                            f"known: {names}")
        if from_stage is not None and from_stage not in names:
            raise FlowError(f"unknown --from stage {from_stage!r}; "
                            f"known: {names}")
        if from_stage is not None and not resume:
            raise FlowError("--from requires resuming from a checkpoint")
        if resume and not checkpoint:
            raise FlowError("resume requested without a checkpoint path")

        runner = StageRunner(flow=self.graph.flow, on_error=options.on_error)
        ctx = FlowContext(self.graph.flow, options, tech)
        ctx._runner = runner
        options_fp = options_fingerprint(options)
        state = _Checkpoint(flow=self.graph.flow, options_fp=options_fp)

        completed: list[str] = []
        if resume:
            state = self._load_resume_state(
                checkpoint, options_fp, names, from_stage
            )
            completed = state.stage_names()
            if state.snapshots:
                artifacts, notes, diagnostics = pickle.loads(
                    state.snapshots[-1].blob
                )
                ctx.artifacts.update(artifacts)
                ctx.notes.update(notes)
                runner.diagnostics.extend(diagnostics)

        key_fps: dict[str, str] = {}
        cache = self._active_cache() if options.fault is None else None
        stop_index = names.index(until) if until is not None else None

        run_started = time.perf_counter()
        with obs.span(f"flow.{self.graph.flow}",
                      **self.graph.root_attrs(ctx)) as flow_span:
            for index, stage in enumerate(order):
                fp = stage_fingerprint(
                    self.graph, stage, options, tech, key_fps
                )
                if stage.name in completed:
                    snap = state.snapshots[completed.index(stage.name)]
                    ctx.stage_records.append(StageRecord(
                        name=stage.name, status="resumed",
                        wall_s=snap.record.wall_s,
                        cache_hit=True, fingerprint=fp,
                    ))
                    obs_live.emit(
                        "stage.done", f"flow.{ctx.flow}.{stage.name}",
                        flow=ctx.flow, stage=stage.name, status="resumed",
                        cache_hit=True,
                    )
                    for key in stage.outputs:
                        key_fps[key] = fp
                    # Hooks already ran before the snapshot's successor
                    # was written; re-running them would duplicate their
                    # diagnostics.
                    continue
                if stop_index is not None and index > stop_index:
                    ctx.stage_records.append(StageRecord(
                        name=stage.name, status="skipped", wall_s=0.0,
                        cache_hit=False, fingerprint=fp,
                    ))
                    obs_live.emit(
                        "stage.done", f"flow.{ctx.flow}.{stage.name}",
                        flow=ctx.flow, stage=stage.name, status="skipped",
                        cache_hit=False,
                    )
                    continue
                obs_live.emit(
                    "stage.start", f"flow.{ctx.flow}.{stage.name}",
                    flow=ctx.flow, stage=stage.name, index=index,
                    total=len(order),
                )
                record = self._run_stage(ctx, runner, stage, fp, cache)
                obs_live.emit(
                    "stage.done", f"flow.{ctx.flow}.{stage.name}",
                    flow=ctx.flow, stage=stage.name, status=record.status,
                    wall_s=record.wall_s, cache_hit=record.cache_hit,
                )
                for key in stage.outputs:
                    key_fps[key] = fp
                hook = self.graph.hooks.get(stage.name)
                if hook is not None:
                    hook(ctx, runner)
                self._checkpoint(ctx, state, stage, record, checkpoint)
            flow_span.set(**self.graph.summary_attrs(ctx))

        ctx.diagnostics = runner.diagnostics
        # Finalizer hook: every completed engine run leaves one ledger
        # record (a single flag check when recording is off).
        if run_ledger.enabled():
            run_ledger.record(run_ledger.flow_record(
                ctx, tech, wall_s=time.perf_counter() - run_started,
                root_span=flow_span if isinstance(flow_span, obs.Span)
                else None,
            ))
        return ctx

    def _load_resume_state(
        self,
        checkpoint: str,
        options_fp: str,
        names: list[str],
        from_stage: str | None,
    ) -> _Checkpoint:
        state = _Checkpoint.load(checkpoint)
        if state.flow != self.graph.flow:
            raise FlowError(
                f"checkpoint {checkpoint!r} is for flow "
                f"{state.flow!r}, not {self.graph.flow!r}"
            )
        if state.options_fp != options_fp:
            raise FlowError(
                f"checkpoint {checkpoint!r} was written for a different "
                f"design point (options fingerprint {state.options_fp} "
                f"!= {options_fp}); refusing to resume"
            )
        done = state.stage_names()
        if done != names[:len(done)]:
            raise FlowError(
                f"checkpoint stages {done} are not a prefix of the "
                f"graph's order {names}; the graph changed -- re-run "
                "from scratch"
            )
        if from_stage is not None:
            cut = names.index(from_stage)
            state.snapshots = [
                snap for snap in state.snapshots
                if names.index(snap.stage) < cut
            ]
        return state

    def _run_stage(
        self,
        ctx: FlowContext,
        runner: StageRunner,
        stage: Stage,
        fp: str,
        cache: stage_cache.StageCache | None,
    ) -> StageRecord:
        """Run (or replay from cache) one stage; returns its record."""
        options = ctx.options
        use_cache = (
            cache is not None and stage.cacheable
            and not runner.failed_stages
        )
        started = time.perf_counter()
        if use_cache:
            payload = cache.get(fp)
            if payload is not None:
                ctx.artifacts.update(payload["artifacts"])
                ctx.notes.update(payload["notes"])
                with obs.span(f"flow.{ctx.flow}.{stage.name}",
                              cached=True):
                    pass
                obs.count("flows.engine.cache_hits", stage=stage.name)
                obs_live.emit(
                    "stage.cache", f"flow.{ctx.flow}.{stage.name}",
                    flow=ctx.flow, stage=stage.name, fingerprint=fp,
                )
                record = StageRecord(
                    name=stage.name, status="cached",
                    wall_s=time.perf_counter() - started,
                    cache_hit=True, fingerprint=fp,
                )
                ctx.stage_records.append(record)
                return record

        diagnostics_before = len(runner.diagnostics)
        notes_before = dict(ctx.notes)
        ctx._stage = stage.name
        probe = obs_profile.stage_probe()
        try:
            with runner.stage(stage.name, critical=stage.critical):
                with obs.span(f"flow.{ctx.flow}.{stage.name}") as sp:
                    ctx.span = sp
                    with probe:
                        maybe_trip(options.fault, stage.name)
                        stage.run(ctx)
                    if probe.active:
                        sp.set(**probe.span_attrs())
        finally:
            ctx.span = obs.NOOP_SPAN
            ctx._stage = None
        wall_s = time.perf_counter() - started

        if runner.failed(stage.name):
            if stage.recover is not None:
                stage.recover(ctx)
            record = StageRecord(
                name=stage.name, status="failed", wall_s=wall_s,
                cache_hit=False, fingerprint=fp,
                cpu_s=probe.cpu_s, peak_mem_kb=probe.peak_mem_kb,
            )
            ctx.stage_records.append(record)
            return record

        record = StageRecord(
            name=stage.name, status="ok", wall_s=wall_s,
            cache_hit=False, fingerprint=fp,
            cpu_s=probe.cpu_s, peak_mem_kb=probe.peak_mem_kb,
        )
        ctx.stage_records.append(record)
        clean = len(runner.diagnostics) == diagnostics_before
        if use_cache and clean:
            notes_delta = {
                key: value for key, value in ctx.notes.items()
                if key not in notes_before or notes_before[key] != value
            }
            cache.put(fp, {
                "artifacts": {
                    key: ctx.artifacts[key] for key in stage.outputs
                    if key in ctx.artifacts
                },
                "notes": notes_delta,
            })
        return record

    def _checkpoint(
        self,
        ctx: FlowContext,
        state: _Checkpoint,
        stage: Stage,
        record: StageRecord,
        checkpoint: str | None,
    ) -> None:
        if checkpoint is None:
            return
        blob = pickle.dumps((
            ctx.artifacts, ctx.notes,
            ctx._runner.diagnostics if ctx._runner else [],
        ))
        state.snapshots.append(
            _Snapshot(stage=stage.name, record=record, blob=blob)
        )
        try:
            state.save(checkpoint)
        except OSError as exc:
            raise FlowError(
                f"cannot write flow checkpoint {checkpoint!r}: {exc}"
            ) from exc
