"""Array STA engine: batched Monte Carlo and analysis throughput.

The vectorized engine's whole claim is wall time without any numeric
drift: one compiled level sweep replaces a Python propagation, and a
10k-sample Monte Carlo runs as chunked matrix passes instead of 10k
sequential propagations.  This benchmark prices both against the object
engine -- the batched MC must be at least 10x faster AND bit-for-bit
identical to the sequential sampler, and a 25-clock analysis sweep
through one compiled ``clock_analyzer`` must beat 25 object analyses.

Wall times land in ``BENCH_paperbench.json`` as
``bench.sta_array.mc_batched.s`` / ``bench.sta_array.mc_sequential.s``
/ ``bench.sta_array.analyze_array.s`` / ``bench.sta_array
.analyze_object.s``.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from paperbench import record_wall, report, row, run_once

from repro.cells import rich_asic_library
from repro.flows.asic import WORKLOADS
from repro.sta import (
    analyze,
    asic_clock,
    monte_carlo_min_period,
    register_boundaries,
)
from repro.sta.array import clock_analyzer
from repro.tech import CMOS250_ASIC

MC_SAMPLES = 10_000
ANALYSIS_CLOCKS = 25


def _measure():
    library = rich_asic_library(CMOS250_ASIC)
    module = register_boundaries(WORKLOADS["alu"](8, library), library)
    clock = asic_clock(2000.0)

    start = time.perf_counter()
    batched = monte_carlo_min_period(
        module, library, clock, samples=MC_SAMPLES, seed=17
    )
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    sequential = monte_carlo_min_period(
        module, library, clock, samples=MC_SAMPLES, seed=17, batched=False
    )
    sequential_s = time.perf_counter() - start

    run = clock_analyzer(module, library)
    periods = [1500.0 + 23.0 * i for i in range(ANALYSIS_CLOCKS)]
    start = time.perf_counter()
    array_reports = [run(clock.with_period(p)) for p in periods]
    analyze_array_s = time.perf_counter() - start

    start = time.perf_counter()
    object_reports = [
        analyze(module, library, clock.with_period(p)) for p in periods
    ]
    analyze_object_s = time.perf_counter() - start

    return (batched, sequential, batched_s, sequential_s,
            array_reports, object_reports, analyze_array_s,
            analyze_object_s)


def test_sta_array(benchmark):
    (batched, sequential, batched_s, sequential_s, array_reports,
     object_reports, analyze_array_s, analyze_object_s) = run_once(
        benchmark, _measure
    )
    record_wall("sta_array.mc_batched", batched_s)
    record_wall("sta_array.mc_sequential", sequential_s)
    record_wall("sta_array.analyze_array", analyze_array_s)
    record_wall("sta_array.analyze_object", analyze_object_s)

    # Speed without drift: the batched population is the sequential one.
    assert np.array_equal(batched, sequential)
    for fast, slow in zip(array_reports, object_reports):
        assert fast.min_period_ps == slow.min_period_ps

    mc_speedup = sequential_s / batched_s
    analyze_speedup = analyze_object_s / analyze_array_s
    print()
    print(f"{MC_SAMPLES}-sample MC: batched {batched_s:.3f} s vs "
          f"sequential {sequential_s:.3f} s ({mc_speedup:.1f}x, "
          f"bitwise identical)")
    print(f"{ANALYSIS_CLOCKS}-clock analysis sweep: compiled "
          f"{analyze_array_s:.3f} s vs object {analyze_object_s:.3f} s "
          f"({analyze_speedup:.1f}x)")

    rows = [
        row("batched 10k-sample Monte Carlo speedup", ">= 10x",
            mc_speedup, 10.0, 10000.0, fmt="{:.1f}x"),
        row("compiled multi-clock analysis speedup", ">= 2x",
            analyze_speedup, 2.0, 10000.0, fmt="{:.1f}x"),
    ]
    report("S2  Vectorized array STA (engine)", rows)
    for entry in rows:
        assert entry.ok, entry
