"""Hypothesis property tests for the netlist substrate.

The generator builds random DAG-shaped netlists; the properties assert the
invariants every downstream tool relies on: single drivership, index
consistency, acyclicity of generated DAGs, level monotonicity, clone
fidelity and Verilog round-tripping.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    Module,
    from_verilog,
    instance_graph,
    levelize,
    logic_depth,
    to_verilog,
    topological_order,
)

CELLS = {
    "INV_X1": 1,
    "BUF_X2": 1,
    "NAND2_X1": 2,
    "NOR2_X1": 2,
    "NAND3_X1": 3,
}
OUTPUT_PINS = {name: {"Y"} for name in CELLS}
PIN_NAMES = ["A", "B", "C"]


@st.composite
def random_dag_module(draw) -> Module:
    """A random acyclic netlist: gate i only reads nets produced earlier."""
    n_inputs = draw(st.integers(min_value=1, max_value=4))
    n_gates = draw(st.integers(min_value=1, max_value=25))
    m = Module("rand")
    available = [m.add_input(f"in{i}") for i in range(n_inputs)]
    for g in range(n_gates):
        cell = draw(st.sampled_from(sorted(CELLS)))
        arity = CELLS[cell]
        picks = [
            available[draw(st.integers(min_value=0, max_value=len(available) - 1))]
            for _ in range(arity)
        ]
        out = f"w{g}"
        m.add_instance(
            f"g{g}",
            cell,
            inputs={PIN_NAMES[i]: net for i, net in enumerate(picks)},
            outputs={"Y": out},
        )
        available.append(out)
    m.add_output("out")
    m.add_instance("sink", "BUF_X2", inputs={"A": available[-1]}, outputs={"Y": "out"})
    return m


@settings(max_examples=60, deadline=None)
@given(random_dag_module())
def test_generated_modules_are_well_formed(m: Module):
    assert m.check() == []


@settings(max_examples=60, deadline=None)
@given(random_dag_module())
def test_every_net_has_at_most_one_driver(m: Module):
    for net in m.nets.values():
        drivers = [net.driver] if net.driver is not None else []
        assert len(drivers) <= 1


@settings(max_examples=60, deadline=None)
@given(random_dag_module())
def test_topological_order_is_a_permutation_respecting_edges(m: Module):
    order = topological_order(m)
    assert sorted(order) == sorted(m.instances)
    pos = {name: i for i, name in enumerate(order)}
    graph = instance_graph(m)
    for u, v in graph.edges:
        assert pos[u] < pos[v]


@settings(max_examples=60, deadline=None)
@given(random_dag_module())
def test_levels_bound_depth(m: Module):
    levels = levelize(m)
    depth = logic_depth(m)
    assert depth == max(levels.values()) + 1
    graph = instance_graph(m)
    for u, v in graph.edges:
        assert levels[v] >= levels[u] + 1


@settings(max_examples=60, deadline=None)
@given(random_dag_module())
def test_clone_preserves_structure(m: Module):
    c = m.clone()
    assert c.cell_counts() == m.cell_counts()
    assert set(c.nets) == set(m.nets)
    assert logic_depth(c) == logic_depth(m)


@settings(max_examples=40, deadline=None)
@given(random_dag_module())
def test_verilog_round_trip(m: Module):
    text = to_verilog(m)
    back = from_verilog(text, OUTPUT_PINS)
    assert back.name == m.name
    assert back.cell_counts() == m.cell_counts()
    assert set(back.nets) == set(m.nets)
    assert logic_depth(back) == logic_depth(m)
    for name, inst in m.instances.items():
        other = back.instance(name)
        assert other.inputs == inst.inputs
        assert other.outputs == inst.outputs
