"""Observability: tracing, metrics, and profiling for the flow stack.

The reproduction's measurement layer.  Flow stages, the STA engine, the
sizers, and the Monte Carlo sampler all emit spans and metrics through
the module-level helpers here; ``repro-gap --profile``, ``--trace`` and
``repro-gap stats`` surface them.  Disabled by default, and a single
flag check when disabled, so the instrumented hot paths stay at seed
speed unless someone is looking.
"""

from repro.obs.clock import MONOTONIC, TickClock
from repro.obs.export import (
    metrics_to_flat,
    report,
    span_to_dict,
    trace_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.instrument import (
    NOOP_SPAN,
    count,
    disable,
    enable,
    enabled,
    gauge,
    get_metrics,
    get_tracer,
    observe,
    render_report,
    reset,
    span,
    traced,
)
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.regress import (
    Finding,
    RegressionReport,
    Thresholds,
)
from repro.obs.render import (
    aggregate_spans,
    render_run,
    render_span_tree,
    render_waterfall,
)
from repro.obs.trace import ObsError, Span, SpanStats, Tracer

__all__ = [
    "MONOTONIC",
    "NOOP_SPAN",
    "Counter",
    "Finding",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsError",
    "RegressionReport",
    "RunLedger",
    "RunRecord",
    "Span",
    "SpanStats",
    "Thresholds",
    "TickClock",
    "Tracer",
    "aggregate_spans",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_metrics",
    "get_tracer",
    "metrics_to_flat",
    "observe",
    "render_report",
    "render_run",
    "render_span_tree",
    "render_waterfall",
    "report",
    "reset",
    "span",
    "span_to_dict",
    "trace_to_jsonl",
    "traced",
    "write_metrics",
    "write_trace",
]
