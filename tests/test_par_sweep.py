"""Tests for the parallel sweep runner, seeding, and memoization layer.

The contracts under test: results come back in task order and are
identical for any worker count; per-task seeds depend only on (seed,
count); worker spans are adopted into the parent trace; and the memo
caches hit, miss, disable and report as specified.
"""

import numpy as np
import pytest

from repro import obs
from repro.obs import TickClock, Tracer, metrics_to_flat
from repro.par import memo
from repro.par.sweep import SweepError, run_sweep, task_seeds
from repro.variation import NEW_PROCESS, sample_chip_speeds


@pytest.fixture(autouse=True)
def _clean_obs_and_memo():
    obs.disable()
    obs.reset()
    memo.reset()
    yield
    obs.disable()
    obs.reset()
    memo.reset()


def square(x):
    """Top-level so it pickles into pool workers."""
    return x * x


def traced_square(x):
    with obs.span("worker.square", x=x):
        return x * x


class TestRunSweep:
    def test_serial_results_in_task_order(self):
        assert run_sweep(square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        tasks = list(range(20))
        serial = run_sweep(square, tasks, workers=1)
        parallel = run_sweep(square, tasks, workers=2)
        assert serial == parallel == [t * t for t in tasks]

    def test_single_task_short_circuits(self):
        assert run_sweep(square, [7], workers=8) == [49]

    def test_empty_tasks(self):
        assert run_sweep(square, [], workers=4) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(SweepError):
            run_sweep(square, [1], workers=-1)

    def test_counts_tasks_when_observed(self):
        obs.enable()
        run_sweep(square, [1, 2, 3], workers=1)
        flat = metrics_to_flat(obs.get_metrics())
        assert flat["par.sweep.runs"] == 1
        assert flat["par.sweep.tasks"] == 3

    def test_worker_spans_adopted_into_parent_trace(self):
        obs.enable()
        run_sweep(traced_square, [1, 2, 3, 4], workers=2, label="sweep.t")
        spans = obs.get_tracer().finished()
        names = [s.name for s in spans]
        assert "sweep.t" in names
        workers = [s for s in spans if s.name == "worker.square"]
        assert len(workers) == 4
        sweep = next(s for s in spans if s.name == "sweep.t")
        # Adopted roots hang under the (already finished) sweep span's
        # parent chain -- every worker span must be re-rooted, not lost.
        assert all(w.depth >= sweep.depth for w in workers)


class TestTaskSeeds:
    def test_deterministic(self):
        assert task_seeds(42, 8) == task_seeds(42, 8)

    def test_distinct_per_task_and_seed(self):
        seeds = task_seeds(42, 8)
        assert len(set(seeds)) == 8
        assert task_seeds(43, 8) != seeds

    def test_prefix_stability(self):
        # Spawned children are positional: the first k of a longer
        # schedule equal the k-schedule.
        assert task_seeds(7, 16)[:4] == task_seeds(7, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(SweepError):
            task_seeds(1, -1)


class TestMonteCarloSweep:
    def test_population_independent_of_workers(self):
        one = sample_chip_speeds(400.0, NEW_PROCESS, count=20000, seed=5,
                                 workers=1)
        two = sample_chip_speeds(400.0, NEW_PROCESS, count=20000, seed=5,
                                 workers=2)
        assert np.array_equal(one.frequencies_mhz, two.frequencies_mhz)

    def test_population_depends_on_seed(self):
        one = sample_chip_speeds(400.0, NEW_PROCESS, count=4000, seed=5)
        other = sample_chip_speeds(400.0, NEW_PROCESS, count=4000, seed=6)
        assert not np.array_equal(one.frequencies_mhz,
                                  other.frequencies_mhz)

    def test_population_finite_and_sorted(self):
        dist = sample_chip_speeds(400.0, NEW_PROCESS, count=9000, seed=1)
        freqs = dist.frequencies_mhz
        assert np.all(np.isfinite(freqs))
        assert np.all(np.diff(freqs) >= 0)
        assert len(freqs) == 9000


class TestMemo:
    def test_arc_eval_hits_on_repeat(self):
        class Arc:
            def delay_ps(self, load_ff, slew_ps):
                return load_ff + 1.0

            def output_slew_ps(self, load_ff, slew_ps):
                return slew_ps + 2.0

        arc = Arc()
        first = memo.arc_eval(arc, 3.0, 4.0)
        second = memo.arc_eval(arc, 3.0, 4.0)
        assert first == second == (4.0, 6.0)
        stats = memo.stats()["sta.arc"]
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_arc_identity_guard_survives_id_reuse(self):
        class Arc:
            def __init__(self, base):
                self.base = base

            def delay_ps(self, load_ff, slew_ps):
                return self.base

            def output_slew_ps(self, load_ff, slew_ps):
                return self.base

        a = Arc(1.0)
        assert memo.arc_eval(a, 0.0, 0.0) == (1.0, 1.0)
        b = Arc(2.0)  # even if id(b) == id(a), entry[0] is not b
        del a
        assert memo.arc_eval(b, 0.0, 0.0) == (2.0, 2.0)

    def test_nan_key_never_hits(self):
        class Arc:
            calls = 0

            def delay_ps(self, load_ff, slew_ps):
                Arc.calls += 1
                return load_ff

            def output_slew_ps(self, load_ff, slew_ps):
                return slew_ps

        arc = Arc()
        # Fresh NaN objects, as arithmetic would produce: the tuple-key
        # identity shortcut can't apply, and NaN != NaN means no hit.
        memo.arc_eval(arc, float("nan"), 1.0)
        memo.arc_eval(arc, float("nan"), 1.0)
        assert Arc.calls == 2

    def test_disable_clears_and_bypasses(self):
        class Arc:
            calls = 0

            def delay_ps(self, load_ff, slew_ps):
                Arc.calls += 1
                return load_ff

            def output_slew_ps(self, load_ff, slew_ps):
                return slew_ps

        arc = Arc()
        memo.arc_eval(arc, 1.0, 1.0)
        memo.set_enabled(False)
        try:
            memo.arc_eval(arc, 1.0, 1.0)
            assert Arc.calls == 2
            assert memo.stats()["sta.arc"]["size"] == 0
        finally:
            memo.set_enabled(True)

    def test_memoized_function_counts(self):
        calls = []

        @memo.memoized("sizing.le")
        def f(x):
            calls.append(x)
            return x * 10

        assert f(1) == 10
        assert f(1) == 10
        assert calls == [1]
        stats = memo.stats()["sizing.le"]
        assert stats["hits"] >= 1

    def test_memoized_unhashable_falls_through(self):
        @memo.memoized("sizing.joint")
        def g(xs):
            return sum(xs)

        assert g([1, 2]) == 3
        assert g([1, 2]) == 3  # unhashable arg: plain calls, no cache

    def test_publish_exports_gauges(self):
        obs.enable()
        class Arc:
            def delay_ps(self, load_ff, slew_ps):
                return 1.0

            def output_slew_ps(self, load_ff, slew_ps):
                return 1.0

        arc = Arc()
        memo.arc_eval(arc, 1.0, 1.0)
        memo.arc_eval(arc, 1.0, 1.0)
        memo.publish()
        flat = metrics_to_flat(obs.get_metrics())
        assert flat["par.memo.sta.arc.hits"] == 1.0
        assert flat["par.memo.sta.arc.hit_rate"] == 0.5


class TestTracerAdopt:
    def test_adopt_reindexes_and_reroots(self):
        worker = Tracer(clock=TickClock())
        with worker.span("w.outer"):
            with worker.span("w.inner"):
                pass
        parent = Tracer(clock=TickClock())
        with parent.span("sweep") as sweep:
            adopted = parent.adopt(worker.finished())
        assert [s.name for s in adopted] == ["w.outer", "w.inner"]
        outer, inner = adopted
        assert outer.parent == sweep.index
        assert outer.depth == sweep.depth + 1
        assert inner.parent == outer.index
        assert inner.depth == outer.depth + 1

    def test_adopt_without_open_span_roots_at_zero(self):
        worker = Tracer(clock=TickClock())
        with worker.span("w"):
            pass
        parent = Tracer(clock=TickClock())
        adopted = parent.adopt(worker.finished())
        assert adopted[0].parent is None
        assert adopted[0].depth == 0
