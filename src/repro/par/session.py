"""Incremental static timing analysis over sizing moves.

A :class:`TimingSession` binds a module/library/clock once, pays for one
full arrival propagation up front, and then re-propagates only the
affected cone on each sizing move.  A drive swap on instance ``g``
changes:

* ``g``'s own arc delays (new cell, same loads), and
* the loads of every net feeding ``g`` (its input pin caps changed),
  which perturbs the *drivers* of those nets.

So the re-propagation seeds are ``{g} + combinational drivers of g's
input nets``, walked forward in cached topological order; propagation
stops early wherever recomputed values are unchanged.  Because the
per-instance arithmetic is the same expression over the same inputs as
:func:`repro.sta.engine.analyze` (including the shared memoized arc
evaluation and from-scratch net-load sums), unchanged means *bitwise*
unchanged, and the session state is exactly what a full analysis would
produce -- ``check=True`` asserts that after every commit.

:meth:`trial` evaluates a move and rolls it back through an undo
journal; :meth:`commit` applies it and returns the resulting
:class:`~repro.sta.engine.TimingReport` (built by the engine's own
``build_report``, so sizing loops reuse it instead of re-analyzing).

Topology changes (buffering, resynthesis) invalidate a session: build a
new one.  Sequential cells cannot be resized through a session.

:class:`ArrayTimingSession` is the drop-in vectorized variant: it
compiles the timing graph once (:mod:`repro.sta.array`) and re-runs the
whole level sweep per move, refreshing only the swapped instances'
coefficient slots.  Designs the array engine cannot reproduce exactly
degrade transparently to a :class:`TimingSession`.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro import obs
from repro.cells.library import CellLibrary
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref
from repro.par.memo import arc_eval
from repro.sta.clocking import Clock
from repro.sta.engine import (
    DEFAULT_INPUT_SLEW_PS,
    TimingReport,
    _finite_guard_active,
    analyze,
    build_report,
)
from repro.sta.timing_graph import TimingError, TimingGraph, WireParasitics

#: Journal marker for "this net's load was not cached before the move".
_MISSING = object()


class SessionCheckError(TimingError):
    """Incremental and full STA disagreed (``check=True`` violation)."""


class TimingSession:
    """Incremental STA state for one netlist under sizing moves.

    Args:
        module: netlist to analyse; the session mutates it on commits.
        library: its cell library.
        clock: clock domain.
        wire: optional wire parasitics.
        input_slew_ps: transition time assumed at path starts.
        input_arrival_ps: arrival of module inputs vs the launch edge.
        output_load_ff: load on each output port (library default if
            None).
        delay_derate: corner derate, as in :func:`analyze`.
        check: when True, every commit (and construction) re-runs the
            full engine and raises :class:`SessionCheckError` on any
            divergence -- the slow belt-and-braces mode the equivalence
            tests run in.
    """

    def __init__(
        self,
        module: Module,
        library: CellLibrary,
        clock: Clock,
        wire: WireParasitics | None = None,
        input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
        input_arrival_ps: float = 0.0,
        output_load_ff: float | None = None,
        delay_derate: float = 1.0,
        check: bool = False,
    ) -> None:
        if not (delay_derate > 0.0) or math.isinf(delay_derate):
            raise TimingError(
                f"delay derate must be a positive finite number, "
                f"got {delay_derate}"
            )
        self.module = module
        self.library = library
        self.clock = clock
        self._wire = wire
        self._input_slew = input_slew_ps
        self._input_arrival = input_arrival_ps
        self._derate = delay_derate
        self._check = check
        self._graph = TimingGraph(module, library, wire, output_load_ff)
        seq_names = self._graph.sequential_cell_names()
        self._order = topological_order(module, seq_names)
        self._pos = {name: i for i, name in enumerate(self._order)}
        self._endpoint_list = self._graph.endpoints()
        self._succ = self._build_successors()
        self._ep_fast = self._build_endpoint_cache()
        self._arrival: dict[str, float] = {}
        self._min_arrival: dict[str, float] = {}
        self._slew: dict[str, float] = {}
        self._trace: dict[str, tuple[str, str] | None] = {}
        self._launch_q: dict[str, float] = {}
        self._loads: dict[str, float] = {}
        self._full_propagate()
        if self._check:
            self._verify_against_full()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_successors(self) -> dict[str, tuple[str, ...]]:
        """Combinational fanout instances per instance (dedup, ordered)."""
        succ: dict[str, tuple[str, ...]] = {}
        for inst in self.module.iter_instances():
            seen: dict[str, None] = {}
            for net in inst.outputs.values():
                for sink in self.module.sinks_of(net):
                    if is_port_ref(sink):
                        continue
                    sink_inst, _pin = sink
                    if self._graph.cell_of(sink_inst).is_sequential:
                        continue
                    seen[sink_inst] = None
            succ[inst.name] = tuple(seen)
        return succ

    def _build_endpoint_cache(self) -> list[tuple]:
        """Per-endpoint ``(net, wire_d, setup, borrow, is_reg)`` rows.

        Registers are never resized through a session, so their setup
        and borrow terms are fixed for its lifetime.
        """
        rows: list[tuple] = []
        for kind, detail in self._endpoint_list:
            if kind == "port":
                net = str(detail)
                rows.append(
                    (net, self._graph.wire.delay(net) * self._derate,
                     0.0, 0.0, False)
                )
            else:
                inst_name, pin = detail
                cell = self._graph.cell_of(inst_name)
                net = self.module.instance(inst_name).inputs[pin]
                borrow = (
                    self.clock.borrow_window_ps
                    if cell.sequential.transparent
                    else 0.0
                )
                rows.append(
                    (net, self._graph.wire.delay(net) * self._derate,
                     cell.sequential.setup_ps * self._derate, borrow, True)
                )
        return rows

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _net_load(self, net: str) -> float:
        load = self._loads.get(net)
        if load is None:
            load = self._graph.net_load_ff(net)
            self._loads[net] = load
        return load

    def _eval_instance(
        self, name: str, journal: dict | None
    ) -> tuple[bool, float]:
        """Recompute one instance's output timing; True if it changed."""
        inst = self.module.instance(name)
        cell = self._graph.cell_of(name)
        if cell.is_sequential:
            return False, 0.0
        out_nets = list(inst.outputs.values())
        if not out_nets:
            return False, 0.0
        load = 0.0
        for net in out_nets:
            load += self._net_load(net)
        arrival = self._arrival
        min_arrival = self._min_arrival
        slew = self._slew
        derate = self._derate
        wire = self._graph.wire
        best_at = None
        best_pin = None
        worst_slew = 0.0
        least_at = None
        acc = 0.0
        for pin, in_net in inst.inputs.items():
            if in_net not in arrival:
                raise TimingError(
                    f"net {in_net!r} feeding {name} has no arrival; "
                    "undriven or floating logic"
                )
            wire_d = wire.delay(in_net) * derate
            delay, out_slew = arc_eval(cell.arc(pin), load, slew[in_net])
            delay *= derate
            at = arrival[in_net] + wire_d + delay
            m_at = min_arrival[in_net] + wire_d + delay
            acc += at
            if best_at is None or at > best_at:
                best_at = at
                best_pin = pin
                worst_slew = out_slew
            if least_at is None or m_at < least_at:
                least_at = m_at
        new_trace = (name, best_pin)
        trace = self._trace
        changed = False
        for net in out_nets:
            if journal is not None and net not in journal["nets"]:
                journal["nets"][net] = (
                    arrival.get(net), min_arrival.get(net),
                    slew.get(net), trace.get(net),
                )
            if not (
                arrival.get(net) == best_at
                and min_arrival.get(net) == least_at
                and slew.get(net) == worst_slew
                and trace.get(net) == new_trace
            ):
                changed = True
            arrival[net] = best_at
            min_arrival[net] = least_at
            slew[net] = worst_slew
            trace[net] = new_trace
        return changed, acc

    def _full_propagate(self) -> None:
        graph = self._graph
        self._arrival.clear()
        self._min_arrival.clear()
        self._slew.clear()
        self._trace.clear()
        self._launch_q.clear()
        for net, kind in graph.start_nets().items():
            if kind == "input":
                self._arrival[net] = self._input_arrival
                self._min_arrival[net] = self._input_arrival
            self._trace[net] = None
            self._slew[net] = self._input_slew
        for name in graph.sequential_instances():
            cell = graph.cell_of(name)
            inst = self.module.instance(name)
            for net in inst.outputs.values():
                clk_to_q = cell.sequential.clk_to_q_ps * self._derate
                self._arrival[net] = clk_to_q
                self._min_arrival[net] = clk_to_q
                self._launch_q[net] = clk_to_q
        acc = 0.0
        for name in self._order:
            _, a = self._eval_instance(name, None)
            acc += a
        self._check_finite(acc, self._order)

    def _propagate_from(
        self, sources: set[str], journal: dict | None
    ) -> list[str]:
        """Worklist re-propagation in topological position order."""
        heap: list[tuple[int, str]] = []
        queued: set[str] = set()
        for name in sources:
            pos = self._pos.get(name)
            if pos is not None and name not in queued:
                queued.add(name)
                heapq.heappush(heap, (pos, name))
        acc = 0.0
        recomputed: list[str] = []
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            changed, a = self._eval_instance(name, journal)
            acc += a
            recomputed.append(name)
            if changed:
                for succ in self._succ.get(name, ()):
                    if succ not in queued:
                        queued.add(succ)
                        heapq.heappush(heap, (self._pos[succ], succ))
        self._check_finite(acc, recomputed)
        return recomputed

    def _check_finite(self, at_acc: float, names) -> None:
        """Engine-equivalent finite-arrival guard over recomputed cells."""
        if math.isfinite(at_acc) or not _finite_guard_active():
            return
        for name in names:
            inst = self.module.instance(name)
            cell = self._graph.cell_of(name)
            if cell.is_sequential or not inst.outputs:
                continue
            load = 0.0
            for net in inst.outputs.values():
                load += self._net_load(net)
            for pin, in_net in inst.inputs.items():
                at = (
                    self._arrival[in_net]
                    + self._graph.wire.delay(in_net) * self._derate
                    + cell.delay_ps(pin, load, self._slew[in_net])
                    * self._derate
                )
                if not math.isfinite(at):
                    raise TimingError(
                        f"non-finite arrival through {name}.{pin} "
                        f"on net {in_net!r}; check the delay tables"
                    )
        raise TimingError("non-finite arrival in timing propagation")

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def _apply(
        self, instance: str, cell_name: str, journal: dict | None
    ) -> None:
        inst = self.module.instance(instance)
        old_cell = self._graph.cell_of(instance)
        new_cell = self.library.get(cell_name)
        if old_cell.is_sequential or new_cell.is_sequential:
            raise TimingError(
                f"cannot resize {instance!r} through a TimingSession: "
                "sequential cells are fixed for a session's lifetime"
            )
        if journal is not None:
            journal["cell"] = (instance, inst.cell_name)
        self.module.replace_cell(instance, cell_name)
        self._graph.rebind(instance)
        sources = {instance}
        for in_net in set(inst.inputs.values()):
            # Input pin caps changed, so this net's load -- and hence its
            # driver's delay -- changed.  Recompute the load from scratch
            # (same summation order as a fresh TimingGraph would use, so
            # incremental stays bitwise-equal to full analysis).
            if journal is not None and in_net not in journal["loads"]:
                journal["loads"][in_net] = self._loads.get(in_net, _MISSING)
            self._loads[in_net] = self._graph.net_load_ff(in_net)
            driver = self.module.driver_of(in_net)
            if (
                driver is not None
                and not is_port_ref(driver)
                and not self._graph.cell_of(driver[0]).is_sequential
            ):
                sources.add(driver[0])
        recomputed = self._propagate_from(sources, journal)
        if obs.enabled():
            obs.observe("par.session.cone_size", len(recomputed))

    def _undo(self, journal: dict) -> None:
        if journal["cell"] is not None:
            instance, old_cell_name = journal["cell"]
            self.module.replace_cell(instance, old_cell_name)
            self._graph.rebind(instance)
        for net, value in journal["loads"].items():
            if value is _MISSING:
                self._loads.pop(net, None)
            else:
                self._loads[net] = value
        for net, (at, m_at, sl, tr) in journal["nets"].items():
            self._arrival[net] = at
            self._min_arrival[net] = m_at
            self._slew[net] = sl
            self._trace[net] = tr

    def trial(self, instance: str, cell_name: str) -> float:
        """Minimum period if the swap were made; session state restored.

        Raises:
            TimingError: if the move propagates a non-finite arrival
                (state is still restored before the raise).
        """
        obs.count("par.session.trials")
        if self.module.instance(instance).cell_name == cell_name:
            return self.min_period_ps()
        journal: dict = {"nets": {}, "loads": {}, "cell": None}
        try:
            self._apply(instance, cell_name, journal)
            return self.min_period_ps()
        finally:
            self._undo(journal)

    def commit(self, instance: str, cell_name: str) -> TimingReport:
        """Apply a swap, re-propagate its cone, return the new report."""
        obs.count("par.session.commits")
        if self.module.instance(instance).cell_name != cell_name:
            self._apply(instance, cell_name, None)
        report = self.report()
        if self._check:
            self._verify_against_full()
        return report

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def min_period_ps(self) -> float:
        """Binding minimum period over all endpoints (cheap trial form)."""
        worst = None
        arrival = self._arrival
        skew = self.clock.skew_ps
        for net, wire_d, setup, borrow, is_reg in self._ep_fast:
            if net not in arrival:
                raise TimingError(f"endpoint net {net!r} is undriven")
            at = arrival[net] + wire_d
            if is_reg:
                mp = at + setup + skew - borrow
                if mp < 1e-3:
                    mp = 1e-3
            else:
                mp = at
            if worst is None or mp > worst:
                worst = mp
        if worst is None:
            raise TimingError(
                f"module {self.module.name} has no timing endpoints"
            )
        return worst

    def report(self) -> TimingReport:
        """Full :class:`TimingReport` from the session's cached state."""
        return build_report(
            self._graph,
            self.clock,
            self._arrival,
            self._min_arrival,
            self._trace,
            self._launch_q,
            delay_derate=self._derate,
            finite_guard=_finite_guard_active(),
            endpoint_list=self._endpoint_list,
        )

    # ------------------------------------------------------------------
    # Equivalence checking
    # ------------------------------------------------------------------

    def _verify_against_full(self) -> None:
        """Assert session state equals a from-scratch full analysis."""
        fresh = TimingSession(
            self.module, self.library, self.clock,
            wire=self._wire,
            input_slew_ps=self._input_slew,
            input_arrival_ps=self._input_arrival,
            output_load_ff=self._graph.output_load_ff,
            delay_derate=self._derate,
            check=False,
        )
        for label, mine, theirs in (
            ("arrival", self._arrival, fresh._arrival),
            ("min_arrival", self._min_arrival, fresh._min_arrival),
            ("slew", self._slew, fresh._slew),
            ("trace", self._trace, fresh._trace),
        ):
            if set(mine) != set(theirs):
                raise SessionCheckError(
                    f"incremental {label} net set diverged from full STA"
                )
            for net, value in mine.items():
                other = theirs[net]
                if value != other and not _close(value, other):
                    raise SessionCheckError(
                        f"incremental {label}[{net!r}] = {value} but full "
                        f"STA gives {other}"
                    )
        full = analyze(
            self.module, self.library, self.clock,
            wire=self._wire,
            input_slew_ps=self._input_slew,
            input_arrival_ps=self._input_arrival,
            output_load_ff=self._graph.output_load_ff,
            delay_derate=self._derate,
        )
        session_period = self.min_period_ps()
        if not _close(session_period, full.min_period_ps):
            raise SessionCheckError(
                f"incremental min period {session_period} but full "
                f"analyze() gives {full.min_period_ps}"
            )


def _close(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)
    return a == b


class ArrayTimingSession:
    """:class:`TimingSession` on the compiled array engine.

    Same constructor and move API.  One
    :class:`~repro.sta.array.CompiledTiming` is paid for up front; a
    sizing move refreshes only the affected instances' coefficient
    slots (the swapped cell plus the drivers of its input nets, whose
    loads changed) and re-runs the vectorized level sweep.  The sweep
    re-times the whole netlist, but it is a handful of numpy passes
    rather than a Python cone walk, and the compile -- the expensive
    part -- is reused across every trial and commit.

    Exactness contract: identical results to :class:`TimingSession`
    (itself bitwise-equal to :func:`repro.sta.engine.analyze`).  When
    the array engine cannot guarantee that -- undriven logic, poisoned
    or unknown arc models, non-finite arithmetic -- the session
    degrades to a delegate :class:`TimingSession`, so callers see the
    object engine's exact values and typed errors either way.
    """

    def __init__(
        self,
        module: Module,
        library: CellLibrary,
        clock: Clock,
        wire: WireParasitics | None = None,
        input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
        input_arrival_ps: float = 0.0,
        output_load_ff: float | None = None,
        delay_derate: float = 1.0,
        check: bool = False,
    ) -> None:
        if not (delay_derate > 0.0) or math.isinf(delay_derate):
            raise TimingError(
                f"delay derate must be a positive finite number, "
                f"got {delay_derate}"
            )
        self.module = module
        self.library = library
        self.clock = clock
        self._wire = wire
        self._input_slew = input_slew_ps
        self._input_arrival = input_arrival_ps
        self._output_load = output_load_ff
        self._derate = delay_derate
        self._derates = np.array([delay_derate])
        self._check = check
        self._delegate: TimingSession | None = None
        from repro.sta.array import _ArrayFallback, compile_timing

        try:
            self._compiled = compile_timing(
                module, library, wire, output_load_ff
            )
            self._state = self._compiled.propagate(
                input_slew_ps, input_arrival_ps, self._derates
            )
        except _ArrayFallback:
            obs.count("sta.array.fallbacks")
            self._degrade()
            return
        self._graph = self._compiled.graph
        if not self._build_endpoint_rows():
            # An endpoint net without a defined arrival: the object
            # engine reports that lazily, so hand the session over.
            self._degrade()
            return
        if self._check:
            self._verify_against_full()

    def _degrade(self) -> None:
        """Swap in a TimingSession delegate (exact errors included)."""
        self._delegate = TimingSession(
            self.module, self.library, self.clock,
            wire=self._wire,
            input_slew_ps=self._input_slew,
            input_arrival_ps=self._input_arrival,
            output_load_ff=self._output_load,
            delay_derate=self._derate,
            check=self._check,
        )

    def _build_endpoint_rows(self) -> bool:
        """Vectorized endpoint accounting; False if any net is undefined."""
        defined = set(self._compiled._input_ids.tolist())
        defined.update(self._compiled._reg_ids.tolist())
        defined.update(self._compiled._out_net.tolist())
        nets: list[int] = []
        wire_d: list[float] = []
        setup: list[float] = []
        borrow: list[float] = []
        is_reg: list[bool] = []
        for kind, detail in self._graph.endpoints():
            if kind == "port":
                net = str(detail)
                s = 0.0
                br = 0.0
                reg = False
            else:
                inst_name, pin = detail
                cell = self._graph.cell_of(inst_name)
                net = self.module.instance(inst_name).inputs[pin]
                s = cell.sequential.setup_ps * self._derate
                br = (
                    self.clock.borrow_window_ps
                    if cell.sequential.transparent
                    else 0.0
                )
                reg = True
            nid = self._compiled._net_id(net)
            if nid is None or nid not in defined:
                return False
            nets.append(nid)
            wire_d.append(self._graph.wire.delay(net) * self._derate)
            setup.append(s)
            borrow.append(br)
            is_reg.append(reg)
        self._ep_net = np.asarray(nets, dtype=np.int64)
        self._ep_wire = np.asarray(wire_d)
        self._ep_setup = np.asarray(setup)
        self._ep_borrow = np.asarray(borrow)
        self._ep_isreg = np.asarray(is_reg, dtype=bool)
        return True

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def _swap(self, instance: str, cell_name: str) -> tuple[str, ...]:
        """Replace a cell and refresh coefficients; returns touched names."""
        old_cell = self._graph.cell_of(instance)
        new_cell = self.library.get(cell_name)
        if old_cell.is_sequential or new_cell.is_sequential:
            raise TimingError(
                f"cannot resize {instance!r} through a TimingSession: "
                "sequential cells are fixed for a session's lifetime"
            )
        inst = self.module.instance(instance)
        self.module.replace_cell(instance, cell_name)
        self._graph.rebind(instance)
        touched = {instance}
        for in_net in set(inst.inputs.values()):
            driver = self.module.driver_of(in_net)
            if (
                driver is not None
                and not is_port_ref(driver)
                and not self._graph.cell_of(driver[0]).is_sequential
            ):
                touched.add(driver[0])
        self._compiled.refresh(touched)
        return tuple(touched)

    def _min_period_of(self, state) -> float:
        if self._ep_net.size == 0:
            raise TimingError(
                f"module {self.module.name} has no timing endpoints"
            )
        at = state.arr[0, self._ep_net] + self._ep_wire
        mp = ((at + self._ep_setup) + self.clock.skew_ps) - self._ep_borrow
        np.maximum(mp, 1e-3, out=mp)
        return float(np.where(self._ep_isreg, mp, at).max())

    def trial(self, instance: str, cell_name: str) -> float:
        """Minimum period if the swap were made; session state restored."""
        if self._delegate is not None:
            return self._delegate.trial(instance, cell_name)
        obs.count("par.session.trials")
        old = self.module.instance(instance).cell_name
        if old == cell_name:
            return self._min_period_of(self._state)
        from repro.sta.array import _ArrayFallback

        touched = self._swap(instance, cell_name)
        try:
            try:
                state = self._compiled.propagate(
                    self._input_slew, self._input_arrival, self._derates
                )
            except _ArrayFallback:
                obs.count("sta.array.fallbacks")
                # The object engine is the only faithful evaluator of
                # this move (poisoned arcs, NaN shadowing with the
                # finite guard off): a scratch session either raises
                # its exact typed error or yields the exact period.
                scratch = TimingSession(
                    self.module, self.library, self.clock,
                    wire=self._wire,
                    input_slew_ps=self._input_slew,
                    input_arrival_ps=self._input_arrival,
                    output_load_ff=self._output_load,
                    delay_derate=self._derate,
                )
                return scratch.min_period_ps()
            return self._min_period_of(state)
        finally:
            self.module.replace_cell(instance, old)
            self._graph.rebind(instance)
            self._compiled.refresh(touched)

    def commit(self, instance: str, cell_name: str) -> TimingReport:
        """Apply a swap, re-propagate, return the new report."""
        if self._delegate is not None:
            return self._delegate.commit(instance, cell_name)
        obs.count("par.session.commits")
        from repro.sta.array import _ArrayFallback

        if self.module.instance(instance).cell_name != cell_name:
            self._swap(instance, cell_name)
            try:
                self._state = self._compiled.propagate(
                    self._input_slew, self._input_arrival, self._derates
                )
            except _ArrayFallback:
                obs.count("sta.array.fallbacks")
                self._degrade()
                return self._delegate.report()
        report = self.report()
        if self._check:
            self._verify_against_full()
        return report

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def min_period_ps(self) -> float:
        """Binding minimum period over all endpoints (cheap trial form)."""
        if self._delegate is not None:
            return self._delegate.min_period_ps()
        return self._min_period_of(self._state)

    def report(self) -> TimingReport:
        """Full :class:`TimingReport` from the session's cached state."""
        if self._delegate is not None:
            return self._delegate.report()
        return self._state.report(self.clock)

    # ------------------------------------------------------------------
    # Equivalence checking
    # ------------------------------------------------------------------

    def _verify_against_full(self) -> None:
        """Assert session state equals a from-scratch full analysis."""
        from repro.sta.array import ArrayCheckError, assert_reports_match

        full = analyze(
            self.module, self.library, self.clock,
            wire=self._wire,
            input_slew_ps=self._input_slew,
            input_arrival_ps=self._input_arrival,
            output_load_ff=self._output_load,
            delay_derate=self._derate,
        )
        try:
            assert_reports_match(self.report(), full)
        except ArrayCheckError as exc:
            raise SessionCheckError(str(exc)) from exc
        session_period = self.min_period_ps()
        if not _close(session_period, full.min_period_ps):
            raise SessionCheckError(
                f"incremental min period {session_period} but full "
                f"analyze() gives {full.min_period_ps}"
            )
