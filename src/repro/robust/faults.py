"""Deterministic, seedable fault injection for the flow stack.

Two layers:

* :class:`FaultInjector` -- perturbs real inputs in place (drop a net's
  driver, corrupt a delay table, inject NaN, starve a sizing budget) so
  tests can assert that every layer raises *typed* errors or records
  diagnostics instead of crashing with ``KeyError``/``ZeroDivisionError``
  or silently producing NaN results;
* :func:`run_selftest` -- the scenario suite behind
  ``repro-gap selftest``: each scenario injects a fault and checks the
  stack's reaction, returning structured :class:`FaultReport` records.
  It exits clean on a healthy tree and fails when a guard has been
  broken (or deliberately disabled via
  :func:`repro.robust.guards.disable_guard`).

Flows additionally expose an explicit chaos hook: passing
``fault="<stage>"`` in the flow options trips
:func:`maybe_trip` at that stage, which is how the degradation path is
exercised end-to-end without monkeypatching.

On top of the in-process faults, :class:`SweepChaos` spells
*process-level* chaos for the fault-tolerant sweep supervisor
(:mod:`repro.par.sweep`): ``kill-worker:N`` hard-exits the worker
process mid-task, ``hang-task:N`` wedges the task past any timeout,
``crash-task:N`` raises inside the task, and ``corrupt-result:N``
ships a result the parent cannot unpickle -- each tripping exactly
once, on the first attempt of task index ``N``, so a retrying sweep
recovers deterministically and a retry-free sweep aborts.
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass

from repro.cells.delay import LinearDelayArc, NLDMArc
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref


class FaultInjectionError(RuntimeError):
    """Raised when an explicitly requested fault trips."""


#: Sleep injected by a ``slow:<stage>`` fault (seconds) -- large enough
#: to clear any regression-gate threshold against a sub-second stage.
SLOW_FAULT_S = 0.25


def maybe_trip(fault: str | None, stage: str) -> None:
    """Trip an injected fault if ``fault`` names this stage.

    Two fault spellings:

    * ``"<stage>"`` raises :class:`FaultInjectionError` at that stage
      (the degradation/abort path);
    * ``"slow:<stage>"`` sleeps :data:`SLOW_FAULT_S` seconds instead of
      failing -- an artificial wall-time regression the run-ledger gate
      (``repro-gap runs regress --gate``) must catch.

    The flows call this at the top of every stage; it is a single
    comparison when no fault is armed.
    """
    if fault is None:
        return
    if fault == stage:
        raise FaultInjectionError(
            f"injected fault tripped at stage {stage!r}"
        )
    if fault == f"slow:{stage}":
        time.sleep(SLOW_FAULT_S)


#: Sweep-chaos spellings understood by :meth:`SweepChaos.parse`.
SWEEP_CHAOS_KINDS = (
    "kill-worker", "hang-task", "crash-task", "corrupt-result",
)

#: How long a ``hang-task`` fault sleeps (seconds).  Far past any
#: sensible per-task timeout or stall window, so the supervisor -- not
#: the sleep expiring -- must end it.
HANG_FAULT_S = 60.0

#: Exit status a ``kill-worker`` fault dies with (distinctive in
#: ``worker exited with code ...`` diagnostics).
WORKER_KILL_EXIT = 37


@dataclass(frozen=True)
class SweepChaos:
    """One process-level chaos fault, armed on a single task index.

    Attributes:
        kind: one of :data:`SWEEP_CHAOS_KINDS`.
        index: the task index the fault trips on (first attempt only,
            so retries recover and results stay deterministic).
    """

    kind: str
    index: int

    @classmethod
    def parse(cls, spec: str) -> "SweepChaos":
        """Parse ``"kind:index"`` (e.g. ``"kill-worker:1"``)."""
        kind, sep, raw_index = str(spec).partition(":")
        if not sep or kind not in SWEEP_CHAOS_KINDS:
            raise FaultInjectionError(
                f"unknown sweep chaos spec {spec!r}; expected "
                f"KIND:INDEX with KIND in {', '.join(SWEEP_CHAOS_KINDS)}"
            )
        try:
            index = int(raw_index)
        except ValueError:
            raise FaultInjectionError(
                f"sweep chaos index must be an integer, got {raw_index!r}"
            ) from None
        if index < 0:
            raise FaultInjectionError("sweep chaos index must be >= 0")
        return cls(kind=kind, index=index)

    def armed_for(self, index: int, attempt: int) -> bool:
        """Whether the fault trips for this (task, attempt) pair."""
        return index == self.index and attempt == 0

    def trip_in_worker(self, index: int, attempt: int) -> None:
        """Worker-side pre-task hook: die, wedge, or raise as armed.

        ``corrupt-result`` does nothing here -- it perturbs the result
        on the way out (:meth:`corrupt_result`).
        """
        if not self.armed_for(index, attempt):
            return
        if self.kind == "kill-worker":
            # Simulates a SIGKILL / OOM-kill mid-task: no cleanup, no
            # exception propagation, the pipe just goes dead.
            os._exit(WORKER_KILL_EXIT)
        if self.kind == "hang-task":
            time.sleep(HANG_FAULT_S)
        elif self.kind == "crash-task":
            raise FaultInjectionError(
                f"chaos: injected crash in task {index}"
            )

    def corrupt_result(self, index: int, attempt: int, result):
        """Worker-side post-task hook: poison the shipped result."""
        if self.kind == "corrupt-result" and self.armed_for(index, attempt):
            return _CorruptResult()
        return result


def _explode_on_unpickle():
    raise FaultInjectionError("chaos: corrupt result payload")


class _CorruptResult:
    """Pickles fine in the worker, detonates on unpickle in the parent."""

    def __reduce__(self):
        return (_explode_on_unpickle, ())


@dataclass(frozen=True)
class FaultReport:
    """Outcome of one selftest scenario.

    Attributes:
        fault: scenario name.
        passed: whether the stack reacted as required.
        outcome: short machine-readable reaction summary.
        detail: human-readable explanation.
    """

    fault: str
    passed: bool
    outcome: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "fault": self.fault,
            "passed": self.passed,
            "outcome": self.outcome,
            "detail": self.detail,
        }


class FaultInjector:
    """Seedable input perturbations; all choices are deterministic.

    Args:
        seed: RNG seed; the same seed perturbs the same targets.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def drop_net(self, module: Module) -> str:
        """Detach the driver of a random instance-driven net.

        Returns the net name.  Both views of connectivity are cut -- the
        net's ``driver`` endpoint and the driving instance's output pin
        map -- so the net keeps its sinks but genuinely has no source:
        validation reports ``netlist.undriven`` and STA raises
        ``TimingError`` when the arrival propagation hits the hole.
        """
        candidates = sorted(
            name for name, net in module.nets.items()
            if net.driver is not None
            and not is_port_ref(net.driver)
            and net.sinks
        )
        if not candidates:
            raise FaultInjectionError(
                f"module {module.name} has no droppable nets"
            )
        name = self.rng.choice(candidates)
        net = module.net(name)
        inst_name, pin = net.driver
        del module.instance(inst_name).outputs[pin]
        net.driver = None
        return name

    def _pick_combinational(self, library: CellLibrary,
                            module: Module | None = None):
        cells = sorted(
            c.name for c in library if not c.is_sequential and c.arcs
        )
        if module is not None:
            # Restrict to cells the module instantiates, so the fault is
            # guaranteed to sit on a queried arc rather than dead
            # library inventory.
            used = {inst.cell_name for inst in module.iter_instances()}
            cells = [c for c in cells if c in used]
        if not cells:
            raise FaultInjectionError(
                f"library {library.name} has no (used) combinational cells"
            )
        return library.get(self.rng.choice(cells))

    def corrupt_delay_table(self, library: CellLibrary) -> str:
        """Replace one arc with a non-monotone NLDM table.

        Returns ``"cell.pin"``.  The table passes construction-time
        shape checks but fails the :mod:`repro.robust.validate`
        monotonicity lint.
        """
        cell = self._pick_combinational(library)
        pin = self.rng.choice(sorted(cell.arcs))
        bad = NLDMArc(
            slew_axis_ps=(10.0, 100.0),
            load_axis_ff=(0.0, 10.0, 20.0),
            delay_table_ps=((80.0, 20.0, 5.0), (90.0, 25.0, 8.0)),
            slew_table_ps=((20.0, 20.0, 20.0), (30.0, 30.0, 30.0)),
        )
        cell.arcs[pin] = bad
        return f"{cell.name}.{pin}"

    def inject_nan(self, library: CellLibrary,
                   module: Module | None = None) -> str:
        """Poison one arc with NaN delay parameters.

        Returns ``"cell.pin"``.  NaN compares false against every
        bound, so construction-time checks pass; only the probe-based
        validation lint and the runtime finiteness guards catch it.
        When ``module`` is given, the target is drawn from the cells it
        actually instantiates, so an analysis of that module is
        guaranteed to hit the poisoned arc.
        """
        cell = self._pick_combinational(library, module)
        pin = self.rng.choice(sorted(cell.arcs))
        cell.arcs[pin] = LinearDelayArc(
            parasitic_ps=float("nan"), effort_ps_per_ff=1.0
        )
        return f"{cell.name}.{pin}"

    def starved_sizing_budget(self) -> dict:
        """Sizing kwargs that must be rejected with ``SizingError``."""
        return {"max_moves": -1}


def _scenario(fault: str, passed: bool, outcome: str,
              detail: str = "") -> FaultReport:
    return FaultReport(fault=fault, passed=passed, outcome=outcome,
                       detail=detail)


def _chaos_probe(task):
    """Tiny deterministic sweep task (module-level so workers pickle it)."""
    return (task, task * task)


def _chaos_probe_fail_negative(task):
    """Sweep task that always fails on negative inputs (quarantine bait)."""
    if task < 0:
        raise ValueError(f"probe task rejects negative input {task}")
    return task * task


def run_chaos_selftest(workers: int = 2) -> list[FaultReport]:
    """Process-level chaos scenarios over the sweep supervisor.

    Each scenario arms one :class:`SweepChaos` fault in a pool sweep
    with a retry policy and requires the results to match the
    fault-free run exactly (recovery is invisible in the output); where
    cheap, it also re-runs without the retry policy and requires the
    same fault to abort -- proving the recovery path, not fault
    tolerance by accident, absorbed the failure.
    """
    from repro.par.sweep import run_sweep, run_sweep_report
    from repro.robust.retry import RetryPolicy, TaskFailure

    tasks = list(range(3))
    expected = [_chaos_probe(t) for t in tasks]
    reports: list[FaultReport] = []

    def run(name: str, scenario) -> None:
        try:
            reports.append(scenario(name))
        except Exception as exc:  # selftest must never crash
            reports.append(_scenario(
                name, False, f"unexpected:{type(exc).__name__}", str(exc)
            ))

    def chaos_recovers(spelling: str, timeout_s: float | None = None,
                       check_abort: bool = True):
        def scenario(name: str) -> FaultReport:
            policy = RetryPolicy(max_attempts=2, backoff_s=0.0,
                                 timeout_s=timeout_s)
            report = run_sweep_report(
                _chaos_probe, tasks, workers=workers, retry=policy,
                chaos=spelling, label=f"selftest.{name}",
            )
            recovered = (report.results == expected
                         and not report.failures
                         and report.retries >= 1)
            aborted = True
            if check_abort:
                try:
                    run_sweep(_chaos_probe, tasks, workers=workers,
                              chaos=spelling,
                              label=f"selftest.{name}.bare")
                    aborted = False
                except Exception:
                    pass
            ok = recovered and aborted
            if not recovered:
                outcome = "not-recovered"
            elif not aborted:
                outcome = "fault-inert"
            else:
                outcome = "recovered+load-bearing"
            return _scenario(
                name, ok, outcome,
                f"{spelling}: {report.retries} retry dispatch(es), "
                f"{len(report.failures)} quarantined",
            )
        return scenario

    def quarantine_partial(name: str) -> FaultReport:
        bait = [0, 1, -1]
        report = run_sweep_report(
            _chaos_probe_fail_negative, bait, workers=workers,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            label=f"selftest.{name}",
        )
        placeholder = report.results[2]
        ok = (
            isinstance(placeholder, TaskFailure)
            and placeholder.attempts == 2
            and placeholder.kind == "error"
            and report.results[:2] == [0, 1]
            and len(report.failures) == 1
        )
        return _scenario(
            name, ok, "quarantined" if ok else "wrong-shape",
            f"slot 2 -> {placeholder}",
        )

    run("chaos_kill_worker_recovers", chaos_recovers("kill-worker:1"))
    run("chaos_hang_task_times_out",
        chaos_recovers("hang-task:2", timeout_s=0.5, check_abort=False))
    run("chaos_crash_task_retries", chaos_recovers("crash-task:0"))
    run("chaos_corrupt_result_retries",
        chaos_recovers("corrupt-result:1"))
    run("retry_exhaustion_quarantines", quarantine_partial)
    return reports


def run_selftest(seed: int = 0, bits: int = 4,
                 chaos: bool = True) -> list[FaultReport]:
    """Run the full fault-injection scenario suite.

    Every scenario perturbs a freshly built input, so scenarios are
    independent and the whole suite is deterministic for a given seed.
    Imports are local: the harness reaches across the whole stack and
    module-level imports would cycle through :mod:`repro.flows`.
    """
    from repro.cells.builder import rich_asic_library
    from repro.datapath.adders import ripple_carry_adder
    from repro.flows import AsicFlowOptions, FlowError, run_asic_flow
    from repro.robust import guards
    from repro.robust.validate import (
        Severity, has_errors, validate_library, validate_module,
    )
    from repro.sizing.logical_effort import SizingError
    from repro.sizing.tilos import size_for_speed
    from repro.sta.clocking import asic_clock
    from repro.sta.engine import analyze, solve_min_period
    from repro.sta.sequential import register_boundaries
    from repro.sta.timing_graph import TimingError
    from repro.tech.process import CMOS250_ASIC

    tech = CMOS250_ASIC
    clock = asic_clock(20.0 * tech.fo4_delay_ps)

    def fresh():
        library = rich_asic_library(tech)
        comb = ripple_carry_adder(bits, library)
        module = register_boundaries(comb, library)
        return module, library

    reports: list[FaultReport] = []

    def run(name: str, scenario) -> None:
        try:
            reports.append(scenario(name))
        except Exception as exc:  # selftest must never crash
            reports.append(_scenario(
                name, False, f"unexpected:{type(exc).__name__}", str(exc)
            ))

    def undriven_net(name: str) -> FaultReport:
        module, library = fresh()
        net = FaultInjector(seed).drop_net(module)
        diags = validate_module(module, library)
        flagged = any(d.code == "netlist.undriven" for d in diags)
        try:
            analyze(module, library, clock)
            raised = False
        except TimingError:
            raised = True
        ok = flagged and raised
        return _scenario(
            name, ok, "validated+raised" if ok else "missed",
            f"dropped driver of net {net!r}",
        )

    def combinational_loop(name: str) -> FaultReport:
        _, library = fresh()
        module = Module("looped")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g1", "NAND2_X1",
                            inputs={"A": "a", "B": "w2"},
                            outputs={"Y": "w1"})
        module.add_instance("g2", "NAND2_X1",
                            inputs={"A": "w1", "B": "a"},
                            outputs={"Y": "w2"})
        module.add_instance("g3", "NAND2_X1",
                            inputs={"A": "w1", "B": "w2"},
                            outputs={"Y": "y"})
        diags = validate_module(module, library)
        flagged = any(
            d.code == "netlist.combinational_loop" for d in diags
        )
        return _scenario(
            name, flagged, "validated" if flagged else "missed",
            "g1/g2 cross-coupled NAND loop",
        )

    def nan_delay(name: str) -> FaultReport:
        module, library = fresh()
        target = FaultInjector(seed).inject_nan(library, module)
        diags = validate_library(library)
        flagged = any(d.code == "library.nan_delay" for d in diags)
        try:
            guards.guarded_solve_min_period(module, library, clock)
            raised = False
        except (TimingError, guards.NonFiniteError):
            raised = True
        ok = flagged and raised
        return _scenario(
            name, ok, "validated+raised" if ok else "missed",
            f"NaN injected into arc {target}; finite guard "
            f"{'active' if guards.guard_enabled('finite') else 'DISABLED'}",
        )

    def non_monotone_table(name: str) -> FaultReport:
        _, library = fresh()
        target = FaultInjector(seed).corrupt_delay_table(library)
        diags = validate_library(library)
        flagged = any(d.code == "library.non_monotone" for d in diags)
        return _scenario(
            name, flagged, "validated" if flagged else "missed",
            f"non-monotone table on arc {target}",
        )

    def starved_budget(name: str) -> FaultReport:
        module, library = fresh()
        kwargs = FaultInjector(seed).starved_sizing_budget()
        try:
            size_for_speed(module, library, clock, **kwargs)
            return _scenario(name, False, "accepted",
                             "negative budget was not rejected")
        except SizingError as exc:
            return _scenario(name, True, "raised:SizingError", str(exc))

    def convergence_fallback(name: str) -> FaultReport:
        module, library = fresh()
        reference = solve_min_period(module, library, clock)
        report = guards.guarded_solve_min_period(
            module, library, clock, max_iterations=0, max_retries=1,
        )
        close = (
            math.isfinite(report.min_period_ps)
            and abs(report.min_period_ps - reference.min_period_ps)
            <= max(0.01 * reference.min_period_ps, 1.0)
        )
        return _scenario(
            name, close, "bisection" if close else "diverged",
            f"bisection {report.min_period_ps:.1f} ps vs reference "
            f"{reference.min_period_ps:.1f} ps",
        )

    def keep_going_degrades(name: str) -> FaultReport:
        result = run_asic_flow(AsicFlowOptions(
            bits=bits, sizing_moves=3, fault="size",
            on_error="keep_going",
        ))
        ok = (
            result.failed_stages() == ["size"]
            and result.degraded
            and result.quoted_frequency_mhz > 0
            and math.isfinite(result.quoted_frequency_mhz)
        )
        return _scenario(
            name, ok, "degraded" if ok else "wrong-shape",
            f"failed stages {result.failed_stages()}, quote "
            f"{result.quoted_frequency_mhz:.1f} MHz",
        )

    def raise_mode_names_stage(name: str) -> FaultReport:
        try:
            run_asic_flow(AsicFlowOptions(bits=bits, sizing_moves=3,
                                          fault="size"))
        except FlowError as exc:
            ok = (exc.stage == "size"
                  and isinstance(exc.__cause__, FaultInjectionError))
            return _scenario(
                name, ok, "raised:FlowError" if ok else "missing-context",
                f"stage={exc.stage!r} cause="
                f"{type(exc.__cause__).__name__}",
            )
        return _scenario(name, False, "no-error",
                         "injected fault did not surface")

    def preflight_clean(name: str) -> FaultReport:
        module, library = fresh()
        diags = validate_library(library) + validate_module(
            module, library
        )
        clean = not has_errors(diags)
        noise = [d for d in diags if d.severity is Severity.ERROR]
        return _scenario(
            name, clean, "clean" if clean else "false-positives",
            f"{len(noise)} spurious error(s) on a healthy netlist",
        )

    run("preflight_clean_tree", preflight_clean)
    run("undriven_net", undriven_net)
    run("combinational_loop", combinational_loop)
    run("nan_delay_table", nan_delay)
    run("non_monotone_delay_table", non_monotone_table)
    run("starved_sizing_budget", starved_budget)
    run("solver_convergence_fallback", convergence_fallback)
    run("keep_going_degrades", keep_going_degrades)
    run("raise_mode_names_stage", raise_mode_names_stage)
    if chaos:
        reports.extend(run_chaos_selftest())
    return reports
