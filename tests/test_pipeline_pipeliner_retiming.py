"""Unit tests for the netlist pipeliner and Leiserson-Saxe retiming."""

import pytest

from repro.cells import rich_asic_library
from repro.datapath import ripple_carry_adder, simulate_adder
from repro.netlist import logic_depth
from repro.pipeline import (
    PipelineError,
    clock_period,
    feasible,
    make_retiming_graph,
    opt_period,
    pipeline_module,
    retime,
)
from repro.sta import analyze, asic_clock, solve_min_period
from repro.synth import map_design, parse_expression, simulate_sequential
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(20000.0)


class TestPipeliner:
    def test_pipelining_reduces_period(self):
        adder = ripple_carry_adder(8, RICH)
        base = solve_min_period(
            __import__("repro.sta.sequential", fromlist=["register_boundaries"])
            .register_boundaries(adder, RICH),
            RICH, CLK,
        )
        report = pipeline_module(ripple_carry_adder(8, RICH), RICH, stages=4)
        piped = solve_min_period(report.module, RICH, CLK)
        assert piped.min_period_ps < base.min_period_ps
        assert report.stages == 4

    def test_speedup_grows_with_stages_then_saturates(self):
        periods = []
        for stages in (1, 2, 4, 8):
            report = pipeline_module(
                ripple_carry_adder(12, RICH), RICH, stages=stages
            )
            result = solve_min_period(report.module, RICH, CLK)
            periods.append(result.min_period_ps)
        assert periods[1] < periods[0]
        assert periods[2] < periods[1]
        # Diminishing returns: the 4->8 gain is smaller than 1->2.
        gain_12 = periods[0] / periods[1]
        gain_48 = periods[2] / periods[3]
        assert gain_48 < gain_12

    def test_functional_correctness_through_pipeline(self):
        bits = 4
        adder = ripple_carry_adder(bits, RICH)
        report = pipeline_module(adder, RICH, stages=3)
        piped = report.module
        # Feed a stream of operand pairs; outputs appear latency later.
        cases = [(3, 9, 0), (15, 1, 1), (7, 8, 0), (0, 0, 1), (12, 5, 1)]
        stream = []
        for a, b, cin in cases:
            vec = {f"a{i}": bool((a >> i) & 1) for i in range(bits)}
            vec.update({f"b{i}": bool((b >> i) & 1) for i in range(bits)})
            vec["cin"] = bool(cin)
            stream.append(vec)
        idle = {k: False for k in stream[0]}
        stream += [idle] * report.latency_cycles
        trace = simulate_sequential(piped, RICH, stream)
        for idx, (a, b, cin) in enumerate(cases):
            out = trace[idx + report.latency_cycles]
            total = sum(1 << i for i in range(bits) if out[f"s{i}"])
            expected = a + b + cin
            assert total == expected % (1 << bits), (a, b, cin)
            assert out["cout"] == bool(expected >> bits), (a, b, cin)

    def test_stage_depths_cover_logic(self):
        adder = ripple_carry_adder(8, RICH)
        depth = logic_depth(adder)
        report = pipeline_module(adder, RICH, stages=4)
        assert len(report.stage_depths) == 4
        assert max(report.stage_depths) < depth
        assert report.balance >= 1.0

    def test_stages_clamped_to_depth(self):
        tiny = map_design({"y": parse_expression("a & b")}, RICH)
        report = pipeline_module(tiny, RICH, stages=10)
        assert report.stages <= logic_depth(tiny)

    def test_rejects_sequential_input(self):
        adder = ripple_carry_adder(4, RICH)
        report = pipeline_module(adder, RICH, stages=2)
        with pytest.raises(PipelineError, match="already contains"):
            pipeline_module(report.module, RICH, stages=2)

    def test_latch_pipelining(self):
        report = pipeline_module(
            ripple_carry_adder(4, RICH), RICH, stages=2, use_latches=True
        )
        latch = RICH.latch().name
        assert any(
            inst.cell_name == latch for inst in report.module.iter_instances()
        )


class TestRetiming:
    def _correlator(self, host_weight=2):
        # A Leiserson-Saxe style correlator: host (delay 0), comparators
        # delay 3, adders delay 7; `host_weight` registers buffer the
        # input stream.  Optimal periods below are brute-force verified.
        delays = {
            "host": 0.0,
            "c1": 3.0, "c2": 3.0, "c3": 3.0, "c4": 3.0,
            "a1": 7.0, "a2": 7.0, "a3": 7.0,
        }
        edges = [
            ("host", "c1", host_weight),
            ("c1", "c2", 1), ("c2", "c3", 1), ("c3", "c4", 1),
            ("c1", "a1", 0), ("c2", "a1", 0),
            ("a1", "a2", 0), ("c3", "a2", 0),
            ("a2", "a3", 0), ("c4", "a3", 0),
            ("a3", "host", 0),
        ]
        return make_retiming_graph(delays, edges)

    def test_correlator_original_period(self):
        graph = self._correlator()
        assert clock_period(graph) == pytest.approx(24.0)

    def test_correlator_optimal_period(self):
        # Brute-force verified: two registers of input buffering allow
        # retiming from 24 down to 14.
        result = opt_period(self._correlator())
        assert result.period == pytest.approx(14.0)
        assert result.speedup == pytest.approx(24.0 / 14.0)
        assert clock_period(result.graph) <= 14.0 + 1e-6

    def test_register_starved_loop_cannot_improve(self):
        # With a single register on the feedback loop, the cycle bound
        # (delay 24 / weight 1) pins the optimum at the original period.
        result = opt_period(self._correlator(host_weight=1))
        assert result.period == pytest.approx(24.0)

    def test_ring_example(self):
        # Brute-force verified: 12 -> 8.
        graph = make_retiming_graph(
            {"x": 2.0, "y": 8.0, "z": 2.0},
            [("x", "y", 0), ("y", "z", 0), ("z", "x", 2)],
        )
        assert clock_period(graph) == pytest.approx(12.0)
        result = opt_period(graph)
        assert result.period == pytest.approx(8.0)

    def test_feasible_oracle(self):
        graph = self._correlator()
        assert feasible(graph, 14.0) is not None
        assert feasible(graph, 13.0) is None
        assert feasible(graph, 24.0) is not None

    def test_retiming_preserves_register_counts_on_cycles(self):
        graph = self._correlator()
        result = opt_period(graph)
        import networkx as nx

        for cycle in nx.simple_cycles(graph):
            before = sum(
                graph[cycle[i]][cycle[(i + 1) % len(cycle)]]["weight"]
                for i in range(len(cycle))
            )
            after = sum(
                result.graph[cycle[i]][cycle[(i + 1) % len(cycle)]]["weight"]
                for i in range(len(cycle))
            )
            assert before == after

    def test_illegal_retiming_rejected(self):
        graph = self._correlator()
        with pytest.raises(PipelineError, match="negative"):
            retime(graph, {"c1": -5})

    def test_zero_weight_cycle_rejected(self):
        with pytest.raises(PipelineError, match="zero-weight cycle"):
            make_retiming_graph(
                {"a": 1.0, "b": 1.0},
                [("a", "b", 0), ("b", "a", 0)],
            )

    def test_validation(self):
        with pytest.raises(PipelineError):
            make_retiming_graph({"a": -1.0}, [])
        with pytest.raises(PipelineError):
            make_retiming_graph({"a": 1.0}, [("a", "zz", 0)])
        graph = self._correlator()
        with pytest.raises(PipelineError):
            feasible(graph, 0.0)
