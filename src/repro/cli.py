"""Command-line interface for the reproduction.

Installed as ``repro-gap``.  Subcommands cover the analyses a user would
want without writing Python:

* ``survey``    -- the Section 2 chip survey and headline gap;
* ``factors``   -- the Section 3 factor table and Section 9 residuals;
* ``flow``      -- run one implementation flow (any registered style:
  asic, custom, structured, plus plugins) and print its result;
* ``gap``       -- run several styles (``--styles``, default asic vs
  custom) and decompose the measured gap against a ``--baseline``;
* ``roadmap``   -- project the gap over future process generations;
* ``library``   -- summarise or export a generated cell library;
* ``variation`` -- sample a die population and print the Section 8
  quoting decomposition;
* ``stats``     -- run an instrumented gap comparison and print the
  observability report (span tree + metrics); ``stats --top N`` prints
  the N slowest spans by self time from the last ledger record instead
  of running anything;
* ``runs``      -- the persistent run ledger: ``runs list`` shows the
  recorded trajectory, ``runs show`` renders one record (claims, stage
  waterfall, span tree), ``runs diff`` compares two records, and
  ``runs regress`` checks the newest run against the median of its
  matching-fingerprint baseline (``--gate`` exits nonzero on a
  regression);
* ``top``       -- live dashboard over an ``--events FILE`` JSONL
  stream (``--follow`` to watch a run in progress from another
  terminal);
* ``selftest``  -- fault-injection health check of the whole stack
  (exit 0 when every guard catches its fault, 1 otherwise).

Every command appends a structured run record to the ledger directory
(``.repro_runs/`` or ``$REPRO_RUNS_DIR``; override with ``--runs-dir``,
disable with ``--no-ledger``) when it runs a flow, bench, sweep or
variation -- that trajectory is what ``runs regress`` watches.

``flow`` and ``gap`` accept ``--keep-going`` to degrade through stage
failures instead of aborting (failures land in the ``diagnostics`` list
of the ``--json`` output), and ``flow`` accepts ``--inject-fault STAGE``
to trip a deliberate fault for exercising that path.  A flow abort
exits with status 2 and names the failing stage.

``flow`` also surfaces the stage-graph engine: ``--list-stages`` prints
each flow's declarative graph (inputs, outputs, fingerprint params);
``--checkpoint FILE`` snapshots the context after every stage;
``--resume`` (optionally with ``--from STAGE``) restores the completed
prefix from that file; ``--until STAGE`` stops after the named stage
and prints the per-stage records; ``--no-cache`` disables the stage
fingerprint cache.  ``bench --json`` reports per-stage wall times as
``flow.stage.<name>.s`` plus memo- and stage-cache hit rates.

The global ``--profile`` flag prints a per-stage span/metric report
after any command, and ``--trace FILE`` writes the span tree as
JSON-lines.  Both work before or after the subcommand name.

Live telemetry rides the same global flags: ``--events FILE`` streams
bus events (span opens/closes, flow-stage progress, sweep task
completions, worker heartbeats) to FILE as JSON lines *while the
command runs*; ``--live`` renders a terminal dashboard from the same
stream; ``--stall-timeout S`` turns a silent pool worker into a
structured diagnostic (exit 4) instead of a hung sweep; and
``--trace-chrome FILE`` exports the span tree in Chrome Trace Event
format for chrome://tracing or ui.perfetto.dev.  ``repro-gap stats
--prom`` emits the metrics registry as Prometheus text exposition.

``sweep`` runs a fault-tolerant design-space sweep over a bits x
pipeline-stages grid: worker crashes, task hangs and stalls are
retried under a deterministic :class:`~repro.robust.retry.RetryPolicy`
(``--max-attempts``, ``--backoff-s``, ``--task-timeout``; ``--no-retry``
restores fail-fast), tasks that exhaust retries are quarantined
(sweep completes, exit 5), ``--resume-sweep`` replays points already
completed in the run ledger, and ``--chaos SPEC`` injects a
process-level fault (``kill-worker:N``, ``hang-task:N``,
``crash-task:N``, ``corrupt-result:N``) for drills.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_survey(_args: argparse.Namespace) -> int:
    from repro.core import gap_summary

    print(gap_summary())
    return 0


def _cmd_factors(_args: argparse.Namespace) -> int:
    from repro.core import FactorModel

    model = FactorModel()
    print(model.table())
    print()
    top_two = model.residual_after(["microarchitecture", "process_variation"])
    top_three = model.residual_after(
        ["microarchitecture", "process_variation", "dynamic_logic"]
    )
    print(f"residual after pipelining + variation: {top_two:.2f}x")
    print(f"residual adding dynamic logic:         {top_three:.2f}x")
    return 0


def _flow_error_exit(exc, as_json: bool) -> int:
    """Report a flow abort: name the failing stage, exit status 2."""
    if as_json:
        print(json.dumps({
            "error": str(exc),
            "stage": exc.stage,
            "cause": type(exc.__cause__).__name__
            if exc.__cause__ is not None else None,
        }, indent=2, sort_keys=True))
    else:
        stage = f" at stage {exc.stage!r}" if exc.stage else ""
        print(f"repro-gap: flow failed{stage}: {exc}", file=sys.stderr)
    return 2


def _flow_until(args: argparse.Namespace, backend, options) -> int:
    """Partial flow run (``--until STAGE``): engine-direct, no result.

    Stops after the named stage; the remaining stages are recorded as
    skipped, so there is no finalised :class:`FlowResult` -- the output
    is the per-stage record table (and notes so far).  With
    ``--checkpoint`` the partial context is snapshotted, and a later
    ``--resume`` run without ``--until`` completes the flow.
    """
    from repro.flows import FlowEngine
    from repro.flows.asic import check_workload

    check_workload(options)
    ctx = FlowEngine(backend.graph).run(
        options, backend.default_tech, checkpoint=args.checkpoint,
        resume=args.resume, from_stage=args.from_stage, until=args.until,
    )
    if args.json:
        print(json.dumps(
            {
                "flow": args.style,
                "until": args.until,
                "stages": [r.to_dict() for r in ctx.stage_records],
                "notes": ctx.notes,
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"{args.style} flow, stopped after {args.until!r}:")
    for rec in ctx.stage_records:
        cached = " (cached)" if rec.cache_hit else ""
        print(f"  {rec.name:<8s} {rec.status:<8s} "
              f"{rec.wall_s:8.4f} s{cached}")
    for key, value in sorted(ctx.notes.items()):
        print(f"  {key}: {value:.2f}")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.flows import FlowError
    from repro.flows import cache as stage_cache
    from repro.flows.registry import (
        backend_names,
        get_backend,
        run_backend_flow,
    )

    if args.list_stages:
        chosen = ([get_backend(args.style)] if args.style
                  else [get_backend(name) for name in backend_names()])
        print("\n\n".join(b.graph.describe() for b in chosen))
        return 0
    if args.style is None:
        print("repro-gap: flow requires a style "
              f"({', '.join(backend_names())}) unless --list-stages is "
              "given", file=sys.stderr)
        return 2

    backend = get_backend(args.style)
    on_error = "keep_going" if args.keep_going else "raise"
    options = backend.cli_options(args, on_error)
    if args.no_cache:
        stage_cache.set_enabled(False)
    try:
        if args.until is not None:
            return _flow_until(args, backend, options)
        result = run_backend_flow(
            backend, options, checkpoint=args.checkpoint,
            resume=args.resume, from_stage=args.from_stage,
        )
    except FlowError as exc:
        return _flow_error_exit(exc, args.json)
    finally:
        if args.no_cache:
            stage_cache.set_enabled(True)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.summary())
    for key, value in sorted(result.notes.items()):
        print(f"  {key}: {value:.2f}")
    for diag in result.diagnostics:
        print(f"  {diag}")
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    """Run N implementation styles and decompose the measured gap.

    The default comparison is the paper's (asic vs custom); ``--styles``
    picks any subset of the registered backends and ``--baseline`` the
    denominator of every factor.  The classic two-style output (table
    wording, JSON top-level factor keys) is preserved whenever exactly
    asic and custom are compared with the asic baseline.
    """
    from repro.core import analyze_multi_gap
    from repro.flows import FlowError
    from repro.flows.registry import get_backend, run_backend_flow

    on_error = "keep_going" if args.keep_going else "raise"
    styles = args.styles or ["asic", "custom"]
    if args.baseline not in styles:
        print(f"repro-gap: --baseline {args.baseline!r} must be one of "
              f"the compared styles ({', '.join(styles)})",
              file=sys.stderr)
        return 2
    results = []
    try:
        for style in styles:
            backend = get_backend(style)
            options = backend.gap_options(
                bits=args.bits, sizing_moves=args.sizing_moves,
                target_fo4=args.target_fo4, on_error=on_error,
            )
            results.append(run_backend_flow(backend, options))
    except FlowError as exc:
        return _flow_error_exit(exc, args.json)
    gap = analyze_multi_gap(results, baseline=args.baseline)
    two_way = (sorted(styles) == ["asic", "custom"]
               and args.baseline == "asic")
    if args.json:
        payload: dict = {
            result.style: result.to_dict() for result in results
        }
        payload["baseline"] = gap.baseline.style
        payload["pairwise"] = gap.to_dict()["pairwise"]
        if two_way:
            # Legacy top-level factor keys of the original asic-vs-
            # custom comparison, for existing consumers.
            report = gap.report_for("custom")
            payload["total_ratio"] = report.total_ratio
            payload["cycle_depth_factor"] = report.cycle_depth_factor
            payload["technology_factor"] = report.technology_factor
            payload["quoting_factor"] = report.quoting_factor
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for result in results:
        print(result.summary())
    print()
    if two_way:
        print(gap.report_for("custom").table())
    else:
        print(gap.table())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run an instrumented ASIC-vs-custom comparison, print the profile.

    With ``--top N`` or ``--self`` nothing is run: the most recent
    ledger record that carries a span tree answers instead (the N
    slowest spans, or the self-time hotspot rollup plus critical
    path), so the hot-spot question does not need a live tracer.
    """
    import time as _time

    from repro import obs
    from repro.obs import ledger as run_ledger
    from repro.obs import render

    if args.top is not None or args.hotspots:
        from repro.obs import profile as obs_profile

        for record in reversed(run_ledger.get_ledger().records()):
            if record.spans:
                print(f"run {record.run_id} ({record.kind}, "
                      f"{record.label}):")
                if args.top is not None:
                    print(render.render_top_spans(record.spans,
                                                  args.top))
                if args.hotspots:
                    print(obs_profile.render_self_report(record.spans))
                return 0
        print("repro-gap: no ledger record with a span tree found "
              f"under {run_ledger.runs_dir()!r}; run e.g. "
              "`repro-gap stats` first", file=sys.stderr)
        return 1

    from repro.flows import (
        AsicFlowOptions,
        CustomFlowOptions,
        run_asic_flow,
        run_custom_flow,
    )

    already_enabled = obs.enabled()
    if not already_enabled:
        obs.enable()
    started = _time.perf_counter()
    asic = run_asic_flow(
        AsicFlowOptions(bits=args.bits, sizing_moves=args.sizing_moves)
    )
    custom = run_custom_flow(
        CustomFlowOptions(
            bits=args.bits,
            target_cycle_fo4=args.target_fo4,
            sizing_moves=args.sizing_moves,
        )
    )
    wall_s = _time.perf_counter() - started
    print(asic.summary())
    print(custom.summary())
    print()
    from repro.par import memo as par_memo

    par_memo.publish()
    print(obs.render_report())
    if args.metrics_json:
        written = obs.write_metrics(obs.get_metrics(), args.metrics_json)
        print(f"\nwrote {written} metric keys to {args.metrics_json}")
    if args.prom is not None:
        if args.prom == "-":
            print()
            print(obs.metrics_to_prom(obs.get_metrics()), end="")
        else:
            lines = obs.write_prom(obs.get_metrics(), args.prom)
            print(f"\nwrote {lines} Prometheus exposition lines to "
                  f"{args.prom}")
    if run_ledger.enabled():
        from repro.flows.options import digest

        run_ledger.record(run_ledger.RunRecord(
            kind="stats",
            label=f"gap{args.bits}",
            fingerprint=digest({
                "kind": "stats",
                "bits": args.bits,
                "target_fo4": args.target_fo4,
                "sizing_moves": args.sizing_moves,
            }),
            config={"bits": args.bits, "target_fo4": args.target_fo4,
                    "sizing_moves": args.sizing_moves},
            wall_s=round(wall_s, 6),
            metrics=obs.metrics_to_flat(obs.get_metrics()),
            spans=render.aggregate_spans(obs.get_tracer().finished()),
        ))
    if not already_enabled:
        obs.disable()
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """Fault-injection health check over the whole stack."""
    from repro.robust import (
        disable_guard,
        enable_all_guards,
        run_selftest,
    )

    try:
        for name in args.disable_guard:
            disable_guard(name)
        reports = run_selftest(seed=args.seed)
    finally:
        enable_all_guards()
    failed = [r for r in reports if not r.passed]
    if args.json:
        print(json.dumps(
            {
                "passed": not failed,
                "scenarios": [r.to_dict() for r in reports],
            },
            indent=2, sort_keys=True,
        ))
    else:
        for r in reports:
            status = "PASS" if r.passed else "FAIL"
            print(f"{status}  {r.fault:28s} {r.outcome:20s} {r.detail}")
        print(f"\n{len(reports) - len(failed)}/{len(reports)} scenarios "
              "passed")
        if failed:
            print("selftest FAILED: a guard or validator did not catch "
                  "its fault", file=sys.stderr)
    return 1 if failed else 0


def _cmd_roadmap(args: argparse.Namespace) -> int:
    from repro.core import asymptotic_gap, project_gap, roadmap_table

    points = project_gap(
        generations=args.generations, initial_gap=args.initial_gap
    )
    print(roadmap_table(points))
    print(
        f"asymptote (custom-only factors): "
        f"{asymptotic_gap(args.initial_gap):.2f}x"
    )
    return 0


def _cmd_library(args: argparse.Namespace) -> int:
    from repro.cells import (
        custom_library,
        domino_library,
        poor_asic_library,
        rich_asic_library,
        to_liberty,
    )
    from repro.tech import get_technology

    tech = get_technology(args.technology)
    builders = {
        "rich": rich_asic_library,
        "poor": poor_asic_library,
        "custom": custom_library,
        "domino": domino_library,
    }
    library = builders[args.kind](tech)
    print(library.summary())
    if args.liberty:
        text = to_liberty(library)
        with open(args.liberty, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {args.liberty}")
    return 0


def _cmd_variation(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs import ledger as run_ledger
    from repro.variation import (
        MATURE_PROCESS,
        NEW_PROCESS,
        access_gap,
        sample_chip_speeds,
    )

    components = NEW_PROCESS if args.process == "new" else MATURE_PROCESS
    started = _time.perf_counter()
    dist = sample_chip_speeds(
        args.nominal, components, count=args.count, seed=args.seed,
        workers=args.workers,
    )
    wall_s = _time.perf_counter() - started
    gap = access_gap(dist)
    if run_ledger.enabled():
        from repro.flows.options import digest

        run_ledger.record(run_ledger.RunRecord(
            kind="variation",
            label=f"{args.process}.n{args.count}",
            fingerprint=digest({
                "kind": "variation",
                "process": args.process,
                "nominal": args.nominal,
                "count": args.count,
                "seed": args.seed,
            }),
            config={"process": args.process, "nominal": args.nominal,
                    "count": args.count, "seed": args.seed,
                    "workers": args.workers},
            wall_s=round(wall_s, 6),
            metrics={
                "variation.typical_mhz": round(gap.typical_mhz, 3),
                "variation.asic_quote_mhz": round(gap.asic_quote_mhz, 3),
                "variation.tested_mhz": round(gap.tested_mhz, 3),
                "variation.flagship_mhz": round(gap.flagship_mhz, 3),
                "variation.spread": round(dist.spread, 4),
            },
        ))
    print(f"nominal design frequency : {args.nominal:8.1f} MHz")
    print(f"median silicon           : {gap.typical_mhz:8.1f} MHz")
    print(f"ASIC worst-case quote    : {gap.asic_quote_mhz:8.1f} MHz")
    print(f"speed-tested quote       : {gap.tested_mhz:8.1f} MHz")
    print(f"custom flagship bin      : {gap.flagship_mhz:8.1f} MHz")
    print(f"typical/quote {gap.typical_over_quote:.2f}x   "
          f"flagship/quote {gap.flagship_over_quote:.2f}x   "
          f"bin spread {dist.spread:.2f}x")
    return 0


def _int_list(text: str) -> list[int]:
    """Argparse type: comma-separated ints (a sweep grid axis)."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _chaos_spec(text: str) -> str:
    """Argparse type: validate a sweep chaos spelling early."""
    from repro.robust.faults import FaultInjectionError, SweepChaos

    try:
        SweepChaos.parse(text)
    except FaultInjectionError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Fault-tolerant design-space sweep over a bits x stages grid."""
    from repro.flows import FlowError
    from repro.flows.registry import get_backend
    from repro.flows.sweep import run_flow_sweep_report
    from repro.robust.retry import RetryError, RetryPolicy, TaskFailure

    backend = get_backend(args.style)
    on_error = "keep_going" if args.keep_going else "raise"
    workload = args.workload or backend.default_workload
    option_sets = [
        backend.options_cls(
            workload=workload, bits=bits, pipeline_stages=stages,
            sizing_moves=args.sizing_moves, seed=args.seed,
            on_error=on_error, fault=args.inject_fault,
        )
        for bits in args.bits
        for stages in args.stages
    ]
    retry = None
    if not args.no_retry:
        try:
            retry = RetryPolicy(
                max_attempts=args.max_attempts,
                backoff_s=args.backoff_s,
                timeout_s=args.task_timeout,
            )
        except RetryError as exc:
            print(f"repro-gap: invalid retry policy: {exc}",
                  file=sys.stderr)
            return 2
    try:
        report = run_flow_sweep_report(
            option_sets, workers=args.workers, cache_dir=args.cache_dir,
            retry=retry, resume=args.resume_sweep, chaos=args.chaos,
        )
    except FlowError as exc:
        return _flow_error_exit(exc, args.json)
    quarantined = [r for r in report.results
                   if isinstance(r, TaskFailure)]
    if args.json:
        print(json.dumps(
            {
                "label": report.label,
                "points": report.tasks,
                "workers": report.workers,
                "ok": report.ok,
                "results": [r.to_dict() for r in report.results],
                "failures": [f.to_dict() for f in report.failures],
                "retries": report.retries,
                "replays": report.replays,
                "workers_lost": report.workers_lost,
            },
            indent=2, sort_keys=True,
        ))
    else:
        for index, res in enumerate(report.results):
            if isinstance(res, TaskFailure):
                print(f"[{index}] QUARANTINED: {res}")
            else:
                replayed = (" (replayed)" if index in report.replays
                            else "")
                print(f"[{index}] {res.summary()}{replayed}")
        print(f"\n{report.tasks - len(quarantined)}/{report.tasks} "
              f"points ok; {len(report.replays)} replayed from ledger, "
              f"{report.retries} retries, "
              f"{report.workers_lost} workers replaced")
        if quarantined:
            print("repro-gap: sweep completed with quarantined points",
                  file=sys.stderr)
    return 5 if quarantined else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Wall-time the hot paths: parallel Monte Carlo + a sized flow.

    The quick performance smoke test: one Monte Carlo sweep through
    ``repro.par.sweep`` at the requested worker count, one ASIC flow
    whose sizing stage runs on the incremental ``TimingSession``, then
    the memo-cache hit rates.  CI runs it with ``--workers 2`` so the
    process-pool path is exercised on every push.
    """
    import time

    from repro import obs
    from repro.flows import AsicFlowOptions, run_asic_flow
    from repro.flows import cache as stage_cache
    from repro.obs import ledger as run_ledger
    from repro.par import memo as par_memo
    from repro.variation import NEW_PROCESS, sample_chip_speeds

    # --json reports histogram percentiles, which need the metrics
    # registry recording during the run.
    capture = args.json and not obs.enabled()
    if capture:
        obs.enable()
    par_memo.reset()
    stage_cache.reset()
    if args.no_cache:
        par_memo.set_enabled(False)
        stage_cache.set_enabled(False)
    try:
        start = time.perf_counter()
        dist = sample_chip_speeds(
            400.0, NEW_PROCESS, count=args.count, seed=args.seed,
            workers=args.workers,
        )
        mc_s = time.perf_counter() - start
        start = time.perf_counter()
        result = run_asic_flow(
            AsicFlowOptions(bits=args.bits, sizing_moves=args.sizing_moves)
        )
        flow_s = time.perf_counter() - start

        # Vectorized STA: batched vs sequential Monte Carlo, and the
        # reusable-compile analyzer vs per-call object analyses, on the
        # benchmark workload netlist.
        import numpy as np

        from repro.cells.builder import rich_asic_library
        from repro.flows.asic import WORKLOADS
        from repro.sta.array import clock_analyzer
        from repro.sta.clocking import asic_clock
        from repro.sta.engine import analyze as sta_analyze
        from repro.sta.sequential import register_boundaries
        from repro.sta.statistical import monte_carlo_min_period
        from repro.tech.process import CMOS250_ASIC

        lib = rich_asic_library(CMOS250_ASIC)
        netlist = register_boundaries(
            WORKLOADS["alu"](args.bits, lib), lib
        )
        bclk = asic_clock(2000.0)
        start = time.perf_counter()
        mc_batched = monte_carlo_min_period(
            netlist, lib, bclk, samples=args.mc_samples, seed=args.seed
        )
        mc_batched_s = time.perf_counter() - start
        start = time.perf_counter()
        mc_seq = monte_carlo_min_period(
            netlist, lib, bclk, samples=args.mc_samples, seed=args.seed,
            batched=False,
        )
        mc_seq_s = time.perf_counter() - start
        mc_equal = bool(np.array_equal(mc_batched, mc_seq))

        periods = [1500.0 + 23.0 * i for i in range(25)]
        run_array = clock_analyzer(netlist, lib)
        start = time.perf_counter()
        for period in periods:
            run_array(bclk.with_period(period))
        analyze_array_s = time.perf_counter() - start
        start = time.perf_counter()
        for period in periods:
            sta_analyze(netlist, lib, bclk.with_period(period))
        analyze_obj_s = time.perf_counter() - start
    finally:
        par_memo.set_enabled(True)
        stage_cache.set_enabled(True)
    par_memo.publish()
    stage_cache.publish()
    payload: dict = {
        "montecarlo.count": args.count,
        "montecarlo.workers": args.workers,
        "montecarlo.s": round(mc_s, 6),
        "montecarlo.median_mhz": round(dist.median_mhz, 3),
        "flow.bits": args.bits,
        "flow.sizing_moves": args.sizing_moves,
        "flow.s": round(flow_s, 6),
        "cache.enabled": not args.no_cache,
        "sta.array.mc.samples": args.mc_samples,
        "sta.array.mc.batched_s": round(mc_batched_s, 6),
        "sta.array.mc.sequential_s": round(mc_seq_s, 6),
        "sta.array.mc.speedup": round(mc_seq_s / max(mc_batched_s, 1e-9), 2),
        "sta.array.mc.bitwise_equal": mc_equal,
        "sta.array.analyze.batch": len(periods),
        "sta.array.analyze.array_s": round(analyze_array_s, 6),
        "sta.array.analyze.object_s": round(analyze_obj_s, 6),
        "sta.array.analyze.speedup": round(
            analyze_obj_s / max(analyze_array_s, 1e-9), 2
        ),
    }
    for rec in result.stage_records:
        payload[f"flow.stage.{rec.name}.s"] = round(rec.wall_s, 6)
        payload[f"flow.stage.{rec.name}.cached"] = rec.cache_hit
    for kind, numbers in par_memo.stats().items():
        payload[f"cache.{kind}.hits"] = int(numbers["hits"])
        payload[f"cache.{kind}.misses"] = int(numbers["misses"])
        payload[f"cache.{kind}.hit_rate"] = round(numbers["hit_rate"], 4)
    stage_stats = stage_cache.stats()
    payload["cache.stage.hits"] = int(stage_stats["hits"])
    payload["cache.stage.misses"] = int(stage_stats["misses"])
    payload["cache.stage.hit_rate"] = round(stage_stats["hit_rate"], 4)
    if args.json:
        # Histogram percentiles (p50/p95/max and friends) from the
        # metrics registry, under a "hist." prefix so they cannot
        # collide with the wall-time keys above.
        for key, value in obs.metrics_to_flat(obs.get_metrics()).items():
            payload[f"hist.{key}"] = value
    if run_ledger.enabled():
        from repro.flows.options import digest

        run_ledger.record(run_ledger.RunRecord(
            kind="bench",
            label=f"bench.w{args.workers}",
            fingerprint=digest({
                "kind": "bench",
                "count": args.count,
                "seed": args.seed,
                "bits": args.bits,
                "sizing_moves": args.sizing_moves,
                "workers": args.workers,
                "no_cache": bool(args.no_cache),
            }),
            config={"count": args.count, "seed": args.seed,
                    "bits": args.bits,
                    "sizing_moves": args.sizing_moves,
                    "workers": args.workers,
                    "no_cache": bool(args.no_cache)},
            wall_s=round(mc_s + flow_s, 6),
            stages=[rec.to_dict() for rec in result.stage_records],
            metrics={k: v for k, v in payload.items()
                     if isinstance(v, (int, float))},
        ))
    if capture:
        obs.disable()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"monte carlo : {args.count} dies, workers={args.workers}: "
          f"{mc_s:.3f} s (median {dist.median_mhz:.1f} MHz)")
    print(f"asic flow   : bits={args.bits}, "
          f"sizing_moves={args.sizing_moves}: {flow_s:.3f} s")
    print(f"array STA   : {args.mc_samples}-sample MC batched "
          f"{mc_batched_s:.3f} s vs sequential {mc_seq_s:.3f} s "
          f"({mc_seq_s / max(mc_batched_s, 1e-9):.1f}x, "
          f"bitwise_equal={mc_equal}); "
          f"{len(periods)} analyses {analyze_array_s:.3f} s vs "
          f"{analyze_obj_s:.3f} s "
          f"({analyze_obj_s / max(analyze_array_s, 1e-9):.1f}x)")
    print("flow stages :")
    for rec in result.stage_records:
        cached = " (cached)" if rec.cache_hit else ""
        print(f"  {rec.name:<14s} {rec.status:<8s} "
              f"{rec.wall_s:8.4f} s{cached}")
    print(f"memo caches : {'on' if not args.no_cache else 'OFF'}")
    for kind, numbers in par_memo.stats().items():
        print(f"  {kind:<14s} hits={int(numbers['hits']):>8d} "
              f"misses={int(numbers['misses']):>8d} "
              f"hit_rate={numbers['hit_rate']:6.1%}")
    print(f"  {'stage':<14s} hits={int(stage_stats['hits']):>8d} "
          f"misses={int(stage_stats['misses']):>8d} "
          f"hit_rate={stage_stats['hit_rate']:6.1%}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Render a dashboard from a live-event JSONL stream.

    One-shot by default: fold every event in the file and print the
    closing frame.  With ``--follow`` the file is re-polled and the
    frame repainted until interrupted (or ``--timeout`` elapses), which
    is how a second terminal watches a long run started with
    ``--events FILE``.
    """
    import os as _os
    import time as _time

    from repro.obs import live as obs_live
    from repro.obs.events import read_events

    if not args.follow and not _os.path.exists(args.events_file):
        print(f"repro-gap: no event stream at {args.events_file!r} "
              "(start a run with --events FILE first)", file=sys.stderr)
        return 1
    dashboard = obs_live.Dashboard(stream=sys.stdout,
                                   refresh_s=args.interval)
    deadline = (_time.monotonic() + args.timeout
                if args.timeout is not None else None)
    consumed = 0
    try:
        while True:
            if _os.path.exists(args.events_file):
                # Re-scan from the top and skip what was already fed:
                # events files are append-only, so position == identity.
                position = 0
                for event in read_events(args.events_file):
                    position += 1
                    if position > consumed:
                        dashboard.feed(event, paint=False)
                consumed = max(consumed, position)
            if not args.follow:
                break
            dashboard.paint()
            if deadline is not None and _time.monotonic() >= deadline:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    print(dashboard.final())
    if consumed == 0:
        print("repro-gap: stream contained no events", file=sys.stderr)
        return 1
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """Inspect the persistent run ledger (list/show/diff/regress)."""
    from repro.obs import ledger as run_ledger
    from repro.obs import regress as run_regress
    from repro.obs import render

    ledger = run_ledger.get_ledger()
    if args.runs_cmd == "list":
        records = ledger.records(kind=args.kind)
        if not records:
            print(f"(no run records under {run_ledger.runs_dir()!r})")
            return 0
        if args.last:
            records = records[-args.last:]
        print(f"{'run id':<28s} {'kind':<10s} {'label':<20s} "
              f"{'wall s':>9s} {'stages':<22s} fingerprint")
        for rec in records:
            worker = " [worker]" if rec.worker else ""
            print(f"{rec.run_id:<28s} {rec.kind:<10s} "
                  f"{rec.label:<20.20s} {rec.wall_s:>9.3f} "
                  f"{rec.stage_summary():<22s} "
                  f"{rec.fingerprint[:12]}{worker}")
        return 0
    if args.runs_cmd == "show":
        try:
            record = ledger.load(args.run)
        except run_ledger.LedgerError as exc:
            print(f"repro-gap: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        else:
            print(render.render_run(record))
        return 0
    if args.runs_cmd == "diff":
        try:
            a = ledger.load(args.run_a)
            b = ledger.load(args.run_b)
        except run_ledger.LedgerError as exc:
            print(f"repro-gap: {exc}", file=sys.stderr)
            return 1
        print(render.diff_runs(a, b))
        return 0
    # regress
    records = ledger.records()
    current = None
    if args.run != "last":
        try:
            current = ledger.load(args.run)
        except run_ledger.LedgerError as exc:
            print(f"repro-gap: {exc}", file=sys.stderr)
            return 1
    thresholds = run_regress.Thresholds(
        wall_frac=args.wall_frac,
        wall_abs_s=args.wall_abs,
        baseline_n=args.baseline_n,
    )
    report = run_regress.regress(records, current=current,
                                 thresholds=thresholds)
    if report is None:
        which = args.run if args.run != "last" else "the newest run"
        print(f"no baseline for {which}: need at least one earlier "
              "record with the same kind and fingerprint "
              f"(ledger: {run_ledger.runs_dir()!r})")
        # Nothing to compare is not a regression; the gate stays green
        # so a fresh checkout's first CI run cannot fail on it.
        return 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.gate and not report.ok:
        return 3
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    """Check benchmark numbers against their PERF_BUDGETS.toml ceilings.

    A measurement over its ceiling is a fail finding; ``--gate`` turns
    that into exit 3 (same code as ``runs regress --gate`` -- both are
    performance gates).
    """
    from repro.obs import profile as obs_profile
    from repro.obs.trace import ObsError

    try:
        budgets = obs_profile.load_budgets(args.budgets)
    except OSError as exc:
        print(f"repro-gap: cannot read budget file: {exc}",
              file=sys.stderr)
        return 1
    except ObsError as exc:
        print(f"repro-gap: {exc}", file=sys.stderr)
        return 1
    try:
        with open(args.bench) as handle:
            bench = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"repro-gap: cannot read bench file {args.bench!r}: "
              f"{exc}", file=sys.stderr)
        return 1
    if not isinstance(bench, dict):
        print(f"repro-gap: bench file {args.bench!r} is not a JSON "
              "object", file=sys.stderr)
        return 1
    report = obs_profile.check_budgets(budgets, bench, label=args.bench)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"perf budgets: {args.budgets} vs {args.bench}")
        print(report.render())
    if args.gate and not report.ok:
        return 3
    return 0


def _fault_spec(value: str) -> str:
    """argparse type for ``--inject-fault``: STAGE or ``slow:STAGE``.

    Valid stage names are the union across every registered backend's
    graph, resolved lazily (the registry imports the flow modules) so
    plain ``--help`` stays cheap.
    """
    from repro.flows.registry import registered_stage_names

    stages = registered_stage_names()
    stage = value[len("slow:"):] if value.startswith("slow:") else value
    if stage not in stages:
        raise argparse.ArgumentTypeError(
            f"unknown stage {stage!r} (choose from "
            f"{', '.join(stages)}, optionally as slow:STAGE)"
        )
    return value


def _style_list(text: str) -> list[str]:
    """Argparse type: comma-separated registered style names."""
    from repro.flows.registry import backend_names

    names = backend_names()
    values = [part.strip() for part in text.split(",") if part.strip()]
    if not values:
        raise argparse.ArgumentTypeError("expected at least one style")
    for value in values:
        if value not in names:
            raise argparse.ArgumentTypeError(
                f"unknown style {value!r} (choose from {', '.join(names)})"
            )
    if len(set(values)) != len(values):
        raise argparse.ArgumentTypeError("styles must be unique")
    return values


def _add_flow_args(parser: argparse.ArgumentParser,
                   grid: bool = False) -> None:
    """Register the design-point flags shared by ``flow`` and ``sweep``.

    One definition keeps the two subcommands' shared knobs (and their
    help wording) from drifting apart.  With ``grid=True`` the bits and
    stages axes take comma-separated lists (the sweep grid); otherwise
    they are scalars.
    """
    parser.add_argument("--workload", default=None,
                        help="workload (default: the style's default "
                             "workload)")
    if grid:
        parser.add_argument("--bits", type=_int_list, default=[4, 8],
                            metavar="N,N,...",
                            help="comma-separated bit widths (grid axis)")
        parser.add_argument("--stages", type=_int_list, default=[1],
                            metavar="N,N,...",
                            help="comma-separated pipeline depths "
                                 "(grid axis)")
    else:
        parser.add_argument("--bits", type=int, default=8)
        parser.add_argument("--stages", type=int, default=1)
    parser.add_argument("--sizing-moves", type=int, default=20)
    parser.add_argument("--seed", type=int, default=1,
                        help="placement / Monte Carlo RNG seed (a design-"
                             "point knob: part of every fingerprint)")
    parser.add_argument("--keep-going", action="store_true",
                        help="degrade through stage failures instead of "
                             "aborting; failures land in diagnostics")
    parser.add_argument("--inject-fault", metavar="STAGE", default=None,
                        type=_fault_spec,
                        help="deliberately fail the named stage; "
                             "slow:STAGE sleeps in it instead of failing "
                             "(regression-gate testing)")


def _obs_flags(parser: argparse.ArgumentParser,
               suppress: bool = False) -> None:
    """Register the global observability flags on a parser.

    The flags live on the main parser *and* on every subparser (with
    ``SUPPRESS`` defaults there, so a subparser parse does not clobber a
    value given before the subcommand); both ``repro-gap --profile gap``
    and ``repro-gap gap --profile`` work.
    """
    kwargs = {"default": argparse.SUPPRESS} if suppress else {}
    none_default = (
        {"default": argparse.SUPPRESS} if suppress else {"default": None}
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a JSON-lines span trace of the command to FILE",
        **none_default,
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-stage span/metric report after the command",
        **kwargs,
    )
    parser.add_argument(
        "--runs-dir", metavar="DIR",
        help="run-ledger directory (default .repro_runs/ or "
             "$REPRO_RUNS_DIR)",
        **none_default,
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not append a run record to the ledger",
        **kwargs,
    )
    parser.add_argument(
        "--events", metavar="FILE",
        help="stream live telemetry events to FILE as JSON lines "
             "(watch with `repro-gap top FILE`)",
        **none_default,
    )
    parser.add_argument(
        "--live", action="store_true",
        help="render a live progress dashboard on stderr while the "
             "command runs",
        **kwargs,
    )
    parser.add_argument(
        "--trace-chrome", metavar="FILE",
        help="write the span trace in Chrome Trace Event format "
             "(open in chrome://tracing or ui.perfetto.dev)",
        **none_default,
    )
    parser.add_argument(
        "--profile-cpu", action="store_true",
        help="attribute CPU seconds to every flow stage "
             "(time.process_time; lands in stage records and the "
             "ledger, including sweep workers)",
        **kwargs,
    )
    parser.add_argument(
        "--profile-mem", nargs="?", const="sampled",
        choices=("sampled", "trace"), metavar="MODE",
        help="attribute peak memory (KiB) to every flow stage. "
             "MODE 'sampled' (the default) polls the process RSS from "
             "a background thread at negligible cost; 'trace' uses "
             "tracemalloc for exact traced-heap peaks but instruments "
             "every allocation (roughly 10x slower)",
        **none_default,
    )
    parser.add_argument(
        "--flame", metavar="FILE",
        help="write a collapsed-stack flame graph of the command's "
             "spans to FILE (Brendan Gregg format; open in speedscope)."
             "  With --profile-cpu a cProfile-derived FILE.cpu rides "
             "along",
        **none_default,
    )
    parser.add_argument(
        "--heartbeat-s", type=float, metavar="S",
        help="sweep worker heartbeat interval in seconds "
             "(default 1.0)",
        **none_default,
    )
    parser.add_argument(
        "--stall-timeout", type=float, metavar="S",
        help="abort a sweep with a stall diagnostic (exit 4) when a "
             "busy worker sends no event for S seconds (default: off)",
        **none_default,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gap",
        description=(
            "Reproduction of Chinnery & Keutzer, 'Closing the Gap Between "
            "ASIC and Custom' (DAC 2000)."
        ),
    )
    _obs_flags(parser)
    obs_parent = argparse.ArgumentParser(add_help=False)
    _obs_flags(obs_parent, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "survey", help="Section 2 chip survey", parents=[obs_parent]
    ).set_defaults(func=_cmd_survey)
    sub.add_parser(
        "factors", help="Section 3 factor table", parents=[obs_parent]
    ).set_defaults(func=_cmd_factors)

    from repro.flows.registry import backend_names

    styles = backend_names()
    flow = sub.add_parser("flow", help="run one implementation flow",
                          parents=[obs_parent])
    flow.add_argument("style", nargs="?", choices=styles,
                      help="flow to run (optional with --list-stages)")
    _add_flow_args(flow)
    flow.add_argument("--target-fo4", type=float, default=None,
                      help="custom flow: pick the stage count landing "
                           "the cycle near this FO4 depth")
    flow.add_argument("--fabric-utilization", type=float, default=0.6,
                      help="structured flow: target maximum fabric site "
                           "utilization when picking the master")
    flow.add_argument("--poor-library", action="store_true")
    flow.add_argument("--sloppy-placement", action="store_true")
    flow.add_argument("--speed-test", action="store_true")
    flow.add_argument("--list-stages", action="store_true",
                      help="print the flow's stage graph (inputs, "
                           "outputs, params) and exit")
    flow.add_argument("--checkpoint", metavar="FILE", default=None,
                      help="snapshot the flow context here after every "
                           "stage (resume source)")
    flow.add_argument("--resume", action="store_true",
                      help="restore completed stages from --checkpoint "
                           "instead of recomputing them")
    flow.add_argument("--from", dest="from_stage", metavar="STAGE",
                      default=None,
                      help="with --resume, re-run from this stage even "
                           "if the checkpoint covers it")
    flow.add_argument("--until", metavar="STAGE", default=None,
                      help="stop after this stage and print the stage "
                           "records (checkpointable partial run)")
    flow.add_argument("--no-array", action="store_true",
                      help="run STA stages on the object engine instead "
                           "of the vectorized array engine")
    flow.add_argument("--check-array", action="store_true",
                      help="cross-check every array STA result against "
                           "the object engine (slow)")
    flow.add_argument("--no-cache", action="store_true",
                      help="disable the stage fingerprint cache for "
                           "this run")
    flow.add_argument("--json", action="store_true",
                      help="print the flow result as JSON")
    flow.set_defaults(func=_cmd_flow)

    gap = sub.add_parser(
        "gap",
        help="run implementation styles, decompose the measured gap",
        parents=[obs_parent],
    )
    gap.add_argument("--styles", type=_style_list, default=None,
                     metavar="S1,S2,...",
                     help="comma-separated styles to compare "
                          f"(registered: {', '.join(styles)}; "
                          "default asic,custom)")
    gap.add_argument("--baseline", default="asic", choices=styles,
                     help="style every factor is quoted against "
                          "(default asic)")
    gap.add_argument("--bits", type=int, default=8)
    gap.add_argument("--target-fo4", type=float, default=14.0)
    gap.add_argument("--sizing-moves", type=int, default=20)
    gap.add_argument("--keep-going", action="store_true",
                     help="degrade through stage failures instead of "
                          "aborting")
    gap.add_argument("--json", action="store_true",
                     help="print the results and the factors as JSON")
    gap.set_defaults(func=_cmd_gap)

    stats = sub.add_parser(
        "stats",
        help="instrumented gap run: spans, counters, histograms",
        parents=[obs_parent],
    )
    stats.add_argument("--bits", type=int, default=8)
    stats.add_argument("--target-fo4", type=float, default=14.0)
    stats.add_argument("--sizing-moves", type=int, default=20)
    stats.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="also write the flat metrics dump to FILE")
    stats.add_argument("--top", type=int, default=None, metavar="N",
                       help="print the N slowest spans (by self time) "
                            "from the last recorded run instead of "
                            "running anything")
    stats.add_argument("--self", dest="hotspots", action="store_true",
                       help="print the self-time hotspot rollup and "
                            "critical path of the last recorded run "
                            "instead of running anything")
    stats.add_argument("--prom", nargs="?", const="-", default=None,
                       metavar="FILE",
                       help="also emit the metrics registry in "
                            "Prometheus text exposition format (to "
                            "FILE, or stdout when no FILE is given)")
    stats.set_defaults(func=_cmd_stats)

    selftest = sub.add_parser(
        "selftest",
        help="fault-injection health check (exit 0 = all guards catch)",
        parents=[obs_parent],
    )
    selftest.add_argument("--seed", type=int, default=0,
                          help="fault-injection RNG seed")
    selftest.add_argument(
        "--disable-guard", action="append", default=[],
        metavar="NAME", choices=["finite", "retry", "bisection"],
        help="switch a named guard off first (repeatable); the selftest "
             "must then FAIL, proving the guard is load-bearing",
    )
    selftest.add_argument("--json", action="store_true",
                          help="print the scenario reports as JSON")
    selftest.set_defaults(func=_cmd_selftest)

    sweep = sub.add_parser(
        "sweep",
        help="fault-tolerant design-space sweep (exit 5 = quarantined "
             "points)",
        parents=[obs_parent],
    )
    sweep.add_argument("style", choices=styles, help="flow to sweep")
    _add_flow_args(sweep, grid=True)
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--cache-dir", default=None,
                       help="shared on-disk stage cache directory")
    sweep.add_argument("--resume-sweep", action="store_true",
                       help="replay points already completed in the run "
                            "ledger instead of recomputing them")
    sweep.add_argument("--max-attempts", type=int, default=3,
                       help="tries per task before quarantine")
    sweep.add_argument("--backoff-s", type=float, default=0.05,
                       help="base retry backoff (deterministic "
                            "exponential)")
    sweep.add_argument("--task-timeout", type=float, default=None,
                       metavar="S",
                       help="per-task wall-clock budget; a hung worker "
                            "is killed and the task retried")
    sweep.add_argument("--no-retry", action="store_true",
                       help="fail fast: first failure aborts the sweep")
    sweep.add_argument("--chaos", type=_chaos_spec, default=None,
                       metavar="SPEC",
                       help="inject a process-level fault: kill-worker:N,"
                            " hang-task:N, crash-task:N, or "
                            "corrupt-result:N (N = task index)")
    sweep.add_argument("--json", action="store_true",
                       help="print the sweep report as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    roadmap = sub.add_parser("roadmap", help="project the gap forward",
                             parents=[obs_parent])
    roadmap.add_argument("--generations", type=int, default=4)
    roadmap.add_argument("--initial-gap", type=float, default=8.0)
    roadmap.set_defaults(func=_cmd_roadmap)

    library = sub.add_parser("library", help="summarise/export a library",
                             parents=[obs_parent])
    library.add_argument(
        "--kind", choices=["rich", "poor", "custom", "domino"],
        default="rich",
    )
    library.add_argument("--technology", default="cmos250_asic")
    library.add_argument("--liberty", default=None,
                         help="write Liberty-style text to this path")
    library.set_defaults(func=_cmd_library)

    variation = sub.add_parser("variation", help="Section 8 die population",
                               parents=[obs_parent])
    variation.add_argument("--nominal", type=float, default=400.0)
    variation.add_argument("--process", choices=["new", "mature"],
                           default="new")
    variation.add_argument("--count", type=int, default=20000)
    variation.add_argument("--seed", type=int, default=1)
    variation.add_argument("--workers", type=int, default=1,
                           help="sweep worker processes (deterministic "
                                "for any value)")
    variation.set_defaults(func=_cmd_variation)

    bench = sub.add_parser(
        "bench",
        help="wall-time the hot paths (sweep runner + incremental STA)",
        parents=[obs_parent],
    )
    bench.add_argument("--workers", type=int, default=1,
                       help="Monte Carlo sweep worker processes")
    bench.add_argument("--count", type=int, default=30000,
                       help="Monte Carlo dies to sample")
    bench.add_argument("--seed", type=int, default=17)
    bench.add_argument("--bits", type=int, default=8)
    bench.add_argument("--sizing-moves", type=int, default=20)
    bench.add_argument("--mc-samples", type=int, default=2000,
                       help="netlist Monte Carlo samples for the "
                            "batched-vs-sequential STA comparison")
    bench.add_argument("--no-cache", action="store_true",
                       help="disable the memo caches for this run "
                            "(baseline comparison)")
    bench.add_argument("--json", action="store_true",
                       help="print wall times and cache stats as JSON")
    bench.set_defaults(func=_cmd_bench)

    top = sub.add_parser(
        "top",
        help="render a dashboard from a --events JSONL stream",
        parents=[obs_parent],
    )
    top.add_argument("events_file",
                     help="event stream written by --events FILE")
    top.add_argument("--follow", action="store_true",
                     help="keep polling the file and repainting until "
                          "interrupted (watch a run in progress)")
    top.add_argument("--interval", type=float, default=0.5, metavar="S",
                     help="poll/repaint interval in seconds "
                          "(default 0.5)")
    top.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="with --follow, stop after S seconds")
    top.set_defaults(func=_cmd_top)

    runs = sub.add_parser(
        "runs",
        help="inspect the persistent run ledger",
        parents=[obs_parent],
    )
    runs_sub = runs.add_subparsers(dest="runs_cmd", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="list recorded runs, oldest first"
    )
    runs_list.add_argument("--kind", default=None,
                           help="only show runs of this kind "
                                "(flow, bench, sweep, variation, ...)")
    runs_list.add_argument("--last", type=int, default=None, metavar="N",
                           help="only show the newest N records")
    runs_show = runs_sub.add_parser(
        "show", help="render one run record (claims, waterfall, spans)"
    )
    runs_show.add_argument("run", nargs="?", default="last",
                           help="run id (unique prefix) or 'last'")
    runs_show.add_argument("--json", action="store_true",
                           help="print the raw record as JSON")
    runs_diff = runs_sub.add_parser(
        "diff", help="compare two run records stage by stage"
    )
    runs_diff.add_argument("run_a", help="baseline run id (prefix)")
    runs_diff.add_argument("run_b", nargs="?", default="last",
                           help="run id to compare (default 'last')")
    runs_regress = runs_sub.add_parser(
        "regress",
        help="check a run against the median of its matching baselines",
    )
    runs_regress.add_argument("run", nargs="?", default="last",
                              help="run id under test (default 'last')")
    runs_regress.add_argument("--gate", action="store_true",
                              help="exit nonzero when a fail-severity "
                                   "finding is present")
    runs_regress.add_argument("--wall-frac", type=float, default=0.5,
                              help="relative wall-time excess that "
                                   "flags a regression (default 0.5)")
    runs_regress.add_argument("--wall-abs", type=float, default=0.02,
                              help="absolute wall-time excess floor in "
                                   "seconds (default 0.02)")
    runs_regress.add_argument("--baseline-n", type=int, default=5,
                              help="matching runs feeding the median "
                                   "baseline (default 5)")
    runs_regress.add_argument("--json", action="store_true",
                              help="print the report as JSON")
    runs.set_defaults(func=_cmd_runs)

    budget = sub.add_parser(
        "budget",
        help="check benchmark numbers against PERF_BUDGETS.toml "
             "ceilings (exit 3 with --gate on a blown budget)",
        parents=[obs_parent],
    )
    budget.add_argument("--budgets", default="PERF_BUDGETS.toml",
                        metavar="FILE",
                        help="budget ceilings (default "
                             "PERF_BUDGETS.toml)")
    budget.add_argument("--bench", default="BENCH_paperbench.json",
                        metavar="FILE",
                        help="measured numbers (default "
                             "BENCH_paperbench.json)")
    budget.add_argument("--gate", action="store_true",
                        help="exit 3 when any measurement is over its "
                             "ceiling")
    budget.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    budget.set_defaults(func=_cmd_budget)
    return parser


def _write_spans(writer, trace_path: str, what: str) -> int | None:
    """Export the finished span tree; None means the write failed."""
    from repro import obs

    try:
        return writer(obs.get_tracer(), trace_path)
    except OSError as exc:
        print(f"repro-gap: cannot write {what}: {exc}", file=sys.stderr)
        return None


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from repro.obs import ledger as run_ledger

    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    chrome_path = getattr(args, "trace_chrome", None)
    profile = getattr(args, "profile", False)
    profile_cpu = bool(getattr(args, "profile_cpu", False))
    profile_mem = getattr(args, "profile_mem", None)  # None, sampled, trace
    flame_path = getattr(args, "flame", None)
    events_path = getattr(args, "events", None)
    live_flag = bool(getattr(args, "live", False))
    heartbeat_s = getattr(args, "heartbeat_s", None)
    stall_timeout = getattr(args, "stall_timeout", None)
    run_ledger.configure(getattr(args, "runs_dir", None))
    run_ledger.set_enabled(not getattr(args, "no_ledger", False))
    if profile_cpu or profile_mem:
        from repro.obs import profile as obs_profile

        obs_profile.configure(cpu=profile_cpu,
                              mem=profile_mem if profile_mem else None)
    capture = bool(trace_path or chrome_path or profile or flame_path)
    streaming = bool(live_flag or events_path is not None
                     or heartbeat_s is not None
                     or stall_timeout is not None)
    dashboard = None
    stall_errors: tuple = ()
    if streaming:
        from repro.obs import live as obs_live
        from repro.par.sweep import SweepStallError

        stall_errors = (SweepStallError,)
        if heartbeat_s is not None or stall_timeout is not None:
            obs_live.configure_watch(
                heartbeat_s=(heartbeat_s if heartbeat_s is not None
                             else obs_live.DEFAULT_HEARTBEAT_S),
                stall_timeout_s=stall_timeout,
            )
        bus = obs_live.enable(jsonl=events_path)
        if live_flag:
            dashboard = obs_live.Dashboard()
            bus.add_callback(dashboard)
    try:
        if capture:
            from repro import obs

            obs.enable()
        cpu_profiler = None
        if flame_path and profile_cpu:
            import cProfile

            cpu_profiler = cProfile.Profile()
        try:
            if cpu_profiler is not None:
                cpu_profiler.enable()
            code = args.func(args)
        except stall_errors as exc:
            # A worker went silent past --stall-timeout: report the
            # structured diagnostic instead of hanging (exit 4).
            print(f"repro-gap: {exc}", file=sys.stderr)
            for report in getattr(exc, "reports", []):
                print(f"repro-gap:   {report.get('source', '?')}: "
                      f"silent {report.get('silent_s', 0.0):.2f} s "
                      f"(task {report.get('task', '?')!r}, last event "
                      f"{report.get('last_kind', '?')!r})",
                      file=sys.stderr)
            return 4
        finally:
            if cpu_profiler is not None:
                cpu_profiler.disable()
            if capture:
                from repro import obs

                obs.disable()
        if capture:
            from repro import obs

            if trace_path:
                spans = _write_spans(obs.write_trace, trace_path, "trace")
                if spans is None:
                    return 1
                print(f"wrote {spans} spans to {trace_path}",
                      file=sys.stderr)
            if chrome_path:
                spans = _write_spans(obs.write_chrome_trace, chrome_path,
                                     "chrome trace")
                if spans is None:
                    return 1
                print(f"wrote {spans} spans to {chrome_path} "
                      "(chrome://tracing)", file=sys.stderr)
            if flame_path:
                from repro.obs import profile as obs_profile

                try:
                    stacks = obs_profile.write_collapsed(
                        obs_profile.spans_to_collapsed(
                            obs.get_tracer().finished()),
                        flame_path,
                    )
                except OSError as exc:
                    print(f"repro-gap: cannot write flame graph: {exc}",
                          file=sys.stderr)
                    return 1
                print(f"wrote {stacks} flame stacks to {flame_path} "
                      "(collapsed; open in speedscope)", file=sys.stderr)
                if cpu_profiler is not None:
                    try:
                        stacks = obs_profile.write_collapsed(
                            obs_profile.cprofile_to_collapsed(
                                cpu_profiler),
                            flame_path + ".cpu",
                        )
                    except OSError as exc:
                        print(f"repro-gap: cannot write CPU flame "
                              f"graph: {exc}", file=sys.stderr)
                        return 1
                    print(f"wrote {stacks} CPU flame stacks to "
                          f"{flame_path}.cpu (cProfile)",
                          file=sys.stderr)
            if profile:
                print()
                print(obs.render_report())
        return code
    finally:
        if streaming:
            from repro.obs import live as obs_live

            if dashboard is not None:
                try:
                    dashboard.stream.write(dashboard.final() + "\n")
                    dashboard.stream.flush()
                except OSError:
                    pass
            sink = obs_live.sink_path()
            if sink:
                print(f"wrote live events to {sink}", file=sys.stderr)
            obs_live.disable()
        if profile_cpu or profile_mem:
            from repro.obs import profile as obs_profile

            obs_profile.reset_state()
        run_ledger.set_enabled(False)
        run_ledger.configure(None)


def _entry() -> int:
    """Console-script wrapper: exit quietly when stdout's pipe closes.

    ``repro-gap top events.jsonl | head`` closes our stdout mid-print;
    that is normal pipeline behaviour, not an error worth a traceback.
    """
    try:
        return main()
    except BrokenPipeError:
        # Detach stdout so the interpreter's shutdown flush does not
        # raise a second BrokenPipeError after we have handled this one.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(_entry())
