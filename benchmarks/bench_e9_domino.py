"""E9 -- Section 7: dynamic (domino) logic on critical paths.

Claims measured on real gate-level mappings (static CMOS vs dual-rail
domino of the same functions):

* "dynamic logic functions ... are 50% to 100% faster than static CMOS
  combinational logic with the same functionality";
* "this implies that sequential circuitry using dynamic logic will be
  about 50% faster";
* domino's costs: higher power, thinner noise margins (the reasons
  "dynamic logic libraries are not available for ASIC design").
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import (
    domino_library,
    estimate_power,
    rich_asic_library,
)
from repro.circuit import (
    NoiseEnvironment,
    audit_noise,
    domino_map,
    sequential_speedup_from_combinational,
)
from repro.sta import analyze, asic_clock
from repro.synth import map_design, parse_expression
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

#: Representative critical-path functions (wide AND-OR cones, carry
#: logic, a selector) -- the structures domino excels at.
FUNCTIONS = {
    "wide_and_or": "(a & b & c & d) | (e & f & g & h)",
    "carry": "(a & b) | (c & (a | b))",
    "selector": "(a & b & ~s) | (c & d & s)",
    "sum_of_products": "(a & b) | (c & d) | (e & f) | (g & h)",
}


def _measure():
    static_lib = rich_asic_library(CMOS250_ASIC)
    dyn_lib = domino_library(CMOS250_CUSTOM)
    clock = asic_clock(10000.0)
    ratios = {}
    power_ratio = None
    for name, text in FUNCTIONS.items():
        expr = parse_expression(text)
        static_mod = map_design({"y": expr}, static_lib)
        domino_mod = domino_map({"y": expr}, dyn_lib)
        r_static = analyze(static_mod, static_lib, clock)
        r_domino = analyze(domino_mod, dyn_lib, clock)
        # Compare in FO4 of each family's own technology so the process
        # difference doesn't contaminate the circuit-family factor.
        static_fo4 = r_static.min_period_ps / CMOS250_ASIC.fo4_delay_ps
        domino_fo4 = r_domino.min_period_ps / CMOS250_CUSTOM.fo4_delay_ps
        ratios[name] = static_fo4 / domino_fo4
        if name == "wide_and_or":
            p_static = estimate_power(static_mod, static_lib, 250.0)
            p_domino = estimate_power(domino_mod, dyn_lib, 250.0)
            power_ratio = p_domino.total_uw / p_static.total_uw
    return ratios, power_ratio, static_lib, dyn_lib


def test_e9_domino(benchmark):
    ratios, power_ratio, static_lib, dyn_lib = run_once(benchmark, _measure)
    mean_ratio = sum(ratios.values()) / len(ratios)

    print()
    print("per-function combinational speedups (static FO4 / domino FO4):")
    for name, ratio in sorted(ratios.items()):
        print(f"  {name:<18s} {ratio:5.2f}x")

    seq = sequential_speedup_from_combinational(mean_ratio, 0.75)
    env = NoiseEnvironment(coupling_fraction=0.15)
    static_violations = len(
        audit_noise(
            map_design(
                {"y": parse_expression(FUNCTIONS["carry"])}, static_lib
            ),
            static_lib, env,
        )
    )
    domino_violations = len(
        audit_noise(
            domino_map(
                {"y": parse_expression(FUNCTIONS["carry"])}, dyn_lib
            ),
            dyn_lib, env,
        )
    )

    rows = [
        row("domino combinational speedup (mean)", "1.5x-2.0x",
            mean_ratio, 1.4, 2.6),
        row("implied sequential speedup", "~1.5x", seq, 1.3, 1.9),
        row("domino power penalty (same function)", "higher power",
            power_ratio, 1.3, 6.0),
        row("noise violations at 15% coupling (domino)", "susceptible",
            float(domino_violations), 1.0, 100.0, fmt="{:.0f} gates"),
        row("noise violations at 15% coupling (static)", "robust",
            float(static_violations), 0.0, 0.0, fmt="{:.0f} gates"),
    ]
    report("E9  Dynamic logic on critical paths (Section 7)", rows)
    for entry in rows:
        assert entry.ok, entry
    assert all(r > 1.2 for r in ratios.values())
