"""Sequential-boundary utilities: registering a combinational block.

The paper's cycle-time arithmetic is always register-to-register; these
helpers wrap a combinational netlist with input and output registers so
the STA engine sees genuine launch and capture overheads, and swap
flip-flop boundaries for transparent latches when a flow wants to model
time borrowing (Section 4.1).
"""

from __future__ import annotations

from repro.cells.cell import CellKind
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.sta.timing_graph import TimingError


def register_boundaries(
    module: Module,
    library: CellLibrary,
    clock_name: str = "clk",
    use_latches: bool = False,
    register_inputs: bool = True,
    register_outputs: bool = True,
) -> Module:
    """Wrap a combinational module with boundary registers.

    Every input port gains an input register and every output port an
    output register; the original logic is copied in between.  The
    returned module's critical path is therefore a true reg-to-reg path.

    Args:
        module: combinational netlist to wrap.
        library: provides the flop/latch cells.
        clock_name: name of the added clock port.
        use_latches: capture with transparent latches instead of flops.
        register_inputs: register the input side.
        register_outputs: register the output side.
    """
    seq_cell = library.latch() if use_latches else library.flip_flop()
    clock_pin = seq_cell.sequential.clock_pin
    for inst in module.iter_instances():
        if library.get(inst.cell_name).is_sequential:
            raise TimingError(
                f"module {module.name} already contains sequential element "
                f"{inst.name}; register_boundaries expects pure logic"
            )

    wrapped = Module(f"{module.name}_reg")
    clk = wrapped.add_input(clock_name)
    port_map: dict[str, str] = {}
    for port in module.inputs():
        outer = wrapped.add_input(port)
        if register_inputs:
            inner = wrapped.add_net(f"{port}_r")
            wrapped.add_instance(
                f"in_reg_{port}",
                seq_cell.name,
                inputs={"D": outer, clock_pin: clk},
                outputs={seq_cell.output: inner},
            )
            port_map[port] = inner
        else:
            port_map[port] = outer

    out_ports = set(module.outputs())
    out_remap = (
        {p: f"{p}_pre" for p in out_ports} if register_outputs else {}
    )
    for inst in module.iter_instances():
        inputs = {}
        for pin, net in inst.inputs.items():
            mapped = port_map.get(net, out_remap.get(net, net))
            inputs[pin] = mapped
        outputs = {}
        for pin, net in inst.outputs.items():
            outputs[pin] = out_remap.get(net, net)
        wrapped.add_instance(
            inst.name, inst.cell_name, inputs=inputs, outputs=outputs,
            **dict(inst.attributes),
        )

    for port in module.outputs():
        wrapped.add_output(port)
        if register_outputs:
            wrapped.add_instance(
                f"out_reg_{port}",
                seq_cell.name,
                inputs={"D": f"{port}_pre", clock_pin: clk},
                outputs={seq_cell.output: port},
            )
    # Inputs that feed outputs directly are not supported; modules built by
    # our generators always drive outputs from gates, so the port wiring
    # above is complete.
    wrapped.assert_well_formed()
    return wrapped


def sequential_overhead_ps(library: CellLibrary, use_latches: bool = False) -> float:
    """Setup + clk->Q of the library's default sequential element."""
    cell = library.latch() if use_latches else library.flip_flop()
    return cell.sequential.overhead_ps
