"""Buffer insertion for heavy loads and high fanout.

Section 6: "Additional buffers may be included to drive large capacitive
loads that would be charged and discharged too slowly otherwise."  The
pass finds nets whose load exceeds the driver's optimal range and splits
them with buffers (a balanced buffer tree for very wide fanout), then
lets the sizer pick final drives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref
from repro.sizing.logical_effort import SizingError


@dataclass(frozen=True)
class BufferingResult:
    """Summary of one buffering pass.

    Attributes:
        buffers_added: number of buffer instances inserted.
        nets_split: number of original nets that were relieved.
    """

    buffers_added: int
    nets_split: int


def net_load_ff(module: Module, library: CellLibrary, net: str,
                port_load_ff: float) -> float:
    """Capacitive load on a net from its sink pins (plus port allowance)."""
    load = 0.0
    for sink in module.sinks_of(net):
        if is_port_ref(sink):
            load += port_load_ff
            continue
        inst_name, pin = sink
        load += library.get(module.instance(inst_name).cell_name).input_cap_ff(pin)
    return load


def buffer_high_fanout(
    module: Module,
    library: CellLibrary,
    max_fanout: int = 8,
    max_load_ratio: float = 1.0,
) -> BufferingResult:
    """Split overloaded nets with buffers; mutates the module in place.

    A net is relieved when its sink count exceeds ``max_fanout`` or its
    load exceeds ``max_load_ratio`` times the driving cell's limit.  Sinks
    are partitioned into groups behind fresh buffers (one level; repeated
    passes build trees).

    Args:
        module: netlist to buffer.
        library: must stock a BUF (or INV pair fallback is NOT applied --
            buffering without a buffer cell raises).

    Raises:
        SizingError: if the library stocks no buffer.
    """
    if not library.has_base("BUF"):
        raise SizingError(f"library {library.name} stocks no BUF cell")
    if max_fanout < 2:
        raise SizingError("max fanout must be at least 2")
    port_load = 4.0 * library.technology.unit_input_cap_ff
    buffers_added = 0
    nets_split = 0
    for net_name in list(module.nets):
        driver = module.driver_of(net_name)
        if driver is None:
            continue
        sinks = [s for s in module.sinks_of(net_name) if not is_port_ref(s)]
        if not sinks:
            continue
        overload = False
        if len(sinks) > max_fanout:
            overload = True
        if isinstance(driver, tuple):
            drv_cell = library.get(module.instance(driver[0]).cell_name)
            load = net_load_ff(module, library, net_name, port_load)
            if load > max_load_ratio * drv_cell.max_load_ff:
                overload = True
        if not overload:
            continue
        nets_split += 1
        groups = [
            sinks[i: i + max_fanout] for i in range(0, len(sinks), max_fanout)
        ]
        for group in groups:
            group_load = sum(
                library.get(module.instance(i).cell_name).input_cap_ff(p)
                for i, p in group
            )
            # Match the buffer's drive to the load it will carry.
            buffer_cell = library.select_drive("BUF", group_load)
            buf_out = module.add_net()
            module.add_instance(
                None,
                buffer_cell.name,
                inputs={"A": net_name},
                outputs={"Y": buf_out},
            )
            buffers_added += 1
            for inst_name, pin in group:
                inst = module.instance(inst_name)
                # Re-point the sink pin at the buffered copy.
                module.net(net_name).sinks.remove((inst_name, pin))
                inst.inputs[pin] = buf_out
                module.net(buf_out).sinks.append((inst_name, pin))
    return BufferingResult(buffers_added=buffers_added, nets_split=nets_split)
