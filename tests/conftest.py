"""Shared test fixtures."""

import pytest

from repro.flows import cache as stage_cache


@pytest.fixture(autouse=True)
def _cold_stage_cache():
    """Start every test with an empty stage cache.

    The process-global flow stage cache is deliberately warm across runs
    in production, but tests assert on inner-stage spans and metrics
    that a cache replay would (correctly) skip -- so each test gets a
    cold cache and whatever it warms is dropped afterwards.
    """
    stage_cache.reset()
    stage_cache.configure(None)
    stage_cache.set_enabled(True)
    yield
    stage_cache.reset()
    stage_cache.configure(None)
    stage_cache.set_enabled(True)
