"""Unit tests for the STA engine, FO4 metrics and sequential wrapping."""

import pytest

from repro.cells import custom_library, rich_asic_library
from repro.datapath import kogge_stone_adder, ripple_carry_adder
from repro.netlist import Module
from repro.sta import (
    TimingError,
    WireParasitics,
    analyze,
    asic_clock,
    custom_clock,
    fo4_depth,
    fo4_logic_depth,
    format_comparison,
    format_report,
    register_boundaries,
    sequential_overhead_ps,
)
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

RICH = rich_asic_library(CMOS250_ASIC)
CUSTOM = custom_library(CMOS250_CUSTOM)
CLK = asic_clock(10000.0)


def inv_chain(library, n, drive_suffix="X2"):
    m = Module(f"chain{n}")
    prev = m.add_input("a")
    for i in range(n):
        out = f"w{i}"
        m.add_instance(f"i{i}", f"INV_{drive_suffix}", inputs={"A": prev},
                       outputs={"Y": out})
        prev = out
    m.add_output("y")
    m.add_instance("last", f"INV_{drive_suffix}", inputs={"A": prev},
                   outputs={"Y": "y"})
    return m


class TestCombinationalAnalysis:
    def test_longer_chain_longer_delay(self):
        r4 = analyze(inv_chain(RICH, 4), RICH, CLK)
        r8 = analyze(inv_chain(RICH, 8), RICH, CLK)
        assert r8.min_period_ps > r4.min_period_ps

    def test_critical_path_traced(self):
        report = analyze(inv_chain(RICH, 4), RICH, CLK)
        assert len(report.critical_path) == 5
        arrivals = [s.arrival_ps for s in report.critical_path]
        assert arrivals == sorted(arrivals)
        assert report.critical.kind == "port"

    def test_wire_parasitics_slow_the_path(self):
        m = inv_chain(RICH, 4)
        base = analyze(m, RICH, CLK)
        wire = WireParasitics(
            extra_cap_ff={"w1": 50.0}, extra_delay_ps={"w2": 200.0}
        )
        loaded = analyze(m, RICH, CLK, wire=wire)
        assert loaded.min_period_ps > base.min_period_ps + 150.0

    def test_parallel_paths_max_wins(self):
        m = Module("par")
        m.add_input("a")
        m.add_output("y")
        # Slow branch: 3 inverters; fast branch: 1 inverter; NAND joins.
        m.add_instance("s1", "INV_X2", inputs={"A": "a"}, outputs={"Y": "w1"})
        m.add_instance("s2", "INV_X2", inputs={"A": "w1"}, outputs={"Y": "w2"})
        m.add_instance("s3", "INV_X2", inputs={"A": "w2"}, outputs={"Y": "w3"})
        m.add_instance("f1", "INV_X2", inputs={"A": "a"}, outputs={"Y": "w4"})
        m.add_instance(
            "join", "NAND2_X2", inputs={"A": "w3", "B": "w4"}, outputs={"Y": "y"}
        )
        report = analyze(m, RICH, CLK)
        path_instances = [s.instance for s in report.critical_path]
        assert "s3" in path_instances
        assert "f1" not in path_instances

    def test_undriven_input_raises(self):
        m = Module("bad")
        m.add_output("y")
        m.add_instance("g", "INV_X2", inputs={"A": "floating"}, outputs={"Y": "y"})
        with pytest.raises(TimingError):
            analyze(m, RICH, CLK)

    def test_no_endpoints_raises(self):
        m = Module("empty")
        m.add_input("a")
        with pytest.raises(TimingError, match="no timing endpoints"):
            analyze(m, RICH, CLK)

    def test_slack_and_meets(self):
        report = analyze(inv_chain(RICH, 4), RICH, CLK)
        assert report.meets()  # 10 ns is generous
        tight = report.min_period_ps * 0.5
        assert not report.meets(tight)
        assert report.worst_slack_ps(tight) < 0


class TestSequentialAnalysis:
    def _registered_chain(self, n=6, library=RICH):
        comb = inv_chain(library, n)
        return register_boundaries(comb, library)

    def test_registered_paths_include_overheads(self):
        wrapped = self._registered_chain()
        report = analyze(wrapped, RICH, CLK)
        assert report.critical.kind == "register"
        assert report.critical.launch_overhead_ps > 0
        assert report.critical.capture_overhead_ps > 0
        assert report.critical.skew_ps == pytest.approx(CLK.skew_ps)

    def test_min_period_decomposition(self):
        wrapped = self._registered_chain()
        report = analyze(wrapped, RICH, CLK)
        crit = report.critical
        assert report.min_period_ps == pytest.approx(
            crit.data_arrival_ps + crit.capture_overhead_ps + crit.skew_ps
            - crit.borrow_ps
        )

    def test_overhead_fraction_reasonable(self):
        from repro.sta.engine import solve_min_period

        wrapped = self._registered_chain(4)
        # Solve self-consistently so the 10% skew is 10% of the achieved
        # period, not of the loose analysis clock.
        report = solve_min_period(wrapped, RICH, CLK)
        # Short pipeline stage: overhead is a large slice (Section 4: ~30%).
        assert 0.25 < report.overhead_fraction() < 0.75

    def test_solve_min_period_fixed_point(self):
        from repro.sta.engine import solve_min_period

        wrapped = self._registered_chain(8)
        report = solve_min_period(wrapped, RICH, CLK)
        # At the fixed point, the clock's period equals the min period and
        # the charged skew is 10% of it.
        assert report.clock.period_ps == pytest.approx(
            report.min_period_ps, abs=1.0
        )
        assert report.critical.skew_ps == pytest.approx(
            0.10 * report.min_period_ps, rel=0.02
        )

    def test_latch_borrowing_reduces_period(self):
        comb = inv_chain(RICH, 6)
        flops = register_boundaries(comb, RICH, use_latches=False)
        latches = register_boundaries(comb, RICH, use_latches=True)
        clk = custom_clock(10000.0)
        r_flop = analyze(flops, RICH, clk)
        r_latch = analyze(latches, RICH, clk)
        assert r_latch.min_period_ps < r_flop.min_period_ps

    def test_hold_checked(self):
        # A direct flop-to-flop connection is a canonical hold risk.
        m = Module("h")
        m.add_input("clk")
        m.add_input("d")
        m.add_output("q")
        ff = RICH.flip_flop().name
        m.add_instance("f1", ff, inputs={"D": "d", "CK": "clk"},
                       outputs={"Q": "m"})
        m.add_instance("f2", ff, inputs={"D": "m", "CK": "clk"},
                       outputs={"Q": "q"})
        report = analyze(m, RICH, asic_clock(5000.0))
        # With 10% skew at 5 ns (500 ps) and small clk->Q, hold must fail.
        assert report.hold_violations
        assert report.hold_violations[0].slack_ps < 0

    def test_register_boundaries_rejects_sequential_input(self):
        m = Module("seqin")
        m.add_input("clk")
        m.add_input("d")
        m.add_output("q")
        m.add_instance(
            "ff", RICH.flip_flop().name,
            inputs={"D": "d", "CK": "clk"}, outputs={"Q": "q"},
        )
        with pytest.raises(TimingError, match="already contains"):
            register_boundaries(m, RICH)

    def test_sequential_overhead_helper(self):
        assert sequential_overhead_ps(RICH) > sequential_overhead_ps(
            RICH, use_latches=True
        )


class TestFO4AndReports:
    def test_fo4_depth_of_registered_adder(self):
        adder = ripple_carry_adder(8, RICH)
        wrapped = register_boundaries(adder, RICH)
        report = analyze(wrapped, RICH, CLK)
        depth = fo4_depth(report, CMOS250_ASIC)
        logic = fo4_logic_depth(report, CMOS250_ASIC)
        assert depth > logic > 3
        assert depth == pytest.approx(
            report.min_period_ps / CMOS250_ASIC.fo4_delay_ps
        )

    def test_fast_adder_fewer_fo4(self):
        slow = register_boundaries(ripple_carry_adder(16, RICH), RICH)
        fast = register_boundaries(kogge_stone_adder(16, RICH), RICH)
        r_slow = analyze(slow, RICH, CLK)
        r_fast = analyze(fast, RICH, CLK)
        assert fo4_depth(r_fast, CMOS250_ASIC) < fo4_depth(r_slow, CMOS250_ASIC)

    def test_format_report_smoke(self):
        report = analyze(self_registered(), RICH, CLK)
        text = format_report(report, CMOS250_ASIC)
        assert "min period" in text
        assert "critical path" in text
        assert "FO4" in text

    def test_format_comparison_smoke(self):
        r1 = analyze(inv_chain(RICH, 2), RICH, CLK)
        r2 = analyze(inv_chain(RICH, 6), RICH, CLK)
        text = format_comparison([("short", r1), ("long", r2)], CMOS250_ASIC)
        assert "short" in text and "long" in text


def self_registered():
    return register_boundaries(inv_chain(RICH, 5), RICH)
