"""Skew-tolerant domino clocking (Harris & Horowitz, paper reference [15]).

The paper cites "Skew-Tolerant Domino Circuits" as the source of its FO4
methodology; the technique itself is the logical endpoint of Section 7:
with overlapping clock phases, domino pipelines hide *both* latch delay
and clock skew inside the overlap, removing essentially all sequencing
overhead from the cycle.

The model: a cycle is divided into ``phases`` overlapping domino clock
phases.  Each phase's evaluation window overlaps the next by
``overlap_fraction`` of a phase; skew up to the overlap (minus a hold
guard) is absorbed rather than charged against the period, and there are
no explicit latches (the domino gates themselves hold state dynamically).

    conventional cycle = logic + latch + skew
    skew-tolerant      = logic + max(0, skew - overlap budget)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.families import FamilyError


@dataclass(frozen=True)
class SkewTolerantClocking:
    """A skew-tolerant domino clocking plan.

    Attributes:
        phases: number of overlapping clock phases per cycle (the
            reference design style uses 4).
        overlap_fraction: fraction of one phase by which adjacent phases
            overlap (evaluation windows).
        hold_guard_fraction: part of the overlap reserved against
            min-delay (hold) races, not available for skew absorption.
    """

    phases: int = 4
    overlap_fraction: float = 0.5
    hold_guard_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.phases < 2:
            raise FamilyError("need at least two overlapping phases")
        if not 0.0 < self.overlap_fraction <= 1.0:
            raise FamilyError("overlap fraction must be in (0, 1]")
        if not 0.0 <= self.hold_guard_fraction < self.overlap_fraction:
            raise FamilyError("hold guard must be below the overlap")

    def skew_budget_fraction(self) -> float:
        """Skew absorbable per cycle, as a fraction of the cycle.

        Each phase spans 1/phases of the cycle; the usable overlap is
        ``(overlap - guard) / phases`` per phase boundary, and the
        critical path crosses every boundary once per cycle, so the
        budget compounds to the per-phase value.
        """
        return (
            (self.overlap_fraction - self.hold_guard_fraction) / self.phases
        )

    def cycle_fo4(
        self,
        logic_fo4: float,
        skew_fraction: float,
        latch_fo4: float = 0.0,
    ) -> float:
        """Cycle depth under this clocking plan.

        Args:
            logic_fo4: combinational work per cycle.
            skew_fraction: raw clock skew as a fraction of the cycle.
            latch_fo4: explicit latch overhead (0 for pure domino
                pipelines -- the gates themselves latch).
        """
        if logic_fo4 <= 0:
            raise FamilyError("logic depth must be positive")
        if not 0.0 <= skew_fraction < 1.0:
            raise FamilyError("skew fraction must be in [0, 1)")
        charged_skew = max(0.0, skew_fraction - self.skew_budget_fraction())
        work = logic_fo4 + latch_fo4
        return work / (1.0 - charged_skew)


def conventional_cycle_fo4(
    logic_fo4: float, skew_fraction: float, latch_fo4: float
) -> float:
    """Flop-based cycle: logic + latch, inflated by the full skew budget."""
    if logic_fo4 <= 0 or latch_fo4 < 0:
        raise FamilyError("invalid cycle components")
    if not 0.0 <= skew_fraction < 1.0:
        raise FamilyError("skew fraction must be in [0, 1)")
    return (logic_fo4 + latch_fo4) / (1.0 - skew_fraction)


def skew_tolerance_speedup(
    logic_fo4: float,
    skew_fraction: float = 0.10,
    latch_fo4: float = 3.0,
    clocking: SkewTolerantClocking | None = None,
) -> float:
    """Cycle-time gain of skew-tolerant domino over a flop-based pipeline.

    For a 10-FO4-logic stage with 3 FO4 of flop overhead and 10% skew the
    technique recovers the full overhead -- the mechanism that let the
    Alpha/PowerPC class hide their sequencing cost and a key reason
    custom domino pipelines reached 13-15 FO4 cycles.
    """
    plan = clocking or SkewTolerantClocking()
    conventional = conventional_cycle_fo4(logic_fo4, skew_fraction, latch_fo4)
    tolerant = plan.cycle_fo4(logic_fo4, skew_fraction)
    return conventional / tolerant
