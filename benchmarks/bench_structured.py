"""Spectrum -- the structured-ASIC point between ASIC and custom.

The paper's Section 2 survey treats ASIC and custom as the endpoints
of a methodology spectrum.  The structured backend implements the
middle point (prefab slot fabric, characterised fixed H-tree,
speed-binned quoting); this bench asserts it lands *between* the
endpoints on every timing axis while paying the prefab area penalty,
and that the classic asic:custom decomposition is unchanged by the
registry refactor.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.core import analyze_multi_gap
from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    StructuredFlowOptions,
    run_asic_flow,
    run_custom_flow,
    run_structured_flow,
)

BITS = 8


def _measure():
    asic = run_asic_flow(AsicFlowOptions(bits=BITS, sizing_moves=15))
    structured = run_structured_flow(
        StructuredFlowOptions(bits=BITS, sizing_moves=15)
    )
    custom = run_custom_flow(
        CustomFlowOptions(bits=BITS, target_cycle_fo4=14.0,
                          sizing_moves=25)
    )
    return analyze_multi_gap([asic, structured, custom])


def test_structured_between_endpoints(benchmark):
    gap = run_once(benchmark, _measure)
    asic, structured, custom = gap.results
    s = gap.report_for("structured")
    c = gap.report_for("custom")

    rows = [
        row("custom over asic, quoted (registry path)", "6-8x observed",
            c.total_ratio, 5.0, 20.0),
        row("structured over asic, quoted", "between 1x and custom",
            s.total_ratio, 1.2, 0.8 * c.total_ratio),
        row("structured cycle time vs asic", "shorter",
            structured.min_period_ps / asic.min_period_ps, 0.30, 0.99),
        row("structured cycle time vs custom", "longer",
            structured.min_period_ps / custom.min_period_ps, 1.05, 20.0),
        row("structured quoting factor vs asic", "bins, under custom 1.9x",
            s.quoting_factor, 1.1, 1.9),
        row("structured technology access", "same ASIC process",
            s.technology_factor, 0.99, 1.01),
        row("prefab area penalty (master vs cells)", ">10x die",
            structured.area_um2 / asic.area_um2, 10.0, 1000.0),
    ]
    report(
        f"SPECTRUM  structured-ASIC middle point ({BITS}-bit ALU)", rows
    )
    for entry in rows:
        assert entry.ok, entry
