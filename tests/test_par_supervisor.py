"""Tests for the fault-tolerant sweep supervisor.

The contracts under test: every injected fault (worker kill, task
hang, in-task crash, corrupt result, stall escalation) recovers to
results byte-identical to the fault-free run; exhausted tasks
quarantine into ordered :class:`TaskFailure` placeholders; serial and
pool paths raise the same exceptions when no retry policy is armed;
and the recovery events reach the live bus even on failure paths.
"""

import time

import pytest

from repro import obs
from repro.obs import live
from repro.par import memo
from repro.par.sweep import (
    SweepWorkerError,
    _drain_grace_s,
    current_attempt,
    run_sweep,
    run_sweep_report,
)
from repro.robust.retry import RetryPolicy, TaskFailure, attempt_seed


@pytest.fixture(autouse=True)
def _clean_layers():
    live.disable()
    live.configure_watch()
    live.get_aggregate().reset()
    obs.disable()
    obs.reset()
    memo.reset()
    yield
    live.disable()
    live.configure_watch()
    live.get_aggregate().reset()
    obs.disable()
    obs.reset()
    memo.reset()


def square(x):
    """Top-level so it pickles into pool workers."""
    return x * x


def fail_on_negative(x):
    if x < 0:
        raise ValueError(f"bad task {x}")
    return x * x


def seeded_square(task):
    """Attempt-aware task: combines its seed with the running attempt."""
    index, seed = task
    return (index, attempt_seed(seed, current_attempt()))


FAST_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.0)


class TestChaosRecovery:
    """Acceptance criterion: a 2-worker sweep with an injected worker
    kill and an injected task hang completes with results byte-identical
    to the fault-free run."""

    def test_kill_worker_recovers_byte_identical(self):
        tasks = list(range(6))
        clean = run_sweep(square, tasks, workers=2, label="chaos.kill")
        report = run_sweep_report(
            square, tasks, workers=2, label="chaos.kill",
            retry=FAST_RETRY, chaos="kill-worker:3",
        )
        assert report.results == clean
        assert report.ok
        assert report.retries >= 1
        assert report.workers_lost >= 1

    def test_hang_task_times_out_byte_identical(self):
        tasks = list(range(6))
        clean = run_sweep(square, tasks, workers=2, label="chaos.hang")
        report = run_sweep_report(
            square, tasks, workers=2, label="chaos.hang",
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0,
                              timeout_s=0.5),
            chaos="hang-task:2", stall_timeout_s=None,
        )
        assert report.results == clean
        assert report.ok
        assert report.retries >= 1
        assert report.workers_lost >= 1

    def test_crash_task_retries_byte_identical(self):
        tasks = list(range(5))
        clean = run_sweep(square, tasks, workers=2, label="chaos.crash")
        report = run_sweep_report(
            square, tasks, workers=2, label="chaos.crash",
            retry=FAST_RETRY, chaos="crash-task:1",
        )
        assert report.results == clean
        assert report.retries >= 1
        assert report.workers_lost == 0  # the worker survives a raise

    def test_corrupt_result_retries_byte_identical(self):
        tasks = list(range(5))
        clean = run_sweep(square, tasks, workers=2, label="chaos.corrupt")
        report = run_sweep_report(
            square, tasks, workers=2, label="chaos.corrupt",
            retry=FAST_RETRY, chaos="corrupt-result:4",
        )
        assert report.results == clean
        assert report.retries >= 1

    def test_serial_crash_task_retries(self):
        # The only chaos kind that applies in-process.
        report = run_sweep_report(
            square, [1, 2, 3], workers=1, label="chaos.serial",
            retry=FAST_RETRY, chaos="crash-task:1",
        )
        assert report.results == [1, 4, 9]
        assert report.retries == 1

    def test_bad_chaos_spec_rejected_before_any_work(self):
        from repro.robust.faults import FaultInjectionError

        with pytest.raises(FaultInjectionError):
            run_sweep(square, [1, 2], workers=2, chaos="set-fire:1")

    def test_attempt_zero_seeding_identical_with_retry_armed(self):
        # attempt_seed(seed, 0) is the identity, so a fault-free run
        # with retries armed is bit-identical to a retry-free run.
        tasks = [(i, 1000 + i) for i in range(6)]
        base = run_sweep(seeded_square, tasks, workers=2, label="seeds")
        armed = run_sweep_report(seeded_square, tasks, workers=2,
                                 label="seeds", retry=FAST_RETRY)
        assert armed.results == base


class TestStallEscalation:
    def test_stall_escalates_to_retry_and_recovers(self):
        # A hung task with no heartbeat trips the stall detector; with
        # a retry policy armed the supervisor kills the silent worker
        # and re-dispatches instead of raising SweepStallError.
        tasks = list(range(4))
        report = run_sweep_report(
            square, tasks, workers=2, label="stall.retry",
            heartbeat_s=None, stall_timeout_s=0.3,
            retry=FAST_RETRY, chaos="hang-task:1",
        )
        assert report.results == [x * x for x in tasks]
        assert report.stalls
        assert report.stalls[0]["source"].startswith("worker-")
        assert report.workers_lost >= 1
        assert report.retries >= 1


class TestQuarantine:
    def test_placeholders_keep_task_order(self):
        report = run_sweep_report(
            fail_on_negative, [1, -1, 2, -2], workers=2,
            label="quarantine", retry=FAST_RETRY,
        )
        assert not report.ok
        assert report.results[0] == 1
        assert report.results[2] == 4
        for slot, index in ((report.results[1], 1),
                            (report.results[3], 3)):
            assert isinstance(slot, TaskFailure)
            assert slot.index == index
            assert slot.kind == "error"
            assert slot.attempts == 2
            assert "bad task" in slot.error
        assert report.failures == [report.results[1], report.results[3]]
        assert report.retries == 2

    def test_serial_and_pool_quarantine_identically(self):
        serial = run_sweep_report(fail_on_negative, [1, -1, 2],
                                  workers=1, label="q.par",
                                  retry=FAST_RETRY)
        pool = run_sweep_report(fail_on_negative, [1, -1, 2],
                                workers=2, label="q.par",
                                retry=FAST_RETRY)
        assert serial.results[1] == pool.results[1]
        assert serial.results == pool.results
        assert serial.failures == pool.failures

    def test_hang_quarantines_with_hang_kind(self):
        report = run_sweep_report(
            square, [0, 1, 2], workers=2, label="q.hang",
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0,
                              timeout_s=0.3),
            chaos="hang-task:1", stall_timeout_s=None,
        )
        failure = report.results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "hang"
        assert "timeout" in failure.error
        assert report.results[0] == 0 and report.results[2] == 4

    @pytest.mark.parametrize("workers", [1, 2])
    def test_quarantine_false_reraises_original(self, workers):
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0,
                             quarantine=False)
        with pytest.raises(ValueError, match="bad task"):
            run_sweep(fail_on_negative, [1, -1, 2], workers=workers,
                      retry=policy)


class TestExceptionParity:
    """Satellite: serial and pool paths fail the same way without retry."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_exception_propagates_unwrapped(self, workers):
        with pytest.raises(ValueError, match="bad task -5"):
            run_sweep(fail_on_negative, [1, -5, 2], workers=workers)

    def test_worker_death_without_retry_is_worker_error(self):
        with pytest.raises(SweepWorkerError, match="crash"):
            run_sweep(square, [0, 1, 2], workers=2,
                      chaos="kill-worker:1")

    def test_corrupt_result_without_retry_is_worker_error(self):
        with pytest.raises(SweepWorkerError, match="corrupt"):
            run_sweep(square, [0, 1, 2], workers=2,
                      chaos="corrupt-result:1")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_event_parity(self, workers):
        # Exception paths publish the same task event shape serially
        # and in a pool: a task.start, then a task.done with error=True.
        sub = live.enable().subscribe()
        with pytest.raises(ValueError):
            run_sweep(fail_on_negative, [1, -1], workers=workers,
                      label="parity")
        time.sleep(0.05)
        events = [e for e in sub.drain()
                  if e.name == "parity" and e.attrs.get("index") == 1]
        kinds = [e.kind for e in events]
        assert kinds == ["task.start", "task.done"]
        assert events[1].attrs.get("error") is True


class TestPrecomputedReplay:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_replayed_tasks_never_execute(self, workers):
        # Task 1 would raise; the precomputed slot short-circuits it.
        report = run_sweep_report(
            fail_on_negative, [1, -1, 2], workers=workers,
            label="replay", precomputed={1: 99},
        )
        assert report.results == [1, 99, 4]
        assert report.replays == [1]
        assert report.ok

    def test_replay_emits_event(self):
        sub = live.enable().subscribe()
        run_sweep_report(square, [1, 2, 3], workers=1, label="replay.ev",
                         precomputed={0: 111, 2: 333})
        replays = [e for e in sub.drain() if e.kind == "task.replay"]
        assert sorted(e.attrs["index"] for e in replays) == [0, 2]

    def test_out_of_range_precomputed_ignored(self):
        report = run_sweep_report(square, [1, 2], workers=1,
                                  precomputed={7: 49})
        assert report.results == [1, 4]
        assert report.replays == []


class TestRecoveryEvents:
    """Satellite: failure-path events reach the parent bus (the
    final_pump in ``finally:`` plus the new recovery event kinds)."""

    def test_retry_and_worker_lost_events_published(self):
        sub = live.enable().subscribe()
        run_sweep_report(square, list(range(4)), workers=2,
                         label="ev.kill", retry=FAST_RETRY,
                         chaos="kill-worker:1")
        events = sub.drain()
        retries = [e for e in events if e.kind == "task.retry"]
        assert retries and retries[0].attrs["failure"] == "crash"
        assert retries[0].attrs["index"] == 1
        lost = [e for e in events if e.kind == "worker.lost"]
        assert lost and lost[0].attrs["reason"] == "crash"

    def test_quarantine_event_published_from_pool(self):
        sub = live.enable().subscribe()
        report = run_sweep_report(
            fail_on_negative, [1, -1, 2, 3], workers=2,
            label="ev.quarantine", retry=FAST_RETRY,
        )
        assert not report.ok
        events = sub.drain()
        quarantines = [e for e in events if e.kind == "task.quarantine"]
        assert len(quarantines) == 1
        attrs = quarantines[0].attrs
        assert attrs["index"] == 1
        assert attrs["failure"] == "error"
        assert attrs["attempts"] == 2
        # The healthy tasks' worker-side events also made it out.
        done = [e for e in events if e.kind == "task.done"
                and not e.attrs.get("error")]
        assert len(done) >= 3
        # Progress reached the full task count despite the quarantine.
        progress = [e for e in events if e.kind == "sweep.progress"]
        assert progress[-1].attrs["done"] == 4

    def test_drain_grace_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_DRAIN_GRACE_S", "0.125")
        assert _drain_grace_s() == 0.125
        monkeypatch.setenv("REPRO_SWEEP_DRAIN_GRACE_S", "not-a-float")
        assert _drain_grace_s() == 0.5
        monkeypatch.setenv("REPRO_SWEEP_DRAIN_GRACE_S", "-3")
        assert _drain_grace_s() == 0.0
        monkeypatch.delenv("REPRO_SWEEP_DRAIN_GRACE_S")
        assert _drain_grace_s() == 0.5


class TestChaosSelftest:
    def test_selftest_scenarios_all_pass(self):
        from repro.robust.faults import run_chaos_selftest

        reports = run_chaos_selftest(workers=2)
        assert [r.fault for r in reports] == [
            "chaos_kill_worker_recovers",
            "chaos_hang_task_times_out",
            "chaos_crash_task_retries",
            "chaos_corrupt_result_retries",
            "retry_exhaustion_quarantines",
        ]
        assert all(r.passed for r in reports)
