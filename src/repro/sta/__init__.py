"""Static timing analysis substrate: clocks, engine, FO4 metrics, reports."""

from repro.sta.array import (
    ArrayCheckError,
    CompiledTiming,
    analyze_array,
    batch_analyze,
    clock_analyzer,
    compile_timing,
    monte_carlo_min_period_batched,
)
from repro.sta.clocking import (
    ASIC_SKEW_FRACTION,
    CUSTOM_SKEW_FRACTION,
    STRUCTURED_SKEW_FRACTION,
    Clock,
    ClockingError,
    asic_clock,
    custom_clock,
    skew_speedup,
    structured_clock,
)
from repro.sta.engine import (
    DEFAULT_INPUT_SLEW_PS,
    ConvergenceError,
    EndpointTiming,
    HoldViolation,
    PathStep,
    TimingReport,
    analyze,
    solve_min_period,
)
from repro.sta.fo4 import (
    depth_for_frequency,
    fo4_depth,
    fo4_logic_depth,
    fo4_overhead,
    frequency_for_depth,
)
from repro.sta.reports import format_comparison, format_report
from repro.sta.statistical import (
    StatisticalReport,
    analyze_statistical,
    clark_max,
    monte_carlo_min_period,
)
from repro.sta.sequential import register_boundaries, sequential_overhead_ps
from repro.sta.timing_graph import TimingError, TimingGraph, WireParasitics

__all__ = [
    "ArrayCheckError",
    "CompiledTiming",
    "analyze_array",
    "batch_analyze",
    "clock_analyzer",
    "compile_timing",
    "monte_carlo_min_period_batched",
    "StatisticalReport",
    "analyze_statistical",
    "clark_max",
    "monte_carlo_min_period",
    "ASIC_SKEW_FRACTION",
    "CUSTOM_SKEW_FRACTION",
    "STRUCTURED_SKEW_FRACTION",
    "Clock",
    "ClockingError",
    "ConvergenceError",
    "DEFAULT_INPUT_SLEW_PS",
    "EndpointTiming",
    "HoldViolation",
    "PathStep",
    "TimingError",
    "TimingGraph",
    "TimingReport",
    "WireParasitics",
    "analyze",
    "asic_clock",
    "custom_clock",
    "structured_clock",
    "depth_for_frequency",
    "fo4_depth",
    "fo4_logic_depth",
    "fo4_overhead",
    "format_comparison",
    "format_report",
    "frequency_for_depth",
    "register_boundaries",
    "sequential_overhead_ps",
    "skew_speedup",
    "solve_min_period",
]
