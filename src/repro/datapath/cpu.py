"""A single-issue CPU execute-stage datapath: the flow's processor proxy.

The paper's survey objects are processors; this generator assembles a
realistic execute-stage slice from the macro library so the flows time
something processor-shaped rather than a lone ALU:

* operand bypass muxes (forwarding, Section 4.1's "additional complex
  hardware logic (such as forwarding ...)");
* the ALU (add/sub/and/or/xor);
* a barrel shifter on the B operand path;
* the program-counter incrementer;
* branch resolution: zero/negative flags plus a taken decision.

Ports: operands ``ra*``/``rb*``, forwarded results ``fwd*``, bypass
selects ``bypa``/``bypb``, ALU controls ``op0/op1/sub``, shift controls
``sh*``/``use_shift``, PC ``pc*``, branch controls ``is_branch``; outputs
``res*`` (result), ``npc*`` (next PC), ``taken``, ``zero``, ``neg``.
"""

from __future__ import annotations

import math

from repro.cells.library import CellLibrary
from repro.datapath.alu import _adder_nets
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def cpu_execute_stage(
    bits: int,
    library: CellLibrary,
    name: str = "exec",
    fast_adder: bool = True,
) -> Module:
    """Build the execute-stage datapath.

    Args:
        bits: word width.
        library: target cell library.
        name: module name.
        fast_adder: prefix adders (custom/macro style) vs ripple chains.
    """
    if bits < 4:
        raise SynthesisError("execute stage needs at least 4 bits")
    shift_bits = max(1, math.ceil(math.log2(bits)))
    module = Module(name)
    ra = [module.add_input(f"ra{i}") for i in range(bits)]
    rb = [module.add_input(f"rb{i}") for i in range(bits)]
    fwd = [module.add_input(f"fwd{i}") for i in range(bits)]
    bypa = module.add_input("bypa")
    bypb = module.add_input("bypb")
    op0 = module.add_input("op0")
    op1 = module.add_input("op1")
    sub = module.add_input("sub")
    sh = [module.add_input(f"sh{k}") for k in range(shift_bits)]
    use_shift = module.add_input("use_shift")
    pc = [module.add_input(f"pc{i}") for i in range(bits)]
    is_branch = module.add_input("is_branch")
    for i in range(bits):
        module.add_output(f"res{i}")
    for i in range(bits):
        module.add_output(f"npc{i}")
    module.add_output("taken")
    module.add_output("zero")
    module.add_output("neg")

    emit = Emitter(module, library)

    # Bypass (forwarding) muxes on both operands.
    a = [emit.mux2(ra[i], fwd[i], bypa) for i in range(bits)]
    b_pre = [emit.mux2(rb[i], fwd[i], bypb) for i in range(bits)]

    # Barrel shifter on the B path (left shift, zero fill), then select.
    zero_net = emit.and2(b_pre[0], emit.inv(b_pre[0]))
    current = list(b_pre)
    for k in range(shift_bits):
        amount = 1 << k
        nxt = []
        for i in range(bits):
            shifted = current[i - amount] if i - amount >= 0 else zero_net
            nxt.append(emit.mux2(current[i], shifted, sh[k]))
        current = nxt
    b = [emit.mux2(b_pre[i], current[i], use_shift) for i in range(bits)]

    # ALU: add/sub + logic ops + result mux.
    b_eff = [emit.xor2(b[i], sub) for i in range(bits)]
    sums, _carry = _adder_nets(emit, a, b_eff, sub, bits, fast_adder)
    ands = [emit.and2(a[i], b[i]) for i in range(bits)]
    ors = [emit.or2(a[i], b[i]) for i in range(bits)]
    xors = [emit.xor2(a[i], b[i]) for i in range(bits)]
    results = []
    for i in range(bits):
        lo = emit.mux2(sums[i], ands[i], op0)
        hi = emit.mux2(ors[i], xors[i], op0)
        results.append(emit.mux2(lo, hi, op1, out=f"res{i}"))

    # Flags and branch resolution: branch taken when result == 0.
    zero_flag = emit.inv(emit.or_tree(results))
    emit.buf(zero_flag, out="zero")
    emit.buf(results[bits - 1], out="neg")
    emit.and2(is_branch, zero_flag, out="taken")

    # Next PC: incrementer on the PC (prefix-AND carry chain).
    prefix = list(pc)
    dist = 1
    while dist < bits:
        new_prefix = list(prefix)
        for i in range(dist, bits):
            new_prefix[i] = emit.and2(prefix[i], prefix[i - dist])
        prefix = new_prefix
        dist *= 2
    emit.inv(pc[0], out="npc0")
    for i in range(1, bits):
        emit.xor2(pc[i], prefix[i - 1], out=f"npc{i}")
    return module


def simulate_execute_stage(
    module: Module,
    library: CellLibrary,
    bits: int,
    ra: int,
    rb: int,
    fwd: int = 0,
    bypa: bool = False,
    bypb: bool = False,
    op: int = 0,
    sub: int = 0,
    shift: int = 0,
    use_shift: bool = False,
    pc: int = 0,
    is_branch: bool = False,
) -> dict:
    """Drive the execute stage; returns a dict of integer/bool results."""
    from repro.synth.simulate import simulate_combinational

    shift_bits = max(1, math.ceil(math.log2(bits)))
    vec = {}
    for i in range(bits):
        vec[f"ra{i}"] = bool((ra >> i) & 1)
        vec[f"rb{i}"] = bool((rb >> i) & 1)
        vec[f"fwd{i}"] = bool((fwd >> i) & 1)
        vec[f"pc{i}"] = bool((pc >> i) & 1)
    for k in range(shift_bits):
        vec[f"sh{k}"] = bool((shift >> k) & 1)
    vec.update(
        bypa=bypa, bypb=bypb, op0=bool(op & 1), op1=bool(op & 2),
        sub=bool(sub), use_shift=use_shift, is_branch=is_branch,
    )
    out = simulate_combinational(module, library, vec)
    res = sum((1 << i) for i in range(bits) if out[f"res{i}"])
    npc = sum((1 << i) for i in range(bits) if out[f"npc{i}"])
    return {
        "res": res,
        "npc": npc,
        "taken": out["taken"],
        "zero": out["zero"],
        "neg": out["neg"],
    }


def reference_execute(
    bits: int, ra: int, rb: int, fwd: int, bypa: bool, bypb: bool,
    op: int, sub: int, shift: int, use_shift: bool, pc: int,
    is_branch: bool,
) -> dict:
    """Pure-Python reference model of the execute stage."""
    mask = (1 << bits) - 1
    a = fwd if bypa else ra
    b = fwd if bypb else rb
    if use_shift:
        b = (b << shift) & mask
    if op == 0:
        res = (a - b if sub else a + b) & mask
    elif op == 1:
        res = a & b
    elif op == 2:
        res = a | b
    else:
        res = a ^ b
    zero = res == 0
    return {
        "res": res,
        "npc": (pc + 1) & mask,
        "taken": bool(is_branch and zero),
        "zero": zero,
        "neg": bool((res >> (bits - 1)) & 1),
    }
