"""Noise-margin and glitch analysis for logic families.

Section 7.1: "Dynamic logic is particularly susceptible to noise, as any
glitches on input voltages may cause a discharge of the charge stored ...
inputs must not glitch during or after the precharge.  These problems
become more pronounced with deeper submicron technologies."

The model is deliberately first-order: a node's noise margin is compared
against injected noise from capacitive coupling plus supply bounce, and a
netlist audit flags domino gates whose aggregate noise exposure exceeds
their margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import LogicFamily
from repro.cells.library import CellLibrary
from repro.netlist.module import Module

#: Static CMOS noise margin as a fraction of Vdd (symmetric inverter).
STATIC_MARGIN_FRACTION = 0.40
#: Domino dynamic-node margin: roughly one NMOS threshold minus keeper
#: droop, much thinner than static.
DOMINO_MARGIN_FRACTION = 0.15


class NoiseError(ValueError):
    """Raised for invalid noise model parameters."""


@dataclass(frozen=True)
class NoiseEnvironment:
    """Aggressor environment for noise checks.

    Attributes:
        coupling_fraction: victim swing induced by neighbouring switching
            wires, as a fraction of Vdd.
        supply_bounce_fraction: ground/supply bounce as a fraction of Vdd.
    """

    coupling_fraction: float = 0.08
    supply_bounce_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.coupling_fraction < 1:
            raise NoiseError("coupling fraction must be in [0, 1)")
        if not 0 <= self.supply_bounce_fraction < 1:
            raise NoiseError("supply bounce fraction must be in [0, 1)")

    @property
    def total_fraction(self) -> float:
        return self.coupling_fraction + self.supply_bounce_fraction


def noise_margin_v(vdd: float, family: LogicFamily) -> float:
    """Absolute noise margin of a gate input in volts."""
    if vdd <= 0:
        raise NoiseError("vdd must be positive")
    fraction = (
        DOMINO_MARGIN_FRACTION
        if family is LogicFamily.DOMINO
        else STATIC_MARGIN_FRACTION
    )
    return fraction * vdd


@dataclass(frozen=True)
class NoiseViolation:
    """A gate whose noise exposure exceeds its margin."""

    instance: str
    cell: str
    margin_v: float
    injected_v: float

    @property
    def ratio(self) -> float:
        return self.injected_v / self.margin_v


def audit_noise(
    module: Module,
    library: CellLibrary,
    environment: NoiseEnvironment | None = None,
) -> list[NoiseViolation]:
    """Flag instances whose input noise exposure exceeds their margin.

    A uniform aggressor environment is assumed; the interesting output is
    the *family asymmetry*: with typical coupling a static netlist audits
    clean while the same coupling breaks domino nodes, reproducing the
    paper's "far less sensitivity to noise" comparison.
    """
    env = environment or NoiseEnvironment()
    vdd = library.technology.vdd
    injected = env.total_fraction * vdd
    violations: list[NoiseViolation] = []
    for inst in module.iter_instances():
        cell = library.get(inst.cell_name)
        if cell.is_sequential:
            continue
        margin = noise_margin_v(vdd, cell.family)
        if injected > margin:
            violations.append(
                NoiseViolation(
                    instance=inst.name,
                    cell=cell.name,
                    margin_v=margin,
                    injected_v=injected,
                )
            )
    return violations


def max_safe_coupling(family: LogicFamily,
                      supply_bounce_fraction: float = 0.05) -> float:
    """Largest coupling fraction a family tolerates without violations."""
    fraction = (
        DOMINO_MARGIN_FRACTION
        if family is LogicFamily.DOMINO
        else STATIC_MARGIN_FRACTION
    )
    return max(0.0, fraction - supply_bounce_fraction)
