"""Unit tests for repro.netlist.module and repro.netlist.nets."""

import pytest

from repro.netlist import (
    Instance,
    Module,
    NetlistError,
    Port,
    PortDirection,
    is_port_ref,
    port_ref,
    port_ref_name,
)


def small_module() -> Module:
    m = Module("m")
    m.add_input("a")
    m.add_input("b")
    m.add_output("y")
    m.add_instance("g1", "NAND2_X1", inputs={"A": "a", "B": "b"}, outputs={"Y": "n"})
    m.add_instance("g2", "INV_X1", inputs={"A": "n"}, outputs={"Y": "y"})
    return m


class TestPorts:
    def test_directions(self):
        m = small_module()
        assert m.inputs() == ["a", "b"]
        assert m.outputs() == ["y"]

    def test_duplicate_port_rejected(self):
        m = Module("m")
        m.add_input("a")
        with pytest.raises(NetlistError):
            m.add_input("a")
        with pytest.raises(NetlistError):
            m.add_output("a")

    def test_input_port_drives_its_net(self):
        m = small_module()
        assert m.driver_of("a") == port_ref("a")

    def test_output_port_is_a_sink(self):
        m = small_module()
        assert port_ref("y") in m.sinks_of("y")

    def test_port_ref_helpers(self):
        ref = port_ref("clk")
        assert is_port_ref(ref)
        assert not is_port_ref(("inst", "pin"))
        assert port_ref_name(ref) == "clk"
        with pytest.raises(NetlistError):
            port_ref_name("not_a_ref")


class TestInstances:
    def test_wiring_indices(self):
        m = small_module()
        assert m.driver_of("n") == ("g1", "Y")
        assert ("g2", "A") in m.sinks_of("n")

    def test_duplicate_instance_rejected(self):
        m = small_module()
        with pytest.raises(NetlistError):
            m.add_instance("g1", "INV_X1", inputs={"A": "a"}, outputs={"Y": "z"})

    def test_double_driver_rejected(self):
        m = small_module()
        with pytest.raises(NetlistError, match="already driven"):
            m.add_instance("g3", "INV_X1", inputs={"A": "a"}, outputs={"Y": "n"})

    def test_auto_names_unique(self):
        m = Module("m")
        m.add_input("a")
        names = set()
        for _ in range(20):
            inst = m.add_instance(None, "INV_X1", inputs={"A": "a"}, outputs={"Y": m.add_net()})
            names.add(inst.name)
        assert len(names) == 20

    def test_pin_overlap_rejected(self):
        with pytest.raises(NetlistError):
            Instance("i", "C", inputs={"A": "x"}, outputs={"A": "y"})

    def test_net_on(self):
        m = small_module()
        g1 = m.instance("g1")
        assert g1.net_on("A") == "a"
        assert g1.net_on("Y") == "n"
        with pytest.raises(NetlistError):
            g1.net_on("Z")

    def test_remove_instance_detaches(self):
        m = small_module()
        m.remove_instance("g2")
        assert m.driver_of("y") is None
        assert ("g2", "A") not in m.sinks_of("n")

    def test_replace_cell(self):
        m = small_module()
        m.replace_cell("g2", "INV_X4")
        assert m.instance("g2").cell_name == "INV_X4"
        # Topology unchanged.
        assert m.driver_of("y") == ("g2", "Y")

    def test_attributes_stored(self):
        m = Module("m")
        m.add_input("a")
        inst = m.add_instance(
            "g", "INV_X1", inputs={"A": "a"}, outputs={"Y": "y"}, x_um=3.0
        )
        assert inst.attributes["x_um"] == 3.0

    def test_bad_identifiers_rejected(self):
        with pytest.raises(NetlistError):
            Port("", PortDirection.INPUT)
        with pytest.raises(NetlistError):
            Port("3bad", PortDirection.INPUT)
        with pytest.raises(NetlistError):
            Port("has space", PortDirection.INPUT)


class TestIntegrity:
    def test_well_formed_module_checks_clean(self):
        m = small_module()
        assert m.check() == []
        m.assert_well_formed()

    def test_undriven_net_flagged(self):
        m = Module("m")
        m.add_net("floating")
        problems = m.check()
        assert any("no driver" in p for p in problems)

    def test_assert_raises_on_problems(self):
        m = Module("m")
        m.add_net("floating")
        with pytest.raises(NetlistError):
            m.assert_well_formed()

    def test_cell_counts(self):
        m = small_module()
        assert m.cell_counts() == {"NAND2_X1": 1, "INV_X1": 1}

    def test_clone_independent(self):
        m = small_module()
        c = m.clone("copy")
        assert c.name == "copy"
        assert c.instance_count() == m.instance_count()
        assert c.check() == []
        c.replace_cell("g2", "INV_X8")
        assert m.instance("g2").cell_name == "INV_X1"

    def test_repr_mentions_counts(self):
        assert "instances=2" in repr(small_module())
