"""Shared reporting helpers for the paper-reproduction benchmarks.

Every benchmark prints a table of (claim, paper value, measured value)
rows through :func:`report`, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's quantitative statements side by side with this
reproduction's measurements.

A run also *accumulates*: every reported row and every :func:`run_once`
wall time lands in a module-level collector, and :func:`finalize`
(registered atexit, so a plain pytest invocation triggers it) writes
``BENCH_paperbench.json`` -- a flat scalar dict of claim pass/fail
counts plus per-benchmark wall times.  That file is the benchmark
trajectory the observability layer's metric dumps share a shape with.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import time
from dataclasses import dataclass

#: Default output artifact (written to the pytest working directory).
BENCH_JSON = "BENCH_paperbench.json"

#: Accumulated state of the current benchmark run.
_COLLECTED: dict = {"rows": [], "wall_s": {}, "values": {}}


@dataclass(frozen=True)
class Row:
    """One claim-vs-measurement row.

    Attributes:
        claim: short description of the paper's statement.
        paper: the paper's number, as text (may be a range).
        measured: this reproduction's number, as text.
        ok: whether the measured value lands in (or adjacent to) the
            paper's band.
        value: the measured value as a number (None when the row was
            built by hand without one).
        lo: lower edge of the tolerance band (None = unknown).
        hi: upper edge of the tolerance band (None = unknown).
    """

    claim: str
    paper: str
    measured: str
    ok: bool
    value: float | None = None
    lo: float | None = None
    hi: float | None = None


def row(claim: str, paper: str, value: float, lo: float, hi: float,
        fmt: str = "{:.2f}x") -> Row:
    """Build a row whose measured value must land within [lo, hi]."""
    return Row(
        claim=claim,
        paper=paper,
        measured=fmt.format(value),
        ok=lo <= value <= hi,
        value=float(value),
        lo=float(lo),
        hi=float(hi),
    )


def report(title: str, rows: list[Row]) -> None:
    """Print a claim-vs-measured table (and collect it for finalize)."""
    _COLLECTED["rows"].extend(rows)
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(f"{'claim':<44s} {'paper':>12s} {'measured':>10s} {'band':>6s}")
    for entry in rows:
        mark = "in" if entry.ok else "OUT"
        print(
            f"{entry.claim:<44.44s} {entry.paper:>12s} "
            f"{entry.measured:>10s} {mark:>6s}"
        )


def run_once(benchmark, func):
    """Run a workload exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations, not microbenchmarks;
    one round records the wall time without re-running multi-second
    flows dozens of times.  The wall time is also collected under the
    benchmark's name for the ``BENCH_paperbench.json`` artifact.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(func, rounds=1, iterations=1)
    name = getattr(benchmark, "name", None) or getattr(
        func, "__name__", "anonymous"
    )
    _COLLECTED["wall_s"][name] = time.perf_counter() - start
    return result


def record_wall(name: str, seconds: float) -> None:
    """Collect a named wall time into the ``BENCH_*.json`` artifact.

    For benchmarks that measure several timed phases (e.g. a cold vs
    warm cache comparison) and want each phase in the artifact as its
    own ``bench.<name>.s`` entry.
    """
    _COLLECTED["wall_s"][name] = seconds


def record_value(name: str, value: float) -> None:
    """Collect a non-wall-time scalar (CPU seconds, peak KiB, counts).

    Lands as ``bench.<name>`` -- no ``.s`` suffix, and excluded from
    the ``wall_time_s`` total, which must stay a sum of wall clocks.
    """
    _COLLECTED["values"][name] = float(value)


def summary() -> dict:
    """Flat scalar dict of the run so far (the BENCH_*.json payload)."""
    rows = _COLLECTED["rows"]
    ok = sum(1 for r in rows if r.ok)
    flat: dict = {
        "claims_total": len(rows),
        "claims_ok": ok,
        "claims_out": len(rows) - ok,
        "wall_time_s": round(sum(_COLLECTED["wall_s"].values()), 6),
    }
    for name in sorted(_COLLECTED["wall_s"]):
        flat[f"bench.{name}.s"] = round(_COLLECTED["wall_s"][name], 6)
    for name in sorted(_COLLECTED["values"]):
        flat[f"bench.{name}"] = round(_COLLECTED["values"][name], 6)
    return flat


def _prior_wall_times(path: str) -> dict:
    """Per-benchmark measurements already recorded in the artifact.

    A partial benchmark selection (``pytest benchmarks/bench_e8...``)
    should refine its own rows without deleting everyone else's; a
    corrupt or missing artifact contributes nothing.
    """
    try:
        with open(path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(previous, dict):
        return {}
    return {
        key: value for key, value in previous.items()
        if key.startswith("bench.")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def finalize(path: str = BENCH_JSON) -> dict | None:
    """Write the accumulated summary; returns it (None if nothing ran).

    The write is atomic (temp file + ``os.replace`` in the target
    directory), so a crash mid-dump or two concurrent runs can never
    leave a truncated artifact; and wall times from a previous run are
    merged in rather than clobbered, with this run's rows winning any
    collision.
    """
    if not _COLLECTED["rows"] and not _COLLECTED["wall_s"] \
            and not _COLLECTED["values"]:
        return None
    flat = _prior_wall_times(path)
    flat.update(summary())
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(flat, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _record_run(flat)
    return flat


def _record_run(flat: dict) -> None:
    """Append a ``kind="paperbench"`` record to the run ledger.

    Recording happens when the ledger is already enabled in-process or
    when ``REPRO_RUNS_DIR`` is set (the CI spelling: export the env var,
    run pytest twice, then ``repro-gap runs regress --gate``).  Claims
    land with their tolerance bands, so the regression engine can flag
    band escapes and in-band drift across benchmark runs.
    """
    try:
        from repro.flows.options import digest
        from repro.obs import ledger as run_ledger
    except ImportError:
        return
    if not run_ledger.enabled():
        if not os.environ.get(run_ledger.ENV_DIR):
            return
        run_ledger.set_enabled(True)
    rows = _COLLECTED["rows"]
    claims = {
        r.claim: {"value": r.value, "lo": r.lo, "hi": r.hi, "ok": r.ok}
        for r in rows if r.value is not None
    }
    run_ledger.record(run_ledger.RunRecord(
        kind="paperbench",
        label=f"paperbench.{len(rows)}claims",
        fingerprint=digest({
            "kind": "paperbench",
            "benchmarks": sorted(_COLLECTED["wall_s"]),
            "claims": sorted(r.claim for r in rows),
        }),
        wall_s=float(flat.get("wall_time_s", 0.0)),
        metrics={k: v for k, v in flat.items()
                 if isinstance(v, (int, float))},
        claims=claims,
    ))


atexit.register(finalize)
