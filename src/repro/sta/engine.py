"""The static timing analysis engine.

Implements the cycle-time accounting of Section 3: "the length of the
critical path is a function of gate delays, wiring delays, set-up and
hold-times, clock-to-Q ... and clock skew".  Arrival times (max and min)
propagate topologically through the combinational graph; every endpoint
contributes a minimum feasible period

    period >= clk_to_q + logic + wire + setup + skew - borrow

and the engine reports the binding endpoint, its path, and the breakdown
into exactly those components.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.cells.library import CellLibrary
from repro.par.memo import arc_eval
from repro.sta.clocking import Clock
from repro.sta.timing_graph import TimingError, TimingGraph, WireParasitics

#: Transition time assumed at module inputs and register outputs.
DEFAULT_INPUT_SLEW_PS = 20.0


class ConvergenceError(TimingError):
    """Iterative period solving failed to converge.

    A distinct subclass so the robustness layer can tell a retryable
    convergence stall apart from structural timing problems (undriven
    logic, impossible skew budgets), which retrying cannot fix.
    """


def _finite_guard_active() -> bool:
    """Whether analyze should reject non-finite arrivals.

    Deferred import: :mod:`repro.robust.guards` (the guard registry)
    imports the sizing layer, which imports this module, so a top-level
    import would cycle.  The lookup is one ``sys.modules`` hit per
    :func:`analyze` call.
    """
    from repro.robust.guards import guard_enabled

    return guard_enabled("finite")


@dataclass(frozen=True)
class PathStep:
    """One gate traversal on the critical path."""

    instance: str
    cell: str
    through_pin: str
    delay_ps: float
    arrival_ps: float


@dataclass(frozen=True)
class EndpointTiming:
    """Timing at one endpoint.

    Attributes:
        kind: ``"port"`` or ``"register"``.
        name: output-port name or ``instance.pin``.
        data_arrival_ps: combinational arrival at the endpoint, including
            the launch clk->Q for register-launched paths.
        min_period_ps: smallest period satisfying this endpoint's setup
            constraint (including skew and capture overhead, net of any
            latch borrowing).
        launch_overhead_ps: clk->Q of the launching register (0 for
            input-launched paths).
        capture_overhead_ps: setup of the capturing register (0 for port
            endpoints).
        skew_ps: skew charged against this path.
        borrow_ps: latch time-borrowing credit applied.
    """

    kind: str
    name: str
    data_arrival_ps: float
    min_period_ps: float
    launch_overhead_ps: float
    capture_overhead_ps: float
    skew_ps: float
    borrow_ps: float


@dataclass(frozen=True)
class HoldViolation:
    """A fast path failing its hold check at an endpoint."""

    endpoint: str
    min_arrival_ps: float
    required_ps: float

    @property
    def slack_ps(self) -> float:
        return self.min_arrival_ps - self.required_ps


@dataclass
class TimingReport:
    """Full result of one STA run.

    Attributes:
        min_period_ps: smallest feasible clock period.
        critical: the binding endpoint's timing.
        critical_path: gate-by-gate trace to the binding endpoint.
        endpoints: all endpoint timings, worst first.
        hold_violations: fast-path failures at the analysed clock.
        clock: the clock the run was performed against.
    """

    min_period_ps: float
    critical: EndpointTiming
    critical_path: list[PathStep]
    endpoints: list[EndpointTiming]
    hold_violations: list[HoldViolation]
    clock: Clock

    @property
    def max_frequency_mhz(self) -> float:
        return 1.0e6 / self.min_period_ps

    @property
    def logic_delay_ps(self) -> float:
        """Pure combinational delay on the critical path (no overheads)."""
        return (
            self.critical.data_arrival_ps - self.critical.launch_overhead_ps
        )

    def worst_slack_ps(self, period_ps: float | None = None) -> float:
        """Setup slack at a given period (default: the analysed clock's)."""
        period = period_ps if period_ps is not None else self.clock.period_ps
        return period - self.min_period_ps

    def meets(self, period_ps: float | None = None) -> bool:
        """True if setup timing closes at the period (holds not included)."""
        return self.worst_slack_ps(period_ps) >= 0.0

    def overhead_fraction(self) -> float:
        """Fraction of the minimum period spent outside logic.

        This is the "pipelining overhead" quantity the paper estimates at
        ~30% for ASICs and ~20% for custom (Section 4).
        """
        return 1.0 - self.logic_delay_ps / self.min_period_ps


def analyze(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    input_arrival_ps: float = 0.0,
    output_load_ff: float | None = None,
    delay_derate: float = 1.0,
) -> TimingReport:
    """Run STA on a mapped netlist.

    Args:
        module: netlist to analyse.
        library: its cell library.
        clock: clock domain (period, skew, borrowing policy).
        wire: optional wire parasitics from the physical layer.
        input_slew_ps: transition time assumed at path starts.
        input_arrival_ps: arrival time of module inputs relative to the
            launching clock edge.
        output_load_ff: load on each output port.
        delay_derate: multiplier applied to every cell and wire delay --
            run at a process corner by passing that corner's derate
            (Section 8: the worst-case corner is what ASIC libraries
            quote; pass :attr:`ProcessCorner.delay_derate`).

    Raises:
        TimingError: if the netlist has no endpoints or undriven logic.
    """
    if not (delay_derate > 0.0) or math.isinf(delay_derate):
        raise TimingError(
            f"delay derate must be a positive finite number, "
            f"got {delay_derate}"
        )
    finite_guard = _finite_guard_active()
    obs.count("sta.analyze.calls")
    graph = TimingGraph(module, library, wire, output_load_ff)
    seq_names = graph.sequential_cell_names()
    order = topological_order(module, seq_names)

    arrival: dict[str, float] = {}
    min_arrival: dict[str, float] = {}
    slew: dict[str, float] = {}
    trace: dict[str, tuple[str, str] | None] = {}

    for net, kind in graph.start_nets().items():
        if kind == "input":
            arrival[net] = input_arrival_ps
            min_arrival[net] = input_arrival_ps
        trace[net] = None
        slew[net] = input_slew_ps

    launch_q: dict[str, float] = {}
    for name in graph.sequential_instances():
        cell = graph.cell_of(name)
        inst = module.instance(name)
        for net in inst.outputs.values():
            clk_to_q = cell.sequential.clk_to_q_ps * delay_derate
            arrival[net] = clk_to_q
            min_arrival[net] = clk_to_q
            launch_q[net] = clk_to_q

    at_acc = 0.0
    for inst_name in order:
        inst = module.instance(inst_name)
        cell = graph.cell_of(inst_name)
        if cell.is_sequential:
            continue
        out_nets = list(inst.outputs.values())
        if not out_nets:
            continue
        load = graph.instance_load_ff(inst_name)
        best_at = None
        best_pin = None
        worst_slew = 0.0
        least_at = None
        for pin, in_net in inst.inputs.items():
            if in_net not in arrival:
                raise TimingError(
                    f"net {in_net!r} feeding {inst_name} has no arrival; "
                    "undriven or floating logic"
                )
            wire_d = graph.wire.delay(in_net) * delay_derate
            delay, out_slew = arc_eval(cell.arc(pin), load, slew[in_net])
            delay *= delay_derate
            at = arrival[in_net] + wire_d + delay
            m_at = min_arrival[in_net] + wire_d + delay
            at_acc += at
            if best_at is None or at > best_at:
                best_at = at
                best_pin = pin
                worst_slew = out_slew
            if least_at is None or m_at < least_at:
                least_at = m_at
        for net in out_nets:
            arrival[net] = best_at
            min_arrival[net] = least_at
            slew[net] = worst_slew
            trace[net] = (inst_name, best_pin)

    if finite_guard and not math.isfinite(at_acc):
        # A NaN/Inf poisoned the accumulator somewhere; rescan (cold path)
        # to name the first offending pin.  A NaN loses every max()
        # comparison, so without this check it would be silently shadowed
        # by a healthy sibling path.
        for inst_name in order:
            inst = module.instance(inst_name)
            cell = graph.cell_of(inst_name)
            if cell.is_sequential or not inst.outputs:
                continue
            load = graph.instance_load_ff(inst_name)
            for pin, in_net in inst.inputs.items():
                at = (
                    arrival[in_net]
                    + graph.wire.delay(in_net) * delay_derate
                    + cell.delay_ps(pin, load, slew[in_net]) * delay_derate
                )
                if not math.isfinite(at):
                    raise TimingError(
                        f"non-finite arrival through {inst_name}.{pin} "
                        f"on net {in_net!r}; check the delay tables"
                    )
        raise TimingError("non-finite arrival in timing propagation")

    return build_report(
        graph, clock, arrival, min_arrival, trace, launch_q,
        delay_derate=delay_derate, finite_guard=finite_guard,
    )


def build_report(
    graph: TimingGraph,
    clock: Clock,
    arrival: dict[str, float],
    min_arrival: dict[str, float],
    trace: dict[str, tuple[str, str] | None],
    launch_q: dict[str, float],
    delay_derate: float = 1.0,
    finite_guard: bool = True,
    endpoint_list: list[tuple[str, object]] | None = None,
) -> TimingReport:
    """Assemble a :class:`TimingReport` from propagated arrivals.

    Shared by :func:`analyze` and the incremental
    :class:`repro.par.session.TimingSession`, so both produce reports
    through the same endpoint accounting, sort order and path walk.

    Args:
        endpoint_list: pre-computed ``graph.endpoints()`` (sessions cache
            it across moves); None recomputes it.
    """
    module = graph.module
    endpoints: list[EndpointTiming] = []
    end_trace_net: dict[str, str] = {}
    hold_violations: list[HoldViolation] = []
    if endpoint_list is None:
        endpoint_list = graph.endpoints()
    for kind, detail in endpoint_list:
        if kind == "port":
            net = str(detail)
            if net not in arrival:
                raise TimingError(f"output port {net!r} is undriven")
            at = arrival[net] + graph.wire.delay(net) * delay_derate
            ep = EndpointTiming(
                kind="port",
                name=net,
                data_arrival_ps=at,
                min_period_ps=at,
                launch_overhead_ps=_launch_of(net, trace, launch_q, module),
                capture_overhead_ps=0.0,
                skew_ps=0.0,
                borrow_ps=0.0,
            )
            end_trace_net[ep.name] = net
        else:
            inst_name, pin = detail
            inst = module.instance(inst_name)
            cell = graph.cell_of(inst_name)
            net = inst.inputs[pin]
            if net not in arrival:
                raise TimingError(
                    f"register {inst_name} data pin {pin} is undriven"
                )
            at = arrival[net] + graph.wire.delay(net) * delay_derate
            borrow = (
                clock.borrow_window_ps
                if cell.sequential.transparent
                else 0.0
            )
            setup = cell.sequential.setup_ps * delay_derate
            min_period = at + setup + clock.skew_ps - borrow
            ep = EndpointTiming(
                kind="register",
                name=f"{inst_name}.{pin}",
                data_arrival_ps=at,
                min_period_ps=max(min_period, 1e-3),
                launch_overhead_ps=_launch_of(net, trace, launch_q, module),
                capture_overhead_ps=setup,
                skew_ps=clock.skew_ps,
                borrow_ps=borrow,
            )
            end_trace_net[ep.name] = net
            m_at = min_arrival[net] + graph.wire.delay(net) * delay_derate
            required = cell.sequential.hold_ps * delay_derate + clock.skew_ps
            if m_at < required:
                hold_violations.append(
                    HoldViolation(
                        endpoint=ep.name,
                        min_arrival_ps=m_at,
                        required_ps=required,
                    )
                )
        endpoints.append(ep)

    if not endpoints:
        raise TimingError(f"module {module.name} has no timing endpoints")
    bad = next(
        (e for e in endpoints if not math.isfinite(e.min_period_ps)), None
    ) if finite_guard else None
    if bad is not None:
        raise TimingError(
            f"endpoint {bad.name!r} has a non-finite required period; "
            "check the library delay tables for NaN/Inf entries"
        )
    endpoints.sort(key=lambda e: e.min_period_ps, reverse=True)
    critical = endpoints[0]
    path = _walk_path(module, trace, end_trace_net[critical.name], arrival)
    return TimingReport(
        min_period_ps=critical.min_period_ps,
        critical=critical,
        critical_path=path,
        endpoints=endpoints,
        hold_violations=hold_violations,
        clock=clock,
    )


def solve_min_period(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    tolerance_ps: float = 0.1,
    max_iterations: int = 30,
    use_array: bool = True,
    check_array: bool = False,
    **analyze_kwargs,
) -> TimingReport:
    """Self-consistent minimum period when skew/borrowing scale with it.

    Section 4.1 frames skew budgets as *percentages of the cycle* (10%
    ASIC, 5% custom), so the binding constraint is

        period = clk_to_q + logic + setup + f_skew * period - f_borrow * period

    This iterates :func:`analyze`, re-deriving the absolute skew and
    borrow windows at each achieved period, to the fixed point.  It
    converges geometrically because the logic delay does not depend on
    the period.

    ``use_array=True`` (the default) runs the iteration over the
    vectorized engine (:mod:`repro.sta.array`): arrival propagation is
    clock-independent, so the fixed point costs one compile+propagate
    plus a report per step, bitwise equal to the object engine.
    ``check_array=True`` additionally verifies every step against the
    object engine.

    Raises:
        TimingError: if the constraint cannot close (overheads consume
            the whole cycle) or an accepted period is non-finite.
        ConvergenceError: if iteration fails to converge within
            ``max_iterations`` steps.
    """
    if tolerance_ps <= 0 or max_iterations < 0:
        raise TimingError("tolerance must be positive and iterations >= 0")
    profiling = obs.enabled()
    start_s = obs.MONOTONIC() if profiling else 0.0
    if use_array:
        from repro.sta.array import clock_analyzer

        run = clock_analyzer(
            module, library, wire=wire, check=check_array, **analyze_kwargs
        )
    else:
        def run(clk: Clock) -> TimingReport:
            return analyze(module, library, clk, wire=wire, **analyze_kwargs)
    current = clock
    report = run(current)
    iterations = 1
    for _ in range(max_iterations):
        period = report.min_period_ps
        if not math.isfinite(period):
            raise TimingError(
                f"period iteration accepted a non-finite period ({period})"
            )
        if clock.skew_fraction + clock.borrow_fraction >= 1.0:
            raise TimingError("skew and borrow fractions consume the cycle")
        current = clock.with_period(period)
        new_report = run(current)
        iterations += 1
        if abs(new_report.min_period_ps - period) <= tolerance_ps:
            if profiling:
                obs.count("sta.solve_min_period.calls")
                obs.observe("sta.solve_min_period.iterations", iterations)
                obs.observe(
                    "sta.solve_min_period.ms",
                    (obs.MONOTONIC() - start_s) * 1e3,
                )
            return new_report
        report = new_report
    raise ConvergenceError(
        f"period iteration did not converge within {max_iterations} steps"
    )


def _launch_of(
    net: str,
    trace: dict[str, tuple[str, str] | None],
    launch_q: dict[str, float],
    module: Module,
) -> float:
    """Clk->Q overhead of the register launching this path, if any."""
    current = net
    while True:
        if current in launch_q:
            return launch_q[current]
        step = trace.get(current)
        if step is None:
            return 0.0
        inst_name, pin = step
        current = module.instance(inst_name).inputs[pin]


def _walk_path(
    module: Module,
    trace: dict[str, tuple[str, str] | None],
    end_net: str,
    arrival: dict[str, float],
) -> list[PathStep]:
    steps: list[PathStep] = []
    current = end_net
    while True:
        step = trace.get(current)
        if step is None:
            break
        inst_name, pin = step
        inst = module.instance(inst_name)
        prev_net = inst.inputs[pin]
        steps.append(
            PathStep(
                instance=inst_name,
                cell=inst.cell_name,
                through_pin=pin,
                delay_ps=arrival[current] - arrival.get(prev_net, 0.0),
                arrival_ps=arrival[current],
            )
        )
        current = prev_net
    steps.reverse()
    return steps
