"""The custom implementation flow.

The full-custom methodology of the paper's Sections 4-8, with every lever
pulled: a short-Leff custom process, deeper pipelining, continuous
transistor sizing, hand-quality (careful, annealed) placement, a 5%-skew
hand-balanced clock with latch-based time borrowing available, domino
logic on the critical path, and flagship-bin silicon instead of a
worst-case quote.

Failure policy mirrors :mod:`repro.flows.asic`: ``on_error="raise"``
aborts with a stage-tagged :class:`FlowError`; ``on_error="keep_going"``
records failures into ``FlowResult.diagnostics`` and degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.cells.builder import custom_library
from repro.circuit.families import DOMINO_PROFILE
from repro.flows.asic import WORKLOADS
from repro.flows.results import FlowError, FlowResult
from repro.physical.placement import place
from repro.pipeline.pipeliner import pipeline_module
from repro.robust.degrade import StageRunner, fallback_timing
from repro.robust.faults import maybe_trip
from repro.robust.guards import (
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.robust.validate import preflight
from repro.sizing.buffering import buffer_high_fanout
from repro.sizing.tilos import total_area_um2
from repro.sta.clocking import custom_clock
from repro.sta.engine import solve_min_period
from repro.sta.sequential import register_boundaries
from repro.tech.process import CMOS250_CUSTOM, ProcessTechnology
from repro.variation.binning import custom_flagship_frequency
from repro.variation.components import NEW_PROCESS
from repro.variation.montecarlo import sample_chip_speeds


@dataclass(frozen=True)
class CustomFlowOptions:
    """Knobs of the custom flow.

    Attributes:
        workload: one of :data:`repro.flows.asic.WORKLOADS` (custom teams
            default to the macro-based datapath).
        bits: datapath width.
        pipeline_stages: custom designs pipeline aggressively (Section 4);
            ignored when ``target_cycle_fo4`` is set.
        target_cycle_fo4: pick the stage count that lands the cycle near
            this FO4 depth, the way real custom teams chose their pipe
            depth (Alpha 15 FO4, PowerPC 13 FO4).  None = fixed stages.
        use_latches: level-sensitive latches + multi-phase borrowing.
        use_domino: apply domino logic to the combinational critical path
            (Section 7; modelled via the measured family profile because
            full-netlist domino conversion is a custom manual step).
        sizing_moves: continuous sizing budget.
        flagship_silicon: sell the fast bins (Section 8) instead of the
            median.
        seed: placement RNG seed.
        on_error: ``"raise"`` aborts on the first stage failure;
            ``"keep_going"`` records the failure into the result's
            diagnostics and degrades gracefully.
        fault: chaos hook -- name of a stage at which to trip an
            injected fault (testing/selftest only; None = off).
    """

    workload: str = "alu_macro"
    bits: int = 8
    pipeline_stages: int = 4
    target_cycle_fo4: float | None = None
    use_latches: bool = True
    use_domino: bool = True
    sizing_moves: int = 60
    flagship_silicon: bool = True
    seed: int = 1
    on_error: str = "raise"
    fault: str | None = None


def _stages_for_target(
    comb,
    library,
    tech: ProcessTechnology,
    target_fo4: float,
    use_latches: bool,
    use_domino: bool,
) -> int:
    """Stage count landing the cycle near a target FO4 depth.

    A quick unplaced STA measures the total combinational depth; the
    per-stage sequencing budget (register overhead plus the skew share)
    then fixes how many slices fit.
    """
    probe = register_boundaries(comb, library, use_latches=use_latches)
    clock = custom_clock(40.0 * tech.fo4_delay_ps)
    timing = solve_min_period(probe, library, clock)
    logic_fo4 = timing.logic_delay_ps / tech.fo4_delay_ps
    if use_domino:
        logic_fo4 /= DOMINO_PROFILE.combinational_speedup
    overhead_fo4 = (
        timing.min_period_ps - timing.logic_delay_ps
    ) / tech.fo4_delay_ps
    usable = max(target_fo4 - overhead_fo4, 1.0)
    return max(1, min(10, round(logic_fo4 / usable)))


def run_custom_flow(
    options: CustomFlowOptions = CustomFlowOptions(),
    tech: ProcessTechnology = CMOS250_CUSTOM,
) -> FlowResult:
    """Run the full custom flow and return its result record.

    Raises:
        FlowError: for unknown workloads or -- under
            ``on_error="raise"`` -- any stage failure (with the stage
            name attached and the cause chained).
    """
    if options.workload not in WORKLOADS:
        raise FlowError(
            f"unknown workload {options.workload!r}; "
            f"known: {sorted(WORKLOADS)}",
            stage="map",
        )
    runner = StageRunner(flow="custom", on_error=options.on_error)
    with obs.span("flow.custom", workload=options.workload,
                  bits=options.bits) as flow_span:
        with runner.stage("map", critical=True), \
                obs.span("flow.custom.map") as sp:
            maybe_trip(options.fault, "map")
            library = custom_library(tech)
            comb = WORKLOADS[options.workload](options.bits, library)

            stages_wanted = options.pipeline_stages
            if options.target_cycle_fo4 is not None:
                try:
                    stages_wanted = _stages_for_target(
                        comb, library, tech, options.target_cycle_fo4,
                        options.use_latches, options.use_domino,
                    )
                except Exception as exc:
                    # The probe is an optimisation, not a requirement:
                    # under keep_going fall back to the fixed stage
                    # count instead of losing the whole flow.
                    if not runner.keep_going:
                        raise
                    runner.note(
                        "map",
                        f"stage-count probe failed "
                        f"({type(exc).__name__}: {exc}); using fixed "
                        f"pipeline_stages={options.pipeline_stages}",
                        hint="check target_cycle_fo4 and the library",
                    )

            if stages_wanted > 1:
                report = pipeline_module(
                    comb, library, stages_wanted,
                    use_latches=options.use_latches,
                )
                module = report.module
                stages = report.stages
            else:
                module = register_boundaries(
                    comb, library, use_latches=options.use_latches
                )
                stages = 1
            sp.set(cells=module.instance_count(), stages=stages,
                   library=library.name)

        placement = None
        wire = None
        with runner.stage("place"), obs.span("flow.custom.place") as sp:
            maybe_trip(options.fault, "place")
            placement = place(
                module, library, quality="careful", seed=options.seed
            )
            wire = placement.parasitics(library)
            sp.set(wirelength_um=placement.total_wirelength_um())

        notes: dict[str, float] = {
            "wirelength_um": (
                placement.total_wirelength_um() if placement else 0.0
            ),
        }
        clock = custom_clock(20.0 * tech.fo4_delay_ps)
        with runner.stage("cts"), obs.span("flow.custom.cts") as sp:
            maybe_trip(options.fault, "cts")
            buffered = buffer_high_fanout(module, library, max_fanout=10)
            notes["buffers_added"] = float(buffered.buffers_added)
            sp.set(buffers_added=buffered.buffers_added,
                   skew_fraction=clock.skew_fraction)
        if runner.keep_going:
            # Pre-flight lint after buffering (so fanout findings are
            # real, not about-to-be-fixed) but before sizing/STA.
            runner.diagnostics.extend(preflight(module, library))

        with runner.stage("size"), obs.span("flow.custom.size") as sp:
            maybe_trip(options.fault, "size")
            if options.sizing_moves > 0:
                sizing = guarded_size_for_speed(
                    module, library, clock, wire=wire,
                    max_moves=options.sizing_moves,
                )
                notes["sizing_moves"] = float(sizing.moves)
                notes["sizing_speedup"] = sizing.speedup
                sp.set(moves=sizing.moves, speedup=sizing.speedup,
                       area_growth=sizing.area_growth)

        period_ps = None
        logic_ps = 0.0
        with runner.stage("sta"), obs.span("flow.custom.sta") as sp:
            maybe_trip(options.fault, "sta")
            timing = guarded_solve_min_period(
                module, library, clock, wire=wire
            )
            period_ps = timing.min_period_ps
            logic_ps = timing.logic_delay_ps

            if options.use_domino:
                # Domino accelerates the combinational portion only;
                # registers, skew and wires keep their cost (Section 7.1's
                # dilution from 50-100% combinational to ~50% sequential).
                # The speedup constant is the family profile, itself
                # validated against gate-level domino mappings in the test
                # suite and bench E9.
                domino_factor = DOMINO_PROFILE.combinational_speedup
                period_ps = period_ps - logic_ps + logic_ps / domino_factor
                logic_ps = logic_ps / domino_factor
                notes["domino_factor"] = domino_factor
            sp.set(min_period_ps=period_ps)
        if period_ps is None:
            degraded = fallback_timing(module, library, clock)
            period_ps = degraded.min_period_ps
            logic_ps = degraded.logic_delay_ps
        typical_mhz = 1.0e6 / period_ps

        quoted = None
        with runner.stage("quote"), obs.span("flow.custom.quote") as sp:
            maybe_trip(options.fault, "quote")
            dist = sample_chip_speeds(typical_mhz, NEW_PROCESS, count=4000,
                                      seed=options.seed)
            if options.flagship_silicon:
                quoted = custom_flagship_frequency(dist)
                notes["quote_method"] = 2.0  # 2 = flagship bin
            else:
                quoted = dist.median_mhz
                notes["quote_method"] = 3.0  # 3 = typical silicon
            sp.set(quoted_mhz=quoted)
        if quoted is None:
            quoted = typical_mhz
            notes["quote_method"] = -1.0  # -1 = quote stage degraded

        flow_span.set(cells=module.instance_count(),
                      min_period_ps=period_ps, quoted_mhz=quoted)

    return FlowResult(
        name=f"custom_{options.workload}{options.bits}_s{stages}",
        style="custom",
        technology=tech,
        library_name=library.name,
        typical_frequency_mhz=typical_mhz,
        quoted_frequency_mhz=quoted,
        min_period_ps=period_ps,
        fo4_depth=period_ps / tech.fo4_delay_ps,
        logic_fo4=logic_ps / tech.fo4_delay_ps,
        overhead_fraction=1.0 - logic_ps / period_ps,
        pipeline_stages=stages,
        gate_count=module.instance_count(),
        area_um2=total_area_um2(module, library),
        notes=notes,
        diagnostics=runner.diagnostics,
    )
