"""Domino mapping: monotone (dual-rail) synthesis onto a dynamic library.

Domino gates cannot invert (the output falls only at precharge), so a
network must be *monotone*.  The standard construction: rewrite the logic
into negation-normal form (inversions pushed to the literals), provide
both polarities of every input (dual-rail), and map the now-inversion-free
network onto AND/OR domino gates.  This is why "dynamic logic circuit
synthesis ... is used as an aid to in-house custom design" rather than as
a push-button ASIC flow (Section 7.2) -- and why our custom flow can use
it while the ASIC flow cannot.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import And, Const, Expr, Not, Or, SynthesisError, Var, Xor
from repro.synth.optimize import optimize


def to_negation_normal_form(expr: Expr) -> Expr:
    """Push all inversions down to the variables.

    XOR/XNOR are expanded into their AND/OR forms first (a domino network
    has no non-monotone operators).
    """
    return _nnf(expr, negate=False)


def _nnf(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Const):
        return Const(expr.value != negate)
    if isinstance(expr, Var):
        return Not(expr) if negate else expr
    if isinstance(expr, Not):
        return _nnf(expr.child, not negate)
    if isinstance(expr, And):
        children = tuple(_nnf(c, negate) for c in expr.children)
        return Or(children) if negate else And(children)
    if isinstance(expr, Or):
        children = tuple(_nnf(c, negate) for c in expr.children)
        return And(children) if negate else Or(children)
    if isinstance(expr, Xor):
        # a ^ b = (a & ~b) | (~a & b); ~(a ^ b) = (a & b) | (~a & ~b).
        a, b = expr.left, expr.right
        if negate:
            expanded = Or((And((a, b)), And((Not(a), Not(b)))))
        else:
            expanded = Or((And((a, Not(b))), And((Not(a), b))))
        return _nnf(expanded, negate=False)
    raise SynthesisError(f"unknown expression node {type(expr).__name__}")


def is_monotone(expr: Expr) -> bool:
    """True if the expression inverts nothing but input literals."""
    if isinstance(expr, (Const, Var)):
        return True
    if isinstance(expr, Not):
        return isinstance(expr.child, Var)
    if isinstance(expr, (And, Or)):
        return all(is_monotone(c) for c in expr.children)
    if isinstance(expr, Xor):
        return False
    raise SynthesisError(f"unknown expression node {type(expr).__name__}")


def domino_map(
    design: dict[str, Expr],
    domino_library: CellLibrary,
    name: str = "domino",
    drive: float = 2.0,
) -> Module:
    """Map a design onto a domino library with dual-rail inputs.

    For every input variable ``x`` the module exposes ``x`` and ``x_n``
    (its complement); upstream logic -- in a real chip, the preceding
    pipeline latches -- supplies both rails.  Outputs are the true rail
    only.

    Raises:
        SynthesisError: for constant outputs, or a library without
            AND/OR domino gates.
    """
    for base in ("DAND2", "DOR2"):
        if not domino_library.has_base(base):
            raise SynthesisError(
                f"library {domino_library.name} is not a domino library "
                f"(missing {base})"
            )
    module = Module(name)
    emit = Emitter(module, domino_library, drive=drive)
    nnf_design: dict[str, Expr] = {}
    variables: set[str] = set()
    for out, expr in design.items():
        nnf = to_negation_normal_form(optimize(expr, max_arity=4))
        if isinstance(nnf, Const):
            raise SynthesisError(f"output {out!r} reduces to a constant")
        if not is_monotone(nnf):
            raise SynthesisError(f"output {out!r} failed NNF monotonisation")
        nnf_design[out] = nnf
        variables |= nnf.variables()
    rails: dict[tuple[str, bool], str] = {}
    for var in sorted(variables):
        rails[(var, False)] = module.add_input(var)
        rails[(var, True)] = module.add_input(f"{var}_n")
    for out in design:
        module.add_output(out)
    memo: dict[Expr, str] = {}
    for out, expr in nnf_design.items():
        net = _map_monotone(emit, memo, rails, expr)
        emit.gate("DBUF", net, out=out)
    return module


def _map_monotone(
    emit: Emitter,
    memo: dict[Expr, str],
    rails: dict[tuple[str, bool], str],
    expr: Expr,
) -> str:
    if expr in memo:
        return memo[expr]
    if isinstance(expr, Var):
        return rails[(expr.name, False)]
    if isinstance(expr, Not):
        assert isinstance(expr.child, Var)
        return rails[(expr.child.name, True)]
    if isinstance(expr, (And, Or)):
        nets = [_map_monotone(emit, memo, rails, c) for c in expr.children]
        prefix = "DAND" if isinstance(expr, And) else "DOR"
        net = _reduce_domino(emit, prefix, nets)
        memo[expr] = net
        return net
    raise SynthesisError(f"non-monotone node {type(expr).__name__} in domino map")


def _reduce_domino(emit: Emitter, prefix: str, nets: list[str]) -> str:
    """Reduce with the widest stocked domino gate of a kind."""
    widths = [
        w for w in (8, 4, 3, 2)
        if emit.library.has_base(f"{prefix}{w}")
    ]
    if not widths:
        raise SynthesisError(f"no {prefix} gates stocked")
    level = list(nets)
    while len(level) > 1:
        nxt = []
        i = 0
        while i < len(level):
            remaining = len(level) - i
            width = next((w for w in widths if w <= remaining), None)
            if width is None:
                nxt.append(level[i])
                i += 1
                continue
            group = level[i: i + width]
            nxt.append(emit.gate(f"{prefix}{width}", *group))
            i += width
        level = nxt
    return level[0]


def dual_rail_stimulus(inputs: dict[str, bool]) -> dict[str, bool]:
    """Extend a single-rail input assignment with complement rails."""
    out = dict(inputs)
    for name, value in inputs.items():
        out[f"{name}_n"] = not value
    return out
