"""Sensitivity analysis of the factor model.

Section 9: "Based on our analysis we believe that the influence of the
factors of floorplanning and circuit design, while significant, are
probably overstated in their importance in the performance gap between
ASIC and custom ICs.  From our analysis the two most significant factors
are pipelining and process variation."

This module makes that judgement quantitative: in the multiplicative
model the *log-domain share* of each factor is its importance, and the
effect of mis-estimating a factor is bounded by its own size.  The
tornado analysis shows how the total responds when each factor moves
through a plausible estimation-error band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.factors import FactorError, FactorModel


@dataclass(frozen=True)
class FactorSensitivity:
    """How much one factor matters to the total gap.

    Attributes:
        name: factor name.
        log_share: fraction of log(total) this factor carries.
        total_if_halved: total gap if the factor's *excess* over 1.0 is
            halved (the estimation-error scenario).
        total_if_removed: total gap with the factor at 1.0.
    """

    name: str
    log_share: float
    total_if_halved: float
    total_if_removed: float


def _scaled_contribution(value: float, scale: float) -> float:
    """Scale a factor's excess over 1: 1 + scale * (value - 1)."""
    return 1.0 + scale * (value - 1.0)


def sensitivity_analysis(model: FactorModel | None = None) -> list[FactorSensitivity]:
    """Tornado analysis of the factor model, largest impact first."""
    factor_model = model or FactorModel()
    total = factor_model.total_product()
    log_total = math.log(total)
    if log_total <= 0:
        raise FactorError("total gap must exceed 1x")
    out = []
    for factor in factor_model.factors:
        halved = total / factor.max_contribution * _scaled_contribution(
            factor.max_contribution, 0.5
        )
        removed = total / factor.max_contribution
        out.append(
            FactorSensitivity(
                name=factor.name,
                log_share=math.log(factor.max_contribution) / log_total,
                total_if_halved=halved,
                total_if_removed=removed,
            )
        )
    out.sort(key=lambda s: s.log_share, reverse=True)
    return out


def overstatement_test(
    model: FactorModel | None = None,
    minor_factors: tuple[str, ...] = ("floorplanning", "sizing"),
) -> float:
    """Quantify the Section 9 'overstated' judgement.

    Returns the fraction of the total (log) gap carried by the named
    minor factors together.  The paper's point: even if both estimates
    were halved, the total story barely changes -- their combined share
    is small.
    """
    factor_model = model or FactorModel()
    shares = {
        s.name: s.log_share for s in sensitivity_analysis(factor_model)
    }
    missing = [n for n in minor_factors if n not in shares]
    if missing:
        raise FactorError(f"unknown factors {missing}")
    return sum(shares[name] for name in minor_factors)


def tornado_table(model: FactorModel | None = None) -> str:
    """Text tornado chart of factor sensitivities."""
    rows = sensitivity_analysis(model)
    total = (model or FactorModel()).total_product()
    lines = [
        f"total gap {total:.1f}x",
        f"{'factor':<20s} {'share':>7s} {'if halved':>10s} "
        f"{'if removed':>11s}",
    ]
    for row in rows:
        bar = "#" * int(40 * row.log_share)
        lines.append(
            f"{row.name:<20s} {100 * row.log_share:>6.1f}% "
            f"{row.total_if_halved:>9.1f}x {row.total_if_removed:>10.1f}x "
            f"{bar}"
        )
    return "\n".join(lines)
