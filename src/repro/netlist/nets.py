"""Netlist primitives: ports, nets and cell instances.

The netlist layer is deliberately library-agnostic: an :class:`Instance`
records which library cell it instantiates by *name* only, and records its
pin connections split into inputs and outputs so that structural analyses
(topological ordering, cone extraction, depth counting) need no library in
hand.  Binding instances to real :class:`~repro.cells.cell.Cell` objects
happens in the STA and sizing layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NetlistError(ValueError):
    """Raised for structurally invalid netlist operations."""


class PortDirection(enum.Enum):
    """Direction of a module port, from the module's point of view."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Port:
    """A port on a module boundary.

    Attributes:
        name: port (and attached net) name.
        direction: whether the module reads or drives this port.
    """

    name: str
    direction: PortDirection

    def __post_init__(self) -> None:
        _check_identifier(self.name, "port")

    @property
    def is_input(self) -> bool:
        return self.direction is PortDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is PortDirection.OUTPUT


@dataclass
class Instance:
    """One instantiation of a library cell inside a module.

    Attributes:
        name: instance name, unique within its module.
        cell_name: name of the library cell this instantiates (e.g.
            ``"NAND2_X2"``).  Resolution to a real cell object is deferred
            to the layers that need electrical data.
        inputs: mapping from input pin name to the net connected to it.
        outputs: mapping from output pin name to the net driven by it.
        attributes: free-form annotations (placement coordinates, sizing
            results, logic-family tags...) added by downstream tools.
    """

    name: str
    cell_name: str
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)
    attributes: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_identifier(self.name, "instance")
        _check_identifier(self.cell_name, "cell")
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise NetlistError(
                f"instance {self.name}: pins used as both input and output: "
                f"{sorted(overlap)}"
            )

    @property
    def pins(self) -> dict[str, str]:
        """All pin connections, inputs and outputs combined."""
        merged = dict(self.inputs)
        merged.update(self.outputs)
        return merged

    def net_on(self, pin: str) -> str:
        """Net connected to the given pin.

        Raises:
            NetlistError: if the pin is not connected.
        """
        if pin in self.inputs:
            return self.inputs[pin]
        if pin in self.outputs:
            return self.outputs[pin]
        raise NetlistError(f"instance {self.name} has no pin {pin!r}")

    def fanin_nets(self) -> list[str]:
        """Nets read by this instance, in pin-name order."""
        return [self.inputs[pin] for pin in sorted(self.inputs)]

    def fanout_nets(self) -> list[str]:
        """Nets driven by this instance, in pin-name order."""
        return [self.outputs[pin] for pin in sorted(self.outputs)]


@dataclass
class Net:
    """A net: one driver, any number of sinks.

    The :class:`~repro.netlist.module.Module` owns net bookkeeping; this
    record is the view it hands out.

    Attributes:
        name: net name, unique within the module.
        driver: ``None`` for an undriven net, the string ``"port:<name>"``
            for a net driven by a module input, or ``(instance, pin)`` for
            a net driven by a cell output.
        sinks: list of ``(instance, pin)`` loads plus ``"port:<name>"``
            entries for module outputs.
    """

    name: str
    driver: object | None = None
    sinks: list[object] = field(default_factory=list)

    @property
    def is_driven(self) -> bool:
        return self.driver is not None

    @property
    def fanout(self) -> int:
        return len(self.sinks)


def _check_identifier(name: str, kind: str) -> None:
    """Validate a netlist identifier.

    We accept a Verilog-like subset: alphanumerics, underscore, and the
    bracket/dollar characters common in synthesized names.
    """
    if not name:
        raise NetlistError(f"{kind} name must be non-empty")
    allowed = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                  "0123456789_[]$.")
    bad = set(name) - allowed
    if bad:
        raise NetlistError(f"{kind} name {name!r} contains invalid characters {bad}")
    if name[0].isdigit():
        raise NetlistError(f"{kind} name {name!r} must not start with a digit")


def port_ref(name: str) -> str:
    """Encode a module-port endpoint for use in :class:`Net` records."""
    return f"port:{name}"


def is_port_ref(endpoint: object) -> bool:
    """True if a net endpoint refers to a module port."""
    return isinstance(endpoint, str) and endpoint.startswith("port:")


def port_ref_name(endpoint: str) -> str:
    """Extract the port name from a ``"port:..."`` endpoint."""
    if not is_port_ref(endpoint):
        raise NetlistError(f"{endpoint!r} is not a port reference")
    return endpoint.split(":", 1)[1]
