"""Exporters: JSON-lines traces, flat metric dumps, and a human report.

Three consumers, three formats:

* :func:`trace_to_jsonl` -- one JSON object per finished span, in start
  order, for machine post-processing (``repro-gap gap --trace t.jsonl``);
* :func:`metrics_to_flat` -- a flat ``{str: scalar}`` dict in the same
  shape as the repo's ``BENCH_*.json`` artifacts, so metric dumps and
  benchmark trajectories share tooling;
* :func:`report` -- the terminal table behind ``--profile`` and
  ``repro-gap stats``.

All output is deterministic given a deterministic clock: keys are
sorted, floats are rounded to fixed precision, and spans are emitted in
start order.
"""

from __future__ import annotations

import json
import math
import re
from typing import Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Decimal places kept in exported floats (1 ns at second scale).
FLOAT_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), FLOAT_DIGITS)


def span_to_dict(span: Span) -> dict:
    """JSON-ready form of one finished span."""
    record = {
        "name": span.name,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "thread": span.thread,
        "start_s": _round(span.start_s),
        "duration_ms": _round(span.duration_s * 1e3),
        "self_ms": _round(span.self_s * 1e3),
    }
    if span.attributes:
        record["attrs"] = {
            key: (_round(val) if isinstance(val, float) else val)
            for key, val in sorted(span.attributes.items())
        }
    return record


def trace_to_jsonl(tracer: Tracer) -> str:
    """Finished spans as JSON-lines text (one object per line)."""
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True)
        for span in tracer.finished()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(tracer: Tracer, path: str) -> int:
    """Write the JSON-lines trace atomically; returns the span count.

    Atomic like the ``BENCH_*.json`` merge (temp file + ``os.replace``),
    so a crashed run can never leave a truncated trace behind.
    """
    from repro.obs.ledger import _atomic_write_text

    text = trace_to_jsonl(tracer)
    _atomic_write_text(path, text)
    return len(tracer.finished())


def trace_to_chrome(source: Tracer | Sequence[Span]) -> str:
    """Finished spans in Chrome Trace Event Format (JSON object form).

    The output loads directly into ``chrome://tracing``, Perfetto and
    speedscope: each finished span becomes one complete (``"ph": "X"``)
    event with microsecond timestamps and self-describing args (span
    depth, exclusive self-time, then the span's own attributes), the
    process is named, and each thread gets ``thread_name`` /
    ``thread_sort_index`` metadata events so worker lanes are labelled
    and stable.  Built from the same span tree as
    :func:`trace_to_jsonl` -- adopted pool-worker spans appear on
    their original thread lanes.

    Args:
        source: a tracer, or an explicit finished-span list.
    """
    spans = source.finished() if isinstance(source, Tracer) else [
        span for span in source if span.end_s is not None
    ]
    threads: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = threads.setdefault(span.thread, len(threads))
        event = {
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": _round(span.start_s * 1e6),
            "dur": _round(span.duration_s * 1e6),
            "pid": 0,
            "tid": tid,
        }
        args = {
            "depth": span.depth,
            "self_ms": _round(span.self_s * 1e3),
        }
        args.update({
            key: (_round(val) if isinstance(val, float) else val)
            for key, val in sorted(span.attributes.items())
        })
        event["args"] = args
        events.append(event)
    meta: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "repro-gap"},
        },
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": 0,
            "args": {"sort_index": 0},
        },
    ]
    for thread, tid in sorted(threads.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": thread},
        })
        meta.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"sort_index": tid},
        })
    return json.dumps(
        {"traceEvents": meta + events, "displayTimeUnit": "ms"},
        sort_keys=True,
    )


def write_chrome_trace(source: Tracer | Sequence[Span],
                       path: str) -> int:
    """Atomically write the Chrome trace; returns the span count."""
    from repro.obs.ledger import _atomic_write_text

    text = trace_to_chrome(source)
    _atomic_write_text(path, text + "\n")
    spans = source.finished() if isinstance(source, Tracer) else [
        span for span in source if span.end_s is not None
    ]
    return len(spans)


#: Characters legal in a Prometheus metric name.
_PROM_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a dotted metric name into Prometheus form."""
    cleaned = _PROM_NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(key: tuple[tuple[str, str], ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{_prom_name(k)}="{_prom_escape(str(v))}"'
                    for k, v in pairs)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _prom_buckets(values: list[float], count: int = 8) -> list[float]:
    """Deterministic bucket bounds for one histogram snapshot.

    Prometheus histograms normally carry fixed, pre-registered buckets;
    this registry stores raw observations, so a snapshot derives its
    bounds from the observed range instead -- log-spaced across the
    positive range when possible, linear otherwise.  The bounds are a
    pure function of (min, max), so re-exporting the same data gives
    identical text.
    """
    lo, hi = min(values), max(values)
    if lo == hi:
        return [lo]
    if lo > 0:
        ratio = hi / lo
        return [lo * ratio ** (i / (count - 1)) for i in range(count)]
    step = (hi - lo) / (count - 1)
    return [lo + step * i for i in range(count)]


def metrics_to_prom(registry: MetricsRegistry) -> str:
    """Every metric in the Prometheus text exposition format (0.0.4).

    Counters export as ``<name>_total``, gauges as-is, histograms as
    cumulative ``_bucket{le=...}`` lines plus ``_sum`` and ``_count``.
    Dotted names flatten to underscores; label values are escaped per
    the format spec.  One snapshot, suitable for the textfile collector
    or ``curl``-style scrape debugging.
    """
    lines: list[str] = []
    for metric in registry.all_metrics():
        name = _prom_name(metric.name)
        if isinstance(metric, Counter):
            lines.append(f"# HELP {name}_total {metric.help or metric.name}")
            lines.append(f"# TYPE {name}_total counter")
            for key in sorted(metric.series()):
                value = metric.value(**dict(key))
                lines.append(
                    f"{name}_total{_prom_labels(key)} "
                    f"{_prom_value(value)}"
                )
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} gauge")
            for key in sorted(metric.series()):
                value = metric.value(**dict(key))
                lines.append(
                    f"{name}{_prom_labels(key)} {_prom_value(value)}"
                )
        elif isinstance(metric, Histogram):
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} histogram")
            for key in sorted(metric.series()):
                labels = dict(key)
                values = sorted(metric.values(**labels))
                if not values:
                    continue
                cumulative = 0
                for bound in _prom_buckets(values):
                    while (cumulative < len(values)
                           and values[cumulative] <= bound):
                        cumulative += 1
                    le = (("le", f"{bound:.9g}"),)
                    lines.append(
                        f"{name}_bucket{_prom_labels(key, le)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f'{name}_bucket{_prom_labels(key, (("le", "+Inf"),))} '
                    f"{len(values)}"
                )
                lines.append(
                    f"{name}_sum{_prom_labels(key)} "
                    f"{_prom_value(sum(values))}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(key)} {len(values)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prom(registry: MetricsRegistry, path: str) -> int:
    """Atomically write the Prometheus snapshot; returns the line count."""
    from repro.obs.ledger import _atomic_write_text

    text = metrics_to_prom(registry)
    _atomic_write_text(path, text)
    return text.count("\n")


def _flat_label(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


def metrics_to_flat(registry: MetricsRegistry) -> dict:
    """Flatten every metric into a ``BENCH_*.json``-style scalar dict.

    Counters and gauges contribute one key per label set; histograms
    contribute count/mean/p50/p95/max summaries.
    """
    flat: dict = {}
    for metric in registry.all_metrics():
        for key in sorted(metric.series()):
            suffix = _flat_label(key)
            labels = dict(key)
            if isinstance(metric, Counter):
                flat[metric.name + suffix] = _round(metric.value(**labels))
            elif isinstance(metric, Gauge):
                flat[metric.name + suffix] = _round(metric.value(**labels))
            elif isinstance(metric, Histogram):
                base = metric.name + suffix
                flat[base + ".count"] = metric.count(**labels)
                flat[base + ".sum"] = _round(metric.total(**labels))
                flat[base + ".mean"] = _round(metric.mean(**labels))
                flat[base + ".p50"] = _round(metric.percentile(50, **labels))
                flat[base + ".p95"] = _round(metric.percentile(95, **labels))
                flat[base + ".max"] = _round(metric.percentile(100, **labels))
    return flat


def write_metrics(registry: MetricsRegistry, path: str) -> int:
    """Atomically write the flat metrics dump as JSON; returns the key
    count."""
    from repro.obs.ledger import _atomic_write_text

    flat = metrics_to_flat(registry)
    _atomic_write_text(
        path, json.dumps(flat, indent=2, sort_keys=True) + "\n"
    )
    return len(flat)


def report(tracer: Tracer, registry: MetricsRegistry) -> str:
    """Human-readable profile: span tree, then metrics.

    The span section is the indented call-path tree from
    :mod:`repro.obs.render` (total and self milliseconds per node,
    cache-hit and error annotations) rather than the old flat per-name
    table, so nesting -- which stage called which solver how often --
    survives into the terminal view.
    """
    from repro.obs.render import render_metrics, render_span_tree

    sections: list[str] = []
    spans = tracer.finished()
    if spans:
        sections.append(render_span_tree(spans))
    flat = metrics_to_flat(registry)
    if flat:
        sections.append(render_metrics(flat))
    if not sections:
        return "(no observability data recorded)"
    return "\n\n".join(sections)
