"""Macro-cell registry: pre-designed datapath blocks for synthesis.

Section 4.2: "Fast datapath designs, such as carry-lookahead and
carry-select adders and other regular elements, do exist in pre-designed
libraries, but are not automatically invoked in register-transfer level
logic synthesis of ASICs.  Use of these predefined macro cells for an ASIC
can significantly improve the resulting design."

This module is that predefined library: a registry mapping macro names to
generator callables.  The :mod:`repro.datapath` package registers its
generators on import; flows then choose between naive RTL synthesis and a
macro instantiation for the same function (benchmark E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


@dataclass(frozen=True)
class MacroSpec:
    """A registered macro generator.

    Attributes:
        name: registry key, e.g. ``"adder_cla"``.
        generator: callable ``(bits, library, name) -> Module``.
        description: one-line human-readable summary.
        category: grouping tag (``"adder"``, ``"shifter"``, ...).
    """

    name: str
    generator: Callable[..., Module]
    description: str
    category: str = "datapath"


_REGISTRY: dict[str, MacroSpec] = {}


def register_macro(
    name: str,
    generator: Callable[..., Module],
    description: str,
    category: str = "datapath",
) -> None:
    """Register a macro generator; re-registration must be identical."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing.generator is not generator:
        raise SynthesisError(f"macro {name!r} already registered differently")
    _REGISTRY[name] = MacroSpec(name, generator, description, category)


def get_macro(name: str) -> MacroSpec:
    """Look up a macro by name.

    Raises:
        SynthesisError: if unknown, listing registered names.
    """
    _ensure_datapath_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SynthesisError(
            f"no macro {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_macros(category: str | None = None) -> list[MacroSpec]:
    """All registered macros, optionally filtered by category."""
    _ensure_datapath_loaded()
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if category is None:
        return specs
    return [s for s in specs if s.category == category]


def expand_macro(
    name: str, bits: int, library: CellLibrary, instance_name: str | None = None
) -> Module:
    """Instantiate a macro as a netlist.

    Args:
        name: registry key.
        bits: word width.
        library: target cell library.
        instance_name: module name override.
    """
    spec = get_macro(name)
    module_name = instance_name or f"{name}_{bits}"
    return spec.generator(bits, library, module_name)


def _ensure_datapath_loaded() -> None:
    """Import the datapath package so its generators self-register."""
    import repro.datapath  # noqa: F401  (import side effect: registration)
