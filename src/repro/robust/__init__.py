"""Robustness layer: validation, numerical guards, faults, degradation.

The flow stack's defensive perimeter.  Four parts:

* :mod:`repro.robust.validate` -- pre-flight lint passes over netlists
  and libraries returning structured :class:`Diagnostic` records;
* :mod:`repro.robust.guards` -- convergence and NaN/Inf guards around
  the iterative solvers (period solving, sizing);
* :mod:`repro.robust.faults` -- a deterministic fault-injection harness
  backing ``repro-gap selftest`` and the error-path test suite,
  including process-level sweep chaos (:class:`SweepChaos`);
* :mod:`repro.robust.retry` -- the per-task retry/timeout/quarantine
  policy the fault-tolerant sweep supervisor runs under;
* :mod:`repro.robust.degrade` -- stage-level failure capture so flows
  run under ``on_error="keep_going"`` return partial results with
  diagnostics instead of aborting.
"""

from repro.robust.degrade import (
    ON_ERROR_POLICIES,
    DegradedTiming,
    StageRunner,
    fallback_timing,
)
from repro.robust.faults import (
    FaultInjectionError,
    FaultInjector,
    FaultReport,
    SweepChaos,
    maybe_trip,
    run_chaos_selftest,
    run_selftest,
)
from repro.robust.retry import (
    RetryError,
    RetryPolicy,
    TaskFailure,
    attempt_seed,
    is_task_failure,
)
from repro.robust.guards import (
    GuardError,
    NonFiniteError,
    disable_guard,
    enable_all_guards,
    ensure_finite,
    guard_enabled,
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.robust.validate import (
    Diagnostic,
    Severity,
    ValidationError,
    has_errors,
    preflight,
    require_clean,
    validate_library,
    validate_module,
)

__all__ = [
    "ON_ERROR_POLICIES",
    "DegradedTiming",
    "Diagnostic",
    "FaultInjectionError",
    "FaultInjector",
    "FaultReport",
    "GuardError",
    "NonFiniteError",
    "RetryError",
    "RetryPolicy",
    "Severity",
    "StageRunner",
    "SweepChaos",
    "TaskFailure",
    "ValidationError",
    "attempt_seed",
    "disable_guard",
    "enable_all_guards",
    "ensure_finite",
    "fallback_timing",
    "guard_enabled",
    "guarded_size_for_speed",
    "guarded_solve_min_period",
    "has_errors",
    "is_task_failure",
    "maybe_trip",
    "preflight",
    "require_clean",
    "run_chaos_selftest",
    "run_selftest",
    "validate_library",
    "validate_module",
]
