"""Cell and netlist power models.

The paper's Section 7 trade-off needs power to be measurable: "dynamic
logic has higher power consumption, requiring careful design of power
distribution, and clock distribution as well; the clock determines when
precharging occurs".  We model:

* switching (dynamic) power: ``P = alpha * C * Vdd^2 * f``;
* domino's activity penalty: the dynamic node precharges every cycle, so
  its effective activity factor is ~1 regardless of data statistics, and
  the clock network toggles at every gate;
* leakage as an area-proportional static term.

Units: capacitance fF, voltage V, frequency MHz, power microwatts
(fF * V^2 * MHz = 1e-15 * 1e6 W = 1e-9 W; we scale to uW).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import Cell, LogicFamily
from repro.cells.library import CellLibrary
from repro.netlist.module import Module

#: Default signal activity factor for static logic: fraction of cycles a
#: node switches.  0.15 is a common RTL-average assumption.
DEFAULT_ACTIVITY = 0.15

#: Domino nodes precharge and (on average half the time) evaluate every
#: cycle: activity is data-independent and close to 1.
DOMINO_ACTIVITY = 1.0

#: Leakage per um^2 of cell area, in uW (late-0.25um-era magnitude).
LEAKAGE_UW_PER_UM2 = 0.002


def switching_energy_fj(cap_ff: float, vdd: float) -> float:
    """Energy in fJ for one full charge/discharge of a capacitance."""
    if cap_ff < 0 or vdd <= 0:
        raise ValueError("capacitance must be >= 0 and vdd > 0")
    return cap_ff * vdd * vdd


def switching_power_uw(
    cap_ff: float, vdd: float, freq_mhz: float, activity: float = DEFAULT_ACTIVITY
) -> float:
    """Average dynamic power of one net in microwatts."""
    if freq_mhz < 0 or activity < 0:
        raise ValueError("frequency and activity must be non-negative")
    return 1e-3 * activity * cap_ff * vdd * vdd * freq_mhz


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown for a netlist at a given clock frequency.

    Attributes:
        dynamic_uw: data-switching power.
        clock_uw: clock-network power (flop clock pins, domino precharge).
        leakage_uw: static power.
    """

    dynamic_uw: float
    clock_uw: float
    leakage_uw: float

    @property
    def total_uw(self) -> float:
        return self.dynamic_uw + self.clock_uw + self.leakage_uw

    @property
    def total_mw(self) -> float:
        return self.total_uw / 1000.0


def estimate_power(
    module: Module,
    library: CellLibrary,
    freq_mhz: float,
    activity: float = DEFAULT_ACTIVITY,
    wire_cap_ff_per_net: float = 2.0,
) -> PowerReport:
    """Estimate the power of a mapped netlist.

    Every net's switched capacitance is the sum of its sink pin caps plus
    a lumped wire allowance; domino gates switch at :data:`DOMINO_ACTIVITY`
    and additionally load the clock network every cycle.

    Args:
        module: mapped netlist.
        library: library its cells come from.
        freq_mhz: operating clock frequency.
        activity: static-logic signal activity factor.
        wire_cap_ff_per_net: lumped wire capacitance per net.
    """
    vdd = library.technology.vdd
    dynamic = 0.0
    clock = 0.0
    leakage = 0.0
    for inst in module.iter_instances():
        cell = library.get(inst.cell_name)
        leakage += LEAKAGE_UW_PER_UM2 * cell.area_um2
        out_net = next(iter(inst.outputs.values()), None)
        if out_net is None:
            continue
        load = wire_cap_ff_per_net
        for sink in module.sinks_of(out_net):
            if isinstance(sink, tuple):
                sink_inst, pin = sink
                sink_cell = library.get(module.instance(sink_inst).cell_name)
                load += sink_cell.input_cap_ff(pin)
        if cell.is_sequential:
            # Output switches with data activity; clock pin switches every
            # cycle (2 edges -> activity 1 on the clock net contribution).
            dynamic += switching_power_uw(load, vdd, freq_mhz, activity)
            clock += switching_power_uw(
                cell.input_cap_ff(cell.sequential.clock_pin), vdd, freq_mhz, 1.0
            )
        elif cell.family is LogicFamily.DOMINO:
            dynamic += switching_power_uw(load, vdd, freq_mhz, DOMINO_ACTIVITY)
            # Precharge clock load approximated by one unit of input cap.
            clock += switching_power_uw(
                library.technology.unit_input_cap_ff, vdd, freq_mhz, 1.0
            )
        else:
            dynamic += switching_power_uw(load, vdd, freq_mhz, activity)
    return PowerReport(dynamic_uw=dynamic, clock_uw=clock, leakage_uw=leakage)


def power_ratio_domino_vs_static(
    static_report: PowerReport, domino_report: PowerReport
) -> float:
    """Total-power ratio of a domino implementation over a static one."""
    if static_report.total_uw <= 0:
        raise ValueError("static power must be positive")
    return domino_report.total_uw / static_report.total_uw
