"""Pluggable implementation-style backends: the ``BACKENDS`` registry.

The paper frames its argument as ASIC vs custom, but the factor
decomposition applies to *any* implementation style.  This module makes
styles first-class: a :class:`Backend` bundles everything the engine,
the sweep runner, the gap analysis and the CLI need to drive one style
-- its stage graph, its option record class, its default technology and
workload, and its finalizer -- and ``BACKENDS`` maps style names to
registered backends.

The built-in styles (``asic``, ``custom``, ``structured``) register
themselves at import time from their own modules; the registry imports
them lazily the first time an actual :class:`Backend` is needed, so
consulting :func:`backend_names` (e.g. to build CLI ``choices``) stays
cheap.  Third-party styles only need to construct a :class:`Backend`
and call :func:`register_backend` before the registry is consulted.

Everything downstream is generic in the style name: stage cache
fingerprints hash ``graph.flow``, the engine's ledger records carry it,
:mod:`repro.flows.sweep` resolves a point's backend from its options
class, and the CLI derives its ``choices`` lists from here.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.flows.options import FlowOptions
from repro.flows.results import FlowError, FlowResult

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps imports light
    import argparse

    from repro.flows.engine import FlowContext, StageGraph
    from repro.tech.process import ProcessTechnology

#: Built-in style name -> defining module.  Imported on first lookup;
#: listed here (not discovered) so :func:`backend_names` can answer
#: without paying for the whole flow stack.
_BUILTIN_MODULES = {
    "asic": "repro.flows.asic",
    "custom": "repro.flows.custom",
    "structured": "repro.flows.structured",
}

#: Style name -> registered backend.  Populated by the style modules'
#: :func:`register_backend` calls.
BACKENDS: dict[str, "Backend"] = {}


@dataclass(frozen=True)
class Backend:
    """Everything needed to run one implementation style.

    Attributes:
        name: style name (must equal ``graph.flow``).
        graph: the style's declarative stage graph.
        options_cls: option record class; sweep points resolve their
            backend from this (see :func:`backend_for_options`).
        default_tech: technology used when the caller passes none.
        finalize: builds the :class:`FlowResult` from a completed
            :class:`~repro.flows.engine.FlowContext`.
        default_workload: workload used when none is requested.
        description: one-line summary for CLI/help surfaces.
        cli_options: builds an options record from parsed ``flow``
            subcommand arguments (``(args, on_error) -> options``).
        gap_options: builds the options record the ``gap`` subcommand
            runs this style with (keyword args ``bits``,
            ``sizing_moves``, ``target_fo4``, ``on_error``).
    """

    name: str
    graph: "StageGraph"
    options_cls: type[FlowOptions]
    default_tech: "ProcessTechnology"
    finalize: Callable[["FlowContext", "ProcessTechnology"], FlowResult]
    default_workload: str = "alu"
    description: str = ""
    cli_options: Callable[["argparse.Namespace", str], FlowOptions] = field(
        default=None, repr=False
    )
    gap_options: Callable[..., FlowOptions] = field(default=None, repr=False)


def register_backend(backend: Backend) -> Backend:
    """Register a backend under its style name; returns it for reuse.

    Raises:
        FlowError: on a name/graph mismatch or a conflicting duplicate.
    """
    if backend.graph.flow != backend.name:
        raise FlowError(
            f"backend {backend.name!r} wraps a graph named "
            f"{backend.graph.flow!r}; they must match"
        )
    existing = BACKENDS.get(backend.name)
    if existing is not None and existing is not backend:
        raise FlowError(
            f"implementation style {backend.name!r} is already registered"
        )
    BACKENDS[backend.name] = backend
    return backend


def load_builtin_backends() -> None:
    """Import the built-in style modules (idempotent)."""
    for module in _BUILTIN_MODULES.values():
        importlib.import_module(module)


def backend_names() -> list[str]:
    """Registered style names, built-ins first, without forcing imports."""
    names = list(_BUILTIN_MODULES)
    names.extend(name for name in BACKENDS if name not in names)
    return names


def get_backend(name: str) -> Backend:
    """Look up a registered backend by style name.

    Raises:
        FlowError: for unknown styles.
    """
    load_builtin_backends()
    try:
        return BACKENDS[name]
    except KeyError:
        raise FlowError(
            f"unknown implementation style {name!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None


def backend_for_options(options: FlowOptions) -> Backend:
    """Resolve the backend a sweep point or flow run should use.

    Resolution walks the options record's class MRO so subclasses of a
    registered options class inherit its backend; a plain
    :class:`FlowOptions` record falls back to the ASIC flow, preserving
    the historical sweep contract ("CustomFlowOptions run the custom
    flow, everything else the ASIC flow").

    Raises:
        FlowError: when no registered backend matches.
    """
    load_builtin_backends()
    for cls in type(options).__mro__:
        for backend in BACKENDS.values():
            if backend.options_cls is cls:
                return backend
    if isinstance(options, FlowOptions) and "asic" in BACKENDS:
        return BACKENDS["asic"]
    raise FlowError(
        f"no registered backend for options of type "
        f"{type(options).__name__}"
    )


def registered_stage_names() -> tuple[str, ...]:
    """Union of stage names across every registered graph, in order.

    Drives fault-injection validation (``--inject-fault``) generically
    instead of hardcoding one flow's stage list.
    """
    load_builtin_backends()
    names: list[str] = []
    for backend in BACKENDS.values():
        for stage in backend.graph.stages:
            if stage.name not in names:
                names.append(stage.name)
    return tuple(names)


def run_backend_flow(
    style: str | Backend,
    options: FlowOptions | None = None,
    tech: "ProcessTechnology | None" = None,
    checkpoint: str | None = None,
    resume: bool = False,
    from_stage: str | None = None,
) -> FlowResult:
    """Run any registered style end-to-end through the shared engine.

    The generic entry point behind ``run_asic_flow`` /
    ``run_custom_flow`` / ``run_structured_flow``: stage caching,
    checkpoint/resume, ``keep_going`` degradation and ledger records
    all come from :class:`~repro.flows.engine.FlowEngine`, so a new
    backend gets them by registering, not by reimplementing.

    Args:
        style: style name or an already-resolved :class:`Backend`.
        options: flow knobs (default: the backend's options class with
            its defaults).
        tech: process technology (default: the backend's).
        checkpoint: snapshot the context here after every stage.
        resume: restore completed stages from ``checkpoint``.
        from_stage: with ``resume``, re-run from this stage onward.

    Raises:
        FlowError: for unknown styles/workloads or -- under
            ``on_error="raise"`` -- any stage failure.
    """
    backend = style if isinstance(style, Backend) else get_backend(style)
    if options is None:
        options = backend.options_cls()
    # Deferred: check_workload lives beside the workload table in the
    # asic module, which itself imports this registry.
    from repro.flows.asic import check_workload
    from repro.flows.engine import FlowEngine

    check_workload(options)
    if tech is None:
        tech = backend.default_tech
    ctx = FlowEngine(backend.graph).run(
        options, tech, checkpoint=checkpoint, resume=resume,
        from_stage=from_stage,
    )
    return backend.finalize(ctx, tech)
