"""Datapath design space: the Section 4.2 macro-cell argument.

Generates every adder and multiplier architecture in the macro library
at several word widths, verifies each against integer arithmetic, and
tabulates logic depth, gate count, area and achievable frequency --
showing why "use of predefined macro cells can significantly improve the
resulting design".

Each (architecture, width) point is independent, so the survey fans out
through :func:`repro.par.sweep.run_sweep`; results come back in task
order, so the table is identical for any worker count.

Run with::

    python examples/datapath_design_space.py [--workers N]
"""

import argparse

from repro.cells import rich_asic_library
from repro.datapath import (
    array_multiplier,
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
    simulate_adder,
    simulate_multiplier,
    wallace_multiplier,
)
from repro.netlist import logic_depth
from repro.par.sweep import run_sweep
from repro.sizing import total_area_um2
from repro.sta import analyze, asic_clock, fo4_depth
from repro.tech import CMOS250_ASIC

ADDERS = {
    "ripple-carry": ripple_carry_adder,
    "carry-lookahead": carry_lookahead_adder,
    "carry-select": carry_select_adder,
    "kogge-stone": kogge_stone_adder,
}

MULTIPLIERS = {
    "array": array_multiplier,
    "wallace": wallace_multiplier,
}


def survey_point(task: tuple) -> tuple:
    """Generate, verify and time one (kind, architecture, bits) point.

    Top-level (picklable) so it can run in a sweep worker; the library
    is rebuilt per call because cell libraries don't cross process
    boundaries.
    """
    kind, name, bits = task
    library = rich_asic_library(CMOS250_ASIC)
    if kind == "adder":
        module = ADDERS[name](bits, library)
        # Spot-check functional correctness before timing it.
        a, b = 123 % (1 << bits), 77 % (1 << bits)
        total, cout = simulate_adder(module, library, bits, a, b, 1)
        expected = a + b + 1
        assert (total, cout) == (expected % (1 << bits),
                                 expected >> bits), name
        report = analyze(module, library, asic_clock(50000.0))
        area = total_area_um2(module, library)
    else:
        module = MULTIPLIERS[name](bits, library)
        a, b = (1 << bits) - 2, (1 << (bits - 1)) + 1
        assert simulate_multiplier(module, library, bits, a, b) == a * b
        report = analyze(module, library, asic_clock(80000.0))
        area = None
    return (
        name,
        bits,
        module.instance_count(),
        logic_depth(module),
        fo4_depth(report, library.technology),
        report.max_frequency_mhz,
        area,
    )


def survey_adders(workers: int = 1, widths=(8, 16, 32)) -> None:
    tasks = [("adder", name, bits) for name in ADDERS for bits in widths]
    rows = run_sweep(survey_point, tasks, workers=workers,
                     label="examples.design_space.adders")
    print(f"{'adder':<18s} {'bits':>5s} {'gates':>6s} {'depth':>6s} "
          f"{'FO4':>6s} {'MHz':>8s} {'area um2':>9s}")
    for name, bits, gates, depth, fo4, mhz, area in rows:
        print(
            f"{name:<18s} {bits:>5d} {gates:>6d} {depth:>6d} "
            f"{fo4:>6.1f} {mhz:>8.1f} {area:>9.1f}"
        )


def survey_multipliers(workers: int = 1, widths=(4, 6, 8)) -> None:
    tasks = [("mult", name, bits) for name in MULTIPLIERS for bits in widths]
    rows = run_sweep(survey_point, tasks, workers=workers,
                     label="examples.design_space.multipliers")
    print(f"{'multiplier':<18s} {'bits':>5s} {'gates':>6s} {'depth':>6s} "
          f"{'FO4':>6s} {'MHz':>8s}")
    for name, bits, gates, depth, fo4, mhz, _ in rows:
        print(
            f"{name:<18s} {bits:>5d} {gates:>6d} {depth:>6d} "
            f"{fo4:>6.1f} {mhz:>8.1f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="process count for the survey sweep")
    args = parser.parse_args()
    print("Adder architectures (verified, then timed):")
    survey_adders(workers=args.workers)
    print()
    print("Multiplier architectures:")
    survey_multipliers(workers=args.workers)
    print()
    print("The log-depth structures are the 'predefined macro cells' of")
    print("Section 4.2: same function, far fewer logic levels than the")
    print("ripple structures RTL synthesis of '+' and '*' degenerates to.")


if __name__ == "__main__":
    main()
