"""A composite ALU generator: the processor-datapath proxy.

The paper's critical-path arithmetic (Section 4) is about processor
pipelines; our flows need a representative "execute stage" to time.  The
ALU combines an add/subtract path, bitwise logic and a result mux, plus a
zero flag -- enough structure to show realistic logic depths (tens of FO4
when built naively at 32 bits; far fewer with fast macros).

Opcode (op1, op0): 00 = add/sub (per ``sub``), 01 = AND, 10 = OR, 11 = XOR.
Ports: ``a*``, ``b*``, ``op0``, ``op1``, ``sub``; outputs ``r*``,
``cout``, ``zero``.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def alu(
    bits: int,
    library: CellLibrary,
    name: str = "alu",
    fast_adder: bool = True,
) -> Module:
    """Build an n-bit ALU.

    Args:
        bits: word width.
        library: target cell library.
        name: module name.
        fast_adder: use an inline Kogge-Stone carry network (the custom
            macro choice) instead of a ripple chain (the naive RTL one).
    """
    if bits < 2:
        raise SynthesisError("ALU width must be at least 2")
    module = Module(name)
    a = [module.add_input(f"a{i}") for i in range(bits)]
    b = [module.add_input(f"b{i}") for i in range(bits)]
    op0 = module.add_input("op0")
    op1 = module.add_input("op1")
    sub = module.add_input("sub")
    for i in range(bits):
        module.add_output(f"r{i}")
    module.add_output("cout")
    module.add_output("zero")
    emit = Emitter(module, library)

    # Add/subtract path: b XOR sub, carry-in = sub.
    b_eff = [emit.xor2(b[i], sub) for i in range(bits)]
    sums, carry_out = _adder_nets(emit, a, b_eff, sub, bits, fast_adder)
    emit.buf(carry_out, out="cout")

    # Bitwise paths.
    ands = [emit.and2(a[i], b[i]) for i in range(bits)]
    ors = [emit.or2(a[i], b[i]) for i in range(bits)]
    xors = [emit.xor2(a[i], b[i]) for i in range(bits)]

    # Result mux: op0 picks within pairs, op1 between pairs.
    results = []
    for i in range(bits):
        lo = emit.mux2(sums[i], ands[i], op0)   # 00 add, 01 and
        hi = emit.mux2(ors[i], xors[i], op0)    # 10 or, 11 xor
        results.append(emit.mux2(lo, hi, op1, out=f"r{i}"))

    # Zero flag: no result bit set.
    emit.inv(emit.or_tree(results), out="zero")
    return module


def _adder_nets(
    emit: Emitter,
    a: list[str],
    b: list[str],
    cin: str,
    bits: int,
    fast: bool,
) -> tuple[list[str], str]:
    """Inline adder over existing nets; returns (sum nets, carry out)."""
    g = [emit.and2(a[i], b[i]) for i in range(bits)]
    p = [emit.xor2(a[i], b[i]) for i in range(bits)]
    if not fast:
        carry = cin
        sums = []
        for i in range(bits):
            sums.append(emit.xor2(p[i], carry))
            carry = emit.or2(g[i], emit.and2(p[i], carry))
        return sums, carry
    gen = list(g)
    prop = list(p)
    gen[0] = emit.or2(g[0], emit.and2(p[0], cin))
    dist = 1
    while dist < bits:
        new_gen = list(gen)
        new_prop = list(prop)
        for i in range(dist, bits):
            new_gen[i] = emit.or2(gen[i], emit.and2(prop[i], gen[i - dist]))
            new_prop[i] = emit.and2(prop[i], prop[i - dist])
        gen, prop = new_gen, new_prop
        dist *= 2
    sums = [emit.xor2(p[0], cin)]
    for i in range(1, bits):
        sums.append(emit.xor2(p[i], gen[i - 1]))
    return sums, gen[bits - 1]


def simulate_alu(
    module: Module,
    library: CellLibrary,
    bits: int,
    a: int,
    b: int,
    op: int,
    sub: int = 0,
) -> tuple[int, int, bool]:
    """Drive an ALU netlist; returns ``(result, carry_out, zero)``."""
    from repro.synth.simulate import simulate_combinational

    if min(a, b) < 0 or max(a, b) >= (1 << bits):
        raise SynthesisError(f"operands out of range for {bits} bits")
    vec = {f"a{i}": bool((a >> i) & 1) for i in range(bits)}
    vec.update({f"b{i}": bool((b >> i) & 1) for i in range(bits)})
    vec["op0"] = bool(op & 1)
    vec["op1"] = bool(op & 2)
    vec["sub"] = bool(sub)
    out = simulate_combinational(module, library, vec)
    result = sum((1 << i) for i in range(bits) if out[f"r{i}"])
    return result, int(out["cout"]), out["zero"]
