"""Integration sweep: every registered flow workload runs end to end."""

import pytest

from repro.flows import AsicFlowOptions, WORKLOADS, run_asic_flow


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_every_workload_flows(workload):
    bits = 4 if "multiplier" not in workload else 4
    result = run_asic_flow(
        AsicFlowOptions(workload=workload, bits=bits, sizing_moves=4)
    )
    assert result.typical_frequency_mhz > 0
    assert result.quoted_frequency_mhz < result.typical_frequency_mhz
    assert result.gate_count > 5
    assert result.fo4_depth > 2
    assert result.area_um2 > 0


def test_flow_deterministic():
    a = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=4, seed=5))
    b = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=4, seed=5))
    assert a.typical_frequency_mhz == pytest.approx(b.typical_frequency_mhz)
    assert a.quoted_frequency_mhz == pytest.approx(b.quoted_frequency_mhz)


def test_seed_changes_placement_not_function():
    a = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=4, seed=1))
    b = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=4, seed=2))
    # Different placements give (slightly) different timing but the same
    # netlist size.
    assert a.gate_count == b.gate_count
