"""Local resynthesis: post-mapping netlist restructuring.

Section 6.2: "With 'liquid cells' or resynthesis, later arriving signals
can be routed closer to the gate output and transistors moved ...
Iterative transistor resizing and resynthesis can improve speeds by 20%"
(references [17] and [8]).

Gate-level equivalents implemented here:

* :func:`remove_inverter_pairs` -- cancel back-to-back inverters (the
  polarity debris a mapper leaves behind);
* :func:`collapse_into_complex_gates` -- fuse AND/OR+NOR/NAND pairs into
  AOI21/OAI21 complex cells, cutting a logic level;
* :func:`pin_swap_late_arrivals` -- put the latest-arriving signal on the
  electrically fastest pin of its gate ("later arriving signals routed
  closer to the gate output");
* :func:`resynthesize` -- the fixed-point loop over all passes.

All passes preserve logic function; the test suite checks equivalence by
exhaustive simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref
from repro.synth.ast import SynthesisError


@dataclass(frozen=True)
class ResynthesisReport:
    """What a resynthesis run changed.

    Attributes:
        inverter_pairs_removed: INV-INV chains cancelled.
        complex_gates_formed: AOI/OAI fusions performed.
        pins_swapped: late-arrival pin swaps applied.
        iterations: fixed-point loop count.
    """

    inverter_pairs_removed: int
    complex_gates_formed: int
    pins_swapped: int
    iterations: int

    @property
    def total_changes(self) -> int:
        return (
            self.inverter_pairs_removed
            + self.complex_gates_formed
            + self.pins_swapped
        )


def _single_sink_instance(module: Module, net: str):
    """The (instance, pin) sink if a net has exactly one gate sink."""
    sinks = module.sinks_of(net)
    if len(sinks) != 1 or is_port_ref(sinks[0]):
        return None
    return sinks[0]


def remove_inverter_pairs(module: Module, library: CellLibrary) -> int:
    """Cancel INV->INV chains where the middle net has a single sink.

    The consumer of the second inverter's output is rewired to the first
    inverter's input; both inverters are removed when they become
    fanout-free.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for inst in list(module.iter_instances()):
            if inst.name not in module.instances:
                continue
            cell = library.get(inst.cell_name)
            if cell.base_name != "INV":
                continue
            mid = next(iter(inst.outputs.values()))
            sink = _single_sink_instance(module, mid)
            if sink is None:
                continue
            second_name, _pin = sink
            second = module.instance(second_name)
            if library.get(second.cell_name).base_name != "INV":
                continue
            out_net = next(iter(second.outputs.values()))
            if out_net in module.outputs():
                continue  # keep port drivers intact
            source = inst.inputs["A"]
            # Re-point all consumers of out_net at the original source.
            for consumer in list(module.sinks_of(out_net)):
                if is_port_ref(consumer):
                    continue
                c_inst, c_pin = consumer
                module.net(out_net).sinks.remove((c_inst, c_pin))
                module.instance(c_inst).inputs[c_pin] = source
                module.net(source).sinks.append((c_inst, c_pin))
            module.remove_instance(second_name)
            module.remove_instance(inst.name)
            removed += 1
            changed = True
    module.prune_dangling_nets()
    return removed


#: Fusion patterns: (inner base, outer base) -> (complex base, inner pins
#: land on A/B, the outer's other input lands on C).
_FUSIONS = {
    ("AND2", "NOR2"): "AOI21",   # ~((a & b) | c)
    ("OR2", "NAND2"): "OAI21",   # ~((a | b) & c)
}


def collapse_into_complex_gates(module: Module, library: CellLibrary) -> int:
    """Fuse two-gate patterns into complex cells (AOI21/OAI21).

    A level disappears and the input load drops -- the static-CMOS
    equivalent of the paper's compact complex cells.
    """
    formed = 0
    for inst in list(module.iter_instances()):
        if inst.name not in module.instances:
            continue
        cell = library.get(inst.cell_name)
        for (inner_base, outer_base), complex_base in _FUSIONS.items():
            if cell.base_name != inner_base:
                continue
            if not library.has_base(complex_base):
                continue
            mid = next(iter(inst.outputs.values()))
            sink = _single_sink_instance(module, mid)
            if sink is None:
                continue
            outer_name, mid_pin = sink
            outer = module.instance(outer_name)
            outer_cell = library.get(outer.cell_name)
            if outer_cell.base_name != outer_base:
                continue
            other_pin = next(
                (p for p in outer.inputs if p != mid_pin), None
            )
            if other_pin is None:
                continue
            a_net = inst.inputs["A"]
            b_net = inst.inputs["B"]
            c_net = outer.inputs[other_pin]
            out_net = next(iter(outer.outputs.values()))
            new_cell = library.select_drive(
                complex_base,
                sum(
                    library.get(module.instance(s[0]).cell_name)
                    .input_cap_ff(s[1])
                    for s in module.sinks_of(out_net)
                    if not is_port_ref(s)
                ),
            )
            module.remove_instance(outer_name)
            module.remove_instance(inst.name)
            module.add_instance(
                None,
                new_cell.name,
                inputs={"A": a_net, "B": b_net, "C": c_net},
                outputs={"Y": out_net},
            )
            formed += 1
            break
    module.prune_dangling_nets()
    return formed


def pin_swap_late_arrivals(
    module: Module,
    library: CellLibrary,
    arrivals: dict[str, float],
) -> int:
    """Put each gate's latest input on its fastest (lowest-effort) pin.

    Args:
        module: mapped netlist.
        library: its library.
        arrivals: arrival time per net (from a prior STA run).

    Only pins with identical logic roles are swapped (commutative inputs
    of AND/OR/NAND/NOR gates); the function is unchanged.
    """
    swapped = 0
    commutative = {"AND", "OR", "NAND", "NOR", "XOR", "XNOR"}
    for inst in module.iter_instances():
        cell = library.get(inst.cell_name)
        stem = "".join(ch for ch in cell.base_name if ch.isalpha())
        if stem not in commutative or len(inst.inputs) < 2:
            continue
        pins = sorted(inst.inputs)
        nets = [inst.inputs[p] for p in pins]
        if any(net not in arrivals for net in nets):
            continue
        efforts = {p: cell.inputs[p].logical_effort for p in pins}
        by_arrival = sorted(nets, key=lambda n: arrivals[n], reverse=True)
        by_effort = sorted(pins, key=lambda p: efforts[p])
        new_assignment = dict(zip(by_effort, by_arrival))
        if new_assignment != inst.inputs:
            for pin, net in inst.inputs.items():
                module.net(net).sinks.remove((inst.name, pin))
            inst.inputs.clear()
            inst.inputs.update(new_assignment)
            for pin, net in inst.inputs.items():
                module.net(net).sinks.append((inst.name, pin))
            swapped += 1
    return swapped


def resynthesize(
    module: Module,
    library: CellLibrary,
    arrivals: dict[str, float] | None = None,
    max_iterations: int = 5,
) -> ResynthesisReport:
    """Run all structural passes to a fixed point; mutates the module."""
    if max_iterations < 1:
        raise SynthesisError("need at least one iteration")
    total_inv = 0
    total_cx = 0
    total_swap = 0
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        inv = remove_inverter_pairs(module, library)
        cx = collapse_into_complex_gates(module, library)
        swap = 0
        if arrivals is not None:
            swap = pin_swap_late_arrivals(module, library, arrivals)
        total_inv += inv
        total_cx += cx
        total_swap += swap
        if inv == cx == swap == 0:
            break
    module.assert_well_formed()
    return ResynthesisReport(
        inverter_pairs_removed=total_inv,
        complex_gates_formed=total_cx,
        pins_swapped=total_swap,
        iterations=iterations,
    )
