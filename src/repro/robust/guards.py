"""Numerical guards for the iterative solvers.

Bounded-iteration convergence wrappers with automatic
retry-with-relaxed-tolerance and a bisection fallback for the
self-consistent period solve, plus NaN/Inf detection helpers used by
the sizing loops.  The nominal (nothing-goes-wrong) path through every
wrapper is a try/except and a handful of ``isfinite`` checks, so the
gap flow pays well under 1% for carrying them.

Individual guards can be switched off by name with
:func:`disable_guard` -- that exists so the selftest harness and the
test suite can prove each guard is load-bearing (``repro-gap selftest
--disable-guard finite`` must fail).
"""

from __future__ import annotations

import math

from repro import obs
from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.sizing.tilos import SizingResult, size_for_speed
from repro.sta.clocking import Clock
from repro.sta.engine import (
    ConvergenceError,
    TimingReport,
    analyze,
    solve_min_period,
)
from repro.sta.timing_graph import WireParasitics


class GuardError(ValueError):
    """Raised for invalid guard configuration or exhausted fallbacks."""


class NonFiniteError(GuardError):
    """Raised when a solver accepts a NaN or Inf value."""


#: Guards that may be disabled by name (testing / selftest only).
KNOWN_GUARDS = ("finite", "retry", "bisection")

_disabled_guards: set[str] = set()


def disable_guard(name: str) -> None:
    """Switch one guard off (selftest/testing hook)."""
    if name not in KNOWN_GUARDS:
        raise GuardError(
            f"unknown guard {name!r}; known: {sorted(KNOWN_GUARDS)}"
        )
    _disabled_guards.add(name)


def enable_all_guards() -> None:
    """Restore every guard (undo any :func:`disable_guard`)."""
    _disabled_guards.clear()


def guard_enabled(name: str) -> bool:
    """Whether a named guard is currently active."""
    return name not in _disabled_guards


def ensure_finite(context: str, **values: float) -> None:
    """Raise :class:`NonFiniteError` if any value is NaN or Inf."""
    if not guard_enabled("finite"):
        return
    for key, value in values.items():
        if not math.isfinite(value):
            obs.count("robust.guard.nan_rejected")
            raise NonFiniteError(
                f"{context}: {key} is non-finite ({value})"
            )


def guarded_solve_min_period(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    tolerance_ps: float = 0.1,
    max_retries: int = 2,
    tolerance_relax: float = 10.0,
    bisection_steps: int = 40,
    **analyze_kwargs,
) -> TimingReport:
    """:func:`solve_min_period` with convergence fallbacks.

    Escalation ladder on :class:`ConvergenceError`:

    1. retry up to ``max_retries`` times, relaxing the tolerance by
       ``tolerance_relax`` each attempt (geometric convergence that
       stalls just short of a tight tolerance closes at a looser one);
    2. bisection on the fixed-point residual ``achieved(p) - p``, which
       only needs the achieved period to be monotone in the analysed
       period -- guaranteed here because skew and borrow windows are
       period fractions.

    Structural failures (undriven logic, overheads consuming the whole
    cycle) are not convergence problems and propagate unchanged.

    Raises:
        TimingError: for structural problems, or when even the
            bisection fallback cannot close.
    """
    if max_retries < 0 or tolerance_relax <= 1.0:
        raise GuardError("invalid retry policy")
    # max_iterations belongs to the fixed-point solver, not analyze();
    # keep it out of the kwargs the bisection fallback forwards.  The
    # array-engine switches ride the same split: the bisection fallback
    # consumes them itself rather than passing them to analyze().
    solver_kwargs = {}
    if "max_iterations" in analyze_kwargs:
        solver_kwargs["max_iterations"] = analyze_kwargs.pop(
            "max_iterations"
        )
    use_array = analyze_kwargs.pop("use_array", True)
    check_array = analyze_kwargs.pop("check_array", False)
    tol = tolerance_ps
    failure: ConvergenceError | None = None
    for attempt in range(max_retries + 1):
        try:
            report = solve_min_period(
                module, library, clock, wire=wire, tolerance_ps=tol,
                use_array=use_array, check_array=check_array,
                **solver_kwargs, **analyze_kwargs,
            )
        except ConvergenceError as exc:
            failure = exc
            if attempt < max_retries and guard_enabled("retry"):
                obs.count("robust.guard.retries")
                tol *= tolerance_relax
                continue
            break
        ensure_finite(
            "solve_min_period", min_period_ps=report.min_period_ps
        )
        return report
    if not guard_enabled("bisection"):
        raise failure
    obs.count("robust.guard.bisections")
    report = _bisection_solve(
        module, library, clock, wire, bisection_steps,
        use_array=use_array, check_array=check_array, **analyze_kwargs,
    )
    ensure_finite(
        "solve_min_period.bisection", min_period_ps=report.min_period_ps
    )
    return report


def _bisection_solve(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None,
    steps: int,
    use_array: bool = True,
    check_array: bool = False,
    **analyze_kwargs,
) -> TimingReport:
    """Find a self-consistent period by bisection on the residual.

    ``achieved(p)`` is the minimum period required when skew/borrow
    windows are derived from an analysed period ``p``; a feasible clock
    satisfies ``achieved(p) <= p``.  The residual is monotone, so once
    an upper bracket is found the feasible boundary is bisected.  With
    ``use_array`` the ~100 probe analyses share one compiled
    propagation (only the endpoint accounting depends on the period).
    """

    if use_array:
        from repro.sta.array import clock_analyzer

        run = clock_analyzer(
            module, library, wire=wire, check=check_array, **analyze_kwargs
        )

        def achieved(period_ps: float) -> TimingReport:
            return run(clock.with_period(period_ps))
    else:
        def achieved(period_ps: float) -> TimingReport:
            return analyze(
                module, library, clock.with_period(period_ps), wire=wire,
                **analyze_kwargs,
            )

    hi = max(achieved(clock.period_ps).min_period_ps, 1.0)
    for _ in range(60):
        if achieved(hi).min_period_ps <= hi:
            break
        hi *= 2.0
    else:
        raise ConvergenceError(
            "bisection fallback could not bracket a feasible period; "
            "overheads likely consume the whole cycle"
        )
    lo = 1e-3
    for _ in range(steps):
        mid = 0.5 * (lo + hi)
        if achieved(mid).min_period_ps <= mid:
            hi = mid
        else:
            lo = mid
    return achieved(hi)


def guarded_size_for_speed(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    wire: WireParasitics | None = None,
    **sizing_kwargs,
) -> SizingResult:
    """Transactional :func:`size_for_speed` with a finiteness gate.

    Sizing runs against a clone of the netlist; the drive changes are
    copied back only after the whole pass completed with finite
    results.  A sizing loop that diverges or trips a typed error
    therefore leaves the caller's module exactly as it was -- which is
    what lets the flows skip a failed sizing stage and still hand a
    well-formed netlist to STA.
    """
    trial = module.clone()
    result = size_for_speed(trial, library, clock, wire=wire,
                            **sizing_kwargs)
    ensure_finite(
        "size_for_speed",
        final_period_ps=result.final_period_ps,
        area_after_um2=result.area_after_um2,
    )
    for name, inst in trial.instances.items():
        if module.instance(name).cell_name != inst.cell_name:
            module.replace_cell(name, inst.cell_name)
    return result
