"""Flow sweeps through the stage cache: prefix sharing and pool workers.

``run_flow_sweep`` is the fingerprint cache's raison d'etre: sweep
points that differ only in late-stage knobs (sizing moves, quoting
policy) share the expensive map/place/cts prefix.  These tests pin that
the sharing actually happens (statuses say ``cached``), that it changes
no numbers, and that the disk spill makes it work across pool workers.
"""

import pytest

from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    FlowError,
    run_asic_flow,
    run_flow_sweep,
)

#: Four points sharing one map/place/cts prefix (only sizing differs).
PREFIX_SWEEP = [
    AsicFlowOptions(bits=4, sizing_moves=moves) for moves in (6, 4, 2, 0)
]


def _comparable(result):
    payload = result.to_dict()
    payload.pop("stages")
    return payload


def _status(result, stage):
    return {r.name: r.status for r in result.stage_records}[stage]


class TestSerialSweep:
    def test_shared_prefix_replays_from_cache(self):
        results = run_flow_sweep(PREFIX_SWEEP)
        first, rest = results[0], results[1:]
        assert _status(first, "map") == "ok"
        for result in rest:
            assert _status(result, "map") == "cached"
            assert _status(result, "place") == "cached"
            assert _status(result, "cts") == "cached"
            assert _status(result, "size") == "ok"

    def test_sweep_results_match_individual_runs(self):
        swept = run_flow_sweep(PREFIX_SWEEP)
        for options, result in zip(PREFIX_SWEEP, swept):
            alone = run_asic_flow(options)
            assert _comparable(result) == _comparable(alone)

    def test_mixed_styles_dispatch_correctly(self):
        results = run_flow_sweep([
            AsicFlowOptions(bits=4, sizing_moves=2),
            CustomFlowOptions(bits=4, pipeline_stages=2, sizing_moves=2),
        ])
        assert results[0].style == "asic"
        assert results[1].style == "custom"

    def test_rejects_non_option_records(self):
        with pytest.raises(FlowError, match="FlowOptions"):
            run_flow_sweep([{"bits": 4}])


class TestPoolSweep:
    def test_two_workers_with_disk_cache_match_serial(self, tmp_path):
        serial = run_flow_sweep(PREFIX_SWEEP)
        pooled = run_flow_sweep(
            PREFIX_SWEEP, workers=2, cache_dir=str(tmp_path / "stages")
        )
        for a, b in zip(serial, pooled):
            assert _comparable(a) == _comparable(b)

    def test_disk_cache_spills_blobs(self, tmp_path):
        cache_dir = tmp_path / "stages"
        run_flow_sweep(PREFIX_SWEEP[:2], cache_dir=str(cache_dir))
        blobs = list(cache_dir.glob("*.stage.pkl"))
        assert blobs, "expected spilled stage blobs on disk"

    def test_disk_cache_shares_across_invocations(self, tmp_path):
        cache_dir = str(tmp_path / "stages")
        run_flow_sweep(PREFIX_SWEEP[:1], cache_dir=cache_dir)
        # New in-memory cache, same directory: everything replays.
        from repro.flows import cache as stage_cache

        stage_cache.reset()
        again = run_flow_sweep(PREFIX_SWEEP[:1], cache_dir=cache_dir)
        assert all(r.status == "cached" for r in again[0].stage_records)
