"""Unit tests for the structured-ASIC fabric and the shared annealer."""

import random

import pytest

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder
from repro.optimize import anneal
from repro.physical import (
    Fabric,
    FabricUtilization,
    GeometryError,
    SlotAssignment,
    assign_slots,
    fabric_for,
    fabric_pitch_um,
    place,
)
from repro.physical.fabric import MASTER_EDGES, SLOT_PITCH_MARGIN
from repro.pipeline import pipeline_module
from repro.sta import analyze, asic_clock
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)


@pytest.fixture(scope="module")
def adder():
    return kogge_stone_adder(4, RICH)


@pytest.fixture(scope="module")
def pipelined():
    comb = kogge_stone_adder(4, RICH)
    return pipeline_module(comb, RICH, stages=2).module


class TestFabricGeometry:
    def test_site_pattern_every_fourth_column_sequential(self):
        fabric = Fabric(rows=8, cols=8, pitch_um=10.0)
        kinds = [fabric.slot_kind(col) for col in range(8)]
        assert kinds == ["logic", "logic", "logic", "seq"] * 2

    def test_slot_counts_partition_the_master(self):
        fabric = Fabric(rows=8, cols=8, pitch_um=10.0)
        assert fabric.slot_count == 64
        assert fabric.seq_slot_count == 16
        assert fabric.logic_slot_count == 48
        assert (len(fabric.slots_of_kind("seq"))
                == fabric.seq_slot_count)
        assert (len(fabric.slots_of_kind("logic"))
                == fabric.logic_slot_count)

    def test_die_is_rows_by_cols_pitches(self):
        fabric = Fabric(rows=4, cols=8, pitch_um=10.0)
        assert fabric.die_width_um == 80.0
        assert fabric.die_height_um == 40.0
        assert fabric.die_edge_um == 80.0
        assert fabric.die_area_um2 == 3200.0

    def test_slots_of_kind_is_centre_out(self):
        fabric = Fabric(rows=8, cols=8, pitch_um=10.0)
        slots = fabric.slots_of_kind("logic")
        centre = fabric.slot_center(*slots[0])
        edge = fabric.slot_center(*slots[-1])

        def dist2(p):
            return (p.x - 40.0) ** 2 + (p.y - 40.0) ** 2

        assert dist2(centre) < dist2(edge)

    def test_validation(self):
        with pytest.raises(GeometryError):
            Fabric(rows=0, cols=8, pitch_um=10.0)
        with pytest.raises(GeometryError):
            Fabric(rows=8, cols=8, pitch_um=0.0)
        with pytest.raises(GeometryError):
            Fabric(rows=8, cols=8, pitch_um=10.0, seq_column_period=1)

    def test_utilization_accounting(self):
        fabric = Fabric(rows=8, cols=8, pitch_um=10.0)
        util = fabric.utilization(logic_used=24, seq_used=4)
        assert isinstance(util, FabricUtilization)
        assert util.logic == 24 / 48
        assert util.seq == 4 / 16
        assert util.overall == 28 / 64


class TestFabricFor:
    def test_pitch_fits_the_largest_cell(self):
        pitch = fabric_pitch_um(RICH)
        largest = max(cell.area_um2 for cell in RICH)
        assert pitch ** 2 == pytest.approx(
            largest * SLOT_PITCH_MARGIN ** 2
        )

    def test_picks_smallest_stocked_master(self, adder):
        fabric = fabric_for(adder, RICH, utilization=0.6)
        assert fabric.rows == fabric.cols
        assert fabric.rows in MASTER_EDGES
        logic = adder.instance_count()
        assert logic <= fabric.logic_slot_count * 0.6
        # The next size down must NOT fit -- smallest, not just "a" fit.
        smaller = MASTER_EDGES[MASTER_EDGES.index(fabric.rows) - 1]
        tighter = Fabric(rows=smaller, cols=smaller,
                         pitch_um=fabric.pitch_um)
        assert logic > tighter.logic_slot_count * 0.6

    def test_lower_target_utilization_buys_bigger_master(self, adder):
        tight = fabric_for(adder, RICH, utilization=0.9)
        slack = fabric_for(adder, RICH, utilization=0.1)
        assert slack.slot_count > tight.slot_count

    def test_rejects_bad_utilization_target(self, adder):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(GeometryError, match="utilization"):
                fabric_for(adder, RICH, utilization=bad)

    def test_rejects_design_too_big_for_any_master(self):
        big = kogge_stone_adder(64, RICH)
        with pytest.raises(GeometryError, match="does not fit"):
            fabric_for(big, RICH, utilization=0.0001)


class TestAssignSlots:
    def test_assignment_is_legal(self, pipelined):
        fabric = fabric_for(pipelined, RICH)
        assignment = assign_slots(pipelined, RICH, fabric, seed=3)
        seq_names = RICH.sequential_cell_names()
        slots = list(assignment.slot_of.values())
        assert len(slots) == len(set(slots))  # no double booking
        assert len(slots) == pipelined.instance_count()
        for name, (row, col) in assignment.slot_of.items():
            kind = ("seq"
                    if pipelined.instance(name).cell_name in seq_names
                    else "logic")
            assert fabric.slot_kind(col) == kind
            assert 0 <= row < fabric.rows and 0 <= col < fabric.cols
            centre = fabric.slot_center(row, col)
            assert assignment.positions[name] == centre

    def test_same_seed_same_assignment(self, pipelined):
        fabric = fabric_for(pipelined, RICH)
        a = assign_slots(pipelined, RICH, fabric, seed=7)
        b = assign_slots(pipelined, RICH, fabric, seed=7)
        assert a.slot_of == b.slot_of
        assert a.total_wirelength_um() == b.total_wirelength_um()

    def test_explicit_rng_matches_seed(self, pipelined):
        fabric = fabric_for(pipelined, RICH)
        seeded = assign_slots(pipelined, RICH, fabric, seed=7)
        threaded = assign_slots(pipelined, RICH, fabric,
                                rng=random.Random(7))
        assert seeded.slot_of == threaded.slot_of

    def test_refinement_improves_wirelength(self, pipelined):
        fabric = fabric_for(pipelined, RICH)
        greedy = assign_slots(pipelined, RICH, fabric, refine=False)
        refined = assign_slots(pipelined, RICH, fabric, seed=3)
        assert (refined.total_wirelength_um()
                < greedy.total_wirelength_um())

    def test_over_subscribed_fabric_rejected(self, pipelined):
        tiny = Fabric(rows=2, cols=2,
                      pitch_um=fabric_pitch_um(RICH))
        with pytest.raises(GeometryError, match="slots"):
            assign_slots(pipelined, RICH, tiny)

    def test_placement_protocol_feeds_sta(self, pipelined):
        fabric = fabric_for(pipelined, RICH)
        assignment = assign_slots(pipelined, RICH, fabric, seed=3)
        assert isinstance(assignment, SlotAssignment)
        assert assignment.total_wirelength_um() > 0.0
        wire = assignment.parasitics(RICH)
        report = analyze(pipelined, RICH, asic_clock(20000.0), wire=wire)
        assert report.min_period_ps > 0
        # Parasitics are live: the sparse prefab grid must cost delay
        # versus an unloaded run of the same netlist.
        bare = analyze(pipelined, RICH, asic_clock(20000.0))
        assert report.min_period_ps > bare.min_period_ps

    def test_congestion_detour_beats_flat_allowance(self, pipelined):
        # A structured master is sparser than a packed row grid, so the
        # detour starts at the flat allowance and grows with demand.
        fabric = fabric_for(pipelined, RICH, utilization=0.9)
        slack = fabric_for(pipelined, RICH, utilization=0.1)
        tight_a = assign_slots(pipelined, RICH, fabric, refine=False)
        slack_a = assign_slots(pipelined, RICH, slack, refine=False)
        assert tight_a.detour_factor >= slack_a.detour_factor
        assert tight_a.utilization.overall > slack_a.utilization.overall


class _ToyProblem:
    """1-D points pulled toward zero; cost delta = |x'| - |x|."""

    def __init__(self, values):
        self.values = list(values)
        self._last = None

    def cost(self):
        return sum(abs(v) for v in self.values)

    def propose(self, rng):
        return rng.randrange(len(self.values)), rng.uniform(-1.0, 1.0)

    def apply(self, move):
        index, step = move
        self._last = (index, self.values[index])
        before = abs(self.values[index])
        self.values[index] += step
        return abs(self.values[index]) - before

    def revert(self, move):
        index, old = self._last
        self.values[index] = old


class TestAnneal:
    def test_minimises_toy_cost(self):
        problem = _ToyProblem([5.0, -4.0, 3.0])
        start = problem.cost()
        accepted = anneal(problem, random.Random(1), steps=2000,
                          temperature=2.0)
        assert 0 < accepted <= 2000
        assert problem.cost() < start / 4

    def test_zero_steps_is_noop(self):
        problem = _ToyProblem([5.0])
        assert anneal(problem, random.Random(1), steps=0,
                      temperature=2.0) == 0
        assert problem.values == [5.0]

    def test_deterministic_for_a_seed(self):
        a = _ToyProblem([5.0, -4.0, 3.0])
        b = _ToyProblem([5.0, -4.0, 3.0])
        anneal(a, random.Random(9), steps=500, temperature=2.0)
        anneal(b, random.Random(9), steps=500, temperature=2.0)
        assert a.values == b.values


class TestPlaceRngThreading:
    def test_explicit_rng_matches_seed(self, adder):
        seeded = place(adder, RICH, quality="careful", seed=5)
        threaded = place(adder, RICH, quality="careful",
                         rng=random.Random(5))
        assert seeded.positions == threaded.positions
        assert (seeded.total_wirelength_um()
                == threaded.total_wirelength_um())
