"""The silicon lottery: Section 8's variation and accessibility story.

Samples a die population for one design, shows the bin structure, and
contrasts what an ASIC customer (worst-case quote), a speed-testing ASIC
team, and a custom vendor (flagship bins) each get to ship -- then tracks
the process maturing and the fab landscape.

Run with::

    python examples/silicon_lottery.py
"""

from repro.variation import (
    MATURE_PROCESS,
    NEW_PROCESS,
    access_gap,
    accessibility_penalty,
    bin_population,
    default_foundry_set,
    fab_distributions,
    fab_spread,
    maturity_trend,
    sample_chip_speeds,
)

NOMINAL_MHZ = 400.0


def ascii_histogram(dist, buckets: int = 12, width: int = 44) -> str:
    lo = dist.percentile(0.5)
    hi = dist.percentile(99.5)
    step = (hi - lo) / buckets
    lines = []
    freqs = dist.frequencies_mhz
    for i in range(buckets):
        left = lo + i * step
        right = left + step
        count = int(((freqs >= left) & (freqs < right)).sum())
        bar = "#" * max(1, int(width * count / max(1, len(freqs) / buckets * 2)))
        lines.append(f"{left:7.0f}-{right:<7.0f} {bar}")
    return "\n".join(lines)


def main() -> None:
    dist = sample_chip_speeds(NOMINAL_MHZ, NEW_PROCESS, count=20000, seed=42)
    print(f"die population for a {NOMINAL_MHZ:.0f} MHz design on a new "
          "process:")
    print(ascii_histogram(dist))
    print()

    gap = access_gap(dist)
    print(f"{'who ships what':<34s} {'MHz':>8s}")
    print(f"{'ASIC worst-case quote':<34s} {gap.asic_quote_mhz:>8.1f}")
    print(f"{'ASIC with at-speed testing':<34s} {gap.tested_mhz:>8.1f}")
    print(f"{'typical (median) silicon':<34s} {gap.typical_mhz:>8.1f}")
    print(f"{'custom flagship bin':<34s} {gap.flagship_mhz:>8.1f}")
    print()
    print(f"typical / quote    = {gap.typical_over_quote:.2f}x "
          "(paper: 1.6-1.7x)")
    print(f"tested / quote     = {gap.tested_over_quote:.2f}x "
          "(paper: 1.3-1.4x)")
    print(f"flagship / typical = {gap.flagship_over_typical:.2f}x "
          "(paper: 1.2-1.4x)")
    print(f"flagship / quote   = {gap.flagship_over_quote:.2f}x "
          "(paper: ~1.9x)")
    print()

    edges = [dist.percentile(p) for p in (5, 35, 65, 90)]
    print("custom vendor bin structure:")
    for speed_bin in bin_population(dist, edges):
        grade = (f"{speed_bin.frequency_mhz:6.0f} MHz"
                 if speed_bin.frequency_mhz else "  scrap  ")
        print(f"  {grade}: {100 * speed_bin.fraction:5.1f}% of dies")
    print()

    print("process maturity (8 quarters):")
    trend = maturity_trend(NOMINAL_MHZ, NEW_PROCESS, quarters=8, count=4000)
    for quarter, snapshot in enumerate(trend):
        print(
            f"  Q{quarter}: median {snapshot.median_mhz:6.1f} MHz, "
            f"bin spread {snapshot.spread:.2f}x"
        )
    print()

    fabs = default_foundry_set(MATURE_PROCESS)
    dists = fab_distributions(NOMINAL_MHZ, fabs, count=4000)
    print("foundry landscape (same design, different fabs):")
    for fab in fabs:
        access = "custom only" if not fab.asic_accessible else "open"
        print(
            f"  {fab.name:<16s} median {dists[fab.name].median_mhz:6.1f} MHz"
            f"  ({access})"
        )
    print(f"fab-to-fab spread: {fab_spread(fabs):.2f}x "
          "(paper: 1.20-1.25x)")
    print(f"best-fab access penalty for ASICs: "
          f"{accessibility_penalty(fabs):.2f}x")


if __name__ == "__main__":
    main()
