"""Nestable wall-time spans.

A :class:`Tracer` records a tree of named spans -- one per flow stage,
STA solve, sizing pass, and so on -- with wall time, nesting depth, and
arbitrary scalar attributes.  Spans nest through an ordinary ``with``
block (or the :meth:`Tracer.wrap` decorator) and the per-thread span
stack lives in :class:`threading.local`, so concurrent flows trace
independently while sharing one completed-span list.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.clock import MONOTONIC, ClockFn


class ObsError(ValueError):
    """Raised for invalid observability usage."""


#: Attribute values a span accepts (JSON-representable scalars).
AttrValue = Any  # int | float | str | bool

#: Live-telemetry hook: ``fn(phase, span)`` with phase ``"open"`` or
#: ``"close"``, installed by :func:`repro.obs.live.enable`.  Module
#: level (not per tracer) so enabling the bus instruments whichever
#: tracer is active, including pool workers' fresh ones; one None check
#: when no listener is installed.
_span_listener: Callable[[str, "Span"], None] | None = None


def set_span_listener(
    listener: Callable[[str, "Span"], None] | None,
) -> None:
    """Install (or with None, remove) the span open/close listener."""
    global _span_listener
    _span_listener = listener


@dataclass
class Span:
    """One timed region.

    Attributes:
        name: span label (dotted, e.g. ``"flow.asic.place"``).
        index: global start-order sequence number.
        start_s: clock reading at entry.
        end_s: clock reading at exit (None while open).
        depth: nesting depth (0 = root).
        parent: index of the enclosing span, or None for roots.
        thread: name of the thread that opened the span.
        attributes: scalar annotations attached via :meth:`set`.
        child_s: accumulated duration of direct children (for self time).
    """

    name: str
    index: int
    start_s: float
    end_s: float | None = None
    depth: int = 0
    parent: int | None = None
    thread: str = "main"
    attributes: dict[str, AttrValue] = field(default_factory=dict)
    child_s: float = 0.0

    @property
    def duration_s(self) -> float:
        """Wall time inside the span (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def self_s(self) -> float:
        """Duration minus time spent in direct child spans."""
        return max(self.duration_s - self.child_s, 0.0)

    def set(self, **attrs: AttrValue) -> "Span":
        """Attach scalar attributes; returns the span for chaining."""
        self.attributes.update(attrs)
        return self


@dataclass(frozen=True)
class SpanStats:
    """Aggregate over all finished spans sharing a name."""

    name: str
    count: int
    total_s: float
    self_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _SpanContext:
    """Context manager tying one span to the tracer's thread stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Record the escaping exception type on the span before closing
        # it, so traces of degraded/aborted flows show which stage blew
        # up without needing the log output.
        if exc_type is not None:
            self._span.set(error=exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Thread-safe recorder of nested spans.

    Args:
        clock: monotonic time source (swap in a
            :class:`repro.obs.clock.TickClock` for deterministic tests).
    """

    def __init__(self, clock: ClockFn = MONOTONIC) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: AttrValue) -> _SpanContext:
        """Open a span; use as ``with tracer.span("stage") as sp:``."""
        if not name:
            raise ObsError("span name must be non-empty")
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span = Span(
                name=name,
                index=len(self._spans),
                start_s=self.clock(),
                depth=len(stack),
                parent=parent.index if parent is not None else None,
                thread=threading.current_thread().name,
            )
            self._spans.append(span)
        if attrs:
            span.set(**attrs)
        stack.append(span)
        if _span_listener is not None:
            _span_listener("open", span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ObsError(
                f"span {span.name!r} closed out of order"
            )
        stack.pop()
        span.end_s = self.clock()
        if span.parent is not None:
            with self._lock:
                self._spans[span.parent].child_s += span.duration_s
        if _span_listener is not None:
            _span_listener("close", span)

    def wrap(
        self, name: str | None = None
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form: times every call as a span named after it."""

        def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
            label = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(label):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    def adopt(self, spans: list[Span]) -> list[Span]:
        """Graft spans finished elsewhere (a pool worker) into this trace.

        Pool workers run with their own process-local tracer, so their
        spans carry indices and parent links from a different numbering
        space; without adoption they would be silently dropped.  Each
        batch is re-indexed into this tracer, its internal parent links
        remapped, and its root spans re-parented under whatever span is
        currently open on the calling thread (root depth otherwise).

        Call once per worker batch -- parent links are only meaningful
        within one worker's span list.  Returns the adopted copies.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        mapping: dict[int, Span] = {}
        adopted: list[Span] = []
        with self._lock:
            for span in sorted(spans, key=lambda s: s.index):
                if span.end_s is None:
                    continue
                new = Span(
                    name=span.name,
                    index=len(self._spans),
                    start_s=span.start_s,
                    end_s=span.end_s,
                    depth=0,
                    parent=None,
                    thread=span.thread,
                    attributes=dict(span.attributes),
                    child_s=span.child_s,
                )
                old_parent = mapping.get(span.parent) if (
                    span.parent is not None
                ) else None
                if old_parent is not None:
                    new.parent = old_parent.index
                    new.depth = old_parent.depth + 1
                elif parent is not None:
                    new.parent = parent.index
                    new.depth = parent.depth + 1
                    parent.child_s += new.duration_s
                mapping[span.index] = new
                self._spans.append(new)
                adopted.append(new)
        return adopted

    def finished(self) -> list[Span]:
        """Completed spans in start order."""
        with self._lock:
            return [s for s in self._spans if s.end_s is not None]

    def iter_finished(self) -> Iterator[Span]:
        return iter(self.finished())

    def call_counts(self) -> dict[str, int]:
        """Finished-span count per name."""
        counts: dict[str, int] = {}
        for span in self.finished():
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def aggregate(self) -> list[SpanStats]:
        """Per-name aggregates, sorted by total time descending."""
        acc: dict[str, list[Span]] = {}
        for span in self.finished():
            acc.setdefault(span.name, []).append(span)
        stats = [
            SpanStats(
                name=name,
                count=len(spans),
                total_s=sum(s.duration_s for s in spans),
                self_s=sum(s.self_s for s in spans),
                min_s=min(s.duration_s for s in spans),
                max_s=max(s.duration_s for s in spans),
            )
            for name, spans in acc.items()
        ]
        stats.sort(key=lambda s: s.total_s, reverse=True)
        return stats

    def reset(self) -> None:
        """Drop every recorded span (open ones included)."""
        with self._lock:
            self._spans.clear()
        self._local = threading.local()
