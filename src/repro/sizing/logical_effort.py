"""Continuous sizing by the method of logical effort.

Section 6: "In an ideal design, each circuit is optimally crafted from
transistors and each transistor is individually sized to meet the drive
requirements of the capacitive load it faces ... Only in a custom design
methodology can this ideal be realized."

The method of logical effort is that ideal in closed form: along a path
of N stages with logical efforts g_i, branching b_i, parasitics p_i,
driving a path electrical effort H = C_out / C_in, the minimum delay is

    D = N * F^(1/N) + P,   F = G * B * H,  G = prod g_i,  B = prod b_i,
    P = sum p_i

achieved when every stage bears equal effort f = F^(1/N).  All delays
here are in units of tau; multiply by ``tech.tau_ps`` for picoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.par.memo import memoized


class SizingError(ValueError):
    """Raised for unphysical sizing problems."""

#: Best stage effort: the delay-optimal fanout per stage when extra
#: inverters may be added (rho for p_inv = 1).
BEST_STAGE_EFFORT = 3.59


@dataclass(frozen=True)
class PathStage:
    """One stage of a logical-effort path.

    Attributes:
        logical_effort: stage g.
        parasitic: stage p (units of tau).
        branching: stage branch factor b (off-path load over on-path).
    """

    logical_effort: float
    parasitic: float
    branching: float = 1.0

    def __post_init__(self) -> None:
        if self.logical_effort <= 0 or self.branching < 1.0:
            raise SizingError("g must be positive and b >= 1")
        if self.parasitic < 0:
            raise SizingError("parasitic must be non-negative")


@dataclass(frozen=True)
class PathSolution:
    """Result of a logical-effort path optimisation.

    Attributes:
        delay_tau: minimum achievable path delay in tau.
        stage_effort: the equalised per-stage effort f.
        input_caps: optimal input capacitance of each stage, as multiples
            of the path's input capacitance C_in (first entry is 1.0).
        path_effort: total effort F.
    """

    delay_tau: float
    stage_effort: float
    input_caps: tuple[float, ...]
    path_effort: float

    def delay_ps(self, tau_ps: float) -> float:
        return self.delay_tau * tau_ps


def optimize_path(
    stages: list[PathStage], electrical_effort: float
) -> PathSolution:
    """Minimum-delay continuous sizing of a fixed-topology path.

    Memoized process-wide: the design-space surveys re-optimise the same
    (stages, effort) pairs across grid points, and :class:`PathStage` /
    :class:`PathSolution` are immutable, so cached solutions are shared.

    Args:
        stages: the gates on the path, in driving order.
        electrical_effort: H = C_load / C_in of the whole path.
    """
    if not stages:
        raise SizingError("path has no stages")
    if electrical_effort <= 0:
        raise SizingError("electrical effort must be positive")
    return _optimize_path_cached(tuple(stages), electrical_effort)


@memoized("sizing.le")
def _optimize_path_cached(
    stages: tuple[PathStage, ...], electrical_effort: float
) -> PathSolution:
    g_total = math.prod(s.logical_effort for s in stages)
    b_total = math.prod(s.branching for s in stages)
    path_effort = g_total * b_total * electrical_effort
    n = len(stages)
    f = path_effort ** (1.0 / n)
    delay = n * f + sum(s.parasitic for s in stages)
    # Work backwards: C_in(i) = g_i * C_out(i) * b_i / f.
    caps = [0.0] * n
    cout = electrical_effort  # in units of the path input cap
    for i in range(n - 1, -1, -1):
        caps[i] = stages[i].logical_effort * cout * stages[i].branching / f
        cout = caps[i]
    scale = 1.0 / caps[0]
    caps = tuple(c * scale for c in caps)
    return PathSolution(
        delay_tau=delay,
        stage_effort=f,
        input_caps=caps,
        path_effort=path_effort,
    )


def best_stage_count(path_effort: float, parasitic_per_stage: float = 1.0) -> int:
    """Delay-optimal number of stages for a path effort.

    The optimum satisfies f * (1 - ln f) + p = 0; for p_inv = 1 the best
    stage effort is ~3.59, so N* = ln F / ln 3.59, rounded to the nearest
    achievable integer (minimum 1).
    """
    if path_effort <= 0:
        raise SizingError("path effort must be positive")
    if path_effort <= 1.0:
        return 1
    rho = _stage_effort_for_parasitic(parasitic_per_stage)
    return max(1, round(math.log(path_effort) / math.log(rho)))


def _stage_effort_for_parasitic(p: float) -> float:
    """Solve f(1 - ln f) + p = 0 for the optimal stage effort."""
    lo, hi = math.e, 20.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if mid * (1.0 - math.log(mid)) + p > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def delay_with_stage_count(
    path_effort: float, stages: int, parasitic_per_stage: float = 1.0
) -> float:
    """Path delay in tau for a given stage count (adding inverters).

    Used to decide whether lengthening a path with buffers wins: the
    classic U-shaped delay-vs-stages curve.
    """
    if stages < 1:
        raise SizingError("need at least one stage")
    return stages * path_effort ** (1.0 / stages) + stages * parasitic_per_stage


def chain_delay_tau(stage_count: int, fanout: float, parasitic: float = 1.0) -> float:
    """Delay of a uniform inverter chain at a fixed per-stage fanout."""
    if stage_count < 1 or fanout <= 0:
        raise SizingError("invalid chain")
    return stage_count * (fanout + parasitic)


def sizing_speedup_bound(
    stages: list[PathStage],
    electrical_effort: float,
    actual_delay_tau: float,
) -> float:
    """How much faster optimal continuous sizing is than an actual delay.

    Section 6.2's "can make a speed difference of 20% or more" compares a
    naively sized path against its optimum; this returns
    ``actual / optimal``.
    """
    optimal = optimize_path(stages, electrical_effort).delay_tau
    if actual_delay_tau < optimal - 1e-9:
        raise SizingError(
            f"actual delay {actual_delay_tau} beats the optimum {optimal}; "
            "check the path model"
        )
    return actual_delay_tau / optimal
