"""Design-space flow sweeps with shared-prefix stage caching.

:func:`run_flow_sweep` maps a list of flow option records through
:func:`repro.par.sweep.run_sweep`, so a survey gets the pool runner's
guarantees (ordered reduce, per-task determinism, span adoption) *and*
the engine's fingerprint cache: sweep points that share a stage prefix
-- same netlist and synth options, different sizing/variation knobs --
compute the prefix once and replay it everywhere else.

Serially (``workers <= 1``) the points share the process-global
in-memory cache.  Across worker processes the in-memory cache does not
travel, so a ``cache_dir`` spills stage blobs to disk where every
worker finds them; with the default fork start method workers also
inherit whatever the parent already cached.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.flows import cache as stage_cache
from repro.flows.options import CustomFlowOptions, FlowOptions, digest, options_fingerprint
from repro.flows.results import FlowError, FlowResult
from repro.obs import ledger as run_ledger
from repro.par.sweep import run_sweep
from repro.tech.process import ProcessTechnology


def _sweep_point(task: tuple) -> FlowResult:
    """Run one flow point (module-level, so pool workers can pickle it)."""
    options, tech, cache_dir = task
    if cache_dir is not None:
        stage_cache.configure(cache_dir)
    # Deferred: the flow modules import par.sweep's sibling machinery;
    # importing them lazily keeps worker startup minimal.
    from repro.flows.asic import run_asic_flow
    from repro.flows.custom import run_custom_flow

    run = (run_custom_flow if isinstance(options, CustomFlowOptions)
           else run_asic_flow)
    if tech is None:
        return run(options)
    return run(options, tech)


def _point_metrics(result: FlowResult) -> dict:
    """Per-point scalars for live ``task.done`` events (module-level so
    pool workers can pickle it)."""
    return {
        "quoted_mhz": result.quoted_frequency_mhz,
        "typical_mhz": result.typical_frequency_mhz,
        "fo4_depth": result.fo4_depth,
        "area_um2": result.area_um2,
    }


def run_flow_sweep(
    option_sets: Sequence[FlowOptions],
    tech: ProcessTechnology | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
    label: str = "flows.sweep",
) -> list[FlowResult]:
    """Run one flow per option record, in task order.

    Args:
        option_sets: flow option records; :class:`CustomFlowOptions`
            instances run the custom flow, everything else the ASIC
            flow.  Mixing styles in one sweep is fine.
        tech: technology override for every point (None = each flow's
            default).
        workers: process count; <= 1 runs serially in-process.
        cache_dir: directory for the shared on-disk stage cache (None =
            in-memory only; recommended whenever ``workers > 1``).

    Returns:
        ``FlowResult`` per option record, in input order, identical for
        any worker count.
    """
    for options in option_sets:
        if not isinstance(options, FlowOptions):
            raise FlowError(
                f"sweep points must be FlowOptions records, got "
                f"{type(options).__name__}"
            )
    if cache_dir is not None:
        stage_cache.configure(cache_dir)
    tasks = [(options, tech, cache_dir) for options in option_sets]
    started = time.perf_counter()
    results = run_sweep(_sweep_point, tasks, workers=workers, label=label,
                        summarize=_point_metrics)
    if run_ledger.enabled():
        # One sweep-level record on top of the per-point flow records
        # (which the pool runner merged in from the workers).
        wall_s = time.perf_counter() - started
        cache_stats = stage_cache.stats()
        run_ledger.record(run_ledger.RunRecord(
            kind="sweep",
            label=label,
            fingerprint=digest({
                "kind": "sweep",
                "points": [options_fingerprint(o) for o in option_sets],
                "tech": tech.name if tech is not None else None,
            }),
            tech=tech.name if tech is not None else "",
            config={"points": len(option_sets), "workers": workers,
                    "cache_dir": cache_dir},
            wall_s=round(wall_s, 6),
            metrics={
                "points": len(option_sets),
                "workers": workers,
                "cache.stage.hits": int(cache_stats["hits"]),
                "cache.stage.misses": int(cache_stats["misses"]),
                "cache.stage.hit_rate": round(
                    cache_stats["hit_rate"], 4
                ),
            },
        ))
    return results
