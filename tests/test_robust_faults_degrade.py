"""Fault injection, graceful degradation, and the selftest CLI."""

import json
import math

import pytest

from repro import obs
from repro.cells import rich_asic_library
from repro.cli import main
from repro.datapath import ripple_carry_adder
from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    FlowError,
    run_asic_flow,
    run_custom_flow,
)
from repro.robust import (
    DegradedTiming,
    FaultInjectionError,
    FaultInjector,
    StageRunner,
    enable_all_guards,
    fallback_timing,
    maybe_trip,
    run_selftest,
)
from repro.sta import TimingError, analyze, asic_clock, register_boundaries
from repro.tech import CMOS250_ASIC

CLK = asic_clock(20.0 * CMOS250_ASIC.fo4_delay_ps)


@pytest.fixture(autouse=True)
def _restore_guards():
    yield
    enable_all_guards()


def adder(bits=4):
    library = rich_asic_library(CMOS250_ASIC)
    module = register_boundaries(ripple_carry_adder(bits, library), library)
    return module, library


class TestFaultInjector:
    def test_deterministic_for_seed(self):
        m1, _ = adder()
        m2, _ = adder()
        assert FaultInjector(7).drop_net(m1) == FaultInjector(7).drop_net(m2)

    def test_drop_net_breaks_sta(self):
        module, library = adder()
        FaultInjector(0).drop_net(module)
        with pytest.raises(TimingError):
            analyze(module, library, CLK)

    def test_inject_nan_restricted_to_used_cells(self):
        module, library = adder()
        target = FaultInjector(3).inject_nan(library, module)
        cell_name = target.split(".")[0]
        assert any(inst.cell_name == cell_name
                   for inst in module.iter_instances())

    def test_maybe_trip(self):
        maybe_trip(None, "sta")
        maybe_trip("size", "sta")
        with pytest.raises(FaultInjectionError, match="sta"):
            maybe_trip("sta", "sta")


class TestStageRunner:
    def test_raise_policy_wraps_and_names_stage(self):
        runner = StageRunner(flow="asic")
        with pytest.raises(FlowError, match="stage 'sta'") as excinfo:
            with runner.stage("sta"):
                raise ValueError("boom")
        assert excinfo.value.stage == "sta"
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_keep_going_records_diagnostic(self):
        runner = StageRunner(flow="asic", on_error="keep_going")
        with runner.stage("size"):
            raise ValueError("boom")
        assert runner.failed("size")
        assert runner.diagnostics[0].code == "flow.stage_failed"
        assert runner.diagnostics[0].subject == "size"
        assert "ValueError" in runner.diagnostics[0].message

    def test_critical_stage_raises_despite_keep_going(self):
        runner = StageRunner(flow="asic", on_error="keep_going")
        with pytest.raises(FlowError):
            with runner.stage("map", critical=True):
                raise ValueError("boom")

    def test_unknown_policy_rejected(self):
        with pytest.raises(FlowError, match="on_error"):
            StageRunner(flow="asic", on_error="shrug")

    def test_failure_counter_bumped(self):
        obs.enable()
        try:
            runner = StageRunner(flow="asic", on_error="keep_going")
            with runner.stage("cts"):
                raise ValueError("boom")
            count = obs.get_metrics().counter(
                "robust.stage_failures"
            ).value(stage="cts")
        finally:
            obs.disable()
        assert count == 1.0


class TestFallbackTiming:
    def test_healthy_module_gets_analyzed_estimate(self):
        module, library = adder()
        degraded = fallback_timing(module, library, CLK)
        reference = analyze(module, library, CLK)
        assert degraded.min_period_ps == pytest.approx(
            reference.min_period_ps
        )
        assert 0.0 < degraded.overhead_fraction() < 1.0

    def test_broken_module_falls_back_to_clock_period(self):
        module, library = adder()
        FaultInjector(0).drop_net(module)
        degraded = fallback_timing(module, library, CLK)
        assert degraded.min_period_ps == CLK.period_ps
        assert degraded.max_frequency_mhz == pytest.approx(
            1.0e6 / CLK.period_ps
        )

    def test_degraded_timing_shape(self):
        d = DegradedTiming(min_period_ps=2000.0, logic_delay_ps=1500.0)
        assert d.max_frequency_mhz == pytest.approx(500.0)
        assert d.overhead_fraction() == pytest.approx(0.25)


class TestDegradedFlows:
    @pytest.mark.parametrize("stage", ["place", "size", "sta", "quote"])
    def test_asic_keep_going_survives_any_stage(self, stage):
        result = run_asic_flow(AsicFlowOptions(
            bits=4, sizing_moves=3, fault=stage, on_error="keep_going",
        ))
        assert result.degraded
        assert result.failed_stages() == [stage]
        assert result.quoted_frequency_mhz > 0
        assert math.isfinite(result.quoted_frequency_mhz)

    def test_asic_raise_mode_names_stage(self):
        with pytest.raises(FlowError) as excinfo:
            run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=3,
                                          fault="size"))
        assert excinfo.value.stage == "size"
        assert isinstance(excinfo.value.__cause__, FaultInjectionError)

    def test_asic_map_fault_fatal_even_keep_going(self):
        with pytest.raises(FlowError) as excinfo:
            run_asic_flow(AsicFlowOptions(
                bits=4, sizing_moves=3, fault="map",
                on_error="keep_going",
            ))
        assert excinfo.value.stage == "map"

    def test_custom_keep_going_survives_sizing_fault(self):
        result = run_custom_flow(CustomFlowOptions(
            bits=4, sizing_moves=3, fault="size", on_error="keep_going",
        ))
        assert result.failed_stages() == ["size"]
        assert result.quoted_frequency_mhz > 0

    def test_diagnostics_serialize_through_to_dict(self):
        result = run_asic_flow(AsicFlowOptions(
            bits=4, sizing_moves=3, fault="sta", on_error="keep_going",
        ))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["degraded"] is True
        failed = [d for d in payload["diagnostics"]
                  if d["code"] == "flow.stage_failed"]
        assert failed[0]["subject"] == "sta"
        assert failed[0]["severity"] == "error"
        assert failed[0]["hint"]

    def test_clean_flow_not_degraded(self):
        result = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=3))
        assert not result.degraded
        assert result.failed_stages() == []
        assert result.to_dict()["diagnostics"] == []

    def test_span_records_escaping_error(self):
        obs.enable()
        try:
            with pytest.raises(FlowError):
                run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=3,
                                              fault="sta"))
            spans = {
                s.name: s for s in obs.get_tracer().finished()
            }
        finally:
            obs.disable()
        assert spans["flow.asic.sta"].attributes["error"] == (
            "FaultInjectionError"
        )


class TestSelftest:
    def test_all_scenarios_pass(self):
        reports = run_selftest(seed=0)
        assert len(reports) >= 8
        failures = [r.fault for r in reports if not r.passed]
        assert failures == []

    def test_cli_exit_codes(self, capsys):
        assert main(["selftest"]) == 0
        assert "scenarios passed" in capsys.readouterr().out
        # Deliberately breaking a guard must make the selftest fail.
        assert main(["selftest", "--disable-guard", "finite"]) == 1
        capsys.readouterr()
        # ...and the disable must not leak into later runs.
        assert main(["selftest"]) == 0
        capsys.readouterr()

    def test_cli_json_shape(self, capsys):
        assert main(["selftest", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert {s["fault"] for s in payload["scenarios"]} >= {
            "undriven_net", "nan_delay_table", "keep_going_degrades",
        }


class TestCliFaultFlags:
    def test_flow_abort_names_stage_in_json(self, capsys):
        code = main(["flow", "asic", "--bits", "4", "--sizing-moves",
                     "3", "--inject-fault", "sta", "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["stage"] == "sta"
        assert payload["cause"] == "FaultInjectionError"

    def test_flow_keep_going_reports_diagnostics(self, capsys):
        code = main(["flow", "asic", "--bits", "4", "--sizing-moves",
                     "3", "--inject-fault", "size", "--keep-going",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is True
        assert [d["subject"] for d in payload["diagnostics"]
                if d["code"] == "flow.stage_failed"] == ["size"]

    def test_gap_keep_going_flag_accepted(self, capsys):
        code = main(["gap", "--bits", "4", "--sizing-moves", "3",
                     "--keep-going"])
        assert code == 0
        assert "asic" in capsys.readouterr().out
