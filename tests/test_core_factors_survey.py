"""Unit tests for the core factor model, cycle-time model and survey."""

import pytest

from repro.core import (
    ALPHA_21264A_ENTRY,
    ALPHA_CYCLE,
    CycleTimeError,
    CycleTimeModel,
    DesignStyle,
    Factor,
    FactorError,
    FactorModel,
    IBM_POWERPC_ENTRY,
    PAPER_FACTORS,
    POWERPC_CYCLE,
    SURVEY,
    TYPICAL_ASIC_CYCLE,
    XTENSA_CYCLE,
    XTENSA_ENTRY,
    fastest,
    gap_summary,
    headline_gap,
    measured_model,
)
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM


class TestFactorModel:
    def test_paper_product_is_about_18(self):
        # Section 3: "custom circuits could run 18x faster".
        model = FactorModel()
        assert model.total_product() == pytest.approx(17.8, abs=0.05)

    def test_factor_values_match_paper(self):
        model = FactorModel()
        assert model.get("microarchitecture").max_contribution == 4.00
        assert model.get("floorplanning").max_contribution == 1.25
        assert model.get("sizing").max_contribution == 1.25
        assert model.get("dynamic_logic").max_contribution == 1.50
        assert model.get("process_variation").max_contribution == 1.90

    def test_section9_residuals(self):
        model = FactorModel()
        # Pipelining + variation leave "about 2 to 3x".
        residual = model.residual_after(
            ["microarchitecture", "process_variation"]
        )
        assert 2.0 < residual < 3.0
        # Adding dynamic logic leaves "about 1.6x".
        residual = model.residual_after(
            ["microarchitecture", "process_variation", "dynamic_logic"]
        )
        assert residual == pytest.approx(1.56, abs=0.05)

    def test_gap_equivalent_to_seven_generations_max(self):
        # The 18x maximum is ~7 generations; the observed 6-8x is ~5
        # (Section 2).
        model = FactorModel()
        assert 6.5 < model.gap_in_generations() < 7.5

    def test_ranked_order(self):
        ranked = FactorModel().ranked()
        assert ranked[0].name == "microarchitecture"
        assert ranked[1].name == "process_variation"

    def test_explained_fraction(self):
        model = FactorModel()
        top_two = model.explained_fraction(
            ["microarchitecture", "process_variation"]
        )
        assert 0.6 < top_two < 0.8
        assert model.explained_fraction(
            [f.name for f in PAPER_FACTORS]
        ) == pytest.approx(1.0)

    def test_table_lists_product(self):
        text = FactorModel().table()
        assert "product" in text
        assert "17.8" in text

    def test_measured_model(self):
        model = measured_model({"microarchitecture": 3.0, "sizing": 1.1})
        assert model.total_product() == pytest.approx(3.3)
        assert model.get("microarchitecture").section == "4"

    def test_validation(self):
        with pytest.raises(FactorError):
            Factor("bad", 0.5, "", "-")
        with pytest.raises(FactorError):
            FactorModel([])
        with pytest.raises(FactorError):
            FactorModel().get("nonexistent")


class TestCycleTimeModel:
    def test_alpha_is_15_fo4(self):
        assert ALPHA_CYCLE.cycle_fo4 == pytest.approx(15.0, abs=0.2)

    def test_powerpc_is_13_fo4(self):
        assert POWERPC_CYCLE.cycle_fo4 == pytest.approx(13.0, abs=0.2)

    def test_xtensa_is_44_fo4(self):
        assert XTENSA_CYCLE.cycle_fo4 == pytest.approx(44.0, abs=0.5)

    def test_alpha_latch_share_matches_paper(self):
        # Section 4.1: latches take 15% of the Alpha cycle.
        share = ALPHA_CYCLE.latch_fo4 / ALPHA_CYCLE.cycle_fo4
        assert 0.13 < share < 0.17

    def test_frequencies(self):
        # The Alpha's 750 MHz at 15 FO4 implies an FO4 of ~89 ps, i.e.
        # Leff ~ 0.178 um by the paper's rule -- its process file sits
        # between our ASIC and PowerPC-class technologies.
        alpha_tech = CMOS250_CUSTOM.scaled(leff_um=0.178)
        assert ALPHA_CYCLE.frequency_mhz(alpha_tech) == pytest.approx(
            750.0, rel=0.05
        )
        assert POWERPC_CYCLE.frequency_mhz(CMOS250_CUSTOM) == pytest.approx(
            1000.0, rel=0.05
        )
        assert XTENSA_CYCLE.frequency_mhz(CMOS250_ASIC) == pytest.approx(
            250.0, rel=0.05
        )

    def test_asic_overhead_larger(self):
        assert (
            XTENSA_CYCLE.overhead_fraction > POWERPC_CYCLE.overhead_fraction
        )

    def test_speedup_over(self):
        assert TYPICAL_ASIC_CYCLE.speedup_over(ALPHA_CYCLE) < 1.0
        assert ALPHA_CYCLE.speedup_over(TYPICAL_ASIC_CYCLE) > 4.0

    def test_with_logic(self):
        halved = XTENSA_CYCLE.with_logic(XTENSA_CYCLE.logic_fo4 / 2)
        assert halved.cycle_fo4 < XTENSA_CYCLE.cycle_fo4
        assert halved.latch_fo4 == XTENSA_CYCLE.latch_fo4

    def test_validation(self):
        with pytest.raises(CycleTimeError):
            CycleTimeModel(logic_fo4=0.0)
        with pytest.raises(CycleTimeError):
            CycleTimeModel(logic_fo4=10.0, skew_fraction=1.0)


class TestSurvey:
    def test_headline_gap_is_6_to_8(self):
        low, high = headline_gap()
        assert low == pytest.approx(6.7, abs=0.1)
        assert high == pytest.approx(8.3, abs=0.1)

    def test_fastest_by_style(self):
        assert fastest(DesignStyle.CUSTOM) is IBM_POWERPC_ENTRY
        assert fastest(DesignStyle.ASIC) is XTENSA_ENTRY

    def test_survey_datapoints(self):
        assert ALPHA_21264A_ENTRY.frequency_mhz == 750.0
        assert ALPHA_21264A_ENTRY.power_w == 90.0
        assert ALPHA_21264A_ENTRY.area_mm2 == 225.0  # 2.25 cm^2
        assert IBM_POWERPC_ENTRY.area_mm2 == pytest.approx(9.8)
        assert XTENSA_ENTRY.pipeline_stages == 5

    def test_implied_fo4_consistent(self):
        # The FO4 rule and the quoted frequencies must roughly agree with
        # the quoted FO4 depths (within ~20%).
        for entry in (IBM_POWERPC_ENTRY, XTENSA_ENTRY):
            implied = entry.implied_fo4_depth()
            assert abs(implied - entry.fo4_depth) / entry.fo4_depth < 0.20

    def test_summary_text(self):
        text = gap_summary()
        assert "Alpha" in text
        assert "gap" in text
        assert len(SURVEY) == 5
