"""Unit and property tests for repro.datapath.adders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import poor_asic_library, rich_asic_library
from repro.datapath import (
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
    simulate_adder,
)
from repro.netlist import logic_depth
from repro.synth import SynthesisError
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
POOR = poor_asic_library(CMOS250_ASIC)

GENERATORS = {
    "ripple": ripple_carry_adder,
    "cla": carry_lookahead_adder,
    "csel": carry_select_adder,
    "ks": kogge_stone_adder,
}


@pytest.mark.parametrize("kind", sorted(GENERATORS))
@pytest.mark.parametrize("bits", [1, 2, 4, 5, 8])
def test_adders_exhaustive_small(kind, bits):
    if kind in ("cla", "csel", "ks") and bits == 1:
        if kind == "ks":
            pass  # kogge-stone degenerates fine at 1 bit
    module = GENERATORS[kind](bits, RICH)
    module.assert_well_formed()
    limit = 1 << bits
    step = max(1, limit // 8)
    for a in range(0, limit, step):
        for b in range(0, limit, step):
            for cin in (0, 1):
                total, cout = simulate_adder(module, RICH, bits, a, b, cin)
                expected = a + b + cin
                assert total == expected % limit, (kind, bits, a, b, cin)
                assert cout == expected // limit, (kind, bits, a, b, cin)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_adders_on_poor_library(kind):
    module = GENERATORS[kind](4, POOR)
    module.assert_well_formed()
    total, cout = simulate_adder(module, POOR, 4, 11, 7, 1)
    assert (total, cout) == ((11 + 7 + 1) % 16, (11 + 7 + 1) // 16)


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(0, 255),
    b=st.integers(0, 255),
    cin=st.integers(0, 1),
)
def test_kogge_stone_8bit_random(a, b, cin):
    module = _KS8
    total, cout = simulate_adder(module, RICH, 8, a, b, cin)
    expected = a + b + cin
    assert total == expected % 256
    assert cout == expected // 256


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(0, 255),
    b=st.integers(0, 255),
    cin=st.integers(0, 1),
)
def test_cla_8bit_random(a, b, cin):
    total, cout = simulate_adder(_CLA8, RICH, 8, a, b, cin)
    expected = a + b + cin
    assert total == expected % 256
    assert cout == expected // 256


_KS8 = kogge_stone_adder(8, RICH)
_CLA8 = carry_lookahead_adder(8, RICH)


class TestDepth:
    def test_fast_adders_shallower_than_ripple(self):
        bits = 16
        ripple = ripple_carry_adder(bits, RICH)
        ks = kogge_stone_adder(bits, RICH)
        cla = carry_lookahead_adder(bits, RICH)
        csel = carry_select_adder(bits, RICH)
        d_ripple = logic_depth(ripple)
        assert logic_depth(ks) < d_ripple
        assert logic_depth(cla) < d_ripple
        assert logic_depth(csel) < d_ripple

    def test_ripple_depth_linear(self):
        d8 = logic_depth(ripple_carry_adder(8, RICH))
        d16 = logic_depth(ripple_carry_adder(16, RICH))
        assert d16 > d8 + 4  # roughly 2 gates per bit

    def test_kogge_stone_depth_logarithmic(self):
        d8 = logic_depth(kogge_stone_adder(8, RICH))
        d32 = logic_depth(kogge_stone_adder(32, RICH))
        assert d32 <= d8 + 5  # two extra prefix levels plus margin

    def test_invalid_width(self):
        with pytest.raises(SynthesisError):
            ripple_carry_adder(0, RICH)

    def test_operand_range_check(self):
        module = ripple_carry_adder(4, RICH)
        with pytest.raises(SynthesisError):
            simulate_adder(module, RICH, 4, 16, 0)
