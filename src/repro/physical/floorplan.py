"""Slicing floorplanner with simulated annealing.

Section 5.2: "Custom ICs are typically manually floorplanned.  A number
of tools are now reaching the ASIC market to facilitate chip-level
floorplanning."  This module is such a tool: blocks (hard or soft) are
arranged by annealing over normalised Polish expressions of a slicing
tree (Wong-Liu moves), with a cost mixing die area and the half-perimeter
wirelength of inter-block nets.

The floorplanner's output feeds :class:`repro.physical.wires` to price
the global wires between modules -- localising connected blocks next to
each other is exactly what buys the paper's "up to 25%".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.physical.geometry import (
    GeometryError,
    Point,
    Rect,
    bounding_box,
    half_perimeter_wirelength,
)


@dataclass(frozen=True)
class Block:
    """A floorplan block (macro/module).

    Attributes:
        name: block name.
        area_um2: required area.
        aspect_ratios: candidate height/width ratios (soft blocks offer
            several, hard blocks exactly one).
    """

    name: str
    area_um2: float
    aspect_ratios: tuple[float, ...] = (0.5, 1.0, 2.0)

    def __post_init__(self) -> None:
        if self.area_um2 <= 0:
            raise GeometryError(f"block {self.name}: area must be positive")
        if not self.aspect_ratios or any(r <= 0 for r in self.aspect_ratios):
            raise GeometryError(f"block {self.name}: bad aspect ratios")

    def shapes(self) -> list[tuple[float, float]]:
        """Candidate (width, height) realisations."""
        out = []
        for ratio in self.aspect_ratios:
            width = math.sqrt(self.area_um2 / ratio)
            out.append((width, width * ratio))
        return out


@dataclass
class Floorplan:
    """A placed floorplan: block name -> rectangle."""

    rects: dict[str, Rect]

    @property
    def die(self) -> Rect:
        return bounding_box(list(self.rects.values()))

    @property
    def die_area_um2(self) -> float:
        return self.die.area

    def utilization(self) -> float:
        """Block area over die area (1.0 = perfect packing)."""
        used = sum(r.area for r in self.rects.values())
        return used / self.die_area_um2

    def center_of(self, block: str) -> Point:
        try:
            return self.rects[block].center
        except KeyError:
            raise GeometryError(f"no block {block!r} in floorplan") from None

    def wirelength(self, nets: list[list[str]]) -> float:
        """Total HPWL of nets, each a list of block names."""
        return sum(
            half_perimeter_wirelength([self.center_of(b) for b in net])
            for net in nets
        )

    def check_no_overlap(self) -> list[tuple[str, str]]:
        """Pairs of overlapping blocks (must be empty for a legal plan)."""
        names = sorted(self.rects)
        bad = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.rects[a].overlaps(self.rects[b]):
                    bad.append((a, b))
        return bad


# ----------------------------------------------------------------------
# Slicing-tree evaluation (stockmeyer-lite: single best shape per node)
# ----------------------------------------------------------------------

_H, _V = "H", "V"  # horizontal cut (stack), vertical cut (side by side)


def _is_operator(token: str) -> bool:
    return token in (_H, _V)


def _evaluate(
    expression: list[str], blocks: dict[str, Block]
) -> tuple[float, float, dict[str, Rect]]:
    """Evaluate a Polish expression; returns (width, height, placement).

    Each node keeps its full shape list (Stockmeyer curve, pruned to
    non-dominated points) and the best die is realised top-down.
    """
    stack: list[list[tuple[float, float, object]]] = []
    for token in expression:
        if not _is_operator(token):
            shapes = [(w, h, token) for (w, h) in blocks[token].shapes()]
            stack.append(_prune(shapes))
            continue
        right = stack.pop()
        left = stack.pop()
        combined = []
        for lw, lh, lplan in left:
            for rw, rh, rplan in right:
                if token == _V:
                    combined.append(
                        (lw + rw, max(lh, rh), (token, lplan, rplan, lw, lh, rw, rh))
                    )
                else:
                    combined.append(
                        (max(lw, rw), lh + rh, (token, lplan, rplan, lw, lh, rw, rh))
                    )
        stack.append(_prune(combined))
    if len(stack) != 1:
        raise GeometryError("malformed Polish expression")
    best = min(stack[0], key=lambda s: s[0] * s[1])
    rects: dict[str, Rect] = {}
    _realize(best[2], 0.0, 0.0, rects)
    return best[0], best[1], rects


def _prune(shapes):
    """Keep only Pareto-optimal (width, height) shapes."""
    shapes = sorted(shapes, key=lambda s: (s[0], s[1]))
    pruned = []
    best_h = math.inf
    for shape in shapes:
        if shape[1] < best_h - 1e-12:
            pruned.append(shape)
            best_h = shape[1]
    return pruned


def _realize(plan, x: float, y: float, rects: dict[str, Rect]) -> None:
    if isinstance(plan, str):
        # Leaf: dimensions recovered by the parent; store placeholder and
        # fix below -- leaves carry their shape via the parent tuple.
        raise GeometryError("leaf realisation requires parent dimensions")
    if isinstance(plan, tuple) and len(plan) == 7:
        token, lplan, rplan, lw, lh, rw, rh = plan
        _realize_child(lplan, x, y, lw, lh, rects)
        if token == _V:
            _realize_child(rplan, x + lw, y, rw, rh, rects)
        else:
            _realize_child(rplan, x, y + lh, rw, rh, rects)
        return
    raise GeometryError(f"unexpected plan node {plan!r}")


def _realize_child(plan, x, y, w, h, rects) -> None:
    if isinstance(plan, str):
        rects[plan] = Rect(x, y, w, h)
    else:
        _realize(plan, x, y, rects)


# ----------------------------------------------------------------------
# Simulated annealing over normalised Polish expressions
# ----------------------------------------------------------------------

@dataclass
class FloorplanResult:
    """Annealing outcome.

    Attributes:
        floorplan: the best legal plan found.
        cost: final cost value.
        iterations: annealing steps taken.
    """

    floorplan: Floorplan
    cost: float
    iterations: int


class SlicingFloorplanner:
    """Wong-Liu style annealer over slicing structures.

    Args:
        blocks: the modules to arrange.
        nets: inter-block connectivity as lists of block names.
        wirelength_weight: relative weight of HPWL against die area in
            the cost (normalised internally).
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        blocks: list[Block],
        nets: list[list[str]] | None = None,
        wirelength_weight: float = 0.5,
        seed: int = 1,
    ) -> None:
        if len(blocks) < 2:
            raise GeometryError("floorplanning needs at least two blocks")
        self.blocks = {b.name: b for b in blocks}
        if len(self.blocks) != len(blocks):
            raise GeometryError("duplicate block names")
        self.nets = nets or []
        for net in self.nets:
            for name in net:
                if name not in self.blocks:
                    raise GeometryError(f"net references unknown block {name!r}")
        self.wirelength_weight = wirelength_weight
        self.seed = seed

    def initial_expression(self) -> list[str]:
        """Balanced starting expression: b0 b1 V b2 V b3 V ..."""
        names = sorted(self.blocks)
        expr = [names[0]]
        for i, name in enumerate(names[1:]):
            expr.append(name)
            expr.append(_V if i % 2 == 0 else _H)
        return expr

    def _cost(self, expression: list[str]) -> tuple[float, Floorplan]:
        width, height, rects = _evaluate(expression, self.blocks)
        plan = Floorplan(rects)
        area = width * height
        total_block = sum(b.area_um2 for b in self.blocks.values())
        area_term = area / total_block
        if self.nets:
            wl = plan.wirelength(self.nets)
            norm = math.sqrt(total_block) * max(1, len(self.nets))
            wl_term = wl / norm
        else:
            wl_term = 0.0
        cost = (1 - self.wirelength_weight) * area_term + (
            self.wirelength_weight * wl_term
        )
        return cost, plan

    def _neighbors(self, expr: list[str], rng: random.Random) -> list[str]:
        """One Wong-Liu move: M1 swap operands, M2 flip chain, M3 swap
        operand/operator (validity-checked)."""
        new = list(expr)
        move = rng.randint(1, 3)
        operand_idx = [i for i, t in enumerate(new) if not _is_operator(t)]
        if move == 1:
            i, j = rng.sample(operand_idx, 2)
            new[i], new[j] = new[j], new[i]
            return new
        if move == 2:
            op_idx = [i for i, t in enumerate(new) if _is_operator(t)]
            start = rng.choice(op_idx)
            i = start
            while i < len(new) and _is_operator(new[i]):
                new[i] = _H if new[i] == _V else _V
                i += 1
            return new
        # M3: swap adjacent operand/operator pair if it stays normalised.
        candidates = [
            i
            for i in range(len(new) - 1)
            if _is_operator(new[i]) != _is_operator(new[i + 1])
        ]
        rng.shuffle(candidates)
        for i in candidates:
            swapped = list(new)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            if _is_valid_polish(swapped):
                return swapped
        return new

    def run(
        self,
        iterations: int = 2000,
        initial_temperature: float = 1.0,
        cooling: float = 0.995,
    ) -> FloorplanResult:
        """Anneal and return the best floorplan found."""
        rng = random.Random(self.seed)
        expr = self.initial_expression()
        cost, plan = self._cost(expr)
        best_cost, best_plan = cost, plan
        temperature = initial_temperature
        for step in range(iterations):
            candidate = self._neighbors(expr, rng)
            if not _is_valid_polish(candidate):
                continue
            c_cost, c_plan = self._cost(candidate)
            delta = c_cost - cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                expr, cost = candidate, c_cost
                if c_cost < best_cost:
                    best_cost, best_plan = c_cost, c_plan
            temperature *= cooling
        overlaps = best_plan.check_no_overlap()
        if overlaps:
            raise GeometryError(f"floorplanner produced overlaps: {overlaps}")
        return FloorplanResult(
            floorplan=best_plan, cost=best_cost, iterations=iterations
        )


def _is_valid_polish(expression: list[str]) -> bool:
    """Balloting property plus no two identical adjacent operators chains
    breaking normalisation is tolerated (we only need validity)."""
    depth = 0
    for token in expression:
        if _is_operator(token):
            depth -= 1
            if depth < 1:
                return False
        else:
            depth += 1
    return depth == 1
