"""Profiling overhead: attribution must not distort what it measures.

`obs.profile` prices every flow stage (CPU seconds via
``time.process_time``, peak memory via the sampled-RSS probe by
default, or exact ``tracemalloc`` heap in ``trace`` mode).  This
benchmark bounds the default configuration -- the one a tuning loop
would leave on: the E8-style ASIC flow (map/place/cts/size/sta/quote,
cold stage cache) runs with profiling off and with CPU + sampled-memory
attribution on, and the profiled run must stay under 2x.  Trace-mode
memory attribution is deliberately *not* bounded here: tracemalloc
instruments every allocation and costs roughly 10x on the
allocation-heavy placement stage, which is exactly why it is the
opt-in precise mode rather than the default.

Wall times land in ``BENCH_paperbench.json`` as
``bench.profile.flow_off.s`` / ``bench.profile.flow_on.s``, and the
attribution itself lands as ``bench.profile.flow_cpu_s`` (summed stage
CPU) and ``bench.profile.flow_peak_kb`` (worst stage peak RSS, KiB) so
`repro-gap budget` can put ceilings on CPU and memory, not just wall
time.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import record_value, record_wall, report, row, run_once

from repro.flows import AsicFlowOptions, run_asic_flow
from repro.flows import cache as stage_cache
from repro.obs import profile as obs_profile

OPTIONS = AsicFlowOptions(bits=8, sizing_moves=10)


def _measure():
    stage_cache.reset()
    start = time.perf_counter()
    off_result = run_asic_flow(OPTIONS)
    off_s = time.perf_counter() - start

    stage_cache.reset()
    obs_profile.configure(cpu=True, mem="sampled")
    try:
        start = time.perf_counter()
        on_result = run_asic_flow(OPTIONS)
        on_s = time.perf_counter() - start
    finally:
        obs_profile.reset_state()
    return off_s, on_s, off_result, on_result


def test_profile_overhead(benchmark):
    off_s, on_s, off_result, on_result = run_once(benchmark, _measure)
    record_wall("profile.flow_off", off_s)
    record_wall("profile.flow_on", on_s)
    overhead = on_s / off_s

    # Attribution is a side channel: the flow's answer cannot move.
    off_dict, on_dict = off_result.to_dict(), on_result.to_dict()
    off_dict.pop("stages")
    on_dict.pop("stages")
    assert off_dict == on_dict

    # The unprofiled run's stage records must be schema-identical to
    # the pre-profiling shape (no cpu/mem keys).
    for stage in off_result.to_dict()["stages"]:
        assert "cpu_s" not in stage and "peak_mem_kb" not in stage

    # Every executed stage of the profiled run carries both numbers.
    cpu_total, peak_kb = 0.0, 0.0
    for record in on_result.stage_records:
        assert record.cpu_s is not None, record
        assert record.peak_mem_kb is not None, record
        cpu_total += record.cpu_s
        peak_kb = max(peak_kb, record.peak_mem_kb)
    record_value("profile.flow_cpu_s", round(cpu_total, 6))
    record_value("profile.flow_peak_kb", round(peak_kb, 3))

    print()
    print(f"flow off {off_s:.3f} s, profiled {on_s:.3f} s "
          f"({overhead:.2f}x); attribution: {cpu_total:.3f} s CPU, "
          f"peak stage RSS {peak_kb:.0f} KiB")

    rows = [
        row("flow wall-time factor with cpu+mem profiling on", "< 2x",
            overhead, 0.0, 2.0, fmt="{:.2f}x"),
    ]
    report("S3  Deep-profiling overhead (obs.profile)", rows)
    for entry in rows:
        assert entry.ok, entry
