"""Comparator and reduction-tree generators.

Equality and magnitude comparison plus a parity tree -- small regular
structures used by the ALU and by the floorplanning benchmarks as
representative random-logic blocks.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def equality_comparator(
    bits: int, library: CellLibrary, name: str = "eq"
) -> Module:
    """``eq = (a == b)``: per-bit XNOR reduced through an AND tree."""
    if bits < 1:
        raise SynthesisError("comparator width must be at least 1")
    module = Module(name)
    a = [module.add_input(f"a{i}") for i in range(bits)]
    b = [module.add_input(f"b{i}") for i in range(bits)]
    module.add_output("eq")
    emit = Emitter(module, library)
    matches = [emit.xnor2(a[i], b[i]) for i in range(bits)]
    if len(matches) == 1:
        emit.buf(matches[0], out="eq")
    else:
        emit.buf(emit.and_tree(matches), out="eq")
    return module


def magnitude_comparator(
    bits: int, library: CellLibrary, name: str = "gt"
) -> Module:
    """``gt = (a > b)`` for unsigned words.

    Classic formulation: bit i wins if a_i > b_i and all higher bits are
    equal: ``gt = OR_i (a_i & ~b_i & AND_{j>i} eq_j)``.
    """
    if bits < 1:
        raise SynthesisError("comparator width must be at least 1")
    module = Module(name)
    a = [module.add_input(f"a{i}") for i in range(bits)]
    b = [module.add_input(f"b{i}") for i in range(bits)]
    module.add_output("gt")
    emit = Emitter(module, library)
    eq = [emit.xnor2(a[i], b[i]) for i in range(bits)]
    terms = []
    for i in range(bits):
        win = emit.and2(a[i], emit.inv(b[i]))
        higher = eq[i + 1:]
        if higher:
            win = emit.and2(win, emit.and_tree(higher))
        terms.append(win)
    if len(terms) == 1:
        emit.buf(terms[0], out="gt")
    else:
        emit.buf(emit.or_tree(terms), out="gt")
    return module


def parity_tree(bits: int, library: CellLibrary, name: str = "parity") -> Module:
    """Odd-parity of an input word via a balanced XOR tree."""
    if bits < 2:
        raise SynthesisError("parity width must be at least 2")
    module = Module(name)
    d = [module.add_input(f"d{i}") for i in range(bits)]
    module.add_output("p")
    emit = Emitter(module, library)
    emit.buf(emit.xor_tree(d), out="p")
    return module


def simulate_comparator(
    module: Module, library: CellLibrary, bits: int, a: int, b: int, out: str
) -> bool:
    """Drive a comparator netlist with integers; returns the named output."""
    from repro.synth.simulate import simulate_combinational

    vec = {f"a{i}": bool((a >> i) & 1) for i in range(bits)}
    vec.update({f"b{i}": bool((b >> i) & 1) for i in range(bits)})
    return simulate_combinational(module, library, vec)[out]
