"""Technology mapping: expression trees onto a cell library.

The mapper is polarity-aware: every subexpression can be produced in true
or complemented form, and the form is chosen to exploit the library's
inverting gates (NAND/NOR cost less than AND/OR in CMOS).  A library
without dual polarities (Section 6.1's impoverished case) therefore pays
real inverter gates wherever the wrong polarity is all it stocks -- which
is precisely how the 25%-slower-library experiment manifests.

Structurally identical subexpressions are shared, so the output is a DAG
netlist, not a tree.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.synth.ast import And, Const, Expr, Not, Or, SynthesisError, Var, Xor
from repro.synth.optimize import optimize


#: Gate base names by operator and width, in true/complement polarity.
_AND_BASES = {2: ("AND2", "NAND2"), 3: ("AND3", "NAND3"), 4: ("AND4", "NAND4")}
_OR_BASES = {2: ("OR2", "NOR2"), 3: ("OR3", "NOR3"), 4: ("OR4", "NOR4")}
_PIN_NAMES = "ABCDEFGH"


class TechnologyMapper:
    """Maps optimised boolean expressions onto one :class:`CellLibrary`.

    Args:
        library: target library.
        default_drive: drive strength used for every mapped gate; the
            sizing stage (:mod:`repro.sizing`) adjusts drives afterwards,
            mirroring the synthesis-then-resize flow of Section 6.2.
    """

    def __init__(self, library: CellLibrary, default_drive: float = 2.0) -> None:
        self.library = library
        self.default_drive = default_drive
        self._and_widths = self._widths(_AND_BASES)
        self._or_widths = self._widths(_OR_BASES)
        if not self._and_widths or not self._or_widths:
            raise SynthesisError(
                f"library {library.name} lacks basic AND/OR-class gates"
            )
        if "INV" not in library.bases():
            raise SynthesisError(f"library {library.name} lacks an inverter")

    def _widths(self, table: dict[int, tuple[str, str]]) -> list[int]:
        widths = []
        for width, (true_base, comp_base) in table.items():
            if self.library.has_base(true_base) or self.library.has_base(comp_base):
                widths.append(width)
        return sorted(widths)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def map_design(
        self,
        design: dict[str, Expr],
        name: str = "mapped",
        input_order: list[str] | None = None,
    ) -> Module:
        """Map a multi-output design to a netlist.

        Args:
            design: mapping from output port name to expression.
            name: module name.
            input_order: explicit input port order (default: sorted union
                of all free variables).

        Raises:
            SynthesisError: for constant outputs (no tie cells are
                modelled) or unsupported structures.
        """
        module = Module(name)
        variables: set[str] = set()
        optimised: dict[str, Expr] = {}
        for out, expr in design.items():
            opt = optimize(expr, max_arity=max(self._and_widths))
            if isinstance(opt, Const):
                raise SynthesisError(
                    f"output {out!r} reduces to a constant; tie cells are "
                    "not modelled"
                )
            optimised[out] = opt
            variables |= opt.variables()
        inputs = input_order if input_order is not None else sorted(variables)
        missing = variables - set(inputs)
        if missing:
            raise SynthesisError(f"input order omits variables {sorted(missing)}")
        for var in inputs:
            module.add_input(var)

        memo: dict[tuple[Expr, bool], str] = {}
        for out in design:
            module.add_output(out)
        for out, expr in optimised.items():
            net = self._map(module, memo, expr, inverted=False)
            self._drive_output(module, net, out)
        return module

    def map_expression(self, expr: Expr, name: str = "mapped") -> Module:
        """Map a single expression; the output port is named ``y``."""
        return self.map_design({"y": expr}, name=name)

    # ------------------------------------------------------------------
    # Recursive polarity-aware mapping
    # ------------------------------------------------------------------

    def _map(
        self,
        module: Module,
        memo: dict[tuple[Expr, bool], str],
        expr: Expr,
        inverted: bool,
    ) -> str:
        key = (expr, inverted)
        if key in memo:
            return memo[key]
        net = self._map_uncached(module, memo, expr, inverted)
        memo[key] = net
        return net

    def _map_uncached(
        self,
        module: Module,
        memo: dict[tuple[Expr, bool], str],
        expr: Expr,
        inverted: bool,
    ) -> str:
        if isinstance(expr, Var):
            if not inverted:
                return expr.name
            return self._emit_inverter(module, expr.name)
        if isinstance(expr, Not):
            return self._map(module, memo, expr.child, not inverted)
        if isinstance(expr, And):
            return self._map_nary(module, memo, expr, inverted, is_and=True)
        if isinstance(expr, Or):
            return self._map_nary(module, memo, expr, inverted, is_and=False)
        if isinstance(expr, Xor):
            return self._map_xor(module, memo, expr, inverted)
        if isinstance(expr, Const):
            raise SynthesisError("constants must be simplified away before mapping")
        raise SynthesisError(f"unknown expression node {type(expr).__name__}")

    def _map_nary(
        self,
        module: Module,
        memo: dict[tuple[Expr, bool], str],
        expr: And | Or,
        inverted: bool,
        is_and: bool,
    ) -> str:
        widths = self._and_widths if is_and else self._or_widths
        table = _AND_BASES if is_and else _OR_BASES
        children = list(expr.children)
        width = len(children)
        if width not in widths:
            # Should not happen after optimize(), but guard decomposition.
            op = And if is_and else Or
            sub = optimize(op(children), max_arity=max(widths))
            if sub == expr:
                raise SynthesisError(
                    f"cannot decompose {width}-wide operator for library "
                    f"{self.library.name}"
                )
            return self._map(module, memo, sub, inverted)
        true_base, comp_base = table[width]
        child_nets = [self._map(module, memo, c, inverted=False) for c in children]
        wanted = comp_base if inverted else true_base
        other = true_base if inverted else comp_base
        if self.library.has_base(wanted):
            return self._emit_gate(module, wanted, child_nets)
        # Wrong polarity stocked: emit the other polarity plus an inverter.
        net = self._emit_gate(module, other, child_nets)
        return self._emit_inverter(module, net)

    def _map_xor(
        self,
        module: Module,
        memo: dict[tuple[Expr, bool], str],
        expr: Xor,
        inverted: bool,
    ) -> str:
        left = self._map(module, memo, expr.left, inverted=False)
        right = self._map(module, memo, expr.right, inverted=False)
        wanted = "XNOR2" if inverted else "XOR2"
        other = "XOR2" if inverted else "XNOR2"
        if self.library.has_base(wanted):
            return self._emit_gate(module, wanted, [left, right])
        if self.library.has_base(other):
            net = self._emit_gate(module, other, [left, right])
            return self._emit_inverter(module, net)
        # No XOR gates at all: decompose into AND/OR/NOT form.
        decomposed = Or(
            (And((expr.left, Not(expr.right))), And((Not(expr.left), expr.right)))
        )
        if inverted:
            decomposed = Not(decomposed)
        return self._map(module, memo, optimize(decomposed, max(self._and_widths)),
                         inverted=False)

    # ------------------------------------------------------------------
    # Gate emission
    # ------------------------------------------------------------------

    def _pick_cell(self, base: str) -> str:
        variants = self.library.drives_of(base)
        for cell in variants:
            if cell.drive >= self.default_drive:
                return cell.name
        return variants[-1].name

    def _emit_gate(self, module: Module, base: str, input_nets: list[str]) -> str:
        cell_name = self._pick_cell(base)
        out = module.add_net()
        pins = {_PIN_NAMES[i]: net for i, net in enumerate(input_nets)}
        module.add_instance(None, cell_name, inputs=pins, outputs={"Y": out})
        return out

    def _emit_inverter(self, module: Module, net: str) -> str:
        return self._emit_gate(module, "INV", [net])

    def _drive_output(self, module: Module, net: str, port: str) -> None:
        """Connect a computed net to an output port through a driver gate."""
        if self.library.has_base("BUF"):
            cell_name = self._pick_cell("BUF")
            module.add_instance(
                None, cell_name, inputs={"A": net}, outputs={"Y": port}
            )
            return
        # No buffer stocked (impoverished library): back-to-back inverters.
        mid = self._emit_inverter(module, net)
        cell_name = self._pick_cell("INV")
        module.add_instance(None, cell_name, inputs={"A": mid}, outputs={"Y": port})


def map_design(
    design: dict[str, Expr],
    library: CellLibrary,
    name: str = "mapped",
    default_drive: float = 2.0,
) -> Module:
    """Convenience one-shot mapping (see :class:`TechnologyMapper`)."""
    return TechnologyMapper(library, default_drive).map_design(design, name=name)
