"""Speed binning, worst-case quoting, and custom-vs-ASIC speed access.

Section 8.2: "Fabrication plants won't offer ASIC customers the top chip
speed off the production line, as they cannot guarantee a sufficiently
high yield for this to be profitable.  The fabrication plant guarantees
that they can produce an ASIC chip with a certain speed.  This speed is
limited by the worst speeds off the production line, but chips capable of
faster speeds are produced."

The asymmetry modelled here:

* an **ASIC quote** is the frequency nearly every die meets, *after* the
  worst-case PVT corner derating of the library;
* a **custom vendor** bins: it sells every die at (close to) its own
  maximum frequency, including the fast tail;
* Section 8.3's escape hatch -- "if the designers can afford to test
  produced chips and verify correct operation at higher speeds" -- is
  :func:`speed_tested_quote`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tech.corners import CornerType, get_corner
from repro.variation.components import VariationError
from repro.variation.montecarlo import SpeedDistribution


def asic_worst_case_quote(
    distribution: SpeedDistribution,
    yield_target: float = 0.995,
    corner_derate: float | None = None,
) -> float:
    """The frequency an ASIC library would quote.

    The library's worst-case corner derate already folds in the slow
    process file together with low supply and high temperature, so the
    quote is the nominal design frequency over the full derate -- unless
    the actual production floor (the speed ``yield_target`` of dies
    meet) is even lower, in which case the floor binds.
    """
    if not 0.5 <= yield_target < 1.0:
        raise VariationError("yield target must be in [0.5, 1)")
    derate = (
        corner_derate
        if corner_derate is not None
        else get_corner(CornerType.WORST_CASE).delay_derate
    )
    if derate < 1.0:
        raise VariationError("corner derate cannot be below 1")
    process_floor = distribution.percentile(100.0 * (1.0 - yield_target))
    return min(distribution.nominal_mhz / derate, process_floor)


def speed_tested_quote(
    distribution: SpeedDistribution,
    ship_percentile: float = 25.0,
    test_margin: float = 1.10,
) -> float:
    """Shippable speed with at-speed testing of every part.

    Section 8.3: testing "may allow a 30% to 40% improvement in speed
    over worst-case speeds".  Tested parts run at their own measured
    speed with a modest guard band instead of the blanket PVT corner;
    we report a conservative shipping grade (the ``ship_percentile``-th
    slowest die) rather than the median.
    """
    if test_margin < 1.0:
        raise VariationError("test margin cannot be below 1")
    return distribution.percentile(ship_percentile) / test_margin


@dataclass(frozen=True)
class SpeedBin:
    """One marketable speed grade.

    Attributes:
        frequency_mhz: the grade's rated frequency.
        fraction: fraction of the population landing in this bin.
    """

    frequency_mhz: float
    fraction: float


def bin_population(
    distribution: SpeedDistribution, bin_edges_mhz: list[float]
) -> list[SpeedBin]:
    """Assign dies to speed grades (custom-vendor binning).

    Each die sells at the fastest grade it meets; dies below the lowest
    grade are scrap (reported as a 0-frequency bin).
    """
    edges = sorted(bin_edges_mhz)
    if not edges or any(e <= 0 for e in edges):
        raise VariationError("bin edges must be positive")
    freqs = distribution.frequencies_mhz
    bins = []
    scrap = float(np.mean(freqs < edges[0]))
    if scrap > 0:
        bins.append(SpeedBin(frequency_mhz=0.0, fraction=scrap))
    for i, edge in enumerate(edges):
        upper = edges[i + 1] if i + 1 < len(edges) else float("inf")
        fraction = float(np.mean((freqs >= edge) & (freqs < upper)))
        bins.append(SpeedBin(frequency_mhz=edge, fraction=fraction))
    return bins


def custom_flagship_frequency(
    distribution: SpeedDistribution, flagship_yield: float = 0.02
) -> float:
    """The headline custom bin: met by only the fastest few percent.

    Section 8: "the fastest speeds produced in a plant may be 20% to 40%
    faster, but without sufficient yield for low cost ASIC use."
    """
    if not 0.0 < flagship_yield <= 0.5:
        raise VariationError("flagship yield must be in (0, 0.5]")
    return distribution.percentile(100.0 * (1.0 - flagship_yield))


@dataclass(frozen=True)
class AccessGap:
    """The Section 8 decomposition for one die population.

    Attributes:
        asic_quote_mhz: worst-case-corner library quote.
        tested_mhz: at-speed-tested ASIC quote.
        typical_mhz: median die frequency.
        flagship_mhz: fastest marketable custom bin.
    """

    asic_quote_mhz: float
    tested_mhz: float
    typical_mhz: float
    flagship_mhz: float

    @property
    def typical_over_quote(self) -> float:
        """Paper: typical silicon is 60-70% faster than the WC quote."""
        return self.typical_mhz / self.asic_quote_mhz

    @property
    def flagship_over_typical(self) -> float:
        """Paper: fastest bins 20-40% faster than typical."""
        return self.flagship_mhz / self.typical_mhz

    @property
    def flagship_over_quote(self) -> float:
        """Paper: overall ~90% faster than the worst-case ASIC quote."""
        return self.flagship_mhz / self.asic_quote_mhz

    @property
    def tested_over_quote(self) -> float:
        """Paper: speed testing buys 30-40% over worst case."""
        return self.tested_mhz / self.asic_quote_mhz


def access_gap(distribution: SpeedDistribution) -> AccessGap:
    """Compute the full Section 8 speed-access decomposition."""
    return AccessGap(
        asic_quote_mhz=asic_worst_case_quote(distribution),
        tested_mhz=speed_tested_quote(distribution),
        typical_mhz=distribution.median_mhz,
        flagship_mhz=custom_flagship_frequency(distribution),
    )
