"""E6 -- Section 5: floorplanning and placement, up to 25%.

Two measurements of the same claim:

* the BACPAC-style analytical comparison the paper ran (critical path
  localised in a module vs crossing a 100 mm^2 die);
* a netlist-level comparison through our placer: careful vs scattered
  placement of the same design, timed with wire parasitics.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder
from repro.physical import ChipWireModel, place
from repro.sta import asic_clock, solve_min_period
from repro.tech import CMOS250_ASIC

BITS = 16


def _measure():
    chip = ChipWireModel(100.0, CMOS250_ASIC)
    logic_44 = 44.0 * CMOS250_ASIC.fo4_delay_ps
    analytic = chip.floorplanning_speedup(logic_44, module_area_mm2=1.0)
    analytic_tight = chip.floorplanning_speedup(
        logic_44, module_area_mm2=0.25
    )

    library = rich_asic_library(CMOS250_ASIC)
    module = kogge_stone_adder(BITS, library)
    clock = asic_clock(40.0 * CMOS250_ASIC.fo4_delay_ps)
    results = {}
    for quality in ("careful", "sloppy"):
        placement = place(module, library, quality=quality, seed=7)
        timing = solve_min_period(
            module, library, clock, wire=placement.parasitics(library)
        )
        results[quality] = (
            timing.min_period_ps, placement.total_wirelength_um()
        )
    return chip, analytic, analytic_tight, results


def test_e6_floorplanning(benchmark):
    chip, analytic, analytic_tight, results = run_once(benchmark, _measure)
    placement_gain = results["sloppy"][0] / results["careful"][0]
    wl_gain = results["sloppy"][1] / results["careful"][1]

    rows = [
        row("cross-chip wire on 100mm2 die", "dominant: ~10-20 FO4",
            chip.cross_chip_delay_ps() / CMOS250_ASIC.fo4_delay_ps,
            8.0, 25.0, fmt="{:.1f} FO4"),
        row("localise 44-FO4 path vs chip-crossing", "up to 25%",
            100 * (analytic - 1.0), 10.0, 35.0, fmt="{:.1f}%"),
        row("  ... with tighter (0.25mm2) module", "up to 25%",
            100 * (analytic_tight - 1.0), 12.0, 40.0, fmt="{:.1f}%"),
        row("placer: careful vs scattered (period)", "same direction",
            100 * (placement_gain - 1.0), 1.0, 60.0, fmt="{:.1f}%"),
        row("placer: wirelength reduction", ">1x", wl_gain, 1.1, 10.0),
    ]

    print()
    print("ablation: analytic speedup vs die area (44-FO4 path, 1 hop)")
    for area in (25.0, 50.0, 100.0, 200.0):
        model = ChipWireModel(area, CMOS250_ASIC)
        speedup = model.floorplanning_speedup(
            44.0 * CMOS250_ASIC.fo4_delay_ps, module_area_mm2=1.0
        )
        print(f"  {area:6.0f} mm2: {100 * (speedup - 1):.1f}%")

    report("E6  Floorplanning and placement (Section 5)", rows)
    for entry in rows:
        assert entry.ok, entry
