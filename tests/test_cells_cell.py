"""Unit tests for repro.cells.cell."""

import pytest

from repro.cells import (
    Cell,
    CellError,
    CellKind,
    InputPin,
    LinearDelayArc,
    LogicFamily,
    SequentialTiming,
)


def make_nand2() -> Cell:
    arc = LinearDelayArc(parasitic_ps=36.0, effort_ps_per_ff=7.5)
    return Cell(
        name="NAND2_X2",
        base_name="NAND2",
        drive=2.0,
        function="~(A & B)",
        inputs={
            "A": InputPin("A", cap_ff=3.2, logical_effort=4 / 3),
            "B": InputPin("B", cap_ff=3.2, logical_effort=4 / 3),
        },
        arcs={"A": arc, "B": arc},
        inverting=True,
    )


def make_dff() -> Cell:
    return Cell(
        name="DFF_X1",
        base_name="DFF",
        drive=1.0,
        function="",
        inputs={
            "D": InputPin("D", cap_ff=2.0),
            "CK": InputPin("CK", cap_ff=1.5),
        },
        output="Q",
        kind=CellKind.FLIP_FLOP,
        sequential=SequentialTiming(setup_ps=100.0, hold_ps=20.0, clk_to_q_ps=150.0),
    )


class TestCombinationalCell:
    def test_delay_and_slew(self):
        cell = make_nand2()
        assert cell.delay_ps("A", 4.0) == pytest.approx(36.0 + 30.0)
        assert cell.output_slew_ps("A", 4.0) > 0
        assert cell.worst_delay_ps(4.0) == pytest.approx(cell.delay_ps("A", 4.0))

    def test_unknown_pin_raises(self):
        cell = make_nand2()
        with pytest.raises(CellError):
            cell.delay_ps("Z", 1.0)
        with pytest.raises(CellError):
            cell.input_cap_ff("Z")

    def test_evaluate_truth_table(self):
        cell = make_nand2()
        for a in (False, True):
            for b in (False, True):
                assert cell.evaluate({"A": a, "B": b}) == (not (a and b))

    def test_evaluate_missing_pin(self):
        with pytest.raises(CellError):
            make_nand2().evaluate({"A": True})

    def test_total_input_cap(self):
        assert make_nand2().total_input_cap_ff() == pytest.approx(6.4)

    def test_function_must_reference_known_pins(self):
        arc = LinearDelayArc(parasitic_ps=1.0, effort_ps_per_ff=1.0)
        with pytest.raises(CellError, match="unknown pins"):
            Cell(
                name="BAD_X1",
                base_name="BAD",
                drive=1.0,
                function="A & Q",
                inputs={"A": InputPin("A", cap_ff=1.0)},
                arcs={"A": arc},
            )

    def test_function_grammar_enforced(self):
        arc = LinearDelayArc(parasitic_ps=1.0, effort_ps_per_ff=1.0)
        with pytest.raises(CellError):
            Cell(
                name="BAD_X1",
                base_name="BAD",
                drive=1.0,
                function="__import__",
                inputs={"A": InputPin("A", cap_ff=1.0)},
                arcs={"A": arc},
            )

    def test_missing_arcs_rejected(self):
        arc = LinearDelayArc(parasitic_ps=1.0, effort_ps_per_ff=1.0)
        with pytest.raises(CellError, match="missing timing arcs"):
            Cell(
                name="NAND2_X1",
                base_name="NAND2",
                drive=1.0,
                function="~(A & B)",
                inputs={
                    "A": InputPin("A", cap_ff=1.0),
                    "B": InputPin("B", cap_ff=1.0),
                },
                arcs={"A": arc},
            )

    def test_load_limit(self):
        cell = make_nand2()
        assert not cell.load_violated(cell.max_load_ff)
        assert cell.load_violated(cell.max_load_ff + 1.0)


class TestSequentialCell:
    def test_overhead(self):
        cell = make_dff()
        assert cell.sequential.overhead_ps == pytest.approx(250.0)
        assert cell.is_sequential

    def test_data_inputs_exclude_clock(self):
        assert make_dff().data_input_names() == ["D"]

    def test_evaluate_rejected(self):
        with pytest.raises(CellError):
            make_dff().evaluate({"D": True, "CK": False})

    def test_sequential_needs_timing(self):
        with pytest.raises(CellError):
            Cell(
                name="DFF_X1",
                base_name="DFF",
                drive=1.0,
                function="",
                inputs={"D": InputPin("D", cap_ff=1.0)},
                kind=CellKind.FLIP_FLOP,
            )

    def test_clock_pin_must_exist(self):
        with pytest.raises(CellError, match="clock pin"):
            Cell(
                name="DFF_X1",
                base_name="DFF",
                drive=1.0,
                function="",
                inputs={"D": InputPin("D", cap_ff=1.0)},
                kind=CellKind.FLIP_FLOP,
                sequential=SequentialTiming(
                    setup_ps=10.0, hold_ps=1.0, clk_to_q_ps=10.0, clock_pin="CK"
                ),
            )

    def test_combinational_cannot_carry_sequential_timing(self):
        arc = LinearDelayArc(parasitic_ps=1.0, effort_ps_per_ff=1.0)
        with pytest.raises(CellError):
            Cell(
                name="INV_X1",
                base_name="INV",
                drive=1.0,
                function="~A",
                inputs={"A": InputPin("A", cap_ff=1.0)},
                arcs={"A": arc},
                sequential=SequentialTiming(
                    setup_ps=1.0, hold_ps=0.0, clk_to_q_ps=1.0, clock_pin="A"
                ),
            )


class TestValidation:
    def test_pin_cap_positive(self):
        with pytest.raises(CellError):
            InputPin("A", cap_ff=0.0)

    def test_drive_positive(self):
        arc = LinearDelayArc(parasitic_ps=1.0, effort_ps_per_ff=1.0)
        with pytest.raises(CellError):
            Cell(
                name="INV_X0",
                base_name="INV",
                drive=0.0,
                function="~A",
                inputs={"A": InputPin("A", cap_ff=1.0)},
                arcs={"A": arc},
            )
