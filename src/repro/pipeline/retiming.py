"""Leiserson-Saxe retiming: moving registers to minimise the clock period.

The second half of Section 4's micro-architecture lever: once registers
exist, *where* they sit determines the critical path.  Custom designers
"balance the logic in pipeline stages after placement, ensuring that the
delays in each stage are close"; retiming is the algorithmic form of that
balancing.

The implementation follows the classic formulation: a retiming graph
``G = (V, E)`` with node propagation delays ``d(v)`` and edge register
weights ``w(e)``.  ``opt_period`` binary-searches the candidate periods
from the W/D matrices, testing each with the FEAS relaxation; a legal
retiming ``r`` transforms ``w_r(u, v) = w(u, v) + r(v) - r(u)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.pipeline.overheads import PipelineError


def make_retiming_graph(
    node_delays: dict[str, float],
    edges: list[tuple[str, str, int]],
) -> nx.DiGraph:
    """Build a retiming graph.

    Args:
        node_delays: propagation delay of each combinational node.
        edges: ``(u, v, weight)`` triples; weight = registers on the edge.
    """
    graph = nx.DiGraph()
    for node, delay in node_delays.items():
        if delay < 0:
            raise PipelineError(f"node {node}: negative delay")
        graph.add_node(node, delay=float(delay))
    for u, v, w in edges:
        if u not in graph or v not in graph:
            raise PipelineError(f"edge ({u}, {v}) references unknown node")
        if w < 0:
            raise PipelineError(f"edge ({u}, {v}): negative weight")
        graph.add_edge(u, v, weight=int(w))
    for cycle in nx.simple_cycles(graph):
        total = sum(
            graph[cycle[i]][cycle[(i + 1) % len(cycle)]]["weight"]
            for i in range(len(cycle))
        )
        if total == 0:
            raise PipelineError(f"zero-weight cycle {cycle}: not retimeable")
    return graph


def clock_period(graph: nx.DiGraph) -> float:
    """Critical-path delay through zero-weight edges (the current period)."""
    zero = nx.DiGraph()
    zero.add_nodes_from(graph.nodes(data=True))
    for u, v, data in graph.edges(data=True):
        if data["weight"] == 0:
            zero.add_edge(u, v)
    period = 0.0
    arrival: dict[str, float] = {}
    for node in nx.topological_sort(zero):
        at = graph.nodes[node]["delay"] + max(
            (arrival[p] for p in zero.predecessors(node)), default=0.0
        )
        arrival[node] = at
        period = max(period, at)
    return period


def retime(graph: nx.DiGraph, r: dict[str, int]) -> nx.DiGraph:
    """Apply a retiming: ``w_r(u, v) = w(u, v) + r(v) - r(u)``.

    Raises:
        PipelineError: if the retiming is illegal (negative weight).
    """
    out = nx.DiGraph()
    out.add_nodes_from(graph.nodes(data=True))
    for u, v, data in graph.edges(data=True):
        w = data["weight"] + r.get(v, 0) - r.get(u, 0)
        if w < 0:
            raise PipelineError(
                f"retiming makes edge ({u}, {v}) weight {w} negative"
            )
        out.add_edge(u, v, weight=w)
    return out


def feasible(graph: nx.DiGraph, period: float) -> dict[str, int] | None:
    """FEAS: find a retiming meeting ``period``, or None.

    Runs |V| - 1 relaxation rounds; after each, nodes whose arrival
    exceeds the period are incremented.
    """
    if period <= 0:
        raise PipelineError("period must be positive")
    r = {node: 0 for node in graph.nodes}
    for _ in range(max(1, len(graph) - 1)):
        current = retime(graph, r)
        arrivals = _arrival_times(current)
        changed = False
        for node, at in arrivals.items():
            if at > period + 1e-9:
                r[node] += 1
                changed = True
        if not changed:
            return r
    current = retime(graph, r)
    if clock_period(current) <= period + 1e-9:
        return r
    return None


def _arrival_times(graph: nx.DiGraph) -> dict[str, float]:
    zero = nx.DiGraph()
    zero.add_nodes_from(graph.nodes)
    for u, v, data in graph.edges(data=True):
        if data["weight"] == 0:
            zero.add_edge(u, v)
    arrival: dict[str, float] = {}
    for node in nx.topological_sort(zero):
        arrival[node] = graph.nodes[node]["delay"] + max(
            (arrival[p] for p in zero.predecessors(node)), default=0.0
        )
    return arrival


@dataclass(frozen=True)
class RetimingResult:
    """Outcome of period-optimal retiming.

    Attributes:
        period: optimal achievable clock period.
        retiming: register-move counts per node.
        graph: the retimed graph.
        original_period: period before retiming.
    """

    period: float
    retiming: dict[str, int]
    graph: nx.DiGraph
    original_period: float

    @property
    def speedup(self) -> float:
        return self.original_period / self.period


def opt_period(graph: nx.DiGraph) -> RetimingResult:
    """Minimum-period retiming by binary search over candidate periods.

    Candidates are the distinct values of the D matrix (maximum path
    delays between register-distance-minimal pairs), per Leiserson-Saxe;
    we binary-search that sorted list with FEAS as the oracle.
    """
    original = clock_period(graph)
    candidates = _candidate_periods(graph)
    lo, hi = 0, len(candidates) - 1
    best: tuple[float, dict[str, int]] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        r = feasible(graph, candidates[mid])
        if r is not None:
            best = (candidates[mid], r)
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise PipelineError("no feasible period found (graph unretimeable)")
    period, r = best
    return RetimingResult(
        period=period,
        retiming=r,
        graph=retime(graph, r),
        original_period=original,
    )


def _candidate_periods(graph: nx.DiGraph) -> list[float]:
    """Distinct achievable periods: the D-matrix entries (W/D matrices).

    Shortest register distance breaks ties toward maximum delay, per the
    classic construction: order edges by (w, -d(u)) and take shortest
    paths.
    """
    nodes = list(graph.nodes)
    big = math.inf
    w_mat = {u: {v: big for v in nodes} for u in nodes}
    d_mat = {u: {v: -big for v in nodes} for u in nodes}
    scale = 1.0 + sum(graph.nodes[n]["delay"] for n in nodes)
    # Shortest path on composite weight w*scale - d(u); then recover.
    comp = nx.DiGraph()
    comp.add_nodes_from(nodes)
    for u, v, data in graph.edges(data=True):
        comp.add_edge(
            u, v, cost=data["weight"] * scale - graph.nodes[u]["delay"]
        )
    for source in nodes:
        try:
            lengths = nx.single_source_bellman_ford_path_length(
                comp, source, weight="cost"
            )
        except nx.NetworkXUnbounded:  # pragma: no cover - guarded earlier
            raise PipelineError("negative cycle in retiming graph") from None
        for target, cost in lengths.items():
            w = math.ceil((cost - 1e-9) / scale)
            w = max(w, 0)
            d = w * scale - cost + graph.nodes[target]["delay"]
            w_mat[source][target] = w
            d_mat[source][target] = d
    periods = {
        d_mat[u][v]
        for u in nodes
        for v in nodes
        if d_mat[u][v] > 0 and d_mat[u][v] != -big
    }
    periods |= {graph.nodes[n]["delay"] for n in nodes}
    return sorted(p for p in periods if p > 0)
