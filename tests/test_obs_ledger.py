"""Tests for the persistent run ledger, regression engine, and renderers."""

import json
import os

import pytest

from repro.obs import ledger, regress, render
from repro.obs.ledger import RunLedger, RunRecord
from repro.obs.regress import Thresholds
from repro.obs import TickClock, Tracer


def make_record(run_id="", kind="flow", fingerprint="fp0", wall_s=1.0,
                stages=None, metrics=None, claims=None, **kwargs):
    return RunRecord(
        kind=kind, label="test.run", fingerprint=fingerprint,
        run_id=run_id, created_s=1.0 if run_id else 0.0,
        git_rev=kwargs.pop("git_rev", "abc123"),
        wall_s=wall_s, stages=stages or [], metrics=metrics or {},
        claims=claims or {}, **kwargs,
    )


def stage(name, wall_s, cache_hit=False, status="ok"):
    return {"name": name, "status": status, "wall_s": wall_s,
            "cache_hit": cache_hit, "fingerprint": f"st-{name}"}


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.json"
        ledger._atomic_write_text(str(target), "hello\n")
        assert target.read_text() == "hello\n"

    def test_overwrites_whole_file(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("a much longer previous payload")
        ledger._atomic_write_text(str(target), "short")
        assert target.read_text() == "short"

    def test_no_temp_litter(self, tmp_path):
        target = tmp_path / "out.json"
        ledger._atomic_write_text(str(target), "x")
        assert os.listdir(tmp_path) == ["out.json"]


class TestRunRecord:
    def test_round_trip(self):
        rec = make_record(run_id="0001", stages=[stage("map", 0.5)],
                          metrics={"a": 1}, claims={"c": {"value": 2.0}})
        clone = RunRecord.from_dict(
            json.loads(json.dumps(rec.to_dict()))
        )
        assert clone == rec

    def test_foreign_schema_rejected(self):
        payload = make_record(run_id="0001").to_dict()
        payload["schema"] = 99
        with pytest.raises(ledger.LedgerError):
            RunRecord.from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ledger.LedgerError):
            RunRecord.from_dict([1, 2, 3])

    def test_stage_summary(self):
        rec = make_record(stages=[
            stage("map", 0.1, cache_hit=True),
            stage("place", 0.2),
            stage("size", 0.3, status="failed"),
        ])
        assert rec.stage_summary() == "3 stages (1 cached, 1 failed)"
        assert make_record().stage_summary() == "-"


class TestRunLedger:
    def test_append_assigns_identity(self, tmp_path):
        led = RunLedger(str(tmp_path / "runs"))
        rec = RunRecord(kind="flow", label="x", fingerprint="f")
        path = led.append(rec)
        assert rec.run_id and rec.created_s > 0
        assert os.path.basename(path) == f"run-{rec.run_id}.json"

    def test_write_list_show_diff_round_trip(self, tmp_path):
        led = RunLedger(str(tmp_path / "runs"))
        first = make_record(stages=[stage("map", 0.1)])
        second = make_record(stages=[stage("map", 0.2)])
        first.run_id = ""
        second.run_id = ""
        led.append(first)
        led.append(second)
        # list: oldest first, both readable
        records = led.records()
        assert [r.run_id for r in records] == [first.run_id,
                                               second.run_id]
        # show: load by unique prefix and by "last"
        assert led.load(first.run_id).run_id == first.run_id
        assert led.load("last").run_id == second.run_id
        # diff: renders the stage delta between the two loaded records
        text = render.diff_runs(led.load(first.run_id), led.load("last"))
        assert "map" in text and "+100%" in text

    def test_load_unknown_and_ambiguous(self, tmp_path):
        led = RunLedger(str(tmp_path / "runs"))
        led.append(make_record(run_id="aa01"))
        led.append(make_record(run_id="aa02"))
        with pytest.raises(ledger.LedgerError):
            led.load("zz")
        with pytest.raises(ledger.LedgerError):
            led.load("aa")
        assert led.load("aa01").run_id == "aa01"

    def test_empty_ledger_load_raises(self, tmp_path):
        with pytest.raises(ledger.LedgerError):
            RunLedger(str(tmp_path / "runs")).load("last")

    def test_corrupt_record_skipped(self, tmp_path):
        led = RunLedger(str(tmp_path / "runs"))
        led.append(make_record(run_id="good"))
        (tmp_path / "runs" / "run-bad.json").write_text("{trunca")
        assert [r.run_id for r in led.records()] == ["good"]

    def test_kind_and_fingerprint_filters(self, tmp_path):
        led = RunLedger(str(tmp_path / "runs"))
        led.append(make_record(run_id="01", kind="flow",
                               fingerprint="a"))
        led.append(make_record(run_id="02", kind="bench",
                               fingerprint="a"))
        led.append(make_record(run_id="03", kind="flow",
                               fingerprint="b"))
        assert len(led.records(kind="flow")) == 2
        assert len(led.records(kind="flow", fingerprint="a")) == 1
        assert led.latest(kind="bench").run_id == "02"


class TestModuleState:
    def test_disabled_record_is_noop(self, tmp_path):
        assert not ledger.enabled()
        assert ledger.record(make_record()) is None
        assert ledger.get_ledger().records() == []

    def test_enabled_record_persists(self):
        ledger.set_enabled(True)
        path = ledger.record(RunRecord(kind="flow", label="x",
                                       fingerprint="f"))
        assert path is not None and os.path.exists(path)
        assert len(ledger.get_ledger().records()) == 1

    def test_configure_overrides_env(self, tmp_path):
        explicit = tmp_path / "elsewhere"
        ledger.configure(str(explicit))
        assert ledger.runs_dir() == str(explicit)
        ledger.configure(None)
        assert ledger.runs_dir() == os.environ[ledger.ENV_DIR]

    def test_buffering_and_adopt(self):
        ledger.enable_buffering()
        ledger.record(RunRecord(kind="flow", label="w", fingerprint="f"))
        buffered = ledger.drain_buffer()
        assert len(buffered) == 1
        assert buffered[0]["run_id"]          # identity assigned worker-side
        assert ledger.drain_buffer() == []    # drained
        assert ledger.get_ledger().records() == []  # nothing on disk yet
        # Parent side: direct mode again, merge the worker batch.
        ledger.set_enabled(True)
        assert ledger.adopt(buffered) == 1
        records = ledger.get_ledger().records()
        assert len(records) == 1
        assert records[0].worker is True
        assert records[0].run_id == buffered[0]["run_id"]

    def test_adopt_skips_malformed(self):
        ledger.set_enabled(True)
        assert ledger.adopt([{"schema": 99}, "nonsense"]) == 0


class TestRegress:
    def test_no_baseline_returns_none(self):
        assert regress.regress([]) is None
        only = make_record(run_id="01")
        assert regress.regress([only]) is None
        other = make_record(run_id="00", fingerprint="different")
        assert regress.regress([other, only]) is None

    def test_identical_runs_pass(self):
        records = [make_record(run_id=f"0{i}", wall_s=1.0,
                               stages=[stage("map", 0.5)])
                   for i in range(3)]
        report = regress.regress(records)
        assert report is not None and report.ok
        assert report.checks >= 2 and report.findings == []

    def test_total_wall_regression_fails(self):
        records = [make_record(run_id="01", wall_s=1.0),
                   make_record(run_id="02", wall_s=2.0)]
        report = regress.regress(records)
        assert not report.ok
        assert report.failures[0].kind == "total_wall"

    def test_absolute_floor_suppresses_noise(self):
        # +100% relative but only 10 ms absolute: under the 20 ms floor.
        records = [make_record(run_id="01", wall_s=0.010),
                   make_record(run_id="02", wall_s=0.020)]
        assert regress.regress(records).ok

    def test_relative_floor_suppresses_large_slow_runs(self):
        # +0.2 s absolute but only +20% relative: under the 50% bar.
        records = [make_record(run_id="01", wall_s=1.0),
                   make_record(run_id="02", wall_s=1.2)]
        assert regress.regress(records).ok

    def test_stage_wall_like_for_like(self):
        # The only prior run of the size stage was a cache replay; the
        # current uncached execution must not be compared against it.
        records = [
            make_record(run_id="01", wall_s=1.0,
                        stages=[stage("size", 0.001, cache_hit=True)]),
            make_record(run_id="02", wall_s=1.0,
                        stages=[stage("size", 0.4)]),
        ]
        report = regress.regress(records)
        assert report.ok
        # An uncached peer exists -> the comparison happens and fails.
        records.insert(0, make_record(run_id="00", wall_s=1.0,
                                      stages=[stage("size", 0.05)]))
        report = regress.regress(records)
        assert [f.kind for f in report.failures] == ["stage_wall"]
        assert report.failures[0].key == "size"

    def test_hit_rate_drop_fails(self):
        records = [
            make_record(run_id="01",
                        metrics={"cache.stage.hit_rate": 0.9}),
            make_record(run_id="02",
                        metrics={"cache.stage.hit_rate": 0.5}),
        ]
        report = regress.regress(records)
        assert [f.kind for f in report.failures] == ["cache_hit_rate"]

    def test_claim_band_escape_fails(self):
        records = [
            make_record(run_id="01",
                        claims={"gap": {"value": 3.0, "lo": 2.0,
                                        "hi": 4.0, "ok": True}}),
            make_record(run_id="02",
                        claims={"gap": {"value": 5.0, "lo": 2.0,
                                        "hi": 4.0, "ok": False}}),
        ]
        report = regress.regress(records)
        assert [f.kind for f in report.failures] == ["claim_band"]

    def test_in_band_drift_warns(self):
        records = [
            make_record(run_id="01",
                        claims={"gap": {"value": 3.0, "lo": 2.0,
                                        "hi": 4.0, "ok": True}}),
            make_record(run_id="02",
                        claims={"gap": {"value": 3.5, "lo": 2.0,
                                        "hi": 4.0, "ok": True}}),
        ]
        report = regress.regress(records)
        assert report.ok                      # warns do not fail the gate
        assert [f.kind for f in report.findings] == ["claim_drift"]
        assert report.findings[0].severity == "warn"

    def test_baseline_is_median_of_last_n(self):
        # One slow outlier among the baselines must not poison the
        # median; and only the last N feed it.
        records = [make_record(run_id=f"{i:02d}", wall_s=w)
                   for i, w in enumerate([9.0, 1.0, 1.0, 5.0, 1.0, 1.0])]
        current = make_record(run_id="99", wall_s=1.1)
        report = regress.regress(
            records + [current], thresholds=Thresholds(baseline_n=5)
        )
        assert report.ok
        assert len(report.baseline_ids) == 5
        assert "00" not in report.baseline_ids  # outside the window

    def test_explicit_current_run(self):
        records = [make_record(run_id="01", wall_s=1.0),
                   make_record(run_id="02", wall_s=3.0),
                   make_record(run_id="03", wall_s=1.0)]
        report = regress.regress(records, current=records[1])
        assert not report.ok   # 02 vs baseline {01}

    def test_render_mentions_findings(self):
        records = [make_record(run_id="01", wall_s=1.0),
                   make_record(run_id="02", wall_s=2.5)]
        report = regress.regress(records)
        text = report.render()
        assert "FAIL" in text and "total_wall" in text
        assert json.dumps(report.to_dict())   # JSON-clean


class TestSpanTreeRendering:
    def _nested_tracer(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("flow.asic"):
            with tracer.span("flow.asic.map"):
                pass
            with tracer.span("flow.asic.size", cached=True):
                pass
        return tracer

    def test_nested_tree_indented(self):
        entries = render.aggregate_spans(self._nested_tracer().finished())
        assert [e["path"] for e in entries] == [
            "flow.asic",
            "flow.asic > flow.asic.map",
            "flow.asic > flow.asic.size",
        ]
        text = render.render_span_entries(entries)
        assert "  flow.asic.map" in text       # depth-1 indent
        assert "[cached]" in text

    def test_adopted_worker_spans_join_the_tree(self):
        tracer = Tracer(clock=TickClock())
        worker = Tracer(clock=TickClock())
        with worker.span("flow.asic"):
            with worker.span("flow.asic.map"):
                pass
        with tracer.span("par.sweep"):
            tracer.adopt(worker.finished())
        entries = render.aggregate_spans(tracer.finished())
        paths = [e["path"] for e in entries]
        assert "par.sweep > flow.asic > flow.asic.map" in paths

    def test_self_time_excludes_children(self):
        entries = render.aggregate_spans(self._nested_tracer().finished())
        root = entries[0]
        assert root["total_ms"] > root["self_ms"]

    def test_waterfall_bars_and_hits(self):
        text = render.render_waterfall([
            stage("map", 0.5),
            stage("size", 0.5, cache_hit=True),
        ])
        assert "stage waterfall (total 1.0000 s)" in text
        lines = text.splitlines()
        assert "#" in lines[1]
        assert lines[2].endswith(" hit")

    def test_render_run_sections(self):
        rec = make_record(
            run_id="01",
            stages=[stage("map", 0.5)],
            metrics={"note.x": 1.0},
            claims={"gap": {"value": 3.0, "lo": 2.0, "hi": 4.0,
                            "ok": True}},
        )
        text = render.render_run(rec)
        assert "run 01" in text
        assert "stage waterfall" in text
        assert "note.x" in text
        assert "gap" in text


class TestFlowLedgerIntegration:
    def _run(self, fault=None):
        from repro.flows import AsicFlowOptions, run_asic_flow

        run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=2,
                                      fault=fault))

    def test_two_runs_share_a_fingerprint(self):
        ledger.set_enabled(True)
        self._run()
        self._run()
        records = ledger.get_ledger().records(kind="flow")
        assert len(records) == 2
        assert records[0].fingerprint == records[1].fingerprint
        assert records[0].run_id < records[1].run_id
        assert {s["name"] for s in records[0].stages} >= {"map", "size"}
        report = regress.regress(records)
        assert report is not None
        assert report.baseline_ids == [records[0].run_id]

    def test_slow_fault_trips_the_gate(self):
        # The acceptance scenario: two clean runs build the baseline,
        # then a slow:size fault run must regress. The fault is a
        # policy field, so the fingerprint still matches the baseline.
        ledger.set_enabled(True)
        self._run()
        self._run()
        self._run(fault="slow:size")
        records = ledger.get_ledger().records(kind="flow")
        assert len({r.fingerprint for r in records}) == 1
        report = regress.regress(records)
        assert not report.ok
        assert any(f.kind == "stage_wall" and f.key == "size"
                   for f in report.failures)

    def test_disabled_by_default_writes_nothing(self):
        self._run()
        assert ledger.get_ledger().records() == []
