"""Unit tests for the circuit substrate: families, domino mapping, noise."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import LogicFamily, domino_library, rich_asic_library
from repro.circuit import (
    DOMINO_PROFILE,
    FamilyError,
    NoiseEnvironment,
    STATIC_PROFILE,
    audit_noise,
    domino_map,
    dual_rail_stimulus,
    is_monotone,
    max_safe_coupling,
    noise_margin_v,
    profile_of,
    sequential_speedup_from_combinational,
    to_negation_normal_form,
)
from repro.synth import (
    SynthesisError,
    map_design,
    parse_expression,
    simulate_combinational,
)
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

RICH = rich_asic_library(CMOS250_ASIC)
DOMINO = domino_library(CMOS250_CUSTOM)


class TestProfiles:
    def test_domino_speed_band(self):
        # Section 7.1: 50-100% faster combinational, ~50% sequential.
        assert 1.5 <= DOMINO_PROFILE.combinational_speedup <= 2.0
        assert DOMINO_PROFILE.sequential_speedup == pytest.approx(1.5, abs=0.1)

    def test_domino_tradeoffs(self):
        assert DOMINO_PROFILE.relative_noise_margin < 1.0
        assert DOMINO_PROFILE.relative_power > 1.0
        assert DOMINO_PROFILE.relative_area < 1.0
        assert DOMINO_PROFILE.requires_monotone
        assert not DOMINO_PROFILE.synthesizable
        assert STATIC_PROFILE.synthesizable

    def test_profile_lookup(self):
        assert profile_of(LogicFamily.DOMINO) is DOMINO_PROFILE

    def test_sequential_dilution(self):
        # 2x combinational with 75% logic fraction -> ~1.6x sequential.
        s = sequential_speedup_from_combinational(2.0, 0.75)
        assert 1.4 < s < 1.7
        # 1.5x combinational -> ~1.3x.
        s = sequential_speedup_from_combinational(1.5, 0.75)
        assert 1.2 < s < 1.45

    def test_dilution_validation(self):
        with pytest.raises(FamilyError):
            sequential_speedup_from_combinational(0.0)
        with pytest.raises(FamilyError):
            sequential_speedup_from_combinational(2.0, 0.0)


class TestNNF:
    def test_pushes_negation(self):
        expr = parse_expression("~(a & b)")
        nnf = to_negation_normal_form(expr)
        assert is_monotone(nnf)

    def test_xor_expanded(self):
        nnf = to_negation_normal_form(parse_expression("a ^ b"))
        assert is_monotone(nnf)

    def test_semantics_preserved(self):
        text = "~((a | ~b) & (c ^ a))"
        expr = parse_expression(text)
        nnf = to_negation_normal_form(expr)
        for bits in range(8):
            env = {
                "a": bool(bits & 1), "b": bool(bits & 2), "c": bool(bits & 4)
            }
            assert nnf.evaluate(env) == expr.evaluate(env)

    def test_non_monotone_detection(self):
        assert not is_monotone(parse_expression("a ^ b"))
        assert not is_monotone(parse_expression("~(a & b)"))
        assert is_monotone(parse_expression("a & ~b"))


class TestDominoMap:
    @pytest.mark.parametrize(
        "text",
        ["a & b", "~(a & b)", "(a ^ b) | c", "~((a | b) & (c | ~d))"],
    )
    def test_domino_map_correct(self, text):
        expr = parse_expression(text)
        module = domino_map({"y": expr}, DOMINO)
        module.assert_well_formed()
        variables = sorted(expr.variables())
        for bits in range(1 << len(variables)):
            single = {v: bool((bits >> i) & 1) for i, v in enumerate(variables)}
            vec = dual_rail_stimulus(single)
            vec = {k: v for k, v in vec.items() if k in module.inputs()}
            out = simulate_combinational(module, DOMINO, vec)
            assert out["y"] == expr.evaluate(single), (text, single)

    def test_all_gates_are_domino(self):
        module = domino_map({"y": parse_expression("(a & b) | ~c")}, DOMINO)
        for inst in module.iter_instances():
            assert DOMINO.get(inst.cell_name).family is LogicFamily.DOMINO

    def test_dual_rail_ports(self):
        module = domino_map({"y": parse_expression("a & ~b")}, DOMINO)
        assert "a" in module.inputs() and "a_n" in module.inputs()
        assert "b_n" in module.inputs()

    def test_static_library_rejected(self):
        with pytest.raises(SynthesisError, match="not a domino"):
            domino_map({"y": parse_expression("a & b")}, RICH)

    def test_constant_rejected(self):
        with pytest.raises(SynthesisError):
            domino_map({"y": parse_expression("a & ~a")}, DOMINO)

    def test_domino_faster_than_static_for_same_function(self):
        from repro.sta import analyze, asic_clock

        text = "(a & b & c & d) | (e & f & g & h)"
        expr = parse_expression(text)
        static_mod = map_design({"y": expr}, RICH)
        domino_mod = domino_map({"y": expr}, DOMINO)
        clk = asic_clock(10000.0)
        r_static = analyze(static_mod, RICH, clk)
        r_domino = analyze(domino_mod, DOMINO, clk)
        # Normalise out the different FO4s: compare in FO4 of each tech.
        static_fo4 = r_static.min_period_ps / CMOS250_ASIC.fo4_delay_ps
        domino_fo4 = r_domino.min_period_ps / CMOS250_CUSTOM.fo4_delay_ps
        assert static_fo4 / domino_fo4 > 1.5


_VARS = ["a", "b", "c"]


@st.composite
def small_expr(draw, depth=0):
    if depth > 2 or (depth > 0 and draw(st.booleans())):
        return draw(st.sampled_from(_VARS))
    kind = draw(st.integers(0, 3))
    left = draw(small_expr(depth=depth + 1))
    right = draw(small_expr(depth=depth + 1))
    if kind == 0:
        return f"~({left})"
    op = {1: "&", 2: "|", 3: "^"}[kind]
    return f"({left} {op} {right})"


@settings(max_examples=30, deadline=None)
@given(small_expr())
def test_domino_map_random_equivalence(text):
    expr = parse_expression(text)
    try:
        module = domino_map({"y": expr}, DOMINO)
    except SynthesisError:
        return  # constant expression
    for bits in range(8):
        single = {v: bool((bits >> i) & 1) for i, v in enumerate(_VARS)}
        vec = dual_rail_stimulus(single)
        vec = {k: v for k, v in vec.items() if k in module.inputs()}
        out = simulate_combinational(module, DOMINO, vec)
        assert out["y"] == expr.evaluate(single)


class TestNoise:
    def test_domino_margin_thinner(self):
        assert noise_margin_v(2.5, LogicFamily.DOMINO) < noise_margin_v(
            2.5, LogicFamily.STATIC
        )

    def test_typical_environment_breaks_domino_not_static(self):
        env = NoiseEnvironment(coupling_fraction=0.15,
                               supply_bounce_fraction=0.05)
        static_mod = map_design({"y": parse_expression("a & b")}, RICH)
        domino_mod = domino_map({"y": parse_expression("a & b")}, DOMINO)
        assert audit_noise(static_mod, RICH, env) == []
        assert audit_noise(domino_mod, DOMINO, env)

    def test_violation_ratio(self):
        env = NoiseEnvironment(coupling_fraction=0.2)
        domino_mod = domino_map({"y": parse_expression("a & b")}, DOMINO)
        violations = audit_noise(domino_mod, DOMINO, env)
        assert all(v.ratio > 1.0 for v in violations)

    def test_max_safe_coupling_ordering(self):
        assert max_safe_coupling(LogicFamily.STATIC) > max_safe_coupling(
            LogicFamily.DOMINO
        )

    def test_environment_validation(self):
        from repro.circuit import NoiseError

        with pytest.raises(NoiseError):
            NoiseEnvironment(coupling_fraction=1.5)
