"""Deterministic process-pool sweep runner.

Fans a list of tasks across worker processes with three guarantees the
Monte Carlo sampler and the design-space surveys rely on:

* **Ordered reduce** -- results come back in task order, whatever order
  the workers finished in.
* **Determinism in the worker count** -- the runner never partitions
  work by worker; callers derive per-task seeds from the *task index*
  (:func:`task_seeds`), so ``workers=1`` and ``workers=8`` produce
  identical outputs.
* **Trace propagation** -- when observability is enabled in the parent,
  each worker records its own spans and ships the finished list back
  with its result; the parent re-roots them under the sweep span via
  :meth:`repro.obs.trace.Tracer.adopt`, so ``--trace`` output stays
  complete under ``--workers N``.

When the run ledger is recording in the parent, workers are switched
into *buffering* mode: run records they would have written (e.g. the
flow records of a design-space sweep point) come back with the results
and are merged into the parent's ledger, marked ``worker=True`` -- one
ledger regardless of worker count.

``workers <= 1`` (or a single task) short-circuits to a plain serial
loop in-process -- no pool, no pickling -- which is also the fallback
the tiny-container CI path exercises before turning workers on.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.obs import instrument as _instrument
from repro.obs import ledger as _ledger


class SweepError(ValueError):
    """Raised for invalid sweep configuration."""


def task_seeds(seed: int, count: int) -> list[int]:
    """Independent per-task RNG seeds derived from one root seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the streams are
    statistically independent and the list depends only on ``(seed,
    count)`` -- never on the worker count or scheduling order.
    """
    if count < 0:
        raise SweepError("seed count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


def _pool_task(payload: tuple) -> tuple[Any, list | None, list | None]:
    """Worker-side wrapper: run one task; capture spans and buffer run
    records if the parent asked for them."""
    fn, task, capture, ledger_on = payload
    if ledger_on:
        _ledger.enable_buffering()
    if capture:
        _instrument.enable(fresh=True)
    result = fn(task)
    spans = obs.get_tracer().finished() if capture else None
    records = _ledger.drain_buffer() if ledger_on else None
    return result, spans, records


def run_sweep(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int = 1,
    label: str = "par.sweep",
) -> list[Any]:
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Args:
        fn: picklable task function (module-level callable).
        tasks: task inputs; materialised up front for ordered dispatch.
        workers: process count; <= 1 runs serially in-process.
        label: span name the sweep is recorded under.

    Returns:
        ``[fn(t) for t in tasks]`` in task order, regardless of
        ``workers``.
    """
    if workers < 0:
        raise SweepError("workers must be non-negative")
    items: Sequence[Any] = list(tasks)
    capture = obs.enabled()
    with obs.span(label, tasks=len(items), workers=max(workers, 1)):
        obs.count("par.sweep.runs")
        obs.count("par.sweep.tasks", len(items))
        if workers <= 1 or len(items) <= 1:
            return [fn(task) for task in items]
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        ledger_on = _ledger.enabled()
        payloads = [(fn, task, capture, ledger_on) for task in items]
        with ctx.Pool(processes=workers) as pool:
            raw = pool.map(_pool_task, payloads)
        results = []
        tracer = obs.get_tracer()
        for result, spans, records in raw:
            results.append(result)
            if spans:
                tracer.adopt(spans)
            if records:
                _ledger.adopt(records)
        return results
