"""The structured-ASIC implementation flow: the gap's middle ground.

The paper frames a 3-8x spectrum between a default ASIC methodology and
full custom.  Structured ASICs -- prefabricated slot-grid masters where
only the personalisation metal is design-specific -- sit between the
endpoints, and this flow prices exactly where: it keeps the ASIC's
standard-cell library and discrete sizing, but swaps continuous
placement for slot assignment on a :class:`~repro.physical.fabric.Fabric`
(buying prefab die area for reduced NRE), inherits the master's
characterised H-tree (8%-class skew, between the 10% ASIC and 5% custom
budgets of Section 4.1), pipelines moderately (2 stages by default),
and quotes at-speed-tested bins rather than the worst-case corner --
structured vendors test the personalised parts (Section 8.3's lever,
already pulled).

Like its siblings, the flow is a declarative stage graph run by the
shared engine and registered in :mod:`repro.flows.registry`; caching,
checkpoint/resume, ``keep_going`` degradation and ledger records come
for free.
"""

from __future__ import annotations

from repro.cells.builder import rich_asic_library
from repro.flows.engine import FlowContext, Stage, StageGraph
from repro.flows.options import StructuredFlowOptions
from repro.flows.registry import Backend, register_backend, run_backend_flow
from repro.flows.results import FlowResult
from repro.physical.clocktree import structured_clock_tree
from repro.physical.fabric import assign_slots, fabric_for
from repro.pipeline.pipeliner import pipeline_module
from repro.robust.degrade import StageRunner, fallback_timing
from repro.robust.guards import (
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.robust.validate import preflight
from repro.sizing.buffering import buffer_high_fanout
from repro.sizing.tilos import total_area_um2
from repro.sta.clocking import (
    ASIC_SKEW_FRACTION,
    STRUCTURED_SKEW_FRACTION,
    Clock,
    structured_clock,
)
from repro.sta.fo4 import fo4_depth, fo4_logic_depth
from repro.sta.sequential import register_boundaries
from repro.tech.process import CMOS250_ASIC, ProcessTechnology
from repro.variation.binning import asic_worst_case_quote, speed_tested_quote
from repro.variation.components import MATURE_PROCESS
from repro.variation.montecarlo import sample_chip_speeds


def _stage_map(ctx: FlowContext) -> None:
    from repro.flows.asic import WORKLOADS

    options = ctx.options
    # Structured masters are personalised from the vendor's full cell
    # menu; there is no impoverished-library variant to fall back to.
    library = rich_asic_library(ctx.tech)
    comb = WORKLOADS[options.workload](options.bits, library)

    if options.pipeline_stages > 1:
        report = pipeline_module(comb, library, options.pipeline_stages)
        module = report.module
        stages = report.stages
    else:
        module = register_boundaries(comb, library)
        stages = 1
    ctx["library"] = library
    ctx["module"] = module
    ctx["stages"] = stages
    ctx["clock"] = structured_clock(20.0 * ctx.tech.fo4_delay_ps)
    ctx.span.set(cells=module.instance_count(), stages=stages,
                 library=library.name)


def _stage_place(ctx: FlowContext) -> None:
    options = ctx.options
    module = ctx["module"]
    library = ctx["library"]
    fabric = fabric_for(module, library,
                        utilization=options.fabric_utilization)
    assignment = assign_slots(
        module, library, fabric, seed=options.seed,
        refine=options.careful_assignment,
    )
    ctx["fabric"] = fabric
    ctx["placement"] = assignment
    ctx["wire"] = assignment.parasitics(library)
    ctx.notes["wirelength_um"] = assignment.total_wirelength_um()
    ctx.notes["fabric_utilization"] = assignment.utilization.overall
    ctx.notes["fabric_slots"] = float(fabric.slot_count)
    ctx.notes["detour_factor"] = assignment.detour_factor
    ctx.span.set(fabric=f"{fabric.rows}x{fabric.cols}",
                 utilization=assignment.utilization.overall,
                 wirelength_um=assignment.total_wirelength_um())


def _recover_place(ctx: FlowContext) -> None:
    # Continuing without parasitics: downstream stages read wire=None,
    # and the finalizer falls back to cell area with no fabric bought.
    ctx.notes["wirelength_um"] = 0.0


def _stage_cts(ctx: FlowContext) -> None:
    library = ctx["library"]
    clock = ctx["clock"]
    if library.has_base("BUF"):
        buffered = buffer_high_fanout(ctx["module"], library, max_fanout=10)
        ctx.notes["buffers_added"] = float(buffered.buffers_added)
        ctx.span.set(buffers_added=buffered.buffers_added)
    fabric = ctx.get("fabric")
    if fabric is not None:
        # Skew comes from the master's geometry -- the prefab tree spans
        # the whole die and taps every sequential site -- clamped to the
        # characterised 8%-class budget (never worse than a synthesised
        # ASIC tree: the master was tuned once, for every design).
        tree = structured_clock_tree(ctx.tech, fabric)
        fraction = min(
            ASIC_SKEW_FRACTION,
            max(STRUCTURED_SKEW_FRACTION,
                tree.skew_ps / clock.period_ps),
        )
        ctx["clock"] = Clock(
            name=clock.name,
            period_ps=clock.period_ps,
            skew_ps=fraction * clock.period_ps,
        )
        ctx.notes["clock_tree_skew_ps"] = tree.skew_ps
        ctx.notes["clock_wirelength_um"] = tree.wirelength_um
    ctx.span.set(skew_fraction=ctx["clock"].skew_fraction)


def _stage_size(ctx: FlowContext) -> None:
    options = ctx.options
    if options.sizing_moves > 0:
        sizing = guarded_size_for_speed(
            ctx["module"], ctx["library"], ctx["clock"],
            wire=ctx.get("wire"), max_moves=options.sizing_moves,
        )
        ctx.notes["sizing_moves"] = float(sizing.moves)
        ctx.notes["sizing_speedup"] = sizing.speedup
        ctx.span.set(moves=sizing.moves, speedup=sizing.speedup,
                     area_growth=sizing.area_growth)


def _stage_sta(ctx: FlowContext) -> None:
    timing = guarded_solve_min_period(
        ctx["module"], ctx["library"], ctx["clock"], wire=ctx.get("wire"),
        use_array=ctx.options.use_array,
        check_array=ctx.options.check_array,
    )
    ctx["timing"] = timing
    ctx.span.set(min_period_ps=timing.min_period_ps,
                 typical_mhz=timing.max_frequency_mhz)


def _recover_sta(ctx: FlowContext) -> None:
    ctx["timing"] = fallback_timing(
        ctx["module"], ctx["library"], ctx["clock"]
    )


def _stage_quote(ctx: FlowContext) -> None:
    options = ctx.options
    typical_mhz = ctx["timing"].max_frequency_mhz
    dist = sample_chip_speeds(typical_mhz, MATURE_PROCESS,
                              count=4000, seed=options.seed)
    if options.speed_test:
        quoted = speed_tested_quote(dist)
        ctx.notes["quote_method"] = 1.0  # 1 = speed tested
    else:
        quoted = asic_worst_case_quote(dist)
        ctx.notes["quote_method"] = 0.0  # 0 = worst-case corner
    ctx["quoted"] = quoted
    ctx.span.set(quoted_mhz=quoted)


def _recover_quote(ctx: FlowContext) -> None:
    ctx["quoted"] = ctx["timing"].max_frequency_mhz
    ctx.notes["quote_method"] = -1.0  # -1 = quote stage degraded


def _preflight_hook(ctx: FlowContext, runner: StageRunner) -> None:
    if runner.keep_going and "module" in ctx:
        runner.diagnostics.extend(preflight(ctx["module"], ctx["library"]))


def _summary_attrs(ctx: FlowContext) -> dict:
    attrs: dict = {}
    if "module" in ctx:
        attrs["cells"] = ctx["module"].instance_count()
    if "timing" in ctx:
        attrs["min_period_ps"] = ctx["timing"].min_period_ps
    if "quoted" in ctx:
        attrs["quoted_mhz"] = ctx["quoted"]
    return attrs


def structured_flow_graph() -> StageGraph:
    """The structured-ASIC flow's declarative stage graph."""
    return StageGraph(
        flow="structured",
        stages=(
            Stage(
                name="map", run=_stage_map, critical=True,
                outputs=("module", "library", "stages", "clock"),
                params=("workload", "bits", "pipeline_stages"),
            ),
            Stage(
                name="place", run=_stage_place,
                inputs=("module", "library"),
                outputs=("placement", "wire", "fabric"),
                params=("fabric_utilization", "careful_assignment",
                        "seed"),
                recover=_recover_place,
            ),
            Stage(
                name="cts", run=_stage_cts,
                inputs=("module", "library", "clock"),
                outputs=("module", "clock"),
            ),
            Stage(
                name="size", run=_stage_size,
                inputs=("module", "library", "clock", "wire"),
                outputs=("module",),
                params=("sizing_moves",),
            ),
            Stage(
                name="sta", run=_stage_sta,
                inputs=("module", "library", "clock", "wire"),
                outputs=("timing",),
                recover=_recover_sta,
            ),
            Stage(
                name="quote", run=_stage_quote,
                inputs=("timing",),
                outputs=("quoted",),
                params=("speed_test", "seed"),
                recover=_recover_quote,
            ),
        ),
        hooks={"cts": _preflight_hook},
        root_attrs=lambda ctx: {"workload": ctx.options.workload,
                                "bits": ctx.options.bits},
        summary_attrs=_summary_attrs,
    )


#: Module-level graph instance the flow entry point and the CLI share.
STRUCTURED_GRAPH = structured_flow_graph()


def finalize_structured(ctx: FlowContext,
                        tech: ProcessTechnology) -> FlowResult:
    """Build the result record from a completed structured flow context.

    Area is the master bought (:attr:`Fabric.die_area_um2`), not the
    cells used -- the structured cost model.  When the place stage was
    degraded away there is no fabric; cell area is the fallback.
    """
    options = ctx.options
    module = ctx["module"]
    timing = ctx["timing"]
    fabric = ctx.get("fabric")
    area = (fabric.die_area_um2 if fabric is not None
            else total_area_um2(module, ctx["library"]))
    return FlowResult(
        name=f"structured_{options.workload}{options.bits}"
             f"_s{ctx['stages']}",
        style="structured",
        technology=tech,
        library_name=ctx["library"].name,
        typical_frequency_mhz=timing.max_frequency_mhz,
        quoted_frequency_mhz=ctx["quoted"],
        min_period_ps=timing.min_period_ps,
        fo4_depth=fo4_depth(timing, tech),
        logic_fo4=fo4_logic_depth(timing, tech),
        overhead_fraction=timing.overhead_fraction(),
        pipeline_stages=ctx["stages"],
        gate_count=module.instance_count(),
        area_um2=area,
        notes=ctx.notes,
        diagnostics=ctx.diagnostics,
        stage_records=ctx.stage_records,
    )


def _cli_options(args, on_error: str) -> StructuredFlowOptions:
    """Build structured options from parsed ``flow`` arguments.

    ``--speed-test`` is accepted but redundant: structured parts are
    bin-tested by default (the class default is already True).
    """
    return StructuredFlowOptions(
        workload=args.workload or "alu",
        bits=args.bits,
        pipeline_stages=args.stages,
        fabric_utilization=args.fabric_utilization,
        sizing_moves=args.sizing_moves,
        seed=args.seed,
        on_error=on_error,
        fault=args.inject_fault,
        use_array=not args.no_array,
        check_array=args.check_array,
    )


def _gap_options(bits: int, sizing_moves: int, target_fo4: float,
                 on_error: str) -> StructuredFlowOptions:
    """The structured design point the ``gap`` comparison runs."""
    del target_fo4  # the custom flow's knob; the fabric fixes the pipe
    return StructuredFlowOptions(bits=bits, sizing_moves=sizing_moves,
                                 on_error=on_error)


#: The registered structured backend.
STRUCTURED_BACKEND = register_backend(Backend(
    name="structured",
    graph=STRUCTURED_GRAPH,
    options_cls=StructuredFlowOptions,
    default_tech=CMOS250_ASIC,
    finalize=finalize_structured,
    default_workload="alu",
    description="structured-ASIC flow: prefab slot fabric, characterised "
                "H-tree, bin-tested quote",
    cli_options=_cli_options,
    gap_options=_gap_options,
))


def run_structured_flow(
    options: StructuredFlowOptions = StructuredFlowOptions(),
    tech: ProcessTechnology = CMOS250_ASIC,
    checkpoint: str | None = None,
    resume: bool = False,
    from_stage: str | None = None,
) -> FlowResult:
    """Run the full structured-ASIC flow and return its result record.

    Args:
        options: flow knobs.
        tech: process technology (the structured master is fabbed on the
            ASIC process; only the methodology differs).
        checkpoint: snapshot the context here after every stage.
        resume: restore completed stages from ``checkpoint``.
        from_stage: with ``resume``, re-run from this stage onward.

    Raises:
        FlowError: for unknown workloads or -- under
            ``on_error="raise"`` -- any stage failure.
    """
    return run_backend_flow(
        STRUCTURED_BACKEND, options, tech, checkpoint=checkpoint,
        resume=resume, from_stage=from_stage,
    )
