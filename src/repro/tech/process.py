"""Process technology models.

This module provides the foundation every other substrate builds on: a
description of a CMOS fabrication process sufficient to drive the delay,
wire, and variation models used throughout the reproduction.

The paper (Section 2) compares designs "in the same processing geometry",
defined as processes with similar design rules, transistor channel lengths
and the same interconnect.  Section 4 (footnotes 1 and 2) supplies the key
calibration rule of thumb used for every FO4 computation in the paper:

    FO4 delay [ns] = 0.5 * Leff [um]

e.g. the IBM 1.0 GHz PowerPC with Leff = 0.15 um has a 75 ps FO4 delay, and
a typical 0.25 um ASIC process with Leff = 0.18 um has a 90 ps FO4 delay.

We express all delays in picoseconds, capacitances in femtofarads,
resistances in ohms, and geometric lengths in micrometres.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field


#: Rule-of-thumb slope from the paper's footnote 1: FO4 [ps] = 500 * Leff [um].
FO4_PS_PER_UM_LEFF = 500.0

#: A fanout-of-four inverter delay expressed in logical-effort units is
#: d = g*h + p = 1*4 + p_inv.  With the conventional parasitic delay
#: p_inv = 1, one FO4 equals 5 tau, where tau is the delay of an ideal
#: parasitic-free inverter driving another identical inverter.
FO4_IN_TAU = 5.0


class TechnologyError(ValueError):
    """Raised for inconsistent or unphysical technology parameters."""


@dataclass(frozen=True)
class InterconnectParameters:
    """Electrical parameters of a metal interconnect stack.

    The values model a single representative routing layer, which is the
    level of abstraction BACPAC-style estimators (Section 5, footnote 3)
    work at.

    Attributes:
        resistance_ohm_per_um: wire resistance per micrometre of length at
            minimum width.
        capacitance_ff_per_um: wire capacitance per micrometre of length at
            minimum width (includes area + fringe + coupling approximation).
        min_width_um: minimum drawn wire width.
        min_spacing_um: minimum spacing between adjacent wires.
        is_copper: aluminium (False, 0.25 um era) or copper (True, 0.18 um
            era such as IBM SA-27E, Section 8.3).
    """

    resistance_ohm_per_um: float
    capacitance_ff_per_um: float
    min_width_um: float = 0.32
    min_spacing_um: float = 0.32
    is_copper: bool = False

    def __post_init__(self) -> None:
        if self.resistance_ohm_per_um <= 0:
            raise TechnologyError("wire resistance must be positive")
        if self.capacitance_ff_per_um <= 0:
            raise TechnologyError("wire capacitance must be positive")
        if self.min_width_um <= 0 or self.min_spacing_um <= 0:
            raise TechnologyError("wire geometry must be positive")

    def wire_resistance(self, length_um: float, width_um: float | None = None) -> float:
        """Total resistance in ohms of a wire of the given length.

        Widening a wire reduces its resistance proportionally (Section 6:
        "wires may be widened to reduce the delays ... by reducing the
        resistance").
        """
        width = self.min_width_um if width_um is None else width_um
        if width < self.min_width_um:
            raise TechnologyError(
                f"wire width {width} um below minimum {self.min_width_um} um"
            )
        return self.resistance_ohm_per_um * length_um * (self.min_width_um / width)

    def wire_capacitance(self, length_um: float, width_um: float | None = None) -> float:
        """Total capacitance in fF of a wire of the given length.

        Widening increases area capacitance but leaves fringe/coupling
        roughly constant; we model the net effect as a square-root growth,
        the standard first-order compromise in wire-sizing literature.
        """
        width = self.min_width_um if width_um is None else width_um
        if width < self.min_width_um:
            raise TechnologyError(
                f"wire width {width} um below minimum {self.min_width_um} um"
            )
        return self.capacitance_ff_per_um * length_um * math.sqrt(width / self.min_width_um)


@dataclass(frozen=True)
class ProcessTechnology:
    """A CMOS process technology node.

    Attributes:
        name: human-readable identifier, e.g. ``"cmos250_asic"``.
        drawn_length_um: drawn (nominal) transistor channel length; the
            "0.25 um" in marketing terms.
        leff_um: effective transistor channel length.  The paper stresses
            (Sections 4, 8.3) that custom vendors push Leff well below the
            drawn length while typical ASIC processes lag: 0.15 um for the
            IBM PowerPC vs 0.18 um assumed for a typical 0.25 um ASIC.
        vdd: nominal supply voltage in volts.
        interconnect: routing-stack electrical parameters.
        gate_cap_ff_per_um: transistor gate capacitance per um of gate width.
        unit_nmos_width_um: width of the NMOS device in a minimum inverter.
        pn_ratio: PMOS/NMOS width ratio in a balanced inverter.
        inverter_parasitic: parasitic delay of an inverter in units of tau
            (the conventional value is 1.0).
    """

    name: str
    drawn_length_um: float
    leff_um: float
    vdd: float
    interconnect: InterconnectParameters
    gate_cap_ff_per_um: float = 2.0
    unit_nmos_width_um: float = 0.6
    pn_ratio: float = 2.0
    inverter_parasitic: float = 1.0

    def __post_init__(self) -> None:
        if self.drawn_length_um <= 0 or self.leff_um <= 0:
            raise TechnologyError("channel lengths must be positive")
        if self.leff_um > self.drawn_length_um:
            raise TechnologyError(
                f"Leff {self.leff_um} um cannot exceed drawn length "
                f"{self.drawn_length_um} um"
            )
        if self.vdd <= 0:
            raise TechnologyError("supply voltage must be positive")
        if self.gate_cap_ff_per_um <= 0 or self.unit_nmos_width_um <= 0:
            raise TechnologyError("device parameters must be positive")
        if self.pn_ratio <= 0:
            raise TechnologyError("P/N ratio must be positive")

    # ------------------------------------------------------------------
    # FO4 calibration (paper footnote 1)
    # ------------------------------------------------------------------

    @property
    def fo4_delay_ps(self) -> float:
        """Fanout-of-four inverter delay, from FO4 [ps] = 500 * Leff [um]."""
        return FO4_PS_PER_UM_LEFF * self.leff_um

    @property
    def tau_ps(self) -> float:
        """The logical-effort delay unit tau, in picoseconds.

        One FO4 = (4 + p_inv) tau, so tau = FO4 / (4 + p_inv).
        """
        return self.fo4_delay_ps / (4.0 + self.inverter_parasitic)

    def fo4_from_period(self, period_ps: float) -> float:
        """Number of FO4 delays that fit in a clock period.

        This is the metric of Section 4: 15 FO4 per cycle in the Alpha
        21264, 13 in the IBM PowerPC, ~44 in the Tensilica Xtensa.
        """
        if period_ps <= 0:
            raise TechnologyError("clock period must be positive")
        return period_ps / self.fo4_delay_ps

    def period_from_fo4(self, fo4_depth: float) -> float:
        """Clock period in ps for a path of the given FO4 depth."""
        if fo4_depth <= 0:
            raise TechnologyError("FO4 depth must be positive")
        return fo4_depth * self.fo4_delay_ps

    def frequency_mhz_from_fo4(self, fo4_depth: float) -> float:
        """Clock frequency in MHz for a path of the given FO4 depth."""
        return 1.0e6 / self.period_from_fo4(fo4_depth)

    # ------------------------------------------------------------------
    # Device electrical helpers used by the cell-library delay models
    # ------------------------------------------------------------------

    @property
    def unit_inverter_width_um(self) -> float:
        """Total (NMOS + PMOS) gate width of the minimum inverter."""
        return self.unit_nmos_width_um * (1.0 + self.pn_ratio)

    @property
    def unit_input_cap_ff(self) -> float:
        """Input capacitance of the minimum (1x) inverter."""
        return self.gate_cap_ff_per_um * self.unit_inverter_width_um

    @property
    def unit_drive_resistance_ohm(self) -> float:
        """Effective switching resistance of the minimum inverter.

        Derived from the FO4 calibration: an FO4 delay is
        ``(4 + p) * R_unit * C_unit`` in the RC model, so
        ``R_unit = tau / C_unit``.
        """
        return self.tau_ps / self.unit_input_cap_ff * 1000.0  # ps/fF -> ohm*1e?

    def scaled(self, **overrides: object) -> "ProcessTechnology":
        """Return a copy of this technology with selected fields replaced."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Reference technologies used throughout the reproduction
# ----------------------------------------------------------------------

#: Aluminium interconnect typical of 0.25 um processes (Section 2).
_AL_025 = InterconnectParameters(
    resistance_ohm_per_um=0.12,
    capacitance_ff_per_um=0.20,
    min_width_um=0.32,
    min_spacing_um=0.32,
    is_copper=False,
)

#: Copper interconnect of late-generation 0.18 um processes such as IBM
#: SA-27E (Section 8.3).
_CU_018 = InterconnectParameters(
    resistance_ohm_per_um=0.075,
    capacitance_ff_per_um=0.19,
    min_width_um=0.24,
    min_spacing_um=0.24,
    is_copper=True,
)

#: A typical 0.25 um ASIC process: Leff = 0.18 um (paper footnote 2),
#: FO4 = 90 ps.
CMOS250_ASIC = ProcessTechnology(
    name="cmos250_asic",
    drawn_length_um=0.25,
    leff_um=0.18,
    vdd=2.5,
    interconnect=_AL_025,
)

#: An aggressive 0.25 um custom process: Leff = 0.15 um as in the IBM
#: 1.0 GHz PowerPC (paper footnote 1), FO4 = 75 ps.
CMOS250_CUSTOM = ProcessTechnology(
    name="cmos250_custom",
    drawn_length_um=0.25,
    leff_um=0.15,
    vdd=1.8,
    interconnect=_AL_025,
)

#: IBM CMOS7S-class 0.18 um process with Leff = 0.12 um, FO4 about 55 ps
#: (Section 8.3 quotes 55 ps against our rule's 60 ps -- the rule of thumb
#: slightly overestimates for copper-interconnect processes).
CMOS180_CUSTOM = ProcessTechnology(
    name="cmos180_custom",
    drawn_length_um=0.18,
    leff_um=0.12,
    vdd=1.8,
    interconnect=_CU_018,
)

#: IBM SA-27E-class ASIC process: 0.18 um drawn, Leff = 0.11 um
#: (Section 8.3), copper interconnect.
CMOS180_ASIC = ProcessTechnology(
    name="cmos180_asic",
    drawn_length_um=0.18,
    leff_um=0.11,
    vdd=1.8,
    interconnect=_CU_018,
)

#: Previous-generation 0.35 um process, used for the "one process
#: generation = 1.5x" comparisons of Section 2.
CMOS350_ASIC = ProcessTechnology(
    name="cmos350_asic",
    drawn_length_um=0.35,
    leff_um=0.25,
    vdd=3.3,
    interconnect=InterconnectParameters(
        resistance_ohm_per_um=0.09,
        capacitance_ff_per_um=0.21,
        min_width_um=0.45,
        min_spacing_um=0.45,
        is_copper=False,
    ),
)

#: All predefined technologies, keyed by name.
TECHNOLOGIES: dict[str, ProcessTechnology] = {
    tech.name: tech
    for tech in (
        CMOS250_ASIC,
        CMOS250_CUSTOM,
        CMOS180_ASIC,
        CMOS180_CUSTOM,
        CMOS350_ASIC,
    )
}


def get_technology(name: str) -> ProcessTechnology:
    """Look up a predefined technology by name.

    Raises:
        KeyError: if no technology with that name is registered, with a
            message listing the available names.
    """
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGIES))
        raise KeyError(f"unknown technology {name!r}; known: {known}") from None
