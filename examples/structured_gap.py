"""The structured-ASIC middle point of the ASIC-custom spectrum.

Runs all three registered implementation styles on the same 8-bit ALU,
prints the N-way gap decomposition against the ASIC baseline, then
opens up the structured backend's physical model: which prefab master
the design bought, how full it is, and what sweeping the target
utilization does to frequency and die area.

Run with::

    python examples/structured_gap.py
"""

import dataclasses

from repro.core import analyze_multi_gap
from repro.flows import (
    StructuredFlowOptions,
    backend_names,
    get_backend,
    run_backend_flow,
    run_structured_flow,
)


def main() -> None:
    print("=" * 72)
    print(f"Registered implementation styles: {', '.join(backend_names())}")
    print("=" * 72)
    for name in backend_names():
        print(f"  {name:<12s} {get_backend(name).description}")
    print()

    print("=" * 72)
    print("One workload, three styles (8-bit ALU)")
    print("=" * 72)
    results = []
    for name in backend_names():
        backend = get_backend(name)
        options = backend.options_cls(
            workload="alu", bits=8, sizing_moves=20
        )
        result = run_backend_flow(backend, options)
        results.append(result)
        print(result.summary())
    print()

    print("=" * 72)
    print("N-way gap decomposition (vs the asic baseline)")
    print("=" * 72)
    gap = analyze_multi_gap(results)
    print(gap.table())
    print()
    structured = gap.report_for("structured")
    custom = gap.report_for("custom")
    print(
        f"structured recovers {structured.total_ratio:.2f}x of the "
        f"{custom.total_ratio:.2f}x custom gap -- clocking and binned "
        "quoting, no logic-style changes"
    )
    print()

    print("=" * 72)
    print("The price: the master bought vs the cells used")
    print("=" * 72)
    base = StructuredFlowOptions(bits=8, sizing_moves=20)
    print(f"{'target util':>12s} {'fabric':>10s} {'overall':>8s} "
          f"{'die um2':>10s} {'quote MHz':>10s}")
    for target in (0.1, 0.3, 0.5, 0.9):
        result = run_structured_flow(
            dataclasses.replace(base, fabric_utilization=target)
        )
        slots = int(result.notes["fabric_slots"])
        edge = int(round(slots ** 0.5))
        print(f"{target:>12.1f} {f'{edge}x{edge}':>10s} "
              f"{result.notes['fabric_utilization']:>8.2f} "
              f"{result.area_um2:>10.0f} "
              f"{result.quoted_frequency_mhz:>10.1f}")
    print()
    print("A slacker target buys a bigger master: more die, longer")
    print("wires, lower frequency; a tight target packs a small master")
    print("and wins both -- until the design stops fitting.")


if __name__ == "__main__":
    main()
