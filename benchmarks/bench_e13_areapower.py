"""E13 -- Section 9's caveat: area and power tell a different story.

"Another important caveat is that because of space restrictions we have
focused exclusively on speed differences ... Viewed from the standpoint
of area our results and conclusions would be significantly different."

We measure that different story: the custom flow's speed levers cost
power (domino activity, bigger transistors, clock load), and the survey
data itself shows it (Alpha: 90 W / 225 mm^2 vs the 6.3 W / 9.8 mm^2
PowerPC and the 4 mm^2 Xtensa).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import (
    custom_library,
    domino_library,
    estimate_power,
    rich_asic_library,
)
from repro.circuit import domino_map
from repro.core import ALPHA_21264A_ENTRY, IBM_POWERPC_ENTRY, XTENSA_ENTRY
from repro.flows import AsicFlowOptions, CustomFlowOptions, run_asic_flow, run_custom_flow
from repro.synth import map_design, parse_expression
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

BITS = 8


def _measure():
    asic = run_asic_flow(AsicFlowOptions(bits=BITS, sizing_moves=15))
    custom = run_custom_flow(
        CustomFlowOptions(bits=BITS, target_cycle_fo4=14.0, sizing_moves=25)
    )

    # Power of the same function, static vs domino, at the same clock.
    text = "(a & b & c & d) | (e & f & g & h)"
    static_lib = rich_asic_library(CMOS250_ASIC)
    dyn_lib = domino_library(CMOS250_CUSTOM)
    static_mod = map_design({"y": parse_expression(text)}, static_lib)
    domino_mod = domino_map({"y": parse_expression(text)}, dyn_lib)
    p_static = estimate_power(static_mod, static_lib, 250.0)
    p_domino = estimate_power(domino_mod, dyn_lib, 250.0)
    return asic, custom, p_static, p_domino


def test_e13_area_power_caveat(benchmark):
    asic, custom, p_static, p_domino = run_once(benchmark, _measure)

    # Survey-level: performance per watt and per area.
    alpha_mhz_w = ALPHA_21264A_ENTRY.frequency_mhz / ALPHA_21264A_ENTRY.power_w
    ppc_mhz_w = IBM_POWERPC_ENTRY.frequency_mhz / IBM_POWERPC_ENTRY.power_w
    alpha_mhz_mm = (
        ALPHA_21264A_ENTRY.frequency_mhz / ALPHA_21264A_ENTRY.area_mm2
    )
    xtensa_mhz_mm = XTENSA_ENTRY.frequency_mhz / XTENSA_ENTRY.area_mm2

    rows = [
        row("Alpha perf/watt vs PowerPC", "speed-first custom pays in W",
            ppc_mhz_w / alpha_mhz_w, 5.0, 40.0),
        row("Xtensa MHz/mm2 vs Alpha", "ASIC wins on area efficiency",
            xtensa_mhz_mm / alpha_mhz_mm, 5.0, 40.0),
        row("custom flow area vs ASIC flow", "custom burns area for speed",
            custom.area_um2 / asic.area_um2, 1.0, 10.0),
        row("domino power vs static (same function)", "domino hungrier",
            p_domino.total_uw / p_static.total_uw, 1.3, 6.0),
        row("domino clock power share", "clock network loaded every cycle",
            100 * p_domino.clock_uw / p_domino.total_uw, 3.0, 60.0,
            fmt="{:.1f}%"),
    ]
    report("E13 The area/power caveat (Section 9)", rows)
    for entry in rows:
        assert entry.ok, entry
