"""Tests for statistical STA: Clark propagation vs Monte Carlo truth."""

import math

import numpy as np
import pytest

from repro.cells import rich_asic_library
from repro.datapath import kogge_stone_adder, ripple_carry_adder
from repro.sta import TimingError, asic_clock, register_boundaries
from repro.sta.statistical import (
    analyze_statistical,
    clark_max,
    monte_carlo_min_period,
)
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(30000.0)


@pytest.fixture(scope="module")
def registered():
    return register_boundaries(kogge_stone_adder(8, RICH), RICH)


class TestClarkMax:
    def test_degenerate_equals_max(self):
        mean, var = clark_max(10.0, 0.0, 4.0, 0.0)
        assert mean == pytest.approx(10.0, abs=1e-6)
        assert var == pytest.approx(0.0, abs=1e-6)

    def test_symmetric_case(self):
        # max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
        mean, var = clark_max(0.0, 1.0, 0.0, 1.0)
        assert mean == pytest.approx(1.0 / math.sqrt(math.pi), rel=1e-6)
        assert var == pytest.approx(1.0 - 1.0 / math.pi, rel=1e-6)

    def test_dominant_input_passes_through(self):
        mean, var = clark_max(100.0, 1.0, 0.0, 1.0)
        assert mean == pytest.approx(100.0, abs=1e-3)
        assert var == pytest.approx(1.0, abs=1e-2)

    def test_against_sampling(self):
        rng = np.random.default_rng(3)
        a = rng.normal(50.0, 4.0, 200000)
        b = rng.normal(47.0, 6.0, 200000)
        sampled = np.maximum(a, b)
        mean, var = clark_max(50.0, 16.0, 47.0, 36.0)
        assert mean == pytest.approx(sampled.mean(), rel=0.01)
        assert math.sqrt(var) == pytest.approx(sampled.std(), rel=0.03)


class TestStatisticalAnalysis:
    def test_zero_sigma_matches_nominal(self, registered):
        report = analyze_statistical(registered, RICH, CLK, sigma_fraction=0.0)
        assert report.sigma_period_ps == pytest.approx(0.0, abs=1e-9)
        assert report.mean_period_ps == pytest.approx(
            report.nominal_period_ps, rel=1e-9
        )

    def test_mean_exceeds_nominal(self, registered):
        # Max-of-paths always shifts the mean upward.
        report = analyze_statistical(registered, RICH, CLK, sigma_fraction=0.08)
        assert report.mean_period_ps > report.nominal_period_ps
        assert 0.0 < report.mean_shift_fraction < 0.25

    def test_sigma_grows_with_gate_sigma(self, registered):
        small = analyze_statistical(registered, RICH, CLK, sigma_fraction=0.03)
        large = analyze_statistical(registered, RICH, CLK, sigma_fraction=0.10)
        assert large.sigma_period_ps > small.sigma_period_ps

    def test_matches_monte_carlo(self, registered):
        sigma = 0.08
        report = analyze_statistical(registered, RICH, CLK,
                                     sigma_fraction=sigma)
        samples = monte_carlo_min_period(
            registered, RICH, CLK, sigma_fraction=sigma, samples=400, seed=7
        )
        assert report.mean_period_ps == pytest.approx(
            samples.mean(), rel=0.03
        )
        # Clark underestimates tail correlations; sigma within 40%.
        assert report.sigma_period_ps == pytest.approx(
            samples.std(), rel=0.4
        )

    def test_yield_curve_monotone(self, registered):
        report = analyze_statistical(registered, RICH, CLK, sigma_fraction=0.08)
        p50 = report.period_at_yield(0.5)
        p99 = report.period_at_yield(0.99)
        assert p99 > p50
        assert report.yield_at_period(p99) == pytest.approx(0.99, abs=0.01)
        assert report.yield_at_period(p50) == pytest.approx(0.50, abs=0.01)

    def test_longer_paths_larger_relative_mean_shift_than_sigma(self):
        # Independent per-gate variation averages out along a path
        # (sigma/mean shrinks ~1/sqrt(depth)) but the max over parallel
        # paths shifts the mean up: the canonical SSTA result.
        from repro.sta import Clock

        # Zero-skew clock so the (deterministic) skew does not dominate
        # the relative numbers.
        clk = Clock("c", 30000.0)
        short = register_boundaries(ripple_carry_adder(2, RICH), RICH)
        long = register_boundaries(ripple_carry_adder(16, RICH), RICH)
        r_short = analyze_statistical(short, RICH, clk, sigma_fraction=0.08)
        r_long = analyze_statistical(long, RICH, clk, sigma_fraction=0.08)
        rel_sigma_short = r_short.sigma_period_ps / r_short.mean_period_ps
        rel_sigma_long = r_long.sigma_period_ps / r_long.mean_period_ps
        assert rel_sigma_long < rel_sigma_short

    def test_validation(self, registered):
        with pytest.raises(TimingError):
            analyze_statistical(registered, RICH, CLK, sigma_fraction=0.7)
        with pytest.raises(TimingError):
            monte_carlo_min_period(registered, RICH, CLK, samples=0)
        report = analyze_statistical(registered, RICH, CLK)
        with pytest.raises(TimingError):
            report.period_at_yield(1.5)
