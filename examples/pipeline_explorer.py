"""Pipeline explorer: Section 4's micro-architecture lever, hands on.

Slices a real netlist into ever more pipeline stages and measures the
achieved clock with the STA engine; overlays the paper's N*(1-v)
arithmetic; runs the CPI model to find where deeper pipelining stops
paying; and retimes a small sequential system with the Leiserson-Saxe
solver.

Run with::

    python examples/pipeline_explorer.py
"""

from repro.cells import rich_asic_library
from repro.datapath import ripple_carry_adder
from repro.pipeline import (
    MicroArchitecture,
    TYPICAL_WORKLOAD,
    clock_period,
    ideal_pipeline_speedup,
    make_retiming_graph,
    opt_period,
    pipeline_module,
)
from repro.sta import asic_clock, fo4_depth, solve_min_period
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

BITS = 12


def netlist_sweep() -> None:
    library = rich_asic_library(CMOS250_ASIC)
    clock = asic_clock(40.0 * CMOS250_ASIC.fo4_delay_ps)
    print(f"{'stages':>7s} {'MHz':>8s} {'FO4/cycle':>10s} {'speedup':>8s} "
          f"{'paper N(1-v)':>13s} {'regs':>6s}")
    base_mhz = None
    for stages in (1, 2, 3, 4, 6, 8):
        report = pipeline_module(
            ripple_carry_adder(BITS, library), library, stages
        )
        timing = solve_min_period(report.module, library, clock)
        mhz = timing.max_frequency_mhz
        if base_mhz is None:
            base_mhz = mhz
        paper = ideal_pipeline_speedup(stages, 0.30)
        print(
            f"{report.stages:>7d} {mhz:>8.1f} "
            f"{fo4_depth(timing, CMOS250_ASIC):>10.1f} "
            f"{mhz / base_mhz:>7.2f}x {paper:>12.2f}x "
            f"{report.registers_added:>6d}"
        )


def cpi_knee() -> None:
    print(f"{'stages':>7s} {'MHz':>8s} {'CPI':>6s} {'MIPS':>9s}")
    for stages in (2, 4, 6, 8, 12, 16, 24, 32):
        arch = MicroArchitecture(
            name=f"d{stages}", stages=stages,
            logic_depth_fo4=72.0, per_stage_overhead_fo4=3.0,
        )
        mhz = arch.frequency_mhz(CMOS250_CUSTOM)
        cpi = arch.cpi(TYPICAL_WORKLOAD)
        print(f"{stages:>7d} {mhz:>8.1f} {cpi:>6.2f} {mhz / cpi:>9.1f}")


def retiming_demo() -> None:
    delays = {
        "host": 0.0,
        "c1": 3.0, "c2": 3.0, "c3": 3.0, "c4": 3.0,
        "a1": 7.0, "a2": 7.0, "a3": 7.0,
    }
    edges = [
        ("host", "c1", 2),
        ("c1", "c2", 1), ("c2", "c3", 1), ("c3", "c4", 1),
        ("c1", "a1", 0), ("c2", "a1", 0),
        ("a1", "a2", 0), ("c3", "a2", 0),
        ("a2", "a3", 0), ("c4", "a3", 0),
        ("a3", "host", 0),
    ]
    graph = make_retiming_graph(delays, edges)
    result = opt_period(graph)
    print(f"correlator before retiming: period {clock_period(graph):.0f}")
    print(f"after Leiserson-Saxe:       period {result.period:.0f} "
          f"({result.speedup:.2f}x)")
    moves = {k: v for k, v in result.retiming.items() if v}
    print(f"register moves: {moves}")


def main() -> None:
    print("1. Pipelining a real netlist (12-bit ripple adder):")
    netlist_sweep()
    print()
    print("2. Where deeper pipelines stop paying (CPI model):")
    cpi_knee()
    print()
    print("3. Balancing registers with retiming:")
    retiming_demo()


if __name__ == "__main__":
    main()
