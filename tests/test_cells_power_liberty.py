"""Unit tests for repro.cells.power and repro.cells.liberty_io."""

import pytest

from repro.cells import (
    PowerReport,
    estimate_power,
    from_liberty,
    poor_asic_library,
    power_ratio_domino_vs_static,
    rich_asic_library,
    switching_energy_fj,
    switching_power_uw,
    to_liberty,
)
from repro.netlist import Module
from repro.tech import CMOS250_ASIC


@pytest.fixture(scope="module")
def rich():
    return rich_asic_library(CMOS250_ASIC)


def inv_chain(library, n=4) -> Module:
    m = Module("chain")
    prev = m.add_input("a")
    inv = library.smallest("INV").name
    for i in range(n):
        out = f"w{i}"
        m.add_instance(f"i{i}", inv, inputs={"A": prev}, outputs={"Y": out})
        prev = out
    m.add_output("y")
    m.add_instance("last", inv, inputs={"A": prev}, outputs={"Y": "y"})
    return m


class TestSwitchingMath:
    def test_energy_quadratic_in_vdd(self):
        assert switching_energy_fj(10.0, 2.0) == pytest.approx(40.0)
        assert switching_energy_fj(10.0, 1.0) == pytest.approx(10.0)

    def test_power_linear_in_frequency(self):
        p1 = switching_power_uw(10.0, 2.5, 100.0)
        p2 = switching_power_uw(10.0, 2.5, 200.0)
        assert p2 == pytest.approx(2 * p1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            switching_energy_fj(-1.0, 2.5)
        with pytest.raises(ValueError):
            switching_power_uw(1.0, 2.5, -100.0)


class TestNetlistPower:
    def test_power_scales_with_frequency(self, rich):
        m = inv_chain(rich)
        slow = estimate_power(m, rich, 100.0)
        fast = estimate_power(m, rich, 200.0)
        assert fast.dynamic_uw == pytest.approx(2 * slow.dynamic_uw)
        assert fast.leakage_uw == pytest.approx(slow.leakage_uw)

    def test_report_totals(self):
        report = PowerReport(dynamic_uw=100.0, clock_uw=50.0, leakage_uw=10.0)
        assert report.total_uw == pytest.approx(160.0)
        assert report.total_mw == pytest.approx(0.16)

    def test_flops_add_clock_power(self, rich):
        m = inv_chain(rich, 2)
        m_ff = inv_chain(rich, 2)
        m_ff.add_input("clk")
        ff = rich.flip_flop().name
        m_ff.add_instance(
            "ff", ff, inputs={"D": "y", "CK": "clk"}, outputs={"Q": "q"}
        )
        base = estimate_power(m, rich, 100.0)
        with_ff = estimate_power(m_ff, rich, 100.0)
        assert with_ff.clock_uw > base.clock_uw

    def test_domino_power_penalty(self, rich):
        # Same topology mapped to domino burns more power: activity ~1 plus
        # the precharge clock (Section 7.1).
        from repro.cells import domino_library
        from repro.tech import CMOS250_CUSTOM

        dom = domino_library(CMOS250_CUSTOM)
        m_static = Module("s")
        m_static.add_input("a")
        m_static.add_input("b")
        m_static.add_output("y")
        m_static.add_instance(
            "g", "AND2_X1", inputs={"A": "a", "B": "b"}, outputs={"Y": "y"}
        )
        m_domino = Module("d")
        m_domino.add_input("a")
        m_domino.add_input("b")
        m_domino.add_output("y")
        m_domino.add_instance(
            "g", "DAND2_X1", inputs={"A": "a", "B": "b"}, outputs={"Y": "y"}
        )
        p_static = estimate_power(m_static, rich, 250.0)
        p_domino = estimate_power(m_domino, dom, 250.0)
        ratio = power_ratio_domino_vs_static(p_static, p_domino)
        assert ratio > 1.5


class TestLibertyRoundTrip:
    def test_round_trip_preserves_cells(self, rich):
        text = to_liberty(rich)
        back = from_liberty(text)
        assert len(back) == len(rich)
        assert back.bases() == rich.bases()

    def test_round_trip_preserves_timing(self, rich):
        back = from_liberty(to_liberty(rich))
        for name in ("NAND2_X4", "XOR2_X1", "AOI21_X8"):
            orig = rich.get(name)
            copy = back.get(name)
            assert copy.delay_ps("A", 7.0, 20.0) == pytest.approx(
                orig.delay_ps("A", 7.0, 20.0)
            )
            assert copy.input_cap_ff("A") == pytest.approx(orig.input_cap_ff("A"))
            assert copy.inverting == orig.inverting

    def test_round_trip_preserves_sequential(self, rich):
        back = from_liberty(to_liberty(rich))
        orig_ff = rich.flip_flop()
        copy_ff = back.get(orig_ff.name)
        assert copy_ff.sequential.setup_ps == pytest.approx(
            orig_ff.sequential.setup_ps
        )
        assert copy_ff.sequential.clock_pin == orig_ff.sequential.clock_pin
        latch = back.get(rich.latch().name)
        assert latch.sequential.transparent

    def test_poor_library_round_trip(self):
        poor = poor_asic_library(CMOS250_ASIC)
        back = from_liberty(to_liberty(poor))
        assert back.drive_count("NAND2") == 2

    def test_parse_rejects_garbage(self):
        from repro.cells import LibertyError

        with pytest.raises(LibertyError):
            from_liberty("this is not a library")

    def test_functions_survive(self, rich):
        back = from_liberty(to_liberty(rich))
        cell = back.get("MUX2_X1")
        assert cell.evaluate({"A": False, "B": True, "S": True}) is True
