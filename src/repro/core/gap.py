"""Gap analysis: decomposing a *measured* ASIC-custom frequency ratio.

This closes the loop the paper leaves open: instead of asserting factor
sizes, we run both flows (:mod:`repro.flows`) on the same workload and
decompose the measured quoted-frequency ratio *exactly* into

    ratio = cycle-depth factor        (FO4 per cycle: pipelining, logic
                                       design, sizing, wires, skew)
          x technology-access factor  (FO4 delay of the process actually
                                       reachable: Leff, Section 8.3)
          x silicon-quoting factor    (flagship bin vs worst-case quote:
                                       Section 8's variation/accessibility)

since ``f = 1 / (fo4_depth * fo4_delay) * quote_factor``.  The cycle-depth
factor is further attributed additively in FO4 between logic and
sequencing overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.factors import FactorModel, measured_model
from repro.flows.results import FlowResult
from repro.tech.scaling import generations_equivalent


class GapError(ValueError):
    """Raised for inconsistent gap-analysis inputs."""


@dataclass(frozen=True)
class GapReport:
    """Measured decomposition of one ASIC-vs-custom comparison.

    Attributes:
        asic: the ASIC flow result.
        custom: the custom flow result.
        total_ratio: custom quoted frequency over ASIC quoted frequency.
        cycle_depth_factor: ASIC FO4 depth over custom FO4 depth.
        technology_factor: ASIC FO4 delay over custom FO4 delay.
        quoting_factor: custom quote factor over ASIC quote factor.
        logic_depth_ratio: ASIC logic FO4 over custom logic FO4.
        overhead_depth_ratio: ASIC overhead FO4 over custom overhead FO4.
    """

    asic: FlowResult
    custom: FlowResult
    total_ratio: float
    cycle_depth_factor: float
    technology_factor: float
    quoting_factor: float
    logic_depth_ratio: float
    overhead_depth_ratio: float

    def factor_product(self) -> float:
        """Product of the three exact factors (== total_ratio)."""
        return (
            self.cycle_depth_factor
            * self.technology_factor
            * self.quoting_factor
        )

    def gap_in_generations(self) -> float:
        """Measured gap in process generations (Section 2 conversion)."""
        return generations_equivalent(self.total_ratio)

    def as_factor_model(self) -> FactorModel:
        """Measured factors as a :class:`FactorModel` for comparison."""
        return measured_model(
            {
                "microarchitecture": max(1.0, self.cycle_depth_factor),
                "process_variation": max(
                    1.0, self.technology_factor * self.quoting_factor
                ),
            }
        )

    def table(self) -> str:
        """Text table of the decomposition."""
        rows = [
            ("total quoted-frequency ratio", self.total_ratio),
            ("  cycle depth (FO4/cycle)", self.cycle_depth_factor),
            ("    of which logic depth", self.logic_depth_ratio),
            ("    of which sequencing overhead", self.overhead_depth_ratio),
            ("  technology access (FO4 delay)", self.technology_factor),
            ("  silicon quoting (bins vs WC)", self.quoting_factor),
        ]
        lines = [f"{'component':<36s} {'factor':>8s}"]
        for label, value in rows:
            lines.append(f"{label:<36s} {value:>7.2f}x")
        lines.append(
            f"{'equivalent process generations':<36s} "
            f"{self.gap_in_generations():>7.1f}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class MultiGapReport:
    """N-way gap decomposition against a chosen baseline style.

    Every non-baseline style gets the full pairwise
    :class:`GapReport` factor decomposition *versus the baseline*, so
    the two-style analysis is the N=2 special case and the factor
    identities (``total == depth x tech x quoting``) hold per column.

    Attributes:
        baseline: the reference flow result (denominator of every
            ratio).
        others: non-baseline flow results, in input order.
        pairwise: one :class:`GapReport` per entry of ``others``,
            aligned by index (``asic`` field = baseline, ``custom``
            field = the other style -- the report's numerator/
            denominator roles, not the styles' names).
    """

    baseline: FlowResult
    others: tuple[FlowResult, ...]
    pairwise: tuple[GapReport, ...]

    @property
    def results(self) -> tuple[FlowResult, ...]:
        """All results, baseline first."""
        return (self.baseline, *self.others)

    def styles(self) -> list[str]:
        """Style names, baseline first."""
        return [result.style for result in self.results]

    def report_for(self, style: str) -> GapReport:
        """The pairwise report of one non-baseline style vs baseline.

        Raises:
            GapError: for the baseline itself or an unknown style.
        """
        for other, report in zip(self.others, self.pairwise):
            if other.style == style:
                return report
        raise GapError(
            f"no pairwise report for style {style!r}; have "
            f"{[o.style for o in self.others]} vs {self.baseline.style!r}"
        )

    def table(self) -> str:
        """Text table: per-style summary, then factor columns."""
        lines = [
            f"{'style':<12s} {'quoted MHz':>10s} {'FO4':>6s} "
            f"{'process':>12s} {'area um2':>10s}"
        ]
        for result in self.results:
            lines.append(
                f"{result.style:<12s} {result.quoted_frequency_mhz:>10.1f} "
                f"{result.fo4_depth:>6.1f} {result.technology.name:>12s} "
                f"{result.area_um2:>10.0f}"
            )
        lines.append("")
        header = f"{'component (vs ' + self.baseline.style + ')':<36s}"
        for other in self.others:
            header += f" {other.style:>12s}"
        lines.append(header)
        rows = [
            ("total quoted-frequency ratio", "total_ratio"),
            ("  cycle depth (FO4/cycle)", "cycle_depth_factor"),
            ("    of which logic depth", "logic_depth_ratio"),
            ("    of which sequencing overhead", "overhead_depth_ratio"),
            ("  technology access (FO4 delay)", "technology_factor"),
            ("  silicon quoting (bins vs WC)", "quoting_factor"),
        ]
        for label, attr in rows:
            line = f"{label:<36s}"
            for report in self.pairwise:
                line += f" {getattr(report, attr):>11.2f}x"
            lines.append(line)
        line = f"{'equivalent process generations':<36s}"
        for report in self.pairwise:
            line += f" {report.gap_in_generations():>11.1f} "
        lines.append(line.rstrip())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form: per-style results plus pairwise factors."""
        return {
            "baseline": self.baseline.style,
            "styles": {
                result.style: result.to_dict() for result in self.results
            },
            "pairwise": {
                other.style: {
                    "total_ratio": report.total_ratio,
                    "cycle_depth_factor": report.cycle_depth_factor,
                    "technology_factor": report.technology_factor,
                    "quoting_factor": report.quoting_factor,
                    "logic_depth_ratio": report.logic_depth_ratio,
                    "overhead_depth_ratio": report.overhead_depth_ratio,
                    "generations": report.gap_in_generations(),
                }
                for other, report in zip(self.others, self.pairwise)
            },
        }


def analyze_multi_gap(
    results: "list[FlowResult] | tuple[FlowResult, ...]",
    baseline: str = "asic",
) -> MultiGapReport:
    """Decompose the measured gap of N styles against one baseline.

    Args:
        results: one flow result per style (at least two, unique
            styles); order is preserved in the report's columns.
        baseline: style name every other style is compared against.

    Raises:
        GapError: for fewer than two results, duplicate styles, a
            missing baseline, or degenerate frequencies.
    """
    if len(results) < 2:
        raise GapError("gap analysis needs at least two flow results")
    styles = [result.style for result in results]
    if len(set(styles)) != len(styles):
        raise GapError(f"duplicate styles in gap analysis: {styles}")
    by_style = {result.style: result for result in results}
    if baseline not in by_style:
        raise GapError(
            f"baseline style {baseline!r} not among results: {styles}"
        )
    base = by_style[baseline]
    others = tuple(r for r in results if r.style != baseline)
    pairwise = tuple(analyze_gap(base, other) for other in others)
    return MultiGapReport(baseline=base, others=others, pairwise=pairwise)


def analyze_gap(asic: FlowResult, custom: FlowResult) -> GapReport:
    """Decompose the measured gap between two flow results.

    The two-style core the N-way :func:`analyze_multi_gap` is built
    from: the first argument is the baseline (denominator), the second
    the comparison style (numerator), whatever their actual styles.

    Raises:
        GapError: if results are degenerate (zero frequencies).
    """
    if asic.quoted_frequency_mhz <= 0 or custom.quoted_frequency_mhz <= 0:
        raise GapError("flow results must have positive frequencies")
    total = custom.quoted_frequency_mhz / asic.quoted_frequency_mhz
    depth = asic.fo4_depth / custom.fo4_depth
    tech = asic.technology.fo4_delay_ps / custom.technology.fo4_delay_ps
    quoting = custom.quote_factor / asic.quote_factor
    asic_ovh = asic.fo4_depth - asic.logic_fo4
    custom_ovh = custom.fo4_depth - custom.logic_fo4
    return GapReport(
        asic=asic,
        custom=custom,
        total_ratio=total,
        cycle_depth_factor=depth,
        technology_factor=tech,
        quoting_factor=quoting,
        logic_depth_ratio=(
            asic.logic_fo4 / custom.logic_fo4 if custom.logic_fo4 > 0 else 1.0
        ),
        overhead_depth_ratio=(
            asic_ovh / custom_ovh if custom_ovh > 0 else 1.0
        ),
    )
