"""Stage-cache ablation: a shared-prefix sweep with and without caching.

Design-space sweeps are the reproduction's main workload -- the same
netlist surveyed across sizing budgets, quoting policies, pipeline
depths.  Points in such a sweep share their expensive map/place/cts
prefix, and the flow engine's fingerprint cache computes that prefix
once and replays it everywhere else.  This benchmark prices the win:
the same six-point sweep runs cold (cache disabled, every point pays
full price) and warm (cache enabled), and the wall-time ratio must be
at least 2x.  Both runs must also agree bit-for-bit -- the cache is a
pure wall-time optimisation.

Both phase times land in ``BENCH_paperbench.json`` as
``bench.sweep_prefix.uncached.s`` / ``bench.sweep_prefix.cached.s``.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import record_wall, report, row, run_once

from repro.flows import AsicFlowOptions, run_flow_sweep
from repro.flows import cache as stage_cache

#: Six sweep points sharing one map/place/cts prefix: only the sizing
#: budget varies, so per point only size/sta/quote must be recomputed.
POINTS = [
    AsicFlowOptions(bits=8, sizing_moves=moves)
    for moves in (12, 10, 8, 6, 4, 2)
]


def _measure():
    stage_cache.reset()
    stage_cache.set_enabled(False)
    try:
        start = time.perf_counter()
        uncached = run_flow_sweep(POINTS, label="bench.sweep.cold")
        cold_s = time.perf_counter() - start
    finally:
        stage_cache.set_enabled(True)

    stage_cache.reset()
    start = time.perf_counter()
    cached = run_flow_sweep(POINTS, label="bench.sweep.warm")
    warm_s = time.perf_counter() - start
    return uncached, cached, cold_s, warm_s


def test_sweep_cached(benchmark):
    uncached, cached, cold_s, warm_s = run_once(benchmark, _measure)
    record_wall("sweep_prefix.uncached", cold_s)
    record_wall("sweep_prefix.cached", warm_s)
    speedup = cold_s / warm_s

    # The cache changed nothing but the wall clock.
    for a, b in zip(uncached, cached):
        da, db = a.to_dict(), b.to_dict()
        da.pop("stages")
        db.pop("stages")
        assert da == db
    # And the sharing actually happened: every point after the first
    # replays the whole prefix.
    for result in cached[1:]:
        statuses = {r.name: r.status for r in result.stage_records}
        assert statuses["map"] == "cached"
        assert statuses["place"] == "cached"
        assert statuses["cts"] == "cached"

    hit_rate = stage_cache.stats()["hit_rate"]
    print()
    print(f"six-point sweep: cold {cold_s:.3f} s, warm {warm_s:.3f} s "
          f"({speedup:.1f}x), stage-cache hit rate {hit_rate:.0%}")

    rows = [
        row("shared-prefix sweep speedup from stage cache", ">= 2x",
            speedup, 2.0, 1000.0, fmt="{:.1f}x"),
        row("prefix stages replayed from cache", "3 of 6 stages",
            hit_rate, 0.4, 1.0, fmt="{:.0%}"),
    ]
    report("S1  Stage-cached design-space sweeps (engine)", rows)
    for entry in rows:
        assert entry.ok, entry
