"""Logic synthesis substrate: AST, parser, optimiser, mapper, simulator."""

from repro.synth.ast import (
    And,
    Const,
    Expr,
    FALSE,
    Not,
    Or,
    SynthesisError,
    TRUE,
    Var,
    Xor,
    majority3,
    mux,
)
from repro.synth.macros import (
    MacroSpec,
    expand_macro,
    get_macro,
    list_macros,
    register_macro,
)
from repro.synth.fsm import (
    FsmSpec,
    Transition,
    bus_interface_spec,
    next_state_expressions,
    synthesize_fsm,
)
from repro.synth.mapper import TechnologyMapper, map_design
from repro.synth.optimize import (
    balance,
    flatten,
    optimize,
    optimize_design,
    simplify,
)
from repro.synth.parser import parse_design, parse_expression
from repro.synth.resynthesis import (
    ResynthesisReport,
    collapse_into_complex_gates,
    pin_swap_late_arrivals,
    remove_inverter_pairs,
    resynthesize,
)
from repro.synth.simulate import (
    SimulationError,
    exhaustive_equivalent,
    simulate_combinational,
    simulate_sequential,
)

__all__ = [
    "FsmSpec",
    "Transition",
    "bus_interface_spec",
    "next_state_expressions",
    "synthesize_fsm",
    "And",
    "Const",
    "Expr",
    "FALSE",
    "MacroSpec",
    "Not",
    "Or",
    "ResynthesisReport",
    "SimulationError",
    "SynthesisError",
    "TRUE",
    "TechnologyMapper",
    "Var",
    "Xor",
    "balance",
    "collapse_into_complex_gates",
    "exhaustive_equivalent",
    "expand_macro",
    "flatten",
    "get_macro",
    "list_macros",
    "majority3",
    "map_design",
    "mux",
    "optimize",
    "optimize_design",
    "parse_design",
    "parse_expression",
    "pin_swap_late_arrivals",
    "register_macro",
    "remove_inverter_pairs",
    "resynthesize",
    "simplify",
    "simulate_combinational",
    "simulate_sequential",
]
