"""Planar geometry primitives for floorplanning and placement."""

from __future__ import annotations

import math
from dataclasses import dataclass


class GeometryError(ValueError):
    """Raised for degenerate geometric inputs."""


@dataclass(frozen=True)
class Point:
    """A 2-D point in micrometres."""

    x: float
    y: float

    def manhattan_to(self, other: "Point") -> float:
        """L1 distance -- the routing metric of Manhattan wiring."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (lower-left anchored)."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(
                f"rectangle must have positive extent, got "
                f"{self.width} x {self.height}"
            )

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def aspect_ratio(self) -> float:
        """Height over width."""
        return self.height / self.width

    def contains(self, point: Point) -> bool:
        return (
            self.x <= point.x <= self.x + self.width
            and self.y <= point.y <= self.y + self.height
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if interiors intersect (shared edges do not count)."""
        return not (
            self.x + self.width <= other.x
            or other.x + other.width <= self.x
            or self.y + self.height <= other.y
            or other.y + other.height <= self.y
        )

    def moved_to(self, x: float, y: float) -> "Rect":
        return Rect(x, y, self.width, self.height)


def half_perimeter_wirelength(points: list[Point]) -> float:
    """HPWL of a net's pins: the standard placement wirelength estimate."""
    if not points:
        raise GeometryError("net has no pins")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def bounding_box(rects: list[Rect]) -> Rect:
    """Smallest rectangle covering all inputs."""
    if not rects:
        raise GeometryError("no rectangles")
    x0 = min(r.x for r in rects)
    y0 = min(r.y for r in rects)
    x1 = max(r.x + r.width for r in rects)
    y1 = max(r.y + r.height for r in rects)
    return Rect(x0, y0, x1 - x0, y1 - y0)
