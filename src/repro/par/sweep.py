"""Deterministic, fault-tolerant process sweep runner with live events.

Fans a list of tasks across worker processes with three guarantees the
Monte Carlo sampler and the design-space surveys rely on:

* **Ordered reduce** -- results come back in task order, whatever order
  the workers finished in.
* **Determinism in the worker count** -- the runner never partitions
  work by worker; callers derive per-task seeds from the *task index*
  (:func:`task_seeds`), so ``workers=1`` and ``workers=8`` produce
  identical outputs.
* **Trace propagation** -- when observability is enabled in the parent,
  each worker records its own spans and ships the finished list back
  with its result; the parent re-roots them under the sweep span via
  :meth:`repro.obs.trace.Tracer.adopt`, so ``--trace`` output stays
  complete under ``--workers N``.

The pool is a *supervisor*, not a ``multiprocessing.Pool``: the parent
owns one long-lived worker process per slot, dispatches tasks over
duplex pipes, and watches liveness.  A worker that dies mid-task
(segfault, OOM kill, ``os._exit``), wedges past the per-task timeout,
goes silent past the stall timeout, or ships an unpicklable result is
killed and replaced, and its task is re-dispatched under the sweep's
:class:`~repro.robust.retry.RetryPolicy` -- deterministic exponential
backoff, bounded attempts, and quarantine for tasks that exhaust them.
A quarantined task's slot in the ordered results holds a structured
:class:`~repro.robust.retry.TaskFailure` instead of aborting the sweep.
Without a retry policy the first failure propagates, matching the
plain-``Pool`` semantics this runner replaced.

On top of those, the runner is the cross-process transport of the live
telemetry layer (:mod:`repro.obs.live`).  When the live bus is enabled
in the parent (or stall detection is requested), each worker gets its
own bus whose events -- span open/close, flow-stage progress, task
start/done, heartbeats -- are *forwarded over a multiprocessing queue
as they happen*; the parent drains the queue between completion polls
and re-sequences the events into its own bus, so dashboards and JSONL
sinks see worker progress live instead of at ordered-reduce time.  The
result path is unchanged: span adoption and ledger merging still run on
the shipped-back lists, so traces and metrics are identical with the
bus on or off.  The queue is drained in a ``finally:`` with a bounded,
env-overridable grace (:data:`DRAIN_GRACE_ENV`), so the events leading
up to a failure reach sinks too.

Worker liveness rides the same channel: a daemon :class:`~repro.obs.
live.Heartbeat` thread in each worker publishes periodic beacons even
while the worker's main thread is inside a solver, and the parent's
:class:`~repro.obs.live.StallDetector` flags a busy worker gone silent
past the configured timeout.  With a retry policy armed the stall is
*escalated to a retry* -- the worker is killed and the task
re-dispatched; without one it raises a structured
:class:`SweepStallError`, so a wedged worker becomes a diagnostic, not
a hung sweep.

When the run ledger is recording in the parent, workers are switched
into *buffering* mode: run records they would have written (e.g. the
flow records of a design-space sweep point) come back with the results
and are merged into the parent's ledger, marked ``worker=True`` -- one
ledger regardless of worker count.  Records are adopted as each task
*arrives*, not at ordered-reduce time, so a sweep killed halfway keeps
every completed point on disk for ``--resume-sweep``.

``workers <= 1`` (or a single task) short-circuits to a plain serial
loop in-process -- no pool, no pickling -- which still publishes the
same per-task progress events when the bus is on and honours the same
retry/quarantine policy (minus the wall-clock timeout, which needs a
killable process).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as _queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.obs import instrument as _instrument
from repro.obs import ledger as _ledger
from repro.obs import live as _live
from repro.obs import profile as _profile
from repro.obs.events import Event
from repro.robust import faults as _faults
from repro.robust.retry import RetryPolicy, TaskFailure


class SweepError(ValueError):
    """Raised for invalid sweep configuration."""


class SweepStallError(RuntimeError):
    """A pool worker went silent past the stall timeout.

    Attributes:
        reports: structured :class:`~repro.obs.live.StallReport` dicts,
            worst (longest-silent) first.
    """

    def __init__(self, message: str, reports: list[dict]) -> None:
        super().__init__(message)
        self.reports = reports


class SweepWorkerError(RuntimeError):
    """A worker failed in a way that is not the task function raising.

    Raised (absent a retry policy) when a worker process dies mid-task,
    when its result cannot be pickled across the pipe, or when the
    shipped result cannot be unpickled in the parent.
    """


#: Sentinel: "read this knob from repro.obs.live.watch_config()".
_WATCH_DEFAULT = object()

#: Parent-side completion poll interval while draining worker events.
_POLL_S = 0.05

#: Env var overriding the post-sweep event-drain grace period (s).
DRAIN_GRACE_ENV = "REPRO_SWEEP_DRAIN_GRACE_S"

#: Default post-sweep event-drain grace period (s).
DRAIN_GRACE_DEFAULT_S = 0.5

#: Event kinds not forwarded across the worker queue.  Metric deltas
#: fire per observation inside hot solver loops; streaming each one
#: through a multiprocessing queue would cost more than the metric is
#: worth, and worker metrics were never merged into the parent registry
#: anyway.  Everything coarser (spans, stages, tasks, heartbeats) goes
#: through.
FORWARD_SKIP_KINDS = frozenset({"metric.delta"})


def _drain_grace_s() -> float:
    """Post-sweep event-drain grace, env-overridable."""
    raw = os.environ.get(DRAIN_GRACE_ENV)
    if raw is None:
        return DRAIN_GRACE_DEFAULT_S
    try:
        value = float(raw)
    except ValueError:
        return DRAIN_GRACE_DEFAULT_S
    return max(0.0, value)


def task_seeds(seed: int, count: int) -> list[int]:
    """Independent per-task RNG seeds derived from one root seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the streams are
    statistically independent and the list depends only on ``(seed,
    count)`` -- never on the worker count or scheduling order.
    """
    if count < 0:
        raise SweepError("seed count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(2, np.uint64)[0]) for child in children]


# ---------------------------------------------------------------------------
# Attempt visibility.

#: Attempt number of the task currently executing in this process (set
#: in the worker loop and the serial loop around each invocation).
_current_attempt = 0


def current_attempt() -> int:
    """Attempt number (0-based) of the task currently running.

    Task functions that want retry-aware seeding combine this with
    :func:`repro.robust.retry.attempt_seed`; attempt 0 leaves the base
    seed unchanged, so fault-free runs are bit-identical with retries
    on or off.
    """
    return _current_attempt


# ---------------------------------------------------------------------------
# Report types.

@dataclass
class SweepReport:
    """Everything a fault-tolerant sweep did, beyond the results.

    Attributes:
        label: the sweep label.
        tasks: task count.
        workers: requested worker count.
        results: per-task outcomes in task order; a task that exhausted
            its retries holds a :class:`~repro.robust.retry.TaskFailure`
            placeholder at its index.
        failures: the quarantined :class:`TaskFailure` records, by
            task index.
        retries: how many re-dispatches the supervisor performed.
        replays: task indices replayed from precomputed results
            (ledger-backed resume) instead of executed.
        stalls: stall reports the supervisor escalated to retries.
        workers_lost: worker processes that died or were killed and
            replaced.
    """

    label: str
    tasks: int
    workers: int
    results: list[Any] = field(default_factory=list)
    failures: list[TaskFailure] = field(default_factory=list)
    retries: int = 0
    replays: list[int] = field(default_factory=list)
    stalls: list[dict] = field(default_factory=list)
    workers_lost: int = 0

    @property
    def ok(self) -> bool:
        """True when every task produced a real result."""
        return not self.failures


# ---------------------------------------------------------------------------
# Worker side.

def _task_metrics(summarize: Callable[[Any], dict] | None,
                  result: Any) -> dict:
    """Safe ``m.<key>`` attrs for a task.done event."""
    if summarize is None:
        return {}
    try:
        summary = summarize(result)
    except Exception:
        return {}
    return {
        f"m.{key}": float(value)
        for key, value in summary.items()
        if isinstance(value, (int, float))
    }


def _send_reply(conn: Any, reply: tuple) -> None:
    """Ship a reply to the parent; degrade to an error on pickle
    failure.

    ``Connection.send`` pickles before writing, so a failure here never
    leaves a partial message on the pipe -- the fallback reply is the
    first (and only) thing the parent reads for this task.
    """
    try:
        conn.send(reply)
        return
    except Exception as exc:
        kind, index, attempt = reply[0], reply[1], reply[2]
        what = "result" if kind == "done" else "exception"
        fallback = (
            "error", index, attempt,
            SweepWorkerError(
                f"worker could not ship its {what} for task {index}: "
                f"{exc!r}"
            ),
        )
        try:
            conn.send(fallback)
        except Exception:
            # The pipe itself is gone; exiting surfaces as a crash.
            os._exit(1)


def _worker_main(conn: Any, fn: Callable[[Any], Any],
                 summarize: Callable[[Any], dict] | None,
                 event_queue: Any, heartbeat_s: float | None,
                 capture: bool, ledger_on: bool,
                 chaos_spec: str | None, label: str,
                 profile_cfg: tuple[bool, str | None] | None = None) -> None:
    """Worker process main loop: receive tasks, run, reply.

    Replicates the per-task behaviour of the old pool path -- fresh
    span capture and ledger buffering per task, task.start/task.done
    events, heartbeat task tagging -- but stays resident across tasks
    so the supervisor can re-dispatch work to it.  The parent's
    profiling config rides along so per-stage CPU/memory attribution
    keeps working inside pool workers (a spawn-context worker does not
    inherit the parent's module switches).
    """
    global _current_attempt
    _profile.apply(profile_cfg)
    heartbeat = None
    if event_queue is not None:
        bus = _live.enable(source=f"worker-{os.getpid()}", fresh=True)

        def forward(payload: dict) -> None:
            if payload.get("kind") not in FORWARD_SKIP_KINDS:
                event_queue.put_nowait(payload)

        bus.set_forward(forward)
        if heartbeat_s is not None and heartbeat_s > 0:
            heartbeat = _live.Heartbeat(bus, heartbeat_s).start()
    chaos = (_faults.SweepChaos.parse(chaos_spec)
             if chaos_spec is not None else None)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, index, attempt, task = message
        if ledger_on:
            _ledger.enable_buffering()
        if capture:
            _instrument.enable(fresh=True)
        if heartbeat is not None:
            heartbeat.set_task(index)
        _current_attempt = attempt
        _live.emit("task.start", label, index=index, attempt=attempt)
        started = time.perf_counter()
        try:
            if chaos is not None:
                chaos.trip_in_worker(index, attempt)
            result = fn(task)
            if chaos is not None:
                result = chaos.corrupt_result(index, attempt, result)
        except Exception as exc:
            _live.emit("task.done", label, index=index, error=True,
                       attempt=attempt,
                       wall_s=time.perf_counter() - started)
            if heartbeat is not None:
                heartbeat.set_task(None)
            _send_reply(conn, ("error", index, attempt, exc))
            continue
        _live.emit(
            "task.done", label, index=index, attempt=attempt,
            wall_s=time.perf_counter() - started,
            **_task_metrics(summarize, result),
        )
        if heartbeat is not None:
            heartbeat.set_task(None)
        spans = obs.get_tracer().finished() if capture else None
        records = _ledger.drain_buffer() if ledger_on else None
        _send_reply(conn, ("done", index, attempt, result, spans, records))
    try:
        conn.close()
    except Exception:
        pass


# ---------------------------------------------------------------------------
# Parent side.

def _resolve_watch(heartbeat_s: Any, stall_timeout_s: Any):
    """Apply :func:`repro.obs.live.watch_config` defaults to the knobs."""
    config = _live.watch_config()
    if heartbeat_s is _WATCH_DEFAULT:
        heartbeat_s = config.heartbeat_s
    if stall_timeout_s is _WATCH_DEFAULT:
        stall_timeout_s = config.stall_timeout_s
    if stall_timeout_s is not None and stall_timeout_s <= 0:
        raise SweepError("stall timeout must be positive")
    return heartbeat_s, stall_timeout_s


class _StreamMonitor:
    """Parent-side event pump: drain, re-sequence, track progress.

    Owns the per-sweep progress state (done counts, ETA) and the stall
    detector; :meth:`pump` is called between completion polls and after
    the workers drain.  Completion is counted over *unique task
    indices* -- a retried task's extra task.done events do not inflate
    progress -- and the supervisor marks quarantines and replays
    directly so progress converges with the bus on or off.
    """

    def __init__(self, label: str, total: int,
                 stall_timeout_s: float | None) -> None:
        self.label = label
        self.total = total
        self.started = time.monotonic()
        self._seen: set[int] = set()
        self.detector = (
            _live.StallDetector(stall_timeout_s)
            if stall_timeout_s is not None else None
        )

    @property
    def done(self) -> int:
        return len(self._seen)

    def mark(self, index: int) -> None:
        """Count one task index as settled (done/quarantined/replayed)."""
        if index in self._seen:
            return
        self._seen.add(index)
        if not _live.enabled():
            return
        elapsed = time.monotonic() - self.started
        attrs: dict = {"done": self.done, "total": self.total}
        if 0 < self.done < self.total:
            attrs["eta_s"] = (elapsed / self.done
                              * (self.total - self.done))
        _live.emit("sweep.progress", self.label, **attrs)

    def pump(self, event_queue: Any) -> int:
        """Drain pending worker events into the parent bus.

        Returns the number of payloads drained, so :meth:`final_pump`
        can tell a quiet stream from a racing one.
        """
        drained = 0
        while True:
            try:
                payload = event_queue.get_nowait()
            except _queue_mod.Empty:
                break
            except Exception:
                # A worker killed mid-write can corrupt the queue's
                # framing; the stream is advisory, so stop draining
                # rather than poison the sweep.
                break
            drained += 1
            if _live.enabled():
                event = _live.get_bus().ingest(payload)
            else:
                try:
                    event = Event.from_dict(payload)
                except ValueError:
                    event = None
            if event is None:
                continue
            if self.detector is not None:
                self.detector.note(event)
            # Only this sweep's own completions count: a task's flow can
            # run nested serial sweeps whose task.done events share the
            # stream but carry their own label.
            if (event.kind == "task.done" and event.name == self.label
                    and not event.attrs.get("error")):
                self.mark(int(event.attrs.get("index", -1)))
        return drained

    def final_pump(self, event_queue: Any,
                   grace_s: float | None = None,
                   settle_s: float = 0.05) -> None:
        """Drain the tail of the stream after the workers finish.

        Results arriving over the pipes do not imply the event queue is
        empty -- the workers' feeder threads race the result path -- so
        keep draining until the stream has been quiet for ``settle_s``
        or the grace period ends (the stream is advisory; results never
        wait on it past that).  Runs on failure paths too, so sinks see
        the events leading up to a stall or quarantine.
        """
        if grace_s is None:
            grace_s = _drain_grace_s()
        deadline = time.monotonic() + grace_s
        quiet_since = None
        while time.monotonic() < deadline:
            if self.pump(event_queue):
                quiet_since = None
            elif quiet_since is None:
                quiet_since = time.monotonic()
            elif (self.done >= self.total
                    or time.monotonic() - quiet_since >= settle_s):
                break
            time.sleep(0.005)


# ---------------------------------------------------------------------------
# The supervisor.

class _Worker:
    """One supervised worker process and its dispatch pipe."""

    __slots__ = ("process", "conn", "current", "dispatched_at")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.current: tuple[int, int] | None = None  # (index, attempt)
        self.dispatched_at = 0.0

    @property
    def source(self) -> str:
        return f"worker-{self.process.pid}"


class _Supervisor:
    """Parent-side task supervisor: dispatch, collect, recover.

    Owns the worker processes, the pending/backoff queues, and all
    recovery paths: worker death, per-task timeout, stall escalation,
    and unpicklable results.  Results and quarantines are keyed by task
    index; the caller assembles the ordered reduce.
    """

    def __init__(self, ctx: Any, fn: Callable[[Any], Any],
                 items: Sequence[Any], worker_count: int, label: str,
                 summarize: Callable[[Any], dict] | None, capture: bool,
                 ledger_on: bool, event_queue: Any,
                 heartbeat_s: float | None,
                 monitor: _StreamMonitor | None,
                 retry: RetryPolicy | None,
                 chaos_spec: str | None) -> None:
        self.ctx = ctx
        self.fn = fn
        self.items = items
        self.worker_count = worker_count
        self.label = label
        self.summarize = summarize
        self.capture = capture
        self.ledger_on = ledger_on
        self.event_queue = event_queue
        self.heartbeat_s = heartbeat_s
        self.monitor = monitor
        self.retry = retry
        self.chaos_spec = chaos_spec
        self.profile_cfg = _profile.snapshot()
        self.workers: list[_Worker] = []
        self.results: dict[int, Any] = {}
        self.failures: dict[int, TaskFailure] = {}
        self.spans_by_index: dict[int, list] = {}
        self.failure_reports: dict[int, list[dict]] = {}
        self.retries = 0
        self.replays: list[int] = []
        self.stall_reports: list[dict] = []
        self.workers_lost = 0
        self.pending: deque[tuple[int, int]] = deque()
        self.backoff: list[tuple[float, int, int]] = []

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe()
        process = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, self.fn, self.summarize, self.event_queue,
                  self.heartbeat_s, self.capture, self.ledger_on,
                  self.chaos_spec, self.label, self.profile_cfg),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _kill(self, worker: _Worker) -> None:
        """Forcibly stop a worker and close its pipe."""
        try:
            worker.process.terminate()
            worker.process.join(0.5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(0.5)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass

    def _replace(self, position: int, worker: _Worker,
                 reason: str, index: int) -> None:
        """Account a lost worker, forget its stall state, respawn."""
        self.workers_lost += 1
        if self.monitor is not None and self.monitor.detector is not None:
            self.monitor.detector.forget(worker.source)
        _live.emit("worker.lost", self.label, pid=worker.process.pid or 0,
                   reason=reason, index=index)
        if self._remaining() > 0:
            self.workers[position] = self._spawn()

    def _remaining(self) -> int:
        return len(self.items) - len(self.results) - len(self.failures)

    def shutdown(self) -> None:
        """Stop every worker: politely when idle, forcibly otherwise."""
        for worker in self.workers:
            if worker.current is None and worker.process.is_alive():
                try:
                    worker.conn.send(("stop",))
                except Exception:
                    pass
        deadline = time.monotonic() + 1.0
        for worker in self.workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in self.workers:
            if worker.process.is_alive():
                self._kill(worker)
            else:
                try:
                    worker.conn.close()
                except Exception:
                    pass

    # -- main loop ---------------------------------------------------------

    def run(self, precomputed: Mapping[int, Any] | None) -> None:
        total = len(self.items)
        for index in sorted(precomputed or {}):
            if 0 <= index < total and index not in self.results:
                self.results[index] = precomputed[index]
                self.replays.append(index)
                _live.emit("task.replay", self.label, index=index)
                if self.monitor is not None:
                    self.monitor.mark(index)
        self.pending.extend(
            (index, 0) for index in range(total)
            if index not in self.results
        )
        if not self.pending:
            return
        for _ in range(min(self.worker_count, len(self.pending))):
            self.workers.append(self._spawn())
        while self._remaining() > 0:
            now = time.monotonic()
            self._promote_backoff(now)
            self._dispatch(now)
            self._collect()
            if self.monitor is not None and self.event_queue is not None:
                self.monitor.pump(self.event_queue)
            self._reap()
            self._enforce_timeout(time.monotonic())
            self._check_stalls()

    def _promote_backoff(self, now: float) -> None:
        while self.backoff and self.backoff[0][0] <= now:
            _, index, attempt = heapq.heappop(self.backoff)
            self.pending.append((index, attempt))

    def _dispatch(self, now: float) -> None:
        for worker in self.workers:
            if not self.pending:
                return
            if worker.current is not None or not worker.process.is_alive():
                continue
            index, attempt = self.pending.popleft()
            try:
                worker.conn.send(("task", index, attempt,
                                  self.items[index]))
            except Exception:
                if worker.process.is_alive():
                    # The task itself would not pickle: a caller error,
                    # same as the old pool path -- surface it.
                    raise
                self.pending.appendleft((index, attempt))
                continue
            worker.current = (index, attempt)
            worker.dispatched_at = now

    def _collect(self) -> None:
        busy = [w for w in self.workers if w.current is not None]
        if not busy:
            # Nothing in flight: wait out the nearest backoff (or one
            # poll) so the loop does not spin.
            if not self.pending:
                delay = _POLL_S
                if self.backoff:
                    delay = min(
                        delay,
                        max(0.0, self.backoff[0][0] - time.monotonic()),
                    )
                if delay > 0:
                    time.sleep(delay)
            return
        try:
            ready = _mp_connection.wait(
                [w.conn for w in busy], timeout=_POLL_S
            )
        except OSError:
            return
        for conn in ready:
            worker = next(w for w in busy if w.conn is conn)
            if worker.current is None:
                continue
            index, attempt = worker.current
            try:
                message = conn.recv()
            except (EOFError, OSError):
                continue  # pipe died; the reaper handles the process
            except Exception as exc:
                worker.current = None
                self._task_failed(
                    index, attempt, "corrupt",
                    f"result for task {index} could not be decoded: "
                    f"{exc!r}",
                )
                continue
            self._handle_message(worker, message)

    def _handle_message(self, worker: _Worker, message: tuple) -> None:
        kind = message[0]
        if kind == "done":
            _, index, attempt, result, spans, records = message
            worker.current = None
            self.results[index] = result
            if spans:
                self.spans_by_index[index] = spans
            if records:
                # Adopt immediately: a sweep killed later still keeps
                # every completed point on disk for resume.
                _ledger.adopt(records)
            if self.monitor is not None:
                self.monitor.mark(index)
        elif kind == "error":
            _, index, attempt, exc = message
            worker.current = None
            self._task_failed(index, attempt, "error", repr(exc), exc=exc)

    # -- recovery paths ----------------------------------------------------

    def _reap(self) -> None:
        for position, worker in enumerate(list(self.workers)):
            if worker.process.is_alive():
                continue
            # Drain any reply it managed to send before dying.
            try:
                while worker.conn.poll(0):
                    self._handle_message(worker, worker.conn.recv())
            except Exception:
                pass
            current = worker.current
            worker.current = None
            index = current[0] if current else -1
            self._replace(position, worker, "crash", index)
            try:
                worker.conn.close()
            except Exception:
                pass
            if current is not None:
                index, attempt = current
                code = worker.process.exitcode
                self._task_failed(
                    index, attempt, "crash",
                    f"worker pid {worker.process.pid} exited with code "
                    f"{code} while running task {index}",
                )

    def _enforce_timeout(self, now: float) -> None:
        if self.retry is None or self.retry.timeout_s is None:
            return
        for position, worker in enumerate(list(self.workers)):
            if worker.current is None:
                continue
            if now - worker.dispatched_at <= self.retry.timeout_s:
                continue
            index, attempt = worker.current
            worker.current = None
            self._kill(worker)
            self._replace(position, worker, "hang", index)
            self._task_failed(
                index, attempt, "hang",
                f"task {index} exceeded the {self.retry.timeout_s:g} s "
                f"per-task timeout; worker killed",
            )

    def _check_stalls(self) -> None:
        if self.monitor is None or self.monitor.detector is None:
            return
        detector = self.monitor.detector
        stalled = detector.check()
        if not stalled:
            return
        for report in stalled:
            _live.emit("stall", report.source,
                       detail=report.describe(), **report.to_dict())
        if self.retry is None:
            raise SweepStallError(
                f"sweep {self.label!r}: {stalled[0].describe()} "
                f"(stall timeout {detector.timeout_s:g} s; "
                f"{self.monitor.done}/{self.monitor.total} tasks done)",
                reports=[report.to_dict() for report in stalled],
            )
        # Escalate to retry: kill the silent worker, re-dispatch.
        by_source = {w.source: (pos, w)
                     for pos, w in enumerate(self.workers)}
        for report in stalled:
            self.stall_reports.append(report.to_dict())
            detector.forget(report.source)
            entry = by_source.get(report.source)
            if entry is None:
                continue
            position, worker = entry
            if worker.current is None:
                continue
            index, attempt = worker.current
            worker.current = None
            self._kill(worker)
            self._replace(position, worker, "stall", index)
            self._task_failed(
                index, attempt, "stall", report.describe(),
                report=report.to_dict(),
            )

    def _task_failed(self, index: int, attempt: int, kind: str,
                     error: str, exc: BaseException | None = None,
                     report: dict | None = None) -> None:
        attempts = attempt + 1
        if report is not None:
            self.failure_reports.setdefault(index, []).append(report)
        if self.retry is not None and not self.retry.exhausted(attempts):
            delay = self.retry.delay_s(attempts)
            self.retries += 1
            _live.emit("task.retry", self.label, index=index,
                       attempt=attempts, failure=kind, error=error)
            heapq.heappush(
                self.backoff, (time.monotonic() + delay, index, attempts)
            )
            return
        if self.retry is None or not self.retry.quarantine:
            if isinstance(exc, BaseException):
                raise exc
            raise SweepWorkerError(
                f"sweep {self.label!r}: task {index} failed "
                f"({kind}): {error}"
            )
        failure = TaskFailure(
            index=index, label=self.label, kind=kind, error=error,
            attempts=attempts,
            reports=tuple(self.failure_reports.get(index, ())),
        )
        self.failures[index] = failure
        _live.emit("task.quarantine", self.label, index=index,
                   attempts=attempts, failure=kind, error=error)
        if self.monitor is not None:
            self.monitor.mark(index)


# ---------------------------------------------------------------------------
# Serial path.

def _run_serial(fn: Callable[[Any], Any], items: Sequence[Any],
                label: str, summarize: Callable[[Any], dict] | None,
                retry: RetryPolicy | None, chaos_spec: str | None,
                precomputed: Mapping[int, Any] | None) -> SweepReport:
    """In-process loop, publishing the same progress events as a pool.

    Honours the retry/quarantine policy (backoff via ``time.sleep``)
    but not the per-task timeout -- preempting a task needs a killable
    process.  Chaos faults that target the process level (kill-worker,
    hang-task, corrupt-result) are pool-only; only ``crash-task`` (a
    plain raise) applies here.
    """
    global _current_attempt
    chaos = (_faults.SweepChaos.parse(chaos_spec)
             if chaos_spec is not None else None)
    report = SweepReport(label=label, tasks=len(items), workers=1)
    precomputed = dict(precomputed or {})
    streaming = _live.enabled()
    started = time.monotonic()
    results: list[Any] = []

    def progress(done: int) -> None:
        if not streaming:
            return
        attrs: dict = {"done": done, "total": len(items)}
        if 0 < done < len(items):
            elapsed = time.monotonic() - started
            attrs["eta_s"] = elapsed / done * (len(items) - done)
        _live.emit("sweep.progress", label, **attrs)

    for index, task in enumerate(items):
        if index in precomputed:
            results.append(precomputed[index])
            report.replays.append(index)
            _live.emit("task.replay", label, index=index)
            progress(index + 1)
            continue
        attempt = 0
        while True:
            if streaming:
                _live.emit("task.start", label, index=index,
                           attempt=attempt)
            _current_attempt = attempt
            task_started = time.perf_counter()
            try:
                if chaos is not None and chaos.kind == "crash-task":
                    chaos.trip_in_worker(index, attempt)
                result = fn(task)
            except Exception as exc:
                wall_s = time.perf_counter() - task_started
                if streaming:
                    _live.emit("task.done", label, index=index,
                               error=True, attempt=attempt,
                               wall_s=wall_s)
                attempts = attempt + 1
                if retry is not None and not retry.exhausted(attempts):
                    report.retries += 1
                    _live.emit("task.retry", label, index=index,
                               attempt=attempts, failure="error",
                               error=repr(exc))
                    delay = retry.delay_s(attempts)
                    if delay > 0:
                        time.sleep(delay)
                    attempt = attempts
                    continue
                if retry is None or not retry.quarantine:
                    _current_attempt = 0
                    raise
                failure = TaskFailure(
                    index=index, label=label, kind="error",
                    error=repr(exc), attempts=attempts,
                )
                report.failures.append(failure)
                results.append(failure)
                _live.emit("task.quarantine", label, index=index,
                           attempts=attempts, failure="error",
                           error=repr(exc))
                break
            results.append(result)
            if streaming:
                _live.emit(
                    "task.done", label, index=index, attempt=attempt,
                    wall_s=time.perf_counter() - task_started,
                    **_task_metrics(summarize, result),
                )
            break
        _current_attempt = 0
        progress(index + 1)
    report.results = results
    return report


# ---------------------------------------------------------------------------
# Entry points.

def run_sweep_report(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int = 1,
    label: str = "par.sweep",
    summarize: Callable[[Any], dict] | None = None,
    heartbeat_s: Any = _WATCH_DEFAULT,
    stall_timeout_s: Any = _WATCH_DEFAULT,
    retry: RetryPolicy | None = None,
    chaos: str | None = None,
    precomputed: Mapping[int, Any] | None = None,
) -> SweepReport:
    """Map ``fn`` over ``tasks`` and return a full :class:`SweepReport`.

    The fault-tolerant entry point: everything :func:`run_sweep` does,
    plus per-task retry/timeout/quarantine under ``retry``, chaos
    injection under ``chaos``, and replay of ``precomputed`` results
    (ledger-backed resume).

    Args:
        fn: picklable task function (module-level callable).
        tasks: task inputs; materialised up front for ordered dispatch.
        workers: process count; <= 1 runs serially in-process.
        label: span name the sweep is recorded under (also the ``name``
            of its task/progress events).
        summarize: optional picklable ``result -> {key: scalar}`` hook;
            its values ride each ``task.done`` event as ``m.<key>``
            attrs and feed the live running aggregates
            (:func:`repro.obs.live.get_aggregate`).
        heartbeat_s: worker heartbeat interval in seconds; None
            disables the beacon.  Defaults to the process-wide
            :func:`repro.obs.live.watch_config`.
        stall_timeout_s: flag a busy worker silent for this many
            seconds as stalled; with ``retry`` armed the worker is
            killed and the task re-dispatched, otherwise
            :class:`SweepStallError` is raised.  None disables
            detection.  Defaults to the process-wide watch config.
        retry: per-task :class:`~repro.robust.retry.RetryPolicy`; None
            keeps fail-fast semantics (first failure propagates).
        chaos: fault-injection spec (``kill-worker:N``, ``hang-task:N``,
            ``crash-task:N``, ``corrupt-result:N``) tripped on attempt 0
            of task N -- the selftest harness for the recovery paths.
        precomputed: ``{task index: result}`` replayed into the ordered
            results without executing (counted in ``report.replays``).

    Returns:
        A :class:`SweepReport`; ``report.results`` is the ordered
        reduce, with :class:`~repro.robust.retry.TaskFailure`
        placeholders for quarantined tasks.

    Raises:
        SweepStallError: stall detection armed without a retry policy
            and a worker went silent past the timeout.
        SweepWorkerError: a worker died or shipped an undecodable
            result and no retry policy was armed (or the policy has
            ``quarantine=False``).
    """
    if workers < 0:
        raise SweepError("workers must be non-negative")
    heartbeat_s, stall_timeout_s = _resolve_watch(
        heartbeat_s, stall_timeout_s
    )
    if chaos is not None:
        _faults.SweepChaos.parse(str(chaos))  # validate the spelling now
    items: Sequence[Any] = list(tasks)
    capture = obs.enabled()
    with obs.span(label, tasks=len(items), workers=max(workers, 1)):
        obs.count("par.sweep.runs")
        obs.count("par.sweep.tasks", len(items))
        if workers <= 1 or len(items) <= 1:
            return _run_serial(fn, items, label, summarize, retry,
                               chaos, precomputed)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        ledger_on = _ledger.enabled()
        # The streaming transport only exists when someone is watching:
        # with the bus off and no stall policy there is no queue, and
        # workers never touch the live layer.
        streaming = _live.enabled() or stall_timeout_s is not None
        event_queue = ctx.Queue() if streaming else None
        monitor = (_StreamMonitor(label, len(items), stall_timeout_s)
                   if streaming else None)
        supervisor = _Supervisor(
            ctx=ctx, fn=fn, items=items, worker_count=workers,
            label=label, summarize=summarize, capture=capture,
            ledger_on=ledger_on, event_queue=event_queue,
            heartbeat_s=heartbeat_s if streaming else None,
            monitor=monitor, retry=retry, chaos_spec=chaos,
        )
        try:
            supervisor.run(precomputed)
        finally:
            supervisor.shutdown()
            if monitor is not None and event_queue is not None:
                monitor.final_pump(event_queue)
        tracer = obs.get_tracer()
        for index in sorted(supervisor.spans_by_index):
            tracer.adopt(supervisor.spans_by_index[index])
        results = [
            supervisor.results[i] if i in supervisor.results
            else supervisor.failures[i]
            for i in range(len(items))
        ]
        return SweepReport(
            label=label, tasks=len(items), workers=workers,
            results=results,
            failures=[supervisor.failures[i]
                      for i in sorted(supervisor.failures)],
            retries=supervisor.retries,
            replays=sorted(supervisor.replays),
            stalls=list(supervisor.stall_reports),
            workers_lost=supervisor.workers_lost,
        )


def run_sweep(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int = 1,
    label: str = "par.sweep",
    summarize: Callable[[Any], dict] | None = None,
    heartbeat_s: Any = _WATCH_DEFAULT,
    stall_timeout_s: Any = _WATCH_DEFAULT,
    retry: RetryPolicy | None = None,
    chaos: str | None = None,
    precomputed: Mapping[int, Any] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Thin wrapper over :func:`run_sweep_report` returning just the
    ordered results -- ``[fn(t) for t in tasks]`` in task order
    regardless of ``workers``, with
    :class:`~repro.robust.retry.TaskFailure` placeholders at the
    indices of quarantined tasks when a ``retry`` policy is armed.
    """
    return run_sweep_report(
        fn, tasks, workers=workers, label=label, summarize=summarize,
        heartbeat_s=heartbeat_s, stall_timeout_s=stall_timeout_s,
        retry=retry, chaos=chaos, precomputed=precomputed,
    ).results
