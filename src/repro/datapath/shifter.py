"""Barrel shifter generator.

Section 7.2 names barrel shifters among the functions worth providing as
"high-speed custom macro cells"; Section 9 uses the barrel shifter as its
example of an element whose custom advantage looks large in isolation.
The generator builds the classic logarithmic mux structure: stage k
shifts by 2^k when its select bit is high.

Ports: data ``d0..d{n-1}``, shift amount ``sh0..sh{k-1}`` (k = ceil(log2 n)),
outputs ``y0..y{n-1}``.  Left logical shift with zero fill.
"""

from __future__ import annotations

import math

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def barrel_shifter(
    bits: int, library: CellLibrary, name: str = "bshift"
) -> Module:
    """Logarithmic left barrel shifter with zero fill."""
    if bits < 2:
        raise SynthesisError("shifter width must be at least 2")
    stages = max(1, math.ceil(math.log2(bits)))
    module = Module(name)
    data = [module.add_input(f"d{i}") for i in range(bits)]
    selects = [module.add_input(f"sh{k}") for k in range(stages)]
    for i in range(bits):
        module.add_output(f"y{i}")
    emit = Emitter(module, library)

    zero = None
    current = data
    for k in range(stages):
        amount = 1 << k
        sel = selects[k]
        last = k == stages - 1
        nxt: list[str] = []
        for i in range(bits):
            if i - amount >= 0:
                shifted = current[i - amount]
            else:
                if zero is None:
                    ninput = emit.inv(data[0])
                    zero = emit.and2(data[0], ninput)
                shifted = zero
            out = f"y{i}" if last else None
            nxt.append(emit.mux2(current[i], shifted, sel, out=out))
        current = nxt
    return module


def simulate_shifter(
    module: Module, library: CellLibrary, bits: int, value: int, shift: int
) -> int:
    """Drive a shifter netlist with integers; returns the shifted word."""
    from repro.synth.simulate import simulate_combinational

    if value < 0 or value >= (1 << bits):
        raise SynthesisError(f"value out of range for {bits} bits")
    stages = max(1, math.ceil(math.log2(bits)))
    if shift < 0 or shift >= (1 << stages):
        raise SynthesisError(f"shift out of range for {stages} select bits")
    vec = {f"d{i}": bool((value >> i) & 1) for i in range(bits)}
    vec.update({f"sh{k}": bool((shift >> k) & 1) for k in range(stages)})
    out = simulate_combinational(module, library, vec)
    return sum((1 << i) for i in range(bits) if out[f"y{i}"])
