"""Edge-path tests for modules whose error handling deserves coverage:
Verilog I/O failure modes, liberty parsing, power validation, routing,
and report formatting."""

import pytest

from repro.cells import (
    CellError,
    LibertyError,
    from_liberty,
    rich_asic_library,
    to_liberty,
)
from repro.netlist import (
    Module,
    NetlistError,
    from_verilog,
    to_verilog,
)
from repro.physical import CongestionModel, GeometryError
from repro.sta import analyze, asic_clock, format_report
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)


class TestVerilogErrors:
    def test_missing_module_header(self):
        with pytest.raises(NetlistError, match="module header"):
            from_verilog("wire x;", {})

    def test_missing_endmodule(self):
        with pytest.raises(NetlistError, match="endmodule"):
            from_verilog("module m (a); input a;", {})

    def test_unknown_cell(self):
        text = (
            "module m (a, y);\n  input a;\n  output y;\n"
            "  MYSTERY_X1 u1 (.A(a), .Y(y));\nendmodule\n"
        )
        with pytest.raises(NetlistError, match="unknown cell"):
            from_verilog(text, {"INV_X1": {"Y"}})

    def test_comments_stripped(self):
        text = (
            "// header comment\nmodule m (a, y);\n"
            "  input a; /* block\ncomment */\n  output y;\n"
            "  INV_X1 u1 (.A(a), .Y(y));\nendmodule\n"
        )
        module = from_verilog(text, {"INV_X1": {"Y"}})
        assert module.instance_count() == 1

    def test_writer_output_parses_with_library_pinmap(self):
        m = Module("t")
        m.add_input("a")
        m.add_output("y")
        m.add_instance("g", "INV_X1", inputs={"A": "a"}, outputs={"Y": "y"})
        text = to_verilog(m)
        back = from_verilog(text, RICH.output_pin_map())
        assert back.cell_counts() == m.cell_counts()


class TestLibertyErrors:
    def test_nldm_not_serialisable(self):
        nldm = rich_asic_library(CMOS250_ASIC, use_nldm=True)
        with pytest.raises(LibertyError, match="linear"):
            to_liberty(nldm)

    def test_missing_technology(self):
        with pytest.raises(LibertyError, match="technology"):
            from_liberty("library (x) { }")

    def test_unknown_technology(self):
        with pytest.raises(KeyError):
            from_liberty("library (x) { technology : mars_7nm; }")

    def test_bad_kind_value(self):
        text = (
            "library (x) {\n  technology : cmos250_asic;\n"
            "  cell (Z_X1) {\n    kind : quantum;\n  }\n}"
        )
        with pytest.raises(LibertyError):
            from_liberty(text)


class TestPowerValidation:
    def test_estimate_power_empty_module(self):
        from repro.cells import estimate_power

        m = Module("empty")
        m.add_input("a")
        report = estimate_power(m, RICH, 100.0)
        assert report.total_uw == 0.0

    def test_power_ratio_guard(self):
        from repro.cells import PowerReport, power_ratio_domino_vs_static

        zero = PowerReport(0.0, 0.0, 0.0)
        some = PowerReport(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            power_ratio_domino_vs_static(zero, some)


class TestRoutingValidation:
    def test_negative_utilisation(self):
        with pytest.raises(GeometryError):
            CongestionModel().detour_factor(-0.1)

    def test_steiner_single_pin(self):
        from repro.physical import steiner_length_um
        from repro.physical.geometry import Point

        assert steiner_length_um([Point(0, 0)]) == 0.0


class TestReportFormatting:
    def test_long_path_elided(self):
        m = Module("chain")
        prev = m.add_input("a")
        for i in range(30):
            nxt = f"w{i}"
            m.add_instance(f"i{i}", "INV_X2", inputs={"A": prev},
                           outputs={"Y": nxt})
            prev = nxt
        m.add_output("y")
        m.add_instance("last", "INV_X2", inputs={"A": prev},
                       outputs={"Y": "y"})
        report = analyze(m, RICH, asic_clock(30000.0))
        text = format_report(report, CMOS250_ASIC, max_path_steps=5)
        assert "elided" in text

    def test_violated_flag(self):
        m = Module("slow")
        m.add_input("a")
        m.add_output("y")
        m.add_instance("g", "INV_X1", inputs={"A": "a"}, outputs={"Y": "y"})
        report = analyze(m, RICH, asic_clock(1.0))
        assert "VIOLATED" in format_report(report)


class TestCellEdgeCases:
    def test_worst_delay_requires_arcs(self):
        ff = RICH.flip_flop()
        with pytest.raises(CellError):
            ff.worst_delay_ps(1.0)

    def test_latch_lookup(self):
        latch = RICH.latch()
        assert latch.sequential.transparent
        assert latch.base_name == "LATCH"

    def test_library_len_and_contains(self):
        assert len(RICH) > 100
        assert "INV_X1" in RICH
        assert "WARP_X9" not in RICH
