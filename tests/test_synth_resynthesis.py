"""Unit tests for repro.synth.resynthesis (the Section 6.2 passes)."""

import pytest

from repro.cells import rich_asic_library
from repro.netlist import Module, logic_depth
from repro.sta import analyze, asic_clock
from repro.synth import (
    exhaustive_equivalent,
    map_design,
    parse_expression,
    simulate_combinational,
)
from repro.synth.resynthesis import (
    ResynthesisReport,
    collapse_into_complex_gates,
    pin_swap_late_arrivals,
    remove_inverter_pairs,
    resynthesize,
)
from repro.tech import CMOS250_ASIC

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(20000.0)


def double_inverter_module():
    m = Module("dbl")
    m.add_input("a")
    m.add_output("y")
    m.add_instance("i1", "INV_X2", inputs={"A": "a"}, outputs={"Y": "w1"})
    m.add_instance("i2", "INV_X2", inputs={"A": "w1"}, outputs={"Y": "w2"})
    m.add_instance("g", "NAND2_X2", inputs={"A": "w2", "B": "a"},
                   outputs={"Y": "y"})
    return m


def aoi_pattern_module():
    m = Module("aoi")
    for p in ("a", "b", "c"):
        m.add_input(p)
    m.add_output("y")
    m.add_instance("and1", "AND2_X2", inputs={"A": "a", "B": "b"},
                   outputs={"Y": "w"})
    m.add_instance("nor1", "NOR2_X2", inputs={"A": "w", "B": "c"},
                   outputs={"Y": "y"})
    return m


class TestInverterPairs:
    def test_pair_removed(self):
        m = double_inverter_module()
        removed = remove_inverter_pairs(m, RICH)
        assert removed == 1
        assert m.instance_count() == 1
        m.assert_well_formed()

    def test_function_preserved(self):
        m = double_inverter_module()
        before = {
            (a,): simulate_combinational(m, RICH, {"a": a})["y"]
            for a in (False, True)
        }
        remove_inverter_pairs(m, RICH)
        after = {
            (a,): simulate_combinational(m, RICH, {"a": a})["y"]
            for a in (False, True)
        }
        assert before == after

    def test_single_inverter_kept(self):
        m = Module("single")
        m.add_input("a")
        m.add_output("y")
        m.add_instance("i1", "INV_X2", inputs={"A": "a"}, outputs={"Y": "w"})
        m.add_instance("g", "BUF_X2", inputs={"A": "w"}, outputs={"Y": "y"})
        assert remove_inverter_pairs(m, RICH) == 0
        assert m.instance_count() == 2

    def test_fanout_on_middle_net_blocks(self):
        m = double_inverter_module()
        # Give w1 a second consumer: no longer removable.
        m.add_output("z")
        m.add_instance("extra", "BUF_X2", inputs={"A": "w1"},
                       outputs={"Y": "z"})
        assert remove_inverter_pairs(m, RICH) == 0


class TestComplexGates:
    def test_aoi_fusion(self):
        m = aoi_pattern_module()
        formed = collapse_into_complex_gates(m, RICH)
        assert formed == 1
        assert any(
            inst.cell_name.startswith("AOI21")
            for inst in m.iter_instances()
        )
        m.assert_well_formed()

    def test_fusion_preserves_function(self):
        m = aoi_pattern_module()
        reference = aoi_pattern_module()
        collapse_into_complex_gates(m, RICH)
        assert exhaustive_equivalent(m, RICH, reference, RICH)

    def test_fusion_cuts_depth(self):
        m = aoi_pattern_module()
        before = logic_depth(m)
        collapse_into_complex_gates(m, RICH)
        assert logic_depth(m) < before

    def test_oai_fusion(self):
        m = Module("oai")
        for p in ("a", "b", "c"):
            m.add_input(p)
        m.add_output("y")
        m.add_instance("or1", "OR2_X2", inputs={"A": "a", "B": "b"},
                       outputs={"Y": "w"})
        m.add_instance("nand1", "NAND2_X2", inputs={"A": "w", "B": "c"},
                       outputs={"Y": "y"})
        reference = m.clone("ref")
        assert collapse_into_complex_gates(m, RICH) == 1
        assert exhaustive_equivalent(m, RICH, reference, RICH)


class TestPinSwap:
    def test_late_signal_moves_to_fast_pin(self):
        m = Module("swap")
        m.add_input("early")
        m.add_input("late")
        m.add_output("y")
        m.add_instance(
            "g", "AOI21_X2",
            inputs={"A": "late", "B": "early", "C": "early"},
            outputs={"Y": "y"},
        )
        # AOI21 pin C has lower effort (5/3) than A/B (2.0); the later
        # arrival should end up on C... but C has a different logic role,
        # so AOI gates must NOT be swapped.
        arrivals = {"early": 0.0, "late": 500.0}
        swapped = pin_swap_late_arrivals(m, RICH, arrivals)
        assert swapped == 0  # non-commutative cell untouched

    def test_commutative_swap(self):
        m = Module("swap2")
        m.add_input("early")
        m.add_input("late")
        m.add_output("y")
        m.add_instance(
            "g", "NAND3_X2",
            inputs={"A": "late", "B": "early", "C": "early"},
            outputs={"Y": "y"},
        )
        arrivals = {"early": 0.0, "late": 500.0}
        pin_swap_late_arrivals(m, RICH, arrivals)
        m.assert_well_formed()
        # All NAND3 pins have equal effort here, so any assignment is
        # valid; the invariant is structural integrity + same net set.
        assert sorted(m.instance("g").inputs.values()) == [
            "early", "early", "late"
        ]


class TestFullResynthesis:
    def test_fixed_point_on_mapped_design(self):
        text = "~(~(a & b)) | ~(~c)"
        module = map_design({"y": parse_expression(text)}, RICH)
        reference = map_design({"y": parse_expression(text)}, RICH)
        report = resynthesize(module, RICH)
        assert isinstance(report, ResynthesisReport)
        assert exhaustive_equivalent(module, RICH, reference, RICH)

    def test_resynthesis_never_slows(self):
        m = aoi_pattern_module()
        before = analyze(m, RICH, CLK).min_period_ps
        resynthesize(m, RICH)
        after = analyze(m, RICH, CLK).min_period_ps
        assert after <= before + 1.0

    def test_report_totals(self):
        report = ResynthesisReport(2, 1, 3, 2)
        assert report.total_changes == 6

    def test_iteration_validation(self):
        from repro.synth import SynthesisError

        with pytest.raises(SynthesisError):
            resynthesize(aoi_pattern_module(), RICH, max_iterations=0)
