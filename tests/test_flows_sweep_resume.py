"""Tests for ledger-backed sweep resume and sweep-level run records.

The contracts under test: every completed point leaves a replayable
``sweep.point`` record keyed by a policy-free design fingerprint; a
sweep that dies midway keeps its completed points, so a ``resume``
rerun replays them instead of recomputing; and the sweep-level ledger
record persists retry/quarantine/stall outcomes for post-mortems.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.flows import AsicFlowOptions, CustomFlowOptions
from repro.flows.results import FlowError, FlowResult
from repro.flows.sweep import (
    load_resume_points,
    point_fingerprint,
    run_flow_sweep,
    run_flow_sweep_report,
)
from repro.obs import ledger as run_ledger
from repro.obs import live
from repro.par.sweep import SweepStallError
from repro.robust.retry import RetryPolicy, is_task_failure
from repro.tech.process import CMOS250_ASIC


@pytest.fixture(autouse=True)
def _clean_layers():
    live.disable()
    live.configure_watch()
    obs.disable()
    obs.reset()
    yield
    live.disable()
    live.configure_watch()
    obs.disable()
    obs.reset()


def _points(count=3, **overrides):
    kwargs = {"sizing_moves": 2, **overrides}
    return [AsicFlowOptions(bits=4 + 2 * i, **kwargs)
            for i in range(count)]


class TestPointFingerprint:
    def test_policy_fields_excluded(self):
        # A point completed under chaos/fault injection must still
        # match -- and resume -- its clean rerun.
        clean = AsicFlowOptions(bits=4, sizing_moves=2)
        faulted = AsicFlowOptions(bits=4, sizing_moves=2, fault="sta",
                                  on_error="keep_going")
        assert point_fingerprint(clean) == point_fingerprint(faulted)

    def test_design_knobs_matter(self):
        base = AsicFlowOptions(bits=4, sizing_moves=2)
        assert point_fingerprint(base) != point_fingerprint(
            AsicFlowOptions(bits=8, sizing_moves=2))
        assert point_fingerprint(base) != point_fingerprint(
            AsicFlowOptions(bits=4, sizing_moves=3))

    def test_style_and_tech_matter(self):
        asic = AsicFlowOptions(bits=4, sizing_moves=2)
        custom = CustomFlowOptions(bits=4, sizing_moves=2)
        assert point_fingerprint(asic) != point_fingerprint(custom)
        assert point_fingerprint(asic) != point_fingerprint(
            asic, tech=CMOS250_ASIC.scaled(name="cmos180"))

    def test_explicit_default_tech_matches_none(self):
        options = AsicFlowOptions(bits=4, sizing_moves=2)
        assert (point_fingerprint(options)
                == point_fingerprint(options, tech=CMOS250_ASIC))


class TestPointRecords:
    def test_each_point_leaves_a_replayable_record(self):
        run_ledger.set_enabled(True)
        points = _points(2)
        results = run_flow_sweep(points, workers=1, label="rec.sweep")
        records = run_ledger.get_ledger().records(kind="sweep.point")
        assert len(records) == 2
        by_fp = {r.fingerprint: r for r in records}
        for options, result in zip(points, results):
            rec = by_fp[point_fingerprint(options)]
            rebuilt = FlowResult.from_dict(rec.result)
            assert rebuilt.to_dict() == result.to_dict()
            assert rec.config["bits"] == options.bits

    def test_ledger_off_means_no_records(self):
        run_flow_sweep(_points(1), workers=1)
        assert run_ledger.get_ledger().records(kind="sweep.point") == []


class TestResume:
    def test_resume_replays_completed_points(self):
        run_ledger.set_enabled(True)
        points = _points(3)
        first = run_flow_sweep(points, workers=1, label="resume.sweep")
        report = run_flow_sweep_report(points, workers=1,
                                       label="resume.sweep", resume=True)
        assert report.replays == [0, 1, 2]
        assert [r.to_dict() for r in report.results] == [
            r.to_dict() for r in first
        ]

    def test_aborted_sweep_keeps_completed_points_serial(self):
        # Point 2 trips an injected stage fault and aborts the sweep;
        # the first two points' records must survive for resume.
        run_ledger.set_enabled(True)
        good = _points(2)
        bad = AsicFlowOptions(bits=12, sizing_moves=2, fault="sta")
        with pytest.raises(FlowError):
            run_flow_sweep(good + [bad], workers=1, label="abort.sweep")
        assert len(
            run_ledger.get_ledger().records(kind="sweep.point")
        ) == 2
        # The faulted point's fingerprint ignores the fault knob, so
        # the clean rerun resumes nothing for it but replays the rest.
        clean = good + [AsicFlowOptions(bits=12, sizing_moves=2)]
        report = run_flow_sweep_report(clean, workers=1,
                                       label="abort.sweep", resume=True)
        assert report.replays == [0, 1]
        assert all(not is_task_failure(r) for r in report.results)

    def test_pool_worker_records_adopted_on_arrival(self):
        # Workers buffer their ledger writes; the supervisor adopts
        # them the moment each task reply arrives, so a chaos-killed
        # worker's completed peers are still on disk afterwards.
        run_ledger.set_enabled(True)
        points = _points(4)
        report = run_flow_sweep_report(
            points, workers=2, label="pool.sweep",
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            chaos="kill-worker:1",
        )
        assert report.ok
        assert report.workers_lost >= 1
        point_records = run_ledger.get_ledger().records(kind="sweep.point")
        assert len(point_records) == 4
        resumed = load_resume_points(points)
        assert sorted(resumed) == [0, 1, 2, 3]

    def test_resume_without_ledger_is_a_plain_run(self):
        report = run_flow_sweep_report(_points(1), workers=1,
                                       resume=True)
        assert report.replays == []
        assert report.ok

    def test_load_resume_points_skips_unknown_tech(self):
        run_ledger.set_enabled(True)
        options = _points(1)[0]
        run_ledger.record(run_ledger.RunRecord(
            kind="sweep.point", label="bad", tech="no-such-node",
            fingerprint=point_fingerprint(options),
            result={"technology": "no-such-node"},
        ))
        # Rebuild failure degrades to recompute, never to an error.
        assert load_resume_points([options]) == {}


class TestSweepLedgerRecord:
    def test_quarantine_outcomes_persisted(self):
        run_ledger.set_enabled(True)
        points = _points(3)
        report = run_flow_sweep_report(
            points, workers=2, label="q.sweep",
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
            chaos="crash-task:1",
        )
        assert not report.ok
        sweeps = run_ledger.get_ledger().records(kind="sweep")
        assert len(sweeps) == 1
        rec = sweeps[0]
        assert rec.metrics["quarantined"] == 1
        assert rec.metrics["points"] == 3
        assert rec.failures[0]["index"] == 1
        assert rec.failures[0]["kind"] == "error"
        codes = [d["code"] for d in rec.diagnostics]
        assert "sweep.quarantined" in codes

    def test_replay_and_retry_counters_persisted(self):
        run_ledger.set_enabled(True)
        points = _points(2)
        run_flow_sweep(points, workers=1, label="ctr.sweep")
        run_flow_sweep_report(points, workers=1, label="ctr.sweep",
                              resume=True)
        last = run_ledger.get_ledger().records(kind="sweep")[-1]
        assert last.metrics["replays"] == 2
        assert last.metrics["retries"] == 0
        assert last.metrics["workers_lost"] == 0

    def test_stall_abort_writes_post_mortem_record(self):
        run_ledger.set_enabled(True)
        points = [AsicFlowOptions(bits=4, sizing_moves=2,
                                  fault="slow:sta", seed=s)
                  for s in (1, 2)]
        live.configure_watch(heartbeat_s=None, stall_timeout_s=0.1)
        with pytest.raises(SweepStallError):
            run_flow_sweep(points, workers=2, label="stall.sweep")
        sweeps = run_ledger.get_ledger().records(kind="sweep")
        assert len(sweeps) == 1
        rec = sweeps[0]
        assert rec.metrics["aborted"] == 1
        stall_failures = [f for f in rec.failures
                          if f["kind"] == "stall"]
        assert stall_failures
        assert stall_failures[0]["source"].startswith("worker-")
        codes = [d["code"] for d in rec.diagnostics]
        assert "sweep.stalled" in codes


class TestKillResumeCli:
    """Acceptance criterion: a sweep killed partway through, rerun with
    ``--resume-sweep``, replays its completed points from the ledger."""

    def test_sigkill_then_resume_replays_completed_points(self, tmp_path):
        runs_dir = str(tmp_path / "runs")
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env[run_ledger.ENV_DIR] = runs_dir
        argv = [sys.executable, "-m", "repro.cli", "sweep", "asic",
                "--bits", "6,8,10,12,14,16", "--sizing-moves", "60",
                "--seed", "3", "--workers", "1"]
        proc = subprocess.Popen(argv, cwd="/root/repo", env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            # Wait for at least two completed points, then pull the plug.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                done = len(run_ledger.RunLedger(runs_dir).records(
                    kind="sweep.point"))
                if done >= 2 or proc.poll() is not None:
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        completed = len(run_ledger.RunLedger(runs_dir).records(
            kind="sweep.point"))
        assert completed >= 2
        rerun = subprocess.run(
            argv + ["--resume-sweep", "--json"], cwd="/root/repo",
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert rerun.returncode == 0, rerun.stderr
        payload = json.loads(rerun.stdout)
        assert len(payload["replays"]) >= 2
        assert len(payload["results"]) == 6
        assert payload["ok"] is True
        assert payload["failures"] == []
