"""Finite-state-machine synthesis: the logic that cannot be pipelined.

Section 4.1: "For pipelining to be of value, multiple tasks must be able
to be initiated in parallel ... Many designs, such as bus interfaces,
have a tight interaction with their environment in which each execution
cycle depends on new primary inputs and branches are common.  In such
cases, it is not clear how an ASIC may be reorganized to allow
pipelining.  Simply increasing the clock speed by adding latches would
only increase latency."

This module makes that argument executable: an :class:`FsmSpec` is
synthesised into next-state/output logic plus a state register, and the
resulting netlist has a *combinational feedback cycle through one
register* -- so its minimum period is bound by the next-state cone and no
legal retiming or pipelining can beat that bound (benchmarked in
``bench_ext_control.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cells.library import CellLibrary
from repro.netlist.module import Module
from repro.synth.ast import And, Expr, FALSE, Not, Or, SynthesisError, Var
from repro.synth.mapper import TechnologyMapper
from repro.synth.optimize import optimize, simplify
from repro.synth.parser import parse_expression


@dataclass(frozen=True)
class Transition:
    """One FSM transition.

    Attributes:
        source: source state name.
        target: target state name.
        condition: boolean expression over input names (``"1"`` for an
            unconditional transition).
    """

    source: str
    target: str
    condition: str = "1"


@dataclass
class FsmSpec:
    """A Moore machine specification.

    Attributes:
        name: machine name.
        states: state names; the first is the reset state.
        inputs: primary input names.
        transitions: transition list.  Priority is list order: the first
            matching condition wins; with no match the machine holds
            state.
        outputs: output name -> set of states in which it is asserted.
    """

    name: str
    states: list[str]
    inputs: list[str]
    transitions: list[Transition]
    outputs: dict[str, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.states) < 2:
            raise SynthesisError("an FSM needs at least two states")
        if len(set(self.states)) != len(self.states):
            raise SynthesisError("duplicate state names")
        known = set(self.states)
        for t in self.transitions:
            if t.source not in known or t.target not in known:
                raise SynthesisError(
                    f"transition {t.source}->{t.target} references unknown "
                    "state"
                )
        for out, asserted in self.outputs.items():
            bad = asserted - known
            if bad:
                raise SynthesisError(
                    f"output {out!r} asserted in unknown states {sorted(bad)}"
                )

    @property
    def state_bits(self) -> int:
        """Bits of a binary state encoding."""
        return max(1, math.ceil(math.log2(len(self.states))))

    def simulate(
        self, input_stream: list[dict[str, bool]]
    ) -> list[tuple[str, dict[str, bool]]]:
        """Reference (specification-level) simulation.

        Returns per-cycle ``(state_before_edge, outputs)`` -- the Moore
        outputs of the current state, then the transition taken.
        """
        state = self.states[0]
        trace = []
        by_source: dict[str, list[Transition]] = {}
        for t in self.transitions:
            by_source.setdefault(t.source, []).append(t)
        parsed = {
            id(t): parse_expression(t.condition) for t in self.transitions
        }
        for stimulus in input_stream:
            outputs = {
                out: state in asserted
                for out, asserted in self.outputs.items()
            }
            trace.append((state, outputs))
            for t in by_source.get(state, []):
                if parsed[id(t)].evaluate(stimulus):
                    state = t.target
                    break
        return trace


def _state_predicate(spec: FsmSpec, state: str, bit_vars: list[Expr]) -> Expr:
    """Expression true when the binary-encoded register holds ``state``."""
    index = spec.states.index(state)
    literals = []
    for bit, var in enumerate(bit_vars):
        if (index >> bit) & 1:
            literals.append(var)
        else:
            literals.append(Not(var))
    if len(literals) == 1:
        return literals[0]
    return And(tuple(literals))


def next_state_expressions(spec: FsmSpec) -> dict[str, Expr]:
    """Next-state and output logic as boolean expressions.

    Returns expressions for every next-state bit (``ns<k>``) and every
    output, over variables ``s<k>`` (current state bits) and the FSM
    inputs.  Transition priority is compiled into "no earlier condition
    matched" guards; the hold-state default is folded in.
    """
    bits = spec.state_bits
    bit_vars: list[Expr] = [Var(f"s{k}") for k in range(bits)]
    by_source: dict[str, list[Transition]] = {}
    for t in spec.transitions:
        by_source.setdefault(t.source, []).append(t)

    # For each target-state bit: OR over (source predicate & condition &
    # priority guard) terms, plus hold terms.
    bit_terms: list[list[Expr]] = [[] for _ in range(bits)]
    for source in spec.states:
        source_pred = _state_predicate(spec, source, bit_vars)
        guard: Expr | None = None
        for t in by_source.get(source, []):
            condition = parse_expression(t.condition)
            term_cond = condition if guard is None else And(
                (condition, guard)
            )
            full = And((source_pred, term_cond))
            target_index = spec.states.index(t.target)
            for bit in range(bits):
                if (target_index >> bit) & 1:
                    bit_terms[bit].append(full)
            negated = Not(condition)
            guard = negated if guard is None else And((guard, negated))
        # Hold: no transition matched.
        hold = source_pred if guard is None else And((source_pred, guard))
        source_index = spec.states.index(source)
        if by_source.get(source):
            for bit in range(bits):
                if (source_index >> bit) & 1:
                    bit_terms[bit].append(hold)
        else:
            for bit in range(bits):
                if (source_index >> bit) & 1:
                    bit_terms[bit].append(source_pred)

    design: dict[str, Expr] = {}
    for bit in range(bits):
        terms = bit_terms[bit]
        if not terms:
            design[f"ns{bit}"] = FALSE
        elif len(terms) == 1:
            design[f"ns{bit}"] = simplify(terms[0])
        else:
            design[f"ns{bit}"] = simplify(Or(tuple(terms)))
    for out, asserted in spec.outputs.items():
        preds = [
            _state_predicate(spec, state, bit_vars) for state in asserted
        ]
        if not preds:
            design[out] = FALSE
        elif len(preds) == 1:
            design[out] = simplify(preds[0])
        else:
            design[out] = simplify(Or(tuple(preds)))
    return design


def synthesize_fsm(
    spec: FsmSpec,
    library: CellLibrary,
    clock_name: str = "clk",
) -> Module:
    """Synthesise the FSM to a mapped netlist with its state register.

    The result has inputs ``clk`` plus the spec's inputs, outputs per the
    spec, and a binary-encoded state register whose D cones are the
    mapped next-state logic -- including the feedback cycle that blocks
    pipelining.

    Reset-state note: the flops initialise to 0 in simulation, which is
    exactly the first (reset) state's encoding.
    """
    design = next_state_expressions(spec)
    bits = spec.state_bits
    mapper = TechnologyMapper(library)
    constant_outputs = {}
    mappable = {}
    for out, expr in design.items():
        reduced = optimize(expr)
        from repro.synth.ast import Const

        if isinstance(reduced, Const):
            constant_outputs[out] = reduced.value
        else:
            mappable[out] = expr
    if any(out.startswith("ns") for out in constant_outputs):
        # A constant next-state bit is legal (e.g. unreachable encodings);
        # tie it by feeding the state bit through an AND with itself
        # being impossible -- instead, simply reject for clarity.
        raise SynthesisError(
            "FSM has constant next-state bits; add a transition that "
            "exercises them or reduce the state count"
        )

    logic = mapper.map_design(
        mappable,
        name=f"{spec.name}_logic",
        input_order=sorted(
            {v for e in mappable.values() for v in e.variables()}
        ),
    )

    fsm = Module(spec.name)
    clk = fsm.add_input(clock_name)
    for name in spec.inputs:
        fsm.add_input(name)
    for out in spec.outputs:
        fsm.add_output(out)
    ff = library.flip_flop()
    clock_pin = ff.sequential.clock_pin

    # State registers: Q nets are s<k>, D nets are ns<k>.
    used_inputs = set(logic.inputs())
    for bit in range(bits):
        q = f"s{bit}"
        d = f"ns{bit}"
        if q not in used_inputs:
            # State bit unused by the logic (degenerate but legal): still
            # register it to keep encodings complete.
            fsm.add_net(q)
        fsm.add_instance(
            f"state{bit}", ff.name,
            inputs={"D": d, clock_pin: clk},
            outputs={ff.output: q},
        )

    # Copy the mapped combinational logic.
    for inst in logic.iter_instances():
        fsm.add_instance(
            inst.name, inst.cell_name,
            inputs=dict(inst.inputs), outputs=dict(inst.outputs),
            **dict(inst.attributes),
        )
    for out, value in constant_outputs.items():
        if out in spec.outputs:
            raise SynthesisError(
                f"output {out!r} is constant {value}; constant outputs "
                "are not synthesisable without tie cells"
            )
    fsm.assert_well_formed()
    return fsm


def bus_interface_spec() -> FsmSpec:
    """The paper's example blocker: a bus-interface handshake FSM.

    IDLE -> REQ on request; REQ -> XFER on grant (else back off on
    error); XFER -> DONE when last beat; DONE -> IDLE.  Every cycle
    consumes fresh primary inputs -- the "tight interaction with the
    environment" that defeats pipelining.
    """
    return FsmSpec(
        name="bus_interface",
        states=["IDLE", "REQ", "XFER", "DONE"],
        inputs=["req", "gnt", "err", "last"],
        transitions=[
            Transition("IDLE", "REQ", "req"),
            Transition("REQ", "XFER", "gnt & ~err"),
            Transition("REQ", "IDLE", "err"),
            Transition("XFER", "DONE", "last"),
            Transition("XFER", "IDLE", "err"),
            Transition("DONE", "IDLE", "1"),
        ],
        outputs={
            "busy": {"REQ", "XFER"},
            "ack": {"DONE"},
        },
    )
