"""Sizing substrate: logical effort, TILOS, discretisation, buffers, wires."""

from repro.sizing.buffering import (
    BufferingResult,
    buffer_high_fanout,
    net_load_ff,
)
from repro.sizing.discrete import (
    DiscretizationPenalty,
    discretization_penalty,
    geometric_drive_ladder,
    snap_to_library,
    worst_case_snap_penalty,
)
from repro.sizing.joint import (
    JointSizingResult,
    joint_size,
    path_delay_ps,
    sequential_size,
)
from repro.sizing.logical_effort import (
    BEST_STAGE_EFFORT,
    PathSolution,
    PathStage,
    SizingError,
    best_stage_count,
    chain_delay_tau,
    delay_with_stage_count,
    optimize_path,
    sizing_speedup_bound,
)
from repro.sizing.tilos import (
    SizingResult,
    downsize_off_critical,
    size_for_speed,
    total_area_um2,
)
from repro.sizing.wire_sizing import (
    DEFAULT_WIDTH_MENU,
    WireSizingResult,
    size_wires,
)

__all__ = [
    "JointSizingResult",
    "joint_size",
    "path_delay_ps",
    "sequential_size",
    "BEST_STAGE_EFFORT",
    "BufferingResult",
    "DEFAULT_WIDTH_MENU",
    "DiscretizationPenalty",
    "PathSolution",
    "PathStage",
    "SizingError",
    "SizingResult",
    "WireSizingResult",
    "best_stage_count",
    "buffer_high_fanout",
    "chain_delay_tau",
    "delay_with_stage_count",
    "discretization_penalty",
    "downsize_off_critical",
    "geometric_drive_ladder",
    "net_load_ff",
    "optimize_path",
    "size_for_speed",
    "size_wires",
    "sizing_speedup_bound",
    "snap_to_library",
    "total_area_um2",
    "worst_case_snap_penalty",
]
