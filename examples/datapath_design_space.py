"""Datapath design space: the Section 4.2 macro-cell argument.

Generates every adder and multiplier architecture in the macro library
at several word widths, verifies each against integer arithmetic, and
tabulates logic depth, gate count, area and achievable frequency --
showing why "use of predefined macro cells can significantly improve the
resulting design".

Run with::

    python examples/datapath_design_space.py
"""

from repro.cells import rich_asic_library
from repro.datapath import (
    array_multiplier,
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
    simulate_adder,
    simulate_multiplier,
    wallace_multiplier,
)
from repro.netlist import logic_depth
from repro.sizing import total_area_um2
from repro.sta import analyze, asic_clock, fo4_depth
from repro.tech import CMOS250_ASIC

ADDERS = {
    "ripple-carry": ripple_carry_adder,
    "carry-lookahead": carry_lookahead_adder,
    "carry-select": carry_select_adder,
    "kogge-stone": kogge_stone_adder,
}

MULTIPLIERS = {
    "array": array_multiplier,
    "wallace": wallace_multiplier,
}


def survey_adders(library, widths=(8, 16, 32)) -> None:
    clock = asic_clock(50000.0)
    print(f"{'adder':<18s} {'bits':>5s} {'gates':>6s} {'depth':>6s} "
          f"{'FO4':>6s} {'MHz':>8s} {'area um2':>9s}")
    for name, generator in ADDERS.items():
        for bits in widths:
            module = generator(bits, library)
            # Spot-check functional correctness before timing it.
            total, cout = simulate_adder(module, library, bits, 123 % (1 << bits),
                                         77 % (1 << bits), 1)
            expected = (123 % (1 << bits)) + (77 % (1 << bits)) + 1
            assert (total, cout) == (expected % (1 << bits),
                                     expected >> bits), name
            report = analyze(module, library, clock)
            print(
                f"{name:<18s} {bits:>5d} {module.instance_count():>6d} "
                f"{logic_depth(module):>6d} "
                f"{fo4_depth(report, library.technology):>6.1f} "
                f"{report.max_frequency_mhz:>8.1f} "
                f"{total_area_um2(module, library):>9.1f}"
            )


def survey_multipliers(library, widths=(4, 6, 8)) -> None:
    clock = asic_clock(80000.0)
    print(f"{'multiplier':<18s} {'bits':>5s} {'gates':>6s} {'depth':>6s} "
          f"{'FO4':>6s} {'MHz':>8s}")
    for name, generator in MULTIPLIERS.items():
        for bits in widths:
            module = generator(bits, library)
            a, b = (1 << bits) - 2, (1 << (bits - 1)) + 1
            assert simulate_multiplier(module, library, bits, a, b) == a * b
            report = analyze(module, library, clock)
            print(
                f"{name:<18s} {bits:>5d} {module.instance_count():>6d} "
                f"{logic_depth(module):>6d} "
                f"{fo4_depth(report, library.technology):>6.1f} "
                f"{report.max_frequency_mhz:>8.1f}"
            )


def main() -> None:
    library = rich_asic_library(CMOS250_ASIC)
    print("Adder architectures (verified, then timed):")
    survey_adders(library)
    print()
    print("Multiplier architectures:")
    survey_multipliers(library)
    print()
    print("The log-depth structures are the 'predefined macro cells' of")
    print("Section 4.2: same function, far fewer logic levels than the")
    print("ripple structures RTL synthesis of '+' and '*' degenerates to.")


if __name__ == "__main__":
    main()
