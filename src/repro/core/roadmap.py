"""Roadmap projection: does the gap close over process generations?

Section 9's closing argument: "Optimistically these results point out
that ASIC design methodologies are not as inefficient as has been
presumed.  Pessimistically they do imply that even with tool and library
improvements the performance gap between ASIC and custom ICs is likely
to remain a large one."

The projection model walks both methodologies across process
generations: both ride the 1.5x-per-generation process gain; tool and
library improvements claw back a configurable slice of each *remaining
methodology factor* per generation; dynamic logic and deep pipelining
remain custom-only (per the paper's own judgement in Sections 4.1/7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.factors import FactorError, FactorModel, PAPER_FACTORS
from repro.tech.scaling import SPEEDUP_PER_GENERATION


#: Which factors Section 6/5 say tools CAN recover for ASICs, and which
#: Sections 4.1/7.2/8.2 say they cannot.
TOOL_RECOVERABLE = ("floorplanning", "sizing")
PARTIALLY_RECOVERABLE = ("process_variation",)  # speed testing, better libs
CUSTOM_ONLY = ("microarchitecture", "dynamic_logic")


@dataclass(frozen=True)
class RoadmapPoint:
    """The projected gap at one generation.

    Attributes:
        generation: 0 = the paper's 0.25 um baseline.
        gap: projected custom/ASIC speed ratio.
        recovered: cumulative factor ASIC tools have recovered.
    """

    generation: int
    gap: float
    recovered: float


def project_gap(
    generations: int = 4,
    initial_gap: float = 8.0,
    tool_recovery_per_generation: float = 0.4,
    partial_recovery_per_generation: float = 0.15,
    model: FactorModel | None = None,
) -> list[RoadmapPoint]:
    """Project the ASIC-custom gap over future process generations.

    Per generation, tools recover ``tool_recovery_per_generation`` of
    the *log* of each recoverable factor and a smaller share of the
    partially recoverable ones; the custom-only factors persist.  Both
    camps gain the process speedup equally, so it cancels out of the
    ratio.

    Args:
        generations: how many generations to project.
        initial_gap: observed starting ratio (the paper's 6-8x band).
        tool_recovery_per_generation: fraction of the remaining
            recoverable advantage tools claw back each generation.
        partial_recovery_per_generation: same for partially recoverable
            factors (speed testing, library refreshes).
        model: factor model (defaults to the paper's).

    Raises:
        FactorError: for out-of-range recovery rates or gaps.
    """
    import math

    if initial_gap <= 1.0:
        raise FactorError("initial gap must exceed 1x")
    for rate in (tool_recovery_per_generation,
                 partial_recovery_per_generation):
        if not 0.0 <= rate <= 1.0:
            raise FactorError("recovery rates must be within [0, 1]")
    factor_model = model or FactorModel()

    # Split the observed gap across factors proportionally to the
    # paper's log-domain weights.
    log_total = math.log(factor_model.total_product())
    log_gap = math.log(initial_gap)
    remaining = {
        f.name: log_gap * math.log(f.max_contribution) / log_total
        for f in factor_model.factors
    }

    points = [RoadmapPoint(0, initial_gap, 1.0)]
    recovered_total = 0.0
    for gen in range(1, generations + 1):
        for name in TOOL_RECOVERABLE:
            if name in remaining:
                claw = remaining[name] * tool_recovery_per_generation
                remaining[name] -= claw
                recovered_total += claw
        for name in PARTIALLY_RECOVERABLE:
            if name in remaining:
                claw = remaining[name] * partial_recovery_per_generation
                remaining[name] -= claw
                recovered_total += claw
        gap = math.exp(sum(remaining.values()))
        points.append(
            RoadmapPoint(gen, gap, math.exp(recovered_total))
        )
    return points


def asymptotic_gap(
    initial_gap: float = 8.0, model: FactorModel | None = None
) -> float:
    """The gap that survives perfect ASIC tools (custom-only factors).

    With floorplanning, sizing and variation access fully recovered, the
    pipelining and dynamic-logic shares of the observed gap remain --
    the "likely to remain a large one" of Section 9.
    """
    import math

    factor_model = model or FactorModel()
    log_total = math.log(factor_model.total_product())
    log_gap = math.log(initial_gap)
    surviving = sum(
        log_gap * math.log(factor_model.get(name).max_contribution) / log_total
        for name in CUSTOM_ONLY
    )
    return math.exp(surviving)


def roadmap_table(points: list[RoadmapPoint]) -> str:
    """Text table of a projection."""
    lines = [f"{'generation':>10s} {'gap':>8s} {'tools recovered':>16s}"]
    for point in points:
        lines.append(
            f"{point.generation:>10d} {point.gap:>7.2f}x "
            f"{point.recovered:>15.2f}x"
        )
    return "\n".join(lines)
