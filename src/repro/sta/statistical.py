"""Statistical static timing analysis (SSTA-lite).

Section 8.1.1 names intra-die variation as one of the four components:
device mismatch makes every gate's delay a random variable, so a chip's
cycle time is the *max over paths of sums of random delays*.  The
population model in :mod:`repro.variation.montecarlo` approximates this
with an abstract max-of-N draw; this module computes it on the actual
netlist:

* every gate delay is ``N(nominal, sigma_fraction * nominal)``,
  independent across gates (pure intra-die mismatch);
* means and variances propagate topologically; at reconvergence the max
  of two Gaussians is approximated by Clark's moment-matching formulas;
* endpoints yield a Gaussian minimum-period estimate, from which
  parametric yield at a target period follows.

A Monte Carlo fallback (:func:`monte_carlo_min_period`) samples actual
gate-delay realisations for cross-validation; the test suite checks the
analytical propagation against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.sta.clocking import Clock
from repro.sta.engine import DEFAULT_INPUT_SLEW_PS
from repro.sta.timing_graph import TimingError, TimingGraph, WireParasitics

_SQRT2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal density."""
    return math.exp(-0.5 * x * x) / _SQRT2PI


def _cdf(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def clark_max(
    mean_a: float, var_a: float, mean_b: float, var_b: float
) -> tuple[float, float]:
    """Clark's approximation to max of two independent Gaussians.

    Returns the (mean, variance) of ``max(A, B)`` by moment matching.
    """
    theta = math.sqrt(max(var_a + var_b, 1e-18))
    alpha = (mean_a - mean_b) / theta
    cdf = _cdf(alpha)
    pdf = _phi(alpha)
    mean = mean_a * cdf + mean_b * (1.0 - cdf) + theta * pdf
    second = (
        (var_a + mean_a * mean_a) * cdf
        + (var_b + mean_b * mean_b) * (1.0 - cdf)
        + (mean_a + mean_b) * theta * pdf
    )
    var = max(second - mean * mean, 0.0)
    return mean, var


@dataclass(frozen=True)
class StatisticalReport:
    """Result of a statistical timing run.

    Attributes:
        mean_period_ps: mean of the minimum feasible period.
        sigma_period_ps: its standard deviation.
        nominal_period_ps: the deterministic (sigma=0) period.
    """

    mean_period_ps: float
    sigma_period_ps: float
    nominal_period_ps: float

    @property
    def mean_shift_fraction(self) -> float:
        """Mean-over-nominal excess: the max-of-paths penalty.

        Statistical max makes the *expected* chip slower than its
        nominal corner -- the effect the paper's binning model captures
        as the intra-die penalty.
        """
        return self.mean_period_ps / self.nominal_period_ps - 1.0

    def period_at_yield(self, yield_target: float) -> float:
        """Period met by a fraction ``yield_target`` of dies."""
        if not 0.0 < yield_target < 1.0:
            raise TimingError("yield target must be in (0, 1)")
        from statistics import NormalDist

        z = NormalDist().inv_cdf(yield_target)
        return self.mean_period_ps + z * self.sigma_period_ps

    def yield_at_period(self, period_ps: float) -> float:
        """Fraction of dies meeting a period."""
        if self.sigma_period_ps <= 0:
            return 1.0 if period_ps >= self.mean_period_ps else 0.0
        return _cdf(
            (period_ps - self.mean_period_ps) / self.sigma_period_ps
        )


def _gate_delay_stats(
    graph: TimingGraph,
    module: Module,
    sigma_fraction: float,
):
    """Per-(instance, pin) nominal delays at their actual loads."""
    delays = {}
    for inst in module.iter_instances():
        cell = graph.cell_of(inst.name)
        if cell.is_sequential:
            continue
        if not inst.outputs:
            continue
        load = graph.instance_load_ff(inst.name)
        for pin in inst.inputs:
            nominal = cell.delay_ps(pin, load, DEFAULT_INPUT_SLEW_PS)
            delays[(inst.name, pin)] = (
                nominal, (sigma_fraction * nominal) ** 2
            )
    return delays


def analyze_statistical(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    sigma_fraction: float = 0.05,
    wire: WireParasitics | None = None,
) -> StatisticalReport:
    """Propagate gate-delay distributions through the timing graph.

    Args:
        module: mapped netlist.
        library: its library.
        clock: clock domain (skew added deterministically).
        sigma_fraction: per-gate intra-die 1-sigma as a fraction of the
            gate's nominal delay.
        wire: optional wire parasitics (treated as deterministic).
    """
    if not 0.0 <= sigma_fraction < 0.5:
        raise TimingError("sigma fraction must be in [0, 0.5)")
    graph = TimingGraph(module, library, wire)
    seq_names = graph.sequential_cell_names()
    order = topological_order(module, seq_names)
    gate_stats = _gate_delay_stats(graph, module, sigma_fraction)

    mean: dict[str, float] = {}
    var: dict[str, float] = {}
    for net, kind in graph.start_nets().items():
        if kind == "input":
            mean[net] = 0.0
            var[net] = 0.0
    for name in graph.sequential_instances():
        cell = graph.cell_of(name)
        inst = module.instance(name)
        for net in inst.outputs.values():
            mean[net] = cell.sequential.clk_to_q_ps
            var[net] = (sigma_fraction * cell.sequential.clk_to_q_ps) ** 2

    for inst_name in order:
        inst = module.instance(inst_name)
        cell = graph.cell_of(inst_name)
        if cell.is_sequential:
            continue
        out_nets = list(inst.outputs.values())
        if not out_nets:
            continue
        acc_mean = None
        acc_var = 0.0
        for pin, in_net in inst.inputs.items():
            if in_net not in mean:
                raise TimingError(f"net {in_net!r} has no arrival")
            d_mean, d_var = gate_stats[(inst_name, pin)]
            wire_d = graph.wire.delay(in_net)
            cand_mean = mean[in_net] + wire_d + d_mean
            cand_var = var[in_net] + d_var
            if acc_mean is None:
                acc_mean, acc_var = cand_mean, cand_var
            else:
                acc_mean, acc_var = clark_max(
                    acc_mean, acc_var, cand_mean, cand_var
                )
        for net in out_nets:
            mean[net] = acc_mean
            var[net] = acc_var

    end_mean = None
    end_var = 0.0
    found = False
    for kind, detail in graph.endpoints():
        if kind == "port":
            net = str(detail)
            if net not in mean:
                raise TimingError(f"output port {net!r} undriven")
            m = mean[net] + graph.wire.delay(net)
            v = var[net]
        else:
            inst_name, pin = detail
            inst = module.instance(inst_name)
            cell = graph.cell_of(inst_name)
            net = inst.inputs[pin]
            if net not in mean:
                raise TimingError(f"register input {net!r} undriven")
            borrow = (
                clock.borrow_window_ps if cell.sequential.transparent else 0.0
            )
            m = (
                mean[net] + graph.wire.delay(net)
                + cell.sequential.setup_ps + clock.skew_ps - borrow
            )
            v = var[net]
        found = True
        if end_mean is None:
            end_mean, end_var = m, v
        else:
            end_mean, end_var = clark_max(end_mean, end_var, m, v)
    if not found or end_mean is None:
        raise TimingError("module has no timing endpoints")

    return StatisticalReport(
        mean_period_ps=end_mean,
        sigma_period_ps=math.sqrt(end_var),
        nominal_period_ps=_nominal_period(module, library, clock, wire),
    )


def _nominal_period(module, library, clock, wire) -> float:
    """Deterministic period under the same (fixed-slew) delay model."""
    return _propagate_deterministic(module, library, clock, wire)


def _propagate_deterministic(module, library, clock, wire) -> float:
    graph = TimingGraph(module, library, wire)
    order = topological_order(module, graph.sequential_cell_names())
    gate_stats = _gate_delay_stats(graph, module, 0.0)
    arrival: dict[str, float] = {}
    for net, kind in graph.start_nets().items():
        if kind == "input":
            arrival[net] = 0.0
    for name in graph.sequential_instances():
        cell = graph.cell_of(name)
        inst = module.instance(name)
        for net in inst.outputs.values():
            arrival[net] = cell.sequential.clk_to_q_ps
    for inst_name in order:
        inst = module.instance(inst_name)
        cell = graph.cell_of(inst_name)
        if cell.is_sequential:
            continue
        out_nets = list(inst.outputs.values())
        if not out_nets:
            continue
        best = max(
            arrival[in_net] + graph.wire.delay(in_net)
            + gate_stats[(inst_name, pin)][0]
            for pin, in_net in inst.inputs.items()
        )
        for net in out_nets:
            arrival[net] = best
    worst = -math.inf
    for kind, detail in graph.endpoints():
        if kind == "port":
            worst = max(
                worst, arrival[str(detail)] + graph.wire.delay(str(detail))
            )
        else:
            inst_name, pin = detail
            inst = module.instance(inst_name)
            cell = graph.cell_of(inst_name)
            net = inst.inputs[pin]
            borrow = (
                clock.borrow_window_ps if cell.sequential.transparent else 0.0
            )
            worst = max(
                worst,
                arrival[net] + graph.wire.delay(net)
                + cell.sequential.setup_ps + clock.skew_ps - borrow,
            )
    return worst


def monte_carlo_min_period(
    module: Module,
    library: CellLibrary,
    clock: Clock,
    sigma_fraction: float = 0.05,
    samples: int = 200,
    seed: int = 1,
    wire: WireParasitics | None = None,
    batched: bool = True,
) -> np.ndarray:
    """Sample minimum periods with independently perturbed gate delays.

    The brute-force cross-check for :func:`analyze_statistical`: each
    sample scales every gate arc's delay by its own Gaussian draw and
    re-runs a deterministic arrival propagation.

    ``batched=True`` (the default) runs all samples as one matrix pass
    through the vectorized engine (:mod:`repro.sta.array`); the result
    is bitwise identical to the sequential loop, which remains available
    as ``batched=False`` and as the oracle the equivalence tests compare
    against.
    """
    if samples < 1:
        raise TimingError("need at least one sample")
    if batched:
        from repro.sta.array import monte_carlo_min_period_batched

        return monte_carlo_min_period_batched(
            module, library, clock, sigma_fraction=sigma_fraction,
            samples=samples, seed=seed, wire=wire,
        )
    graph = TimingGraph(module, library, wire)
    seq_names = graph.sequential_cell_names()
    order = topological_order(module, seq_names)
    gate_stats = _gate_delay_stats(graph, module, sigma_fraction)
    keys = sorted(gate_stats)
    nominals = np.array([gate_stats[k][0] for k in keys])
    rng = np.random.default_rng(seed)
    periods = np.empty(samples)

    start_nets = graph.start_nets()
    seq_info = []
    for name in graph.sequential_instances():
        cell = graph.cell_of(name)
        inst = module.instance(name)
        seq_info.append((inst, cell))

    for s in range(samples):
        draw = rng.normal(1.0, sigma_fraction, size=len(keys))
        delay_of = dict(zip(keys, np.maximum(nominals * draw, 0.0)))
        arrival: dict[str, float] = {}
        for net, kind in start_nets.items():
            if kind == "input":
                arrival[net] = 0.0
        for inst, cell in seq_info:
            jitter = rng.normal(1.0, sigma_fraction)
            for net in inst.outputs.values():
                arrival[net] = max(cell.sequential.clk_to_q_ps * jitter, 0.0)
        for inst_name in order:
            inst = module.instance(inst_name)
            cell = graph.cell_of(inst_name)
            if cell.is_sequential:
                continue
            out_nets = list(inst.outputs.values())
            if not out_nets:
                continue
            best = -math.inf
            for pin, in_net in inst.inputs.items():
                at = (
                    arrival[in_net]
                    + graph.wire.delay(in_net)
                    + delay_of[(inst_name, pin)]
                )
                best = max(best, at)
            for net in out_nets:
                arrival[net] = best
        worst = -math.inf
        for kind, detail in graph.endpoints():
            if kind == "port":
                worst = max(
                    worst,
                    arrival[str(detail)] + graph.wire.delay(str(detail)),
                )
            else:
                inst_name, pin = detail
                inst = module.instance(inst_name)
                cell = graph.cell_of(inst_name)
                net = inst.inputs[pin]
                borrow = (
                    clock.borrow_window_ps
                    if cell.sequential.transparent else 0.0
                )
                worst = max(
                    worst,
                    arrival[net] + graph.wire.delay(net)
                    + cell.sequential.setup_ps + clock.skew_ps - borrow,
                )
        periods[s] = worst
    return periods
