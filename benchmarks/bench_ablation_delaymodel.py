"""Ablation -- delay model: logical-effort linear arcs vs NLDM tables.

DESIGN.md calls out the delay-model choice for ablation: the flows use
linear (logical effort) arcs; commercial ASIC signoff uses NLDM tables.
This bench maps the same design with both models and checks that they
agree at typical operating points and diverge only mildly at heavy load
(the saturation built into the tables), so conclusions drawn from the
linear model transfer.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.cells import rich_asic_library
from repro.datapath import alu, kogge_stone_adder
from repro.sta import analyze, asic_clock, register_boundaries
from repro.tech import CMOS250_ASIC


def _measure():
    linear_lib = rich_asic_library(CMOS250_ASIC, use_nldm=False)
    nldm_lib = rich_asic_library(CMOS250_ASIC, use_nldm=True)
    clock = asic_clock(60.0 * CMOS250_ASIC.fo4_delay_ps)
    results = {}
    for label, gen in (
        ("adder16", lambda lib: kogge_stone_adder(16, lib)),
        ("alu8", lambda lib: alu(8, lib, fast_adder=False)),
    ):
        linear_mod = register_boundaries(gen(linear_lib), linear_lib)
        nldm_mod = register_boundaries(gen(nldm_lib), nldm_lib)
        p_lin = analyze(linear_mod, linear_lib, clock).min_period_ps
        p_nldm = analyze(nldm_mod, nldm_lib, clock).min_period_ps
        results[label] = p_nldm / p_lin
    return results


def test_ablation_delay_model(benchmark):
    results = run_once(benchmark, _measure)
    rows = [
        row(f"NLDM / linear period ratio ({label})", "within ~10%",
            ratio, 0.95, 1.15)
        for label, ratio in sorted(results.items())
    ]
    report("Ablation: logical-effort linear arcs vs NLDM tables", rows)
    for entry in rows:
        assert entry.ok, entry
