"""Clock domains, skew and multi-phase clocking.

Section 4.1 calibration points implemented here:

* "There is typically 10% clock skew or more for ASICs, compared with
  about 5% clock skew for a high quality custom design" --
  :func:`asic_clock` and :func:`custom_clock`.
* "The 600MHz Alpha 21264 has 75ps global clock skew, or about 5%".
* Multi-phase clocking "that would allow time borrowing between pipeline
  stages" -- :class:`Clock` carries a phase list; the timing engine grants
  transparent latches a borrowing window.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockingError(ValueError):
    """Raised for unphysical clock definitions."""


#: Default ASIC skew budget as a fraction of the period (Section 4.1).
ASIC_SKEW_FRACTION = 0.10
#: Default custom skew budget (Section 4.1, Alpha 21264 data point).
CUSTOM_SKEW_FRACTION = 0.05
#: Structured-ASIC skew budget: the prefab H-tree is characterised once
#: per master, so it beats a synthesised ASIC tree without reaching
#: hand-tuned custom quality -- between the two Section 4.1 anchors.
STRUCTURED_SKEW_FRACTION = 0.08


@dataclass(frozen=True)
class Clock:
    """A clock domain.

    Attributes:
        name: domain name.
        period_ps: clock period.
        skew_ps: worst-case arrival-time uncertainty between any two
            sequential elements in the domain.
        phases: normalised phase offsets in [0, 1); a single-phase clock
            is ``(0.0,)``, a symmetric two-phase scheme ``(0.0, 0.5)``.
        borrow_fraction: fraction of the period a transparent latch may
            borrow from the next stage (0 disables time borrowing, the
            "ASIC tools have problems with complicated multi-phase
            clocking schemes" situation).
    """

    name: str
    period_ps: float
    skew_ps: float = 0.0
    phases: tuple[float, ...] = (0.0,)
    borrow_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ClockingError("clock period must be positive")
        if self.skew_ps < 0:
            raise ClockingError("skew cannot be negative")
        if self.skew_ps >= self.period_ps:
            raise ClockingError("skew must be smaller than the period")
        if not self.phases:
            raise ClockingError("need at least one phase")
        for phase in self.phases:
            if not 0.0 <= phase < 1.0:
                raise ClockingError(f"phase {phase} outside [0, 1)")
        if sorted(self.phases) != list(self.phases):
            raise ClockingError("phases must be ascending")
        if not 0.0 <= self.borrow_fraction <= 0.5:
            raise ClockingError("borrow fraction must be within [0, 0.5]")

    @property
    def frequency_mhz(self) -> float:
        """Clock frequency in MHz."""
        return 1.0e6 / self.period_ps

    @property
    def skew_fraction(self) -> float:
        """Skew as a fraction of the period."""
        return self.skew_ps / self.period_ps

    @property
    def borrow_window_ps(self) -> float:
        """Maximum time a transparent latch may borrow."""
        return self.borrow_fraction * self.period_ps

    def with_period(self, period_ps: float) -> "Clock":
        """Same domain at a different period, preserving skew *fraction*.

        Skew budgets scale with the period when set as a fraction of it
        (a retargeted clock tree), which is how the Section 4.1 percentage
        comparisons are framed.
        """
        fraction = self.skew_fraction
        return Clock(
            name=self.name,
            period_ps=period_ps,
            skew_ps=fraction * period_ps,
            phases=self.phases,
            borrow_fraction=self.borrow_fraction,
        )


def asic_clock(period_ps: float, name: str = "clk") -> Clock:
    """Single-phase clock with the typical ASIC 10% skew budget."""
    return Clock(
        name=name,
        period_ps=period_ps,
        skew_ps=ASIC_SKEW_FRACTION * period_ps,
    )


def structured_clock(period_ps: float, name: str = "clk") -> Clock:
    """Single-phase clock with the structured-ASIC 8% skew budget.

    No time borrowing: the prefab fabric ships flip-flop sites, not the
    latch-and-multi-phase scheme a custom team would hand-verify.
    """
    return Clock(
        name=name,
        period_ps=period_ps,
        skew_ps=STRUCTURED_SKEW_FRACTION * period_ps,
    )


def custom_clock(
    period_ps: float, name: str = "clk", borrow_fraction: float = 0.25
) -> Clock:
    """Two-phase custom clock: 5% skew, time borrowing enabled."""
    return Clock(
        name=name,
        period_ps=period_ps,
        skew_ps=CUSTOM_SKEW_FRACTION * period_ps,
        phases=(0.0, 0.5),
        borrow_fraction=borrow_fraction,
    )


def skew_speedup(asic_fraction: float = ASIC_SKEW_FRACTION,
                 custom_fraction: float = CUSTOM_SKEW_FRACTION) -> float:
    """Frequency gain from custom-quality skew alone.

    For a fixed amount of useful work per cycle W, the period is
    ``W / (1 - skew_fraction)``; Section 4.1: "Comparing the absolute
    differences in clock skews, there is about a 10% increase in speed
    due to custom quality clock skew alone" -- intuitively the 5% of
    period recovered, compounding to ~5.6% at equal work, or ~10% when
    the recovered skew also shortens the latch guard band; we report the
    direct period ratio.
    """
    if not 0 <= custom_fraction <= asic_fraction < 1:
        raise ClockingError("need 0 <= custom <= asic < 1")
    return (1.0 - custom_fraction) / (1.0 - asic_fraction)
