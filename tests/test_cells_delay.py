"""Unit tests for repro.cells.delay."""

import pytest

from repro.cells import DelayModelError, LinearDelayArc, NLDMArc


def linear_arc(**overrides):
    params = dict(parasitic_ps=18.0, effort_ps_per_ff=10.0)
    params.update(overrides)
    return LinearDelayArc(**params)


class TestLinearArc:
    def test_delay_is_affine_in_load(self):
        arc = linear_arc()
        d0 = arc.delay_ps(0.0)
        d1 = arc.delay_ps(1.0)
        d2 = arc.delay_ps(2.0)
        assert d0 == pytest.approx(18.0)
        assert d2 - d1 == pytest.approx(d1 - d0)
        assert d1 - d0 == pytest.approx(10.0)

    def test_slew_adds_delay(self):
        arc = linear_arc(slew_sensitivity=0.2)
        assert arc.delay_ps(1.0, 50.0) == pytest.approx(arc.delay_ps(1.0) + 10.0)

    def test_output_slew_tracks_delay(self):
        arc = linear_arc()
        assert arc.output_slew_ps(10.0) > arc.output_slew_ps(1.0)
        assert arc.output_slew_ps(0.0) >= arc.min_output_slew_ps

    def test_scaled_drive_halves_resistance(self):
        arc = linear_arc()
        fast = arc.scaled_drive(2.0)
        assert fast.effort_ps_per_ff == pytest.approx(5.0)
        assert fast.parasitic_ps == pytest.approx(arc.parasitic_ps)

    def test_scaled_drive_rejects_nonpositive(self):
        with pytest.raises(DelayModelError):
            linear_arc().scaled_drive(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(DelayModelError):
            LinearDelayArc(parasitic_ps=-1.0, effort_ps_per_ff=10.0)
        with pytest.raises(DelayModelError):
            LinearDelayArc(parasitic_ps=1.0, effort_ps_per_ff=0.0)

    def test_invalid_queries(self):
        arc = linear_arc()
        with pytest.raises(DelayModelError):
            arc.delay_ps(-1.0)
        with pytest.raises(DelayModelError):
            arc.delay_ps(1.0, -5.0)


class TestNLDMArc:
    def test_tabulated_matches_linear_at_light_load(self):
        arc = linear_arc()
        table = NLDMArc.from_linear(arc, max_load_ff=50.0)
        for load in (0.0, 5.0, 10.0):
            assert table.delay_ps(load, 1.0) == pytest.approx(
                arc.delay_ps(load, 1.0), rel=0.03
            )

    def test_saturation_at_heavy_load(self):
        arc = linear_arc()
        table = NLDMArc.from_linear(arc, max_load_ff=50.0, saturation=0.1)
        assert table.delay_ps(50.0, 1.0) > arc.delay_ps(50.0, 1.0)
        excess = table.delay_ps(50.0, 1.0) / arc.delay_ps(50.0, 1.0)
        assert 1.05 < excess < 1.15

    def test_interpolation_monotone_in_load(self):
        table = NLDMArc.from_linear(linear_arc(), max_load_ff=50.0)
        delays = [table.delay_ps(c, 10.0) for c in range(0, 51, 5)]
        assert delays == sorted(delays)

    def test_interpolation_monotone_in_slew(self):
        table = NLDMArc.from_linear(linear_arc(), max_load_ff=50.0)
        delays = [table.delay_ps(10.0, s) for s in range(1, 200, 20)]
        assert delays == sorted(delays)

    def test_extrapolation_beyond_corner(self):
        table = NLDMArc.from_linear(linear_arc(), max_load_ff=50.0)
        assert table.delay_ps(80.0, 1.0) > table.delay_ps(50.0, 1.0)

    def test_output_slew_positive(self):
        table = NLDMArc.from_linear(linear_arc(), max_load_ff=50.0)
        assert table.output_slew_ps(10.0, 10.0) > 0

    def test_axis_validation(self):
        with pytest.raises(DelayModelError):
            NLDMArc(
                slew_axis_ps=(1.0,),
                load_axis_ff=(0.0, 1.0),
                delay_table_ps=((1.0, 2.0),),
                slew_table_ps=((1.0, 2.0),),
            )
        with pytest.raises(DelayModelError):
            NLDMArc(
                slew_axis_ps=(2.0, 1.0),
                load_axis_ff=(0.0, 1.0),
                delay_table_ps=((1.0, 2.0), (1.0, 2.0)),
                slew_table_ps=((1.0, 2.0), (1.0, 2.0)),
            )

    def test_shape_validation(self):
        with pytest.raises(DelayModelError):
            NLDMArc(
                slew_axis_ps=(1.0, 2.0),
                load_axis_ff=(0.0, 1.0),
                delay_table_ps=((1.0, 2.0),),
                slew_table_ps=((1.0, 2.0), (1.0, 2.0)),
            )

    def test_bad_extents_rejected(self):
        with pytest.raises(DelayModelError):
            NLDMArc.from_linear(linear_arc(), max_load_ff=0.0)
