"""Tests for the repro-gap command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(sub.choices)
        assert {
            "survey", "factors", "flow", "gap", "roadmap", "library",
            "variation", "stats",
        } <= commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_flow_style_validated(self):
        with pytest.raises(SystemExit):
            main(["flow", "fpga"])


class TestCommands:
    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Alpha 21264A" in out
        assert "gap" in out

    def test_factors(self, capsys):
        assert main(["factors"]) == 0
        out = capsys.readouterr().out
        assert "17.8" in out
        assert "residual" in out

    def test_roadmap(self, capsys):
        assert main(["roadmap", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "asymptote" in out
        assert "generation" in out

    def test_variation(self, capsys):
        assert main(["variation", "--count", "2000", "--process",
                     "mature"]) == 0
        out = capsys.readouterr().out
        assert "flagship" in out
        assert "quote" in out

    def test_library_summary_and_export(self, tmp_path, capsys):
        target = tmp_path / "out.lib"
        assert main(["library", "--kind", "poor", "--liberty",
                     str(target)]) == 0
        out = capsys.readouterr().out
        assert "asic_poor" in out
        assert target.exists()
        from repro.cells import from_liberty

        library = from_liberty(target.read_text())
        assert library.drive_count("NAND2") == 2

    def test_flow_asic(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "5",
            "--workload", "adder_ripple",
        ]) == 0
        out = capsys.readouterr().out
        assert "asic" in out
        assert "MHz" in out

    def test_flow_custom(self, capsys):
        assert main([
            "flow", "custom", "--bits", "4", "--sizing-moves", "5",
            "--workload", "adder_kogge_stone", "--stages", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "custom" in out

    def test_gap(self, capsys):
        assert main(["gap", "--bits", "4", "--sizing-moves", "5"]) == 0
        out = capsys.readouterr().out
        assert "total quoted-frequency ratio" in out

    def test_flow_json(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["style"] == "asic"
        assert payload["gate_count"] > 0
        assert "wirelength_um" in payload["notes"]

    def test_gap_json(self, capsys):
        assert main([
            "gap", "--bits", "4", "--sizing-moves", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_ratio"] > 1.0
        assert payload["asic"]["style"] == "asic"
        assert payload["custom"]["style"] == "custom"

    def test_flow_structured_json(self, capsys):
        assert main([
            "flow", "structured", "--bits", "4", "--sizing-moves", "2",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["style"] == "structured"
        assert payload["gate_count"] > 0
        assert "fabric_utilization" in payload["notes"]

    def test_gap_three_way_json(self, capsys):
        assert main([
            "gap", "--styles", "asic,structured,custom",
            "--bits", "4", "--sizing-moves", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "asic"
        assert set(payload["pairwise"]) == {"structured", "custom"}
        structured = payload["pairwise"]["structured"]["total_ratio"]
        custom = payload["pairwise"]["custom"]["total_ratio"]
        assert 1.0 < structured < custom
        # The legacy two-way top-level keys only appear for the exact
        # asic/custom pair.
        assert "total_ratio" not in payload

    def test_gap_three_way_table(self, capsys):
        assert main([
            "gap", "--styles", "asic,structured,custom",
            "--bits", "4", "--sizing-moves", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "total quoted-frequency ratio" in out
        assert "structured" in out

    def test_gap_baseline_must_be_among_styles(self, capsys):
        assert main([
            "gap", "--styles", "asic,structured", "--baseline", "custom",
            "--bits", "4", "--sizing-moves", "2",
        ]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_gap_rejects_unknown_or_duplicate_style(self):
        with pytest.raises(SystemExit):
            main(["gap", "--styles", "asic,fpga"])
        with pytest.raises(SystemExit):
            main(["gap", "--styles", "asic,asic"])


class TestObservabilityFlags:
    def test_gap_profile_prints_stage_report(self, capsys):
        assert main([
            "gap", "--bits", "4", "--sizing-moves", "2", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        for stage in ("map", "place", "cts", "size", "sta", "quote"):
            assert f"flow.asic.{stage}" in out
        assert "sta.solve_min_period" in out

    def test_profile_flag_before_subcommand(self, capsys):
        assert main([
            "--profile", "gap", "--bits", "4", "--sizing-moves", "2",
        ]) == 0
        assert "flow.custom.sta" in capsys.readouterr().out

    def test_gap_trace_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "t.jsonl"
        assert main([
            "gap", "--bits", "4", "--sizing-moves", "2",
            "--trace", str(target),
        ]) == 0
        lines = target.read_text().strip().splitlines()
        assert len(lines) >= 10
        names = set()
        for line in lines:
            record = json.loads(line)  # every line is valid JSON
            names.add(record["name"])
            assert record["duration_ms"] >= 0.0
        stages = {n for n in names if n.startswith("flow.")}
        assert len(stages) >= 5
        assert "flow.asic" in names and "flow.custom" in names

    def test_trace_of_unprofiled_command_is_empty(self, tmp_path, capsys):
        target = tmp_path / "t.jsonl"
        assert main(["survey", "--trace", str(target)]) == 0
        assert target.read_text() == ""

    def test_obs_disabled_after_cli_run(self, tmp_path):
        from repro import obs

        main(["gap", "--bits", "4", "--sizing-moves", "2",
              "--trace", str(tmp_path / "t.jsonl")])
        assert not obs.enabled()

    def test_stats_subcommand(self, capsys):
        assert main(["stats", "--bits", "4", "--sizing-moves", "2"]) == 0
        out = capsys.readouterr().out
        assert "span" in out
        assert "flow.asic.sta" in out
        assert "sta.array.analyze.calls" in out

    def test_stats_metrics_json(self, tmp_path, capsys):
        target = tmp_path / "m.json"
        assert main([
            "stats", "--bits", "4", "--sizing-moves", "2",
            "--metrics-json", str(target),
        ]) == 0
        flat = json.loads(target.read_text())
        assert flat["sta.array.analyze.calls"] > 0
        assert "sta.solve_min_period.iterations.p50" in flat

    def test_stats_prom_stdout_and_file(self, tmp_path, capsys):
        assert main(["stats", "--bits", "4", "--sizing-moves", "2",
                     "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sta_array_analyze_calls_total counter" in out
        assert "_bucket{le=" in out
        target = tmp_path / "m.prom"
        assert main(["stats", "--bits", "4", "--sizing-moves", "2",
                     "--prom", str(target)]) == 0
        text = target.read_text()
        # Second run replays stages from cache, so assert on metrics
        # that exist either way rather than per-stage counters.
        assert "# TYPE" in text and "_total" in text
        assert f"{len(text.splitlines())} Prometheus" \
            in capsys.readouterr().out


class TestLiveTelemetryFlags:
    def test_events_stream_and_top(self, tmp_path, capsys):
        from repro.obs.events import read_events

        stream = tmp_path / "ev.jsonl"
        assert main(["--events", str(stream), "flow", "asic",
                     "--bits", "4", "--sizing-moves", "2"]) == 0
        capsys.readouterr()
        events = list(read_events(str(stream)))
        kinds = {e.kind for e in events}
        assert "stage.start" in kinds and "stage.done" in kinds
        # A second terminal replays the stream into a dashboard.
        assert main(["top", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "live telemetry" in out
        assert "flow asic" in out

    def test_top_missing_stream_errors(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "absent.jsonl")]) == 1
        assert "no event stream" in capsys.readouterr().err

    def test_live_dashboard_written_to_stderr(self, capsys):
        assert main(["--live", "variation", "--count", "2000",
                     "--workers", "2"]) == 0
        err = capsys.readouterr().err
        assert "live telemetry" in err

    def test_trace_chrome_export(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["flow", "asic", "--bits", "4",
                     "--sizing-moves", "2",
                     "--trace-chrome", str(target)]) == 0
        doc = json.loads(target.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "flow.asic.sta" in names
        assert "chrome" in capsys.readouterr().err

    def test_stall_timeout_exits_4_with_diagnostic(self, capsys,
                                                   monkeypatch):
        from repro import cli as cli_mod
        from repro.par.sweep import SweepStallError

        def stalling(args):
            raise SweepStallError("sweep 'x': worker silent", reports=[
                {"source": "worker-1", "silent_s": 0.5, "task": "2",
                 "last_kind": "task.start"},
            ])

        monkeypatch.setattr(cli_mod, "_cmd_survey", stalling)
        assert main(["--stall-timeout", "0.5", "survey"]) == 4
        err = capsys.readouterr().err
        assert "worker-1" in err
        assert "silent 0.50 s" in err

    def test_live_disabled_after_cli_run(self, tmp_path):
        from repro.obs import live

        assert main(["--events", str(tmp_path / "e.jsonl"),
                     "survey"]) == 0
        assert not live.enabled()


class TestFlowEngineFlags:
    def test_list_stages_without_style_shows_both(self, capsys):
        assert main(["flow", "--list-stages"]) == 0
        out = capsys.readouterr().out
        assert "asic flow stages" in out
        assert "custom flow stages" in out
        for stage in ("map", "place", "cts", "size", "sta", "quote"):
            assert stage in out

    def test_list_stages_one_style(self, capsys):
        assert main(["flow", "custom", "--list-stages"]) == 0
        out = capsys.readouterr().out
        assert "custom flow stages" in out
        assert "asic flow stages" not in out

    def test_style_required_without_list_stages(self, capsys):
        assert main(["flow"]) == 2
        assert "requires a style" in capsys.readouterr().err

    def test_until_prints_stage_records(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "2",
            "--until", "place",
        ]) == 0
        out = capsys.readouterr().out
        assert "stopped after 'place'" in out
        assert "skipped" in out

    def test_until_json_reports_statuses(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "2",
            "--until", "cts", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {s["name"]: s["status"] for s in payload["stages"]}
        assert statuses["cts"] == "ok"
        assert statuses["sta"] == "skipped"

    def test_unknown_until_stage_exits_2(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--until", "ghost",
        ]) == 2
        assert "unknown --until" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "flow.ck")
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "2",
            "--until", "cts", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "2",
            "--checkpoint", ck, "--resume", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {s["name"]: s["status"] for s in payload["stages"]}
        assert statuses["map"] == "resumed"
        assert payload["quoted_frequency_mhz"] > 0

    def test_flow_json_includes_stage_records(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "2",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in payload["stages"]] == [
            "map", "place", "cts", "size", "sta", "quote"
        ]
        assert all("wall_s" in s for s in payload["stages"])

    def test_no_cache_forces_recompute(self, capsys):
        args = ["flow", "asic", "--bits", "4", "--sizing-moves", "2",
                "--no-cache", "--json"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(s["status"] == "ok" for s in payload["stages"])

    def test_bench_json_reports_stage_timings(self, capsys):
        assert main([
            "bench", "--count", "500", "--bits", "4",
            "--sizing-moves", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        for stage in ("map", "place", "cts", "size", "sta", "quote"):
            assert payload[f"flow.stage.{stage}.s"] >= 0.0
            assert payload[f"flow.stage.{stage}.cached"] is False
        assert "cache.stage.hit_rate" in payload


class TestDeepProfiling:
    FLOW = ["flow", "asic", "--bits", "4", "--sizing-moves", "2"]

    def test_profiled_flow_lands_in_ledger(self, capsys):
        from repro.obs import ledger as run_ledger

        assert main(self.FLOW + ["--profile-cpu", "--profile-mem"]) == 0
        records = run_ledger.get_ledger().records(kind="flow")
        assert records
        stages = records[-1].stages
        assert stages
        for stage in stages:
            assert stage["cpu_s"] is not None
            assert stage["peak_mem_kb"] is not None

    def test_profile_flags_reset_after_command(self):
        from repro.obs import profile as obs_profile

        assert main(self.FLOW + ["--profile-cpu", "--profile-mem"]) == 0
        assert not obs_profile.enabled()

    def test_unprofiled_flow_stays_bare(self, capsys):
        assert main(self.FLOW + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for stage in payload["stages"]:
            assert "cpu_s" not in stage
            assert "peak_mem_kb" not in stage

    def test_flame_export(self, tmp_path, capsys):
        target = tmp_path / "flame.txt"
        assert main(self.FLOW + ["--profile-cpu",
                                 "--flame", str(target)]) == 0
        err = capsys.readouterr().err
        assert "flame stacks" in err
        lines = target.read_text().splitlines()
        assert lines
        assert any(line.startswith("flow.asic;") for line in lines)
        # cProfile sidecar rides along with --profile-cpu.
        cpu_lines = (tmp_path / "flame.txt.cpu").read_text().splitlines()
        assert cpu_lines
        for line in lines + cpu_lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) > 0

    def test_stats_self_prints_hotspots(self, capsys):
        # --profile turns the tracer on, so the ledger record carries
        # the span tree `stats --self` reads back.
        assert main(self.FLOW + ["--profile"]) == 0
        capsys.readouterr()
        assert main(["stats", "--self"]) == 0
        out = capsys.readouterr().out
        assert "span (by self time)" in out
        assert "critical path" in out
        assert "flow.asic" in out

    def test_stats_self_without_records_errors(self, capsys):
        assert main(["stats", "--self"]) == 1
        assert "no ledger record" in capsys.readouterr().err


class TestBudgetCommand:
    def _write(self, tmp_path, budgets, bench):
        budget_path = tmp_path / "PERF_BUDGETS.toml"
        budget_path.write_text(budgets)
        bench_path = tmp_path / "BENCH.json"
        bench_path.write_text(json.dumps(bench))
        return str(budget_path), str(bench_path)

    def test_budget_ok(self, tmp_path, capsys):
        budgets, bench = self._write(
            tmp_path, '[wall]\n"bench.x.s" = 2.0\n', {"bench.x.s": 0.5})
        assert main(["budget", "--budgets", budgets,
                     "--bench", bench]) == 0
        assert "no finding" in capsys.readouterr().out

    def test_budget_gate_exits_3_on_blown_ceiling(self, tmp_path,
                                                  capsys):
        budgets, bench = self._write(
            tmp_path, '[wall]\n"bench.x.s" = 1.0\n', {"bench.x.s": 5.0})
        assert main(["budget", "--budgets", budgets,
                     "--bench", bench, "--gate"]) == 3
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "budget_wall" in out

    def test_budget_without_gate_reports_but_exits_0(self, tmp_path):
        budgets, bench = self._write(
            tmp_path, '[wall]\n"bench.x.s" = 1.0\n', {"bench.x.s": 5.0})
        assert main(["budget", "--budgets", budgets,
                     "--bench", bench]) == 0

    def test_budget_json_output(self, tmp_path, capsys):
        budgets, bench = self._write(
            tmp_path, '[wall]\n"bench.x.s" = 1.0\n', {"bench.x.s": 5.0})
        assert main(["budget", "--budgets", budgets,
                     "--bench", bench, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["kind"] == "budget_wall"
        assert payload["findings"][0]["severity"] == "fail"

    def test_budget_missing_files_exit_1(self, tmp_path, capsys):
        assert main(["budget", "--budgets",
                     str(tmp_path / "none.toml")]) == 1
        assert "cannot read budget file" in capsys.readouterr().err
        budgets, _ = self._write(tmp_path, "[wall]\n", {})
        assert main(["budget", "--budgets", budgets,
                     "--bench", str(tmp_path / "none.json")]) == 1
        assert "cannot read bench file" in capsys.readouterr().err

    def test_budget_invalid_toml_exit_1(self, tmp_path, capsys):
        budgets, bench = self._write(
            tmp_path, '[disk]\n"bench.x.s" = 1.0\n', {})
        assert main(["budget", "--budgets", budgets,
                     "--bench", bench]) == 1
        assert "unknown section" in capsys.readouterr().err
