"""Boolean expression AST used as synthesis input.

This is the "register-transfer level" of our miniature flow: designs enter
as boolean expressions per output (plus the word-level generators in
:mod:`repro.datapath`), are optimised structurally, and are then mapped
onto a cell library.  Section 4.2 of the paper contrasts exactly these two
entry points: "fast datapath designs ... do exist in pre-designed
libraries, but are not automatically invoked in register-transfer level
logic synthesis of ASICs".
"""

from __future__ import annotations

from dataclasses import dataclass


class SynthesisError(ValueError):
    """Raised for malformed expressions or unsynthesisable requests."""


class Expr:
    """Base class for boolean expression nodes.

    Nodes are immutable; structural helpers return new trees.
    """

    def evaluate(self, env: dict[str, bool]) -> bool:
        """Evaluate under a truth assignment for every variable."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        """Free variables of the expression."""
        raise NotImplementedError

    def depth(self) -> int:
        """Operator nesting depth (constants and variables are depth 0)."""
        raise NotImplementedError

    def count_ops(self) -> int:
        """Number of operator nodes."""
        raise NotImplementedError

    # Operator sugar for building expressions in Python code.
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Const(Expr):
    """A constant 0 or 1."""

    value: bool

    def evaluate(self, env: dict[str, bool]) -> bool:
        return self.value

    def variables(self) -> set[str]:
        return set()

    def depth(self) -> int:
        return 0

    def count_ops(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "1" if self.value else "0"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Var(Expr):
    """A named input variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha() and self.name[0] != "_":
            raise SynthesisError(f"invalid variable name {self.name!r}")

    def evaluate(self, env: dict[str, bool]) -> bool:
        try:
            return bool(env[self.name])
        except KeyError:
            raise SynthesisError(f"no value for variable {self.name!r}") from None

    def variables(self) -> set[str]:
        return {self.name}

    def depth(self) -> int:
        return 0

    def count_ops(self) -> int:
        return 0

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    child: Expr

    def evaluate(self, env: dict[str, bool]) -> bool:
        return not self.child.evaluate(env)

    def variables(self) -> set[str]:
        return self.child.variables()

    def depth(self) -> int:
        return 1 + self.child.depth()

    def count_ops(self) -> int:
        return 1 + self.child.count_ops()

    def __repr__(self) -> str:
        return f"~{self.child!r}"


class _NaryOp(Expr):
    """Shared behaviour of n-ary AND/OR nodes."""

    symbol = "?"

    def __init__(self, children) -> None:
        children = tuple(children)
        if len(children) < 2:
            raise SynthesisError(
                f"{type(self).__name__} needs at least two operands"
            )
        self.children = children

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def variables(self) -> set[str]:
        out: set[str] = set()
        for child in self.children:
            out |= child.variables()
        return out

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)

    def count_ops(self) -> int:
        return 1 + sum(child.count_ops() for child in self.children)

    def __repr__(self) -> str:
        inner = f" {self.symbol} ".join(repr(c) for c in self.children)
        return f"({inner})"


class And(_NaryOp):
    """N-ary conjunction."""

    symbol = "&"

    def evaluate(self, env: dict[str, bool]) -> bool:
        return all(child.evaluate(env) for child in self.children)


class Or(_NaryOp):
    """N-ary disjunction."""

    symbol = "|"

    def evaluate(self, env: dict[str, bool]) -> bool:
        return any(child.evaluate(env) for child in self.children)


@dataclass(frozen=True)
class Xor(Expr):
    """Two-input exclusive-or."""

    left: Expr
    right: Expr

    def evaluate(self, env: dict[str, bool]) -> bool:
        return self.left.evaluate(env) != self.right.evaluate(env)

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def count_ops(self) -> int:
        return 1 + self.left.count_ops() + self.right.count_ops()

    def __repr__(self) -> str:
        return f"({self.left!r} ^ {self.right!r})"


def mux(select: Expr, if_true: Expr, if_false: Expr) -> Expr:
    """2:1 multiplexer as an expression: ``s ? a : b``."""
    return Or((And((if_true, select)), And((if_false, Not(select)))))


def majority3(a: Expr, b: Expr, c: Expr) -> Expr:
    """Three-input majority (the carry function of a full adder)."""
    return Or((And((a, b)), And((b, c)), And((a, c))))
