"""E10 -- Section 8: process variation and accessibility.

Claims measured from the Monte Carlo die populations:

* typical silicon 60-70% faster than worst-case quotes;
* fastest bins 20-40% faster than typical, at unsellable yield;
* overall fastest custom silicon ~90% faster than the ASIC quote;
* at-speed testing worth 30-40% over worst case (Section 8.3);
* new-process bin spread 30-40% (the Intel 533-733 MHz footnote);
* fab-to-fab spread 20-25% (Section 8.1.2);
* which variance component dominates (the DESIGN.md ablation).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.variation import (
    MATURE_PROCESS,
    NEW_PROCESS,
    VariationComponents,
    access_gap,
    custom_flagship_frequency,
    default_foundry_set,
    fab_spread,
    maturity_trend,
    sample_chip_speeds,
)

NOMINAL = 400.0


def _measure():
    dist = sample_chip_speeds(NOMINAL, NEW_PROCESS, count=30000, seed=17)
    gap = access_gap(dist)
    fabs = default_foundry_set(MATURE_PROCESS)
    trend = maturity_trend(NOMINAL, NEW_PROCESS, quarters=8, count=6000)
    return dist, gap, fabs, trend


def test_e10_variation(benchmark):
    dist, gap, fabs, trend = run_once(benchmark, _measure)
    flagship_yield = dist.yield_at(custom_flagship_frequency(dist))

    rows = [
        row("typical vs worst-case quote", "60-70% faster",
            100 * (gap.typical_over_quote - 1.0), 45.0, 75.0, fmt="{:.0f}%"),
        row("fastest bins vs typical", "20-40% faster",
            100 * (gap.flagship_over_typical - 1.0), 15.0, 40.0,
            fmt="{:.0f}%"),
        row("fastest custom vs ASIC quote", "~90% faster",
            100 * (gap.flagship_over_quote - 1.0), 70.0, 110.0,
            fmt="{:.0f}%"),
        row("at-speed testing vs worst case", "30-40%",
            100 * (gap.tested_over_quote - 1.0), 25.0, 45.0, fmt="{:.0f}%"),
        row("new-process bin spread (p99/p1)", "30-40% (Intel 533-733)",
            100 * (dist.spread - 1.0), 28.0, 50.0, fmt="{:.0f}%"),
        row("flagship bin yield", "insufficient for ASICs",
            100 * flagship_yield, 0.5, 6.0, fmt="{:.1f}%"),
        row("fab-to-fab spread", "20-25%",
            100 * (fab_spread(fabs) - 1.0), 18.0, 27.0, fmt="{:.0f}%"),
        row("maturity: spread shrinks over 8 quarters", "decreases",
            trend[0].spread / trend[-1].spread, 1.02, 2.0),
    ]

    print()
    print("ablation: which variance component drives the bin spread")
    base = NEW_PROCESS
    fields = ("line_to_line", "wafer_to_wafer", "die_to_die", "intra_die")
    for name in fields:
        zeroed = {f: (0.0 if f == name else getattr(base, f)) for f in fields}
        comp = VariationComponents(**zeroed)
        spread = sample_chip_speeds(NOMINAL, comp, count=8000, seed=5).spread
        print(f"  without {name:<15s}: spread {spread:.3f}x")

    report("E10 Process variation and accessibility (Section 8)", rows)
    for entry in rows:
        assert entry.ok, entry


def test_e10b_intra_die_ssta(benchmark):
    """Intra-die variation on the real netlist (statistical STA).

    Section 8.1.1's intra-die component, computed on an actual timing
    graph instead of the abstract max-of-N model: the statistical max
    over paths shifts the mean period above nominal, and the analytical
    (Clark) propagation agrees with brute-force Monte Carlo.
    """
    from paperbench import report as _report, row as _row

    from repro.cells import rich_asic_library
    from repro.datapath import kogge_stone_adder
    from repro.sta import (
        Clock,
        analyze_statistical,
        monte_carlo_min_period,
        register_boundaries,
    )
    from repro.tech import CMOS250_ASIC

    def _measure_ssta():
        library = rich_asic_library(CMOS250_ASIC)
        module = register_boundaries(kogge_stone_adder(12, library), library)
        clk = Clock("c", 30000.0)
        ssta = analyze_statistical(module, library, clk, sigma_fraction=0.08)
        mc = monte_carlo_min_period(
            module, library, clk, sigma_fraction=0.08, samples=300, seed=5
        )
        return ssta, mc

    ssta, mc = benchmark.pedantic(_measure_ssta, rounds=1, iterations=1)
    rows = [
        _row("intra-die mean shift over nominal", "slows every chip",
             100 * ssta.mean_shift_fraction, 0.2, 10.0, fmt="{:.2f}%"),
        _row("Clark mean vs Monte Carlo mean", "agree",
             ssta.mean_period_ps / mc.mean(), 0.97, 1.03),
        _row("p99-yield period over mean", "binning tail",
             ssta.period_at_yield(0.99) / ssta.mean_period_ps, 1.0, 1.2),
    ]
    _report("E10b Intra-die variation on the timing graph (SSTA)", rows)
    for entry in rows:
        assert entry.ok, entry
