"""Recursive-descent parser for the boolean expression language.

Grammar (loosest-binding first)::

    expr   := xorexp ('|' xorexp)*
    xorexp := term   ('^' term)*
    term   := factor ('&' factor)*
    factor := ('~' | '!') factor | '(' expr ')' | '0' | '1' | IDENT

``!`` and ``~`` are interchangeable negation.  Identifiers follow the
netlist identifier rules (letters, digits, underscore, brackets).
"""

from __future__ import annotations

import re

from repro.synth.ast import And, Const, Expr, Not, Or, SynthesisError, Var, Xor

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\[\]]*)"
    r"|(?P<const>[01])"
    r"|(?P<op>[&|^~!()]))"
)


class _Tokens:
    """Token stream with single-token lookahead."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.items: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                remainder = text[pos:].strip()
                if not remainder:
                    break
                raise SynthesisError(
                    f"cannot tokenise {remainder[:20]!r} in expression {text!r}"
                )
            token = match.group("ident") or match.group("const") or match.group("op")
            self.items.append(token)
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise SynthesisError(f"unexpected end of expression {self.text!r}")
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.pop()
        if got != token:
            raise SynthesisError(
                f"expected {token!r} but found {got!r} in {self.text!r}"
            )

    def exhausted(self) -> bool:
        return self.index >= len(self.items)


def parse_expression(text: str) -> Expr:
    """Parse a boolean expression string into an :class:`Expr` tree.

    Raises:
        SynthesisError: on any syntax problem, citing the offending text.
    """
    if not text or not text.strip():
        raise SynthesisError("empty expression")
    tokens = _Tokens(text)
    expr = _parse_or(tokens)
    if not tokens.exhausted():
        raise SynthesisError(
            f"trailing input {tokens.items[tokens.index:]} in {text!r}"
        )
    return expr


def _parse_or(tokens: _Tokens) -> Expr:
    parts = [_parse_xor(tokens)]
    while tokens.peek() == "|":
        tokens.pop()
        parts.append(_parse_xor(tokens))
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


def _parse_xor(tokens: _Tokens) -> Expr:
    expr = _parse_and(tokens)
    while tokens.peek() == "^":
        tokens.pop()
        expr = Xor(expr, _parse_and(tokens))
    return expr


def _parse_and(tokens: _Tokens) -> Expr:
    parts = [_parse_factor(tokens)]
    while tokens.peek() == "&":
        tokens.pop()
        parts.append(_parse_factor(tokens))
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def _parse_factor(tokens: _Tokens) -> Expr:
    token = tokens.pop()
    if token in ("~", "!"):
        return Not(_parse_factor(tokens))
    if token == "(":
        inner = _parse_or(tokens)
        tokens.expect(")")
        return inner
    if token == "0":
        return Const(False)
    if token == "1":
        return Const(True)
    if token in ("&", "|", "^", ")"):
        raise SynthesisError(f"unexpected operator {token!r} in {tokens.text!r}")
    return Var(token)


def parse_design(assignments: dict[str, str]) -> dict[str, Expr]:
    """Parse a multi-output design given as ``{output: expression}``."""
    return {out: parse_expression(text) for out, text in assignments.items()}
