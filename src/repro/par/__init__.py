"""Performance layer: memoized evaluation, incremental STA, sweeps.

Three pieces:

* :mod:`repro.par.memo` -- process-wide memoization of timing-arc and
  closed-form sizing evaluations, with hit/miss counters surfaced
  through :mod:`repro.obs`.
* :mod:`repro.par.session` -- :class:`TimingSession`, incremental STA
  over sizing moves: one full propagation up front, then per-move
  re-propagation of only the changed cell's output cone.
* :mod:`repro.par.sweep` -- deterministic process-pool fan-out for
  Monte Carlo sampling and design-space surveys (per-task seeds,
  ordered reduce, trace propagation back to the parent).

Submodules are resolved lazily (PEP 562): :mod:`repro.sta.engine`
imports ``repro.par.memo`` while ``repro.par.session`` imports the
engine, so an eager ``__init__`` would cycle.
"""

from __future__ import annotations

import importlib

__all__ = ["memo", "session", "sweep", "TimingSession", "run_sweep", "task_seeds"]

_LAZY_ATTRS = {
    "memo": ("repro.par.memo", None),
    "session": ("repro.par.session", None),
    "sweep": ("repro.par.sweep", None),
    "TimingSession": ("repro.par.session", "TimingSession"),
    "run_sweep": ("repro.par.sweep", "run_sweep"),
    "task_seeds": ("repro.par.sweep", "task_seeds"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value
