"""Integration tests: full ASIC and custom flows plus gap analysis.

These exercise the entire stack -- library generation, datapath
generators, pipelining, placement, buffering, sizing, STA, variation
quoting -- end to end, asserting the paper-shaped relationships rather
than absolute numbers.
"""

import pytest

from repro.core import GapError, analyze_gap, analyze_multi_gap
from repro.flows import (
    AsicFlowOptions,
    CustomFlowOptions,
    FlowError,
    StructuredFlowOptions,
    run_asic_flow,
    run_custom_flow,
    run_structured_flow,
)

BITS = 8  # keep runtimes civil; shape is width-independent


@pytest.fixture(scope="module")
def asic_baseline():
    return run_asic_flow(AsicFlowOptions(bits=BITS, sizing_moves=15))


@pytest.fixture(scope="module")
def structured_mid():
    return run_structured_flow(
        StructuredFlowOptions(bits=BITS, sizing_moves=15)
    )


@pytest.fixture(scope="module")
def custom_full():
    return run_custom_flow(
        CustomFlowOptions(bits=BITS, target_cycle_fo4=14.0, sizing_moves=25)
    )


class TestAsicFlow:
    def test_baseline_lands_in_typical_band(self, asic_baseline):
        # An unpipelined naive ALU should land in the "typical ASIC"
        # 120-150 MHz class as a worst-case quote at 8 bits or be well
        # below custom speeds in any case.
        assert 50 < asic_baseline.quoted_frequency_mhz < 350
        assert asic_baseline.fo4_depth > 25

    def test_quote_below_typical(self, asic_baseline):
        # Section 8: the marketable ASIC number is the worst-case quote.
        assert (
            asic_baseline.quoted_frequency_mhz
            < asic_baseline.typical_frequency_mhz
        )
        assert asic_baseline.quote_factor < 0.75

    def test_pipelining_helps(self, asic_baseline):
        piped = run_asic_flow(
            AsicFlowOptions(bits=BITS, pipeline_stages=4, sizing_moves=15)
        )
        assert (
            piped.typical_frequency_mhz
            > 1.5 * asic_baseline.typical_frequency_mhz
        )
        assert piped.pipeline_stages == 4

    def test_macros_help(self, asic_baseline):
        macro = run_asic_flow(
            AsicFlowOptions(bits=BITS, workload="alu_macro", sizing_moves=15)
        )
        assert macro.typical_frequency_mhz > asic_baseline.typical_frequency_mhz

    def test_poor_library_hurts(self):
        rich = run_asic_flow(
            AsicFlowOptions(bits=BITS, workload="adder_ripple",
                            sizing_moves=10)
        )
        poor = run_asic_flow(
            AsicFlowOptions(bits=BITS, workload="adder_ripple",
                            rich_library=False, sizing_moves=10)
        )
        assert poor.typical_frequency_mhz < rich.typical_frequency_mhz

    def test_speed_test_raises_quote(self, asic_baseline):
        tested = run_asic_flow(
            AsicFlowOptions(bits=BITS, speed_test=True, sizing_moves=15)
        )
        assert (
            tested.quoted_frequency_mhz > asic_baseline.quoted_frequency_mhz
        )

    def test_unknown_workload(self):
        with pytest.raises(FlowError, match="unknown workload"):
            run_asic_flow(AsicFlowOptions(workload="cache_controller"))


class TestCustomFlow:
    def test_custom_cycle_near_custom_class(self, custom_full):
        # Real 0.25 um custom designs sat at 13-15 FO4 per cycle.
        assert 8 < custom_full.fo4_depth < 20

    def test_flagship_above_typical(self, custom_full):
        assert (
            custom_full.quoted_frequency_mhz
            > custom_full.typical_frequency_mhz
        )

    def test_domino_contributes(self):
        base = run_custom_flow(
            CustomFlowOptions(bits=BITS, use_domino=False, sizing_moves=15)
        )
        domino = run_custom_flow(
            CustomFlowOptions(bits=BITS, use_domino=True, sizing_moves=15)
        )
        ratio = domino.typical_frequency_mhz / base.typical_frequency_mhz
        # Section 7.1's ~1.5x sequential; our logic fraction is higher
        # than a processor's, so the dilution is milder.
        assert 1.1 < ratio < 1.9


class TestGapAnalysis:
    def test_gap_in_paper_band(self, asic_baseline, custom_full):
        report = analyze_gap(asic_baseline, custom_full)
        # Naive ASIC vs all-levers custom: between the observed 6-8x and
        # the theoretical 18x.
        assert 5.0 < report.total_ratio < 20.0

    def test_decomposition_is_exact(self, asic_baseline, custom_full):
        report = analyze_gap(asic_baseline, custom_full)
        assert report.factor_product() == pytest.approx(
            report.total_ratio, rel=1e-6
        )

    def test_quoting_factor_near_paper_1_9(self, asic_baseline, custom_full):
        report = analyze_gap(asic_baseline, custom_full)
        assert 1.6 < report.quoting_factor < 2.1

    def test_depth_factor_dominates(self, asic_baseline, custom_full):
        report = analyze_gap(asic_baseline, custom_full)
        assert report.cycle_depth_factor > report.technology_factor
        assert report.cycle_depth_factor > report.quoting_factor

    def test_good_asic_narrows_gap(self, custom_full):
        good_asic = run_asic_flow(
            AsicFlowOptions(
                bits=BITS, workload="alu_macro", pipeline_stages=4,
                sizing_moves=20, speed_test=True,
            )
        )
        naive_asic = run_asic_flow(
            AsicFlowOptions(bits=BITS, sizing_moves=15)
        )
        good_gap = analyze_gap(good_asic, custom_full).total_ratio
        naive_gap = analyze_gap(naive_asic, custom_full).total_ratio
        assert good_gap < naive_gap
        # Even the best ASIC methodology leaves a real gap (Section 9's
        # pessimistic reading).
        assert good_gap > 1.5

    def test_table_renders(self, asic_baseline, custom_full):
        text = analyze_gap(asic_baseline, custom_full).table()
        assert "cycle depth" in text
        assert "quoting" in text

    def test_three_way_structured_sits_between(
        self, asic_baseline, structured_mid, custom_full
    ):
        # The paper's spectrum: structured ASICs recover part of the
        # gap (denser clocking, binning) without custom's logic styles.
        gap = analyze_multi_gap(
            [asic_baseline, structured_mid, custom_full]
        )
        structured_ratio = gap.report_for("structured").total_ratio
        custom_ratio = gap.report_for("custom").total_ratio
        assert 1.0 < structured_ratio < custom_ratio
        assert (asic_baseline.min_period_ps
                > structured_mid.min_period_ps
                > custom_full.min_period_ps)

    def test_three_way_table_renders_all_columns(
        self, asic_baseline, structured_mid, custom_full
    ):
        text = analyze_multi_gap(
            [asic_baseline, structured_mid, custom_full]
        ).table()
        assert "structured" in text and "custom" in text
        assert "total quoted-frequency ratio" in text

    def test_structured_pays_in_area(self, asic_baseline, structured_mid):
        # The master bought dwarfs the cells used: the structured
        # frequency recovery is not free.
        assert structured_mid.area_um2 > asic_baseline.area_um2

    def test_degenerate_rejected(self, asic_baseline, custom_full):
        import dataclasses

        broken = dataclasses.replace(asic_baseline)
        broken.quoted_frequency_mhz = 0.0
        with pytest.raises(GapError):
            analyze_gap(broken, custom_full)
