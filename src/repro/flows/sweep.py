"""Design-space flow sweeps with stage caching and ledger-backed resume.

:func:`run_flow_sweep` maps a list of flow option records through
:func:`repro.par.sweep.run_sweep_report`, so a survey gets the
supervised runner's guarantees (ordered reduce, per-task determinism,
span adoption, crash/hang/stall recovery under a
:class:`~repro.robust.retry.RetryPolicy`) *and* the engine's
fingerprint cache: sweep points that share a stage prefix -- same
netlist and synth options, different sizing/variation knobs -- compute
the prefix once and replay it everywhere else.

Serially (``workers <= 1``) the points share the process-global
in-memory cache.  Across worker processes the in-memory cache does not
travel, so a ``cache_dir`` spills stage blobs to disk where every
worker finds them; with the default fork start method workers also
inherit whatever the parent already cached.

On top of the stage cache sits *sweep resume*: when the run ledger is
recording, every completed point appends a ``kind="sweep.point"``
record carrying the full ``FlowResult.to_dict()`` under the point's
design fingerprint (:func:`point_fingerprint`) -- and because the
supervised runner adopts worker records the moment each task arrives,
the records survive a sweep killed halfway.  ``resume=True`` (the
CLI's ``--resume-sweep``) checks each point's fingerprint against the
ledger first and replays completed points from their records instead
of recomputing them.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

from repro.flows import cache as stage_cache
from repro.flows.options import (
    FlowOptions,
    digest,
    options_fingerprint,
)
from repro.flows.results import FlowError, FlowResult
from repro.obs import ledger as run_ledger
from repro.par.sweep import SweepReport, SweepStallError, run_sweep_report
from repro.robust.retry import RetryPolicy
from repro.tech.process import ProcessTechnology


def _point_style(options: FlowOptions) -> str:
    """Registered style a point's options record resolves to."""
    # Deferred: registry lookup imports the flow modules; keep the
    # sweep module importable without paying for the whole flow stack.
    from repro.flows.registry import backend_for_options

    return backend_for_options(options).name


def _point_tech_name(options: FlowOptions,
                     tech: ProcessTechnology | None) -> str:
    """The technology a point will actually run under, by name."""
    if tech is not None:
        return tech.name
    from repro.flows.registry import backend_for_options

    return backend_for_options(options).default_tech.name


def point_fingerprint(options: FlowOptions,
                      tech: ProcessTechnology | None = None) -> str:
    """Design-point identity for ledger-backed sweep resume.

    Policy knobs (``on_error``, ``fault``) are excluded via
    :func:`~repro.flows.options.options_fingerprint`, so a point
    completed under chaos injection still matches -- and resumes -- its
    clean rerun.
    """
    return digest({
        "kind": "sweep.point",
        "flow": _point_style(options),
        "options": options_fingerprint(options),
        "tech": _point_tech_name(options, tech),
    })


def _sweep_point(task: tuple) -> FlowResult:
    """Run one flow point (module-level, so pool workers can pickle it)."""
    options, tech, cache_dir = task
    if cache_dir is not None:
        stage_cache.configure(cache_dir)
    # Deferred: the flow modules import par.sweep's sibling machinery;
    # importing them lazily keeps worker startup minimal.
    from repro.flows.registry import backend_for_options, run_backend_flow

    backend = backend_for_options(options)
    result = run_backend_flow(backend, options, tech)
    if run_ledger.enabled():
        # The replayable record behind --resume-sweep.  In a worker
        # this lands in the buffer and is adopted by the parent the
        # moment the task's reply arrives, so a sweep killed later
        # keeps every completed point.
        run_ledger.record(run_ledger.RunRecord(
            kind="sweep.point",
            label=f"{result.style}.{options.workload}{options.bits}",
            fingerprint=point_fingerprint(options, tech),
            tech=result.technology.name,
            config=dataclasses.asdict(options),
            result=result.to_dict(),
        ))
    return result


def _point_metrics(result: FlowResult) -> dict:
    """Per-point scalars for live ``task.done`` events (module-level so
    pool workers can pickle it)."""
    return {
        "quoted_mhz": result.quoted_frequency_mhz,
        "typical_mhz": result.typical_frequency_mhz,
        "fo4_depth": result.fo4_depth,
        "area_um2": result.area_um2,
    }


def load_resume_points(
    option_sets: Sequence[FlowOptions],
    tech: ProcessTechnology | None = None,
) -> dict[int, FlowResult]:
    """Completed points replayable from the run ledger, by task index.

    Scans the active ledger's ``sweep.point`` records (newest wins per
    fingerprint) and rebuilds each matching point's
    :class:`FlowResult`; records that fail to rebuild are skipped --
    resume degrades to recompute, never to an error.
    """
    latest: dict[str, dict] = {}
    for rec in run_ledger.get_ledger().records(kind="sweep.point"):
        if rec.result:
            latest[rec.fingerprint] = rec.result
    precomputed: dict[int, FlowResult] = {}
    for index, options in enumerate(option_sets):
        payload = latest.get(point_fingerprint(options, tech))
        if payload is None:
            continue
        try:
            precomputed[index] = FlowResult.from_dict(payload)
        except (FlowError, TypeError, ValueError):
            continue
    return precomputed


def _sweep_fingerprint(option_sets: Sequence[FlowOptions],
                       tech: ProcessTechnology | None) -> str:
    return digest({
        "kind": "sweep",
        "points": [options_fingerprint(o) for o in option_sets],
        "tech": tech.name if tech is not None else None,
    })


def _record_sweep(option_sets: Sequence[FlowOptions],
                  tech: ProcessTechnology | None, workers: int,
                  cache_dir: str | None, label: str, wall_s: float,
                  report: SweepReport | None,
                  stall_reports: list[dict] | None = None) -> None:
    """Append the sweep-level ledger record (success or post-mortem)."""
    cache_stats = stage_cache.stats()
    metrics = {
        "points": len(option_sets),
        "workers": workers,
        "cache.stage.hits": int(cache_stats["hits"]),
        "cache.stage.misses": int(cache_stats["misses"]),
        "cache.stage.hit_rate": round(cache_stats["hit_rate"], 4),
    }
    failures: list[dict] = []
    diagnostics: list[dict] = []
    if report is not None:
        metrics.update({
            "retries": report.retries,
            "replays": len(report.replays),
            "quarantined": len(report.failures),
            "workers_lost": report.workers_lost,
        })
        failures.extend(f.to_dict() for f in report.failures)
        failures.extend({"kind": "stall", **r} for r in report.stalls)
        # Profile attribution aggregated across all points/workers:
        # total CPU burned and the worst per-stage heap peak.  Only
        # present when obs.profile was on, so plain sweep records are
        # unchanged.
        cpu_total, peak_kb, profiled = 0.0, 0.0, False
        for result in report.results:
            for stage in getattr(result, "stage_records", None) or []:
                if stage.cpu_s is not None:
                    cpu_total += stage.cpu_s
                    profiled = True
                if stage.peak_mem_kb is not None:
                    peak_kb = max(peak_kb, stage.peak_mem_kb)
                    profiled = True
        if profiled:
            metrics["profile.cpu_s"] = round(cpu_total, 6)
            metrics["profile.peak_mem_kb"] = round(peak_kb, 3)
        diagnostics.extend(
            {"code": "sweep.quarantined", "severity": "error",
             "message": str(f), "subject": f"task {f.index}", "hint": ""}
            for f in report.failures
        )
    if stall_reports:
        metrics["aborted"] = 1
        failures.extend({"kind": "stall", **r} for r in stall_reports)
        diagnostics.extend(
            {"code": "sweep.stalled", "severity": "error",
             "message": r.get("detail") or f"worker {r.get('source')} "
             f"silent {r.get('silent_s', 0):.2f}s",
             "subject": str(r.get("source", "")), "hint": ""}
            for r in stall_reports
        )
    run_ledger.record(run_ledger.RunRecord(
        kind="sweep",
        label=label,
        fingerprint=_sweep_fingerprint(option_sets, tech),
        tech=tech.name if tech is not None else "",
        config={"points": len(option_sets), "workers": workers,
                "cache_dir": cache_dir},
        wall_s=round(wall_s, 6),
        metrics=metrics,
        failures=failures,
        diagnostics=diagnostics,
    ))


def run_flow_sweep_report(
    option_sets: Sequence[FlowOptions],
    tech: ProcessTechnology | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
    label: str = "flows.sweep",
    retry: RetryPolicy | None = None,
    resume: bool = False,
    chaos: str | None = None,
) -> SweepReport:
    """Run one flow per option record; return the full sweep report.

    Args:
        option_sets: flow option records; each point runs the backend
            its options class is registered under (see
            :func:`repro.flows.registry.backend_for_options`) -- plain
            :class:`FlowOptions` records run the ASIC flow.  Mixing
            styles in one sweep is fine.
        tech: technology override for every point (None = each flow's
            default).
        workers: process count; <= 1 runs serially in-process.
        cache_dir: directory for the shared on-disk stage cache (None =
            in-memory only; recommended whenever ``workers > 1``).
        retry: per-task fault-tolerance policy; None keeps fail-fast
            semantics.
        resume: replay points already completed in the run ledger
            (matched by :func:`point_fingerprint`) instead of
            recomputing them.
        chaos: fault-injection spec forwarded to the sweep runner
            (``kill-worker:N`` etc.) -- selftest/CI only.

    Returns:
        The runner's :class:`~repro.par.sweep.SweepReport`;
        ``report.results`` holds one :class:`FlowResult` per option
        record in input order (quarantined points hold
        :class:`~repro.robust.retry.TaskFailure` placeholders).

    Raises:
        SweepStallError: a worker stalled and no retry policy was
            armed; the sweep's ledger record still captures the stall
            reports for post-mortems.
    """
    for options in option_sets:
        if not isinstance(options, FlowOptions):
            raise FlowError(
                f"sweep points must be FlowOptions records, got "
                f"{type(options).__name__}"
            )
    if cache_dir is not None:
        stage_cache.configure(cache_dir)
    precomputed = None
    if resume and run_ledger.enabled():
        precomputed = load_resume_points(option_sets, tech)
    tasks = [(options, tech, cache_dir) for options in option_sets]
    started = time.perf_counter()
    try:
        report = run_sweep_report(
            _sweep_point, tasks, workers=workers, label=label,
            summarize=_point_metrics, retry=retry, chaos=chaos,
            precomputed=precomputed,
        )
    except SweepStallError as exc:
        if run_ledger.enabled():
            # Post-mortem record: `runs show` sees what stalled even
            # though the sweep aborted.
            _record_sweep(option_sets, tech, workers, cache_dir, label,
                          time.perf_counter() - started, report=None,
                          stall_reports=exc.reports)
        raise
    if run_ledger.enabled():
        # One sweep-level record on top of the per-point records
        # (which the supervised runner merged in from the workers).
        _record_sweep(option_sets, tech, workers, cache_dir, label,
                      time.perf_counter() - started, report=report)
    return report


def run_flow_sweep(
    option_sets: Sequence[FlowOptions],
    tech: ProcessTechnology | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
    label: str = "flows.sweep",
    retry: RetryPolicy | None = None,
    resume: bool = False,
    chaos: str | None = None,
) -> list[FlowResult]:
    """Run one flow per option record, in task order.

    Thin wrapper over :func:`run_flow_sweep_report` returning just the
    ordered results -- ``FlowResult`` per option record, identical for
    any worker count.
    """
    return run_flow_sweep_report(
        option_sets, tech=tech, workers=workers, cache_dir=cache_dir,
        label=label, retry=retry, resume=resume, chaos=chaos,
    ).results
