"""Gate delay models: logical-effort linear arcs and NLDM lookup tables.

Two timing-arc models are provided, matching the two styles the paper's
world uses:

* :class:`LinearDelayArc` -- the logical-effort model,
  ``d = tau * (p + g * h)``, stored in absolute picoseconds as
  ``d = parasitic + R_eff * C_load + k * slew_in``.  This is the model
  custom designers reason with (Sutherland/Sproull; referenced implicitly
  via the FO4 metric of Section 4) and the model our continuous sizers
  in :mod:`repro.sizing` optimise.
* :class:`NLDMArc` -- a non-linear delay model lookup table over
  (input slew x output load), the form commercial ASIC libraries ship
  (Section 6's "cell selection from a fixed library").  Our library
  builder derives tables from the linear model with a mild saturation
  non-linearity so the two agree at typical operating points.

Both expose the same interface: ``delay_ps(load_ff, input_slew_ps)`` and
``output_slew_ps(load_ff, input_slew_ps)``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np


class DelayModelError(ValueError):
    """Raised for unphysical delay-model parameters or queries."""


#: Default sensitivity of gate delay to input transition time.  A slow
#: input edge delays the switching point; 0.15 is a representative NLDM
#: slope for mid-rail-threshold static CMOS.
DEFAULT_SLEW_SENSITIVITY = 0.15

#: Default ratio of output transition time to gate delay.
DEFAULT_SLEW_RATIO = 0.9


@dataclass(frozen=True)
class LinearDelayArc:
    """Logical-effort style linear delay arc, in absolute units.

    ``delay = parasitic_ps + effort_ps_per_ff * load_ff
            + slew_sensitivity * input_slew_ps``

    Attributes:
        parasitic_ps: load-independent self-delay (tau * p).
        effort_ps_per_ff: effective drive resistance expressed as ps of
            delay per fF of load (tau / (drive * C_unit)).
        slew_sensitivity: delay added per ps of input transition time.
        slew_ratio: output transition time as a fraction of total delay.
        min_output_slew_ps: floor on the output transition time.
    """

    parasitic_ps: float
    effort_ps_per_ff: float
    slew_sensitivity: float = DEFAULT_SLEW_SENSITIVITY
    slew_ratio: float = DEFAULT_SLEW_RATIO
    min_output_slew_ps: float = 5.0

    def __post_init__(self) -> None:
        if self.parasitic_ps < 0 or self.effort_ps_per_ff <= 0:
            raise DelayModelError(
                "parasitic must be >= 0 and effort resistance > 0"
            )
        if self.slew_sensitivity < 0 or self.slew_ratio <= 0:
            raise DelayModelError("slew coefficients must be non-negative")

    def delay_ps(self, load_ff: float, input_slew_ps: float = 0.0) -> float:
        """Propagation delay for the given load and input transition."""
        _check_query(load_ff, input_slew_ps)
        return (
            self.parasitic_ps
            + self.effort_ps_per_ff * load_ff
            + self.slew_sensitivity * input_slew_ps
        )

    def output_slew_ps(self, load_ff: float, input_slew_ps: float = 0.0) -> float:
        """Output transition time for the given load and input transition."""
        base = self.slew_ratio * (
            self.parasitic_ps + self.effort_ps_per_ff * load_ff
        )
        return max(self.min_output_slew_ps, base)

    def scaled_drive(self, factor: float) -> "LinearDelayArc":
        """Arc for the same gate with drive strength scaled by ``factor``.

        Larger drive means proportionally lower effective resistance; the
        parasitic delay is drive-independent (bigger transistors drive
        proportionally bigger self-capacitance).
        """
        if factor <= 0:
            raise DelayModelError("drive scale factor must be positive")
        return LinearDelayArc(
            parasitic_ps=self.parasitic_ps,
            effort_ps_per_ff=self.effort_ps_per_ff / factor,
            slew_sensitivity=self.slew_sensitivity,
            slew_ratio=self.slew_ratio,
            min_output_slew_ps=self.min_output_slew_ps,
        )


@dataclass(frozen=True)
class NLDMArc:
    """Non-linear delay model arc: bilinear interpolation over 2-D tables.

    Attributes:
        slew_axis_ps: ascending input-transition breakpoints.
        load_axis_ff: ascending output-load breakpoints.
        delay_table_ps: delay[i][j] for slew i, load j.
        slew_table_ps: output transition[i][j] for slew i, load j.
    """

    slew_axis_ps: tuple[float, ...]
    load_axis_ff: tuple[float, ...]
    delay_table_ps: tuple[tuple[float, ...], ...]
    slew_table_ps: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.slew_axis_ps) < 2 or len(self.load_axis_ff) < 2:
            raise DelayModelError("NLDM axes need at least two breakpoints")
        for axis in (self.slew_axis_ps, self.load_axis_ff):
            if any(b <= a for a, b in zip(axis, axis[1:])):
                raise DelayModelError("NLDM axes must be strictly ascending")
        expected = (len(self.slew_axis_ps), len(self.load_axis_ff))
        for table in (self.delay_table_ps, self.slew_table_ps):
            if len(table) != expected[0] or any(
                len(row) != expected[1] for row in table
            ):
                raise DelayModelError(
                    f"NLDM table shape must be {expected[0]}x{expected[1]}"
                )

    def delay_ps(self, load_ff: float, input_slew_ps: float = 0.0) -> float:
        """Interpolated propagation delay."""
        _check_query(load_ff, input_slew_ps)
        return _bilinear(
            self.slew_axis_ps, self.load_axis_ff, self.delay_table_ps,
            input_slew_ps, load_ff,
        )

    def output_slew_ps(self, load_ff: float, input_slew_ps: float = 0.0) -> float:
        """Interpolated output transition time."""
        _check_query(load_ff, input_slew_ps)
        return _bilinear(
            self.slew_axis_ps, self.load_axis_ff, self.slew_table_ps,
            input_slew_ps, load_ff,
        )

    @classmethod
    def from_linear(
        cls,
        arc: LinearDelayArc,
        max_load_ff: float,
        max_slew_ps: float = 200.0,
        points: int = 6,
        saturation: float = 0.06,
    ) -> "NLDMArc":
        """Tabulate a linear arc into an NLDM table.

        ``saturation`` adds the mild super-linearity real tables show at
        heavy loads (velocity saturation and slew degradation), so NLDM
        and linear models agree at light load and diverge a few percent at
        the table corner -- matching the 2-7% discrete/continuous spread
        of Section 6.1.
        """
        if max_load_ff <= 0 or max_slew_ps <= 0:
            raise DelayModelError("table extents must be positive")
        slews = tuple(np.linspace(1.0, max_slew_ps, points))
        loads = tuple(np.linspace(0.0, max_load_ff, points))
        delay_rows = []
        slew_rows = []
        for s in slews:
            d_row = []
            t_row = []
            for c in loads:
                base = arc.delay_ps(c, s)
                bend = 1.0 + saturation * (c / max_load_ff) ** 2
                d_row.append(base * bend)
                t_row.append(arc.output_slew_ps(c, s) * bend)
            delay_rows.append(tuple(d_row))
            slew_rows.append(tuple(t_row))
        return cls(
            slew_axis_ps=slews,
            load_axis_ff=loads,
            delay_table_ps=tuple(delay_rows),
            slew_table_ps=tuple(slew_rows),
        )


def _check_query(load_ff: float, input_slew_ps: float) -> None:
    if load_ff < 0:
        raise DelayModelError(f"load must be non-negative, got {load_ff}")
    if input_slew_ps < 0:
        raise DelayModelError(f"slew must be non-negative, got {input_slew_ps}")


def _bracket(axis: tuple[float, ...], x: float) -> tuple[int, int, float]:
    """Indices (lo, hi) and fraction t for linear interpolation on an axis.

    Queries beyond the table edges extrapolate linearly from the last
    segment, the conventional STA behaviour.
    """
    hi = bisect.bisect_left(axis, x)
    if hi <= 0:
        lo, hi = 0, 1
    elif hi >= len(axis):
        lo, hi = len(axis) - 2, len(axis) - 1
    else:
        lo = hi - 1
    t = (x - axis[lo]) / (axis[hi] - axis[lo])
    return lo, hi, t


def _bilinear(
    slew_axis: tuple[float, ...],
    load_axis: tuple[float, ...],
    table: tuple[tuple[float, ...], ...],
    slew: float,
    load: float,
) -> float:
    i0, i1, ti = _bracket(slew_axis, slew)
    j0, j1, tj = _bracket(load_axis, load)
    top = table[i0][j0] * (1 - tj) + table[i0][j1] * tj
    bot = table[i1][j0] * (1 - tj) + table[i1][j1] * tj
    return top * (1 - ti) + bot * ti
