"""Tests for the repro-gap command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(sub.choices)
        assert {
            "survey", "factors", "flow", "gap", "roadmap", "library",
            "variation",
        } <= commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_flow_style_validated(self):
        with pytest.raises(SystemExit):
            main(["flow", "fpga"])


class TestCommands:
    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Alpha 21264A" in out
        assert "gap" in out

    def test_factors(self, capsys):
        assert main(["factors"]) == 0
        out = capsys.readouterr().out
        assert "17.8" in out
        assert "residual" in out

    def test_roadmap(self, capsys):
        assert main(["roadmap", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "asymptote" in out
        assert "generation" in out

    def test_variation(self, capsys):
        assert main(["variation", "--count", "2000", "--process",
                     "mature"]) == 0
        out = capsys.readouterr().out
        assert "flagship" in out
        assert "quote" in out

    def test_library_summary_and_export(self, tmp_path, capsys):
        target = tmp_path / "out.lib"
        assert main(["library", "--kind", "poor", "--liberty",
                     str(target)]) == 0
        out = capsys.readouterr().out
        assert "asic_poor" in out
        assert target.exists()
        from repro.cells import from_liberty

        library = from_liberty(target.read_text())
        assert library.drive_count("NAND2") == 2

    def test_flow_asic(self, capsys):
        assert main([
            "flow", "asic", "--bits", "4", "--sizing-moves", "5",
            "--workload", "adder_ripple",
        ]) == 0
        out = capsys.readouterr().out
        assert "asic" in out
        assert "MHz" in out

    def test_flow_custom(self, capsys):
        assert main([
            "flow", "custom", "--bits", "4", "--sizing-moves", "5",
            "--workload", "adder_kogge_stone", "--stages", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "custom" in out

    def test_gap(self, capsys):
        assert main(["gap", "--bits", "4", "--sizing-moves", "5"]) == 0
        out = capsys.readouterr().out
        assert "total quoted-frequency ratio" in out
