"""Telemetry event model: the records the live bus streams.

One :class:`Event` is one thing that just happened -- a span opened or
closed, a stage replayed from cache, a metric moved, a worker
heartbeat, a sweep task started or finished.  Events are deliberately
small and JSON-scalar only, because they cross process boundaries (pool
workers forward them over a ``multiprocessing`` queue) and land in
JSONL files that ``repro-gap top`` tails.

The bus (:mod:`repro.obs.live`) assigns each event a process-wide
monotonic sequence number at publish time; an event forwarded from a
worker keeps its worker-side sequence in ``source_seq`` and gets a
fresh parent-side ``seq`` when it is ingested, so one stream stays
totally ordered no matter how many processes feed it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

#: The event kinds the live layer publishes.  Consumers must tolerate
#: unknown kinds (newer producers), so this is documentation and a
#: validation aid, not a closed enum.
EVENT_KINDS = (
    "span.open",      # a tracer span opened (name, depth, thread)
    "span.close",     # a tracer span closed (duration_ms, error?)
    "stage.start",    # a flow-engine stage began (flow, stage, index, total)
    "stage.done",     # a stage finished (status, wall_s, cache_hit)
    "stage.cache",    # a stage replayed from the fingerprint cache
    "metric.delta",   # a counter/gauge/histogram moved (metric, value)
    "heartbeat",      # a worker's liveness beacon (busy_s, task)
    "task.start",     # a sweep task began in a worker (index)
    "task.done",      # a sweep task finished (index, wall_s, metrics)
    "sweep.progress", # parent-side progress roll-up (done, total, eta_s)
    "stall",          # stall detector diagnostic (source, silent_s)
    "log",            # free-form annotation
)


class EventError(ValueError):
    """Raised for malformed event payloads."""


@dataclass
class Event:
    """One telemetry event.

    Attributes:
        kind: event flavour (see :data:`EVENT_KINDS`).
        name: subject label (span name, stage path, metric name, ...).
        seq: bus-assigned monotonic sequence number (unique and strictly
            increasing within the publishing process's stream).
        ts: bus clock reading at publish time (seconds, monotonic).
        source: origin stream -- ``"main"`` in the parent process,
            ``"worker-<pid>"`` inside a pool worker.
        source_seq: the sequence number the event carried in its origin
            stream; equals ``seq`` unless the event was forwarded across
            a process boundary and re-sequenced.
        attrs: JSON-scalar annotations (values: int/float/str/bool).
    """

    kind: str
    name: str
    seq: int = 0
    ts: float = 0.0
    source: str = "main"
    source_seq: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        record: dict = {
            "kind": self.kind,
            "name": self.name,
            "seq": self.seq,
            "ts": round(float(self.ts), 9),
            "source": self.source,
        }
        if self.source_seq != self.seq:
            record["source_seq"] = self.source_seq
        if self.attrs:
            record["attrs"] = {
                key: (round(val, 9) if isinstance(val, float) else val)
                for key, val in sorted(self.attrs.items())
            }
        return record

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        if not isinstance(payload, dict):
            raise EventError(
                f"event payload must be a dict, got "
                f"{type(payload).__name__}"
            )
        kind = payload.get("kind")
        if not kind or not isinstance(kind, str):
            raise EventError(f"event has no kind: {payload!r}")
        seq = int(payload.get("seq", 0))
        return cls(
            kind=kind,
            name=str(payload.get("name", "")),
            seq=seq,
            ts=float(payload.get("ts", 0.0)),
            source=str(payload.get("source", "main")),
            source_seq=int(payload.get("source_seq", seq)),
            attrs=dict(payload.get("attrs") or {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def parse_event(line: str) -> Event:
    """Parse one JSONL line into an :class:`Event`."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise EventError(f"bad event line {line!r}: {exc}") from exc
    return Event.from_dict(payload)


def read_events(path: str, skip_bad: bool = True) -> Iterator[Event]:
    """Yield events from a JSONL stream file, in file order.

    Args:
        path: the JSONL file an :class:`~repro.obs.live.EventBus` sink
            wrote (or is still writing -- a trailing partial line is
            treated as not-yet-written, never an error).
        skip_bad: silently drop malformed lines instead of raising; the
            stream is an observability aid, one bad line must not sink
            the reader.
    """
    with open(path) as handle:
        for line in handle:
            if not line.endswith("\n"):
                break  # mid-write tail of a live stream
            line = line.strip()
            if not line:
                continue
            try:
                yield parse_event(line)
            except EventError:
                if not skip_bad:
                    raise
