"""Typed-error coverage: parser syntax branches, STA degenerate inputs,
and Monte Carlo seed/percentile guards (no bare KeyError/ZeroDivisionError
may escape any of these paths)."""

import numpy as np
import pytest

from repro.cells import rich_asic_library
from repro.cells.delay import LinearDelayArc
from repro.datapath import ripple_carry_adder
from repro.flows import AsicFlowOptions, run_asic_flow
from repro.netlist import Module
from repro.sta import (
    ConvergenceError,
    TimingError,
    analyze,
    asic_clock,
    register_boundaries,
    solve_min_period,
)
from repro.synth import SynthesisError, parse_expression
from repro.tech import CMOS250_ASIC
from repro.variation import (
    MATURE_PROCESS,
    SpeedDistribution,
    VariationError,
    sample_chip_speeds,
)

CLK = asic_clock(20.0 * CMOS250_ASIC.fo4_delay_ps)


def adder(bits=4):
    library = rich_asic_library(CMOS250_ASIC)
    module = register_boundaries(ripple_carry_adder(bits, library), library)
    return module, library


class TestParserErrorBranches:
    """Every SynthesisError branch in synth/parser.py, parametrised."""

    @pytest.mark.parametrize("text,match", [
        ("a $ b", "cannot tokenise"),
        ("", "empty expression"),
        ("   ", "empty expression"),
        ("a &", "unexpected end"),
        ("~", "unexpected end"),
        ("(a & b", "unexpected end"),
        ("(a b", "expected '\\)'"),
        ("a b", "trailing input"),
        ("& a", "unexpected operator"),
        ("| a", "unexpected operator"),
        ("^ a", "unexpected operator"),
        (") a", "unexpected operator"),
    ])
    def test_syntax_error_branch(self, text, match):
        with pytest.raises(SynthesisError, match=match):
            parse_expression(text)

    def test_valid_expression_still_parses(self):
        parse_expression("~(a & b) ^ (c | 1)")


class TestStaDegenerateInputs:
    def test_undriven_output_port(self):
        library = rich_asic_library(CMOS250_ASIC)
        module = Module("m")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g", "INV_X1", inputs={"A": "a"},
                            outputs={"Y": "w"})
        with pytest.raises(TimingError, match="undriven"):
            analyze(module, library, CLK)

    def test_undriven_gate_input(self):
        library = rich_asic_library(CMOS250_ASIC)
        module = Module("m")
        module.add_input("a")
        module.add_output("y")
        module.add_instance("g", "NAND2_X1",
                            inputs={"A": "a", "B": "ghost"},
                            outputs={"Y": "y"})
        with pytest.raises(TimingError, match="no arrival"):
            analyze(module, library, CLK)

    def test_undriven_register_data_pin(self):
        library = rich_asic_library(CMOS250_ASIC)
        ff = library.flip_flop()
        module = Module("m")
        clk = module.add_input("clk")
        module.add_output("q")
        module.add_instance(
            "r", ff.name,
            inputs={"D": "ghost", ff.sequential.clock_pin: clk},
            outputs={ff.output: "q"},
        )
        with pytest.raises(TimingError, match="undriven"):
            analyze(module, library, CLK)

    def test_no_endpoints(self):
        library = rich_asic_library(CMOS250_ASIC)
        module = Module("m")
        module.add_input("a")
        module.add_instance("g", "INV_X1", inputs={"A": "a"},
                            outputs={"Y": "w"})
        with pytest.raises(TimingError, match="no timing endpoints"):
            analyze(module, library, CLK)

    @pytest.mark.parametrize("derate", [0.0, -1.0, float("nan"),
                                        float("inf")])
    def test_degenerate_derate_is_typed(self, derate):
        module, library = adder()
        with pytest.raises(TimingError, match="derate"):
            analyze(module, library, CLK, delay_derate=derate)

    def test_nan_arc_is_typed_not_silent(self):
        module, library = adder()
        used = next(
            inst.cell_name for inst in module.iter_instances()
            if not library.get(inst.cell_name).is_sequential
        )
        cell = library.get(used)
        pin = sorted(cell.arcs)[0]
        cell.arcs[pin] = LinearDelayArc(parasitic_ps=float("nan"),
                                        effort_ps_per_ff=1.0)
        with pytest.raises(TimingError, match="non-finite"):
            analyze(module, library, CLK)

    def test_solver_parameter_validation(self):
        module, library = adder()
        with pytest.raises(TimingError, match="tolerance"):
            solve_min_period(module, library, CLK, tolerance_ps=0.0)
        with pytest.raises(ConvergenceError):
            solve_min_period(module, library, CLK, max_iterations=0)


class TestMonteCarloGuards:
    def test_seed_gives_identical_population(self):
        a = sample_chip_speeds(400.0, MATURE_PROCESS, count=500, seed=11)
        b = sample_chip_speeds(400.0, MATURE_PROCESS, count=500, seed=11)
        assert np.array_equal(a.frequencies_mhz, b.frequencies_mhz)

    def test_different_seed_differs(self):
        a = sample_chip_speeds(400.0, MATURE_PROCESS, count=500, seed=11)
        b = sample_chip_speeds(400.0, MATURE_PROCESS, count=500, seed=12)
        assert not np.array_equal(a.frequencies_mhz, b.frequencies_mhz)

    def test_seed_honoured_end_to_end_through_flow(self):
        opts = AsicFlowOptions(bits=4, sizing_moves=3, seed=5)
        first = run_asic_flow(opts)
        second = run_asic_flow(opts)
        assert first.quoted_frequency_mhz == second.quoted_frequency_mhz
        assert first.typical_frequency_mhz == second.typical_frequency_mhz

    @pytest.mark.parametrize("nominal", [0.0, -10.0, float("nan"),
                                         float("inf")])
    def test_bad_nominal_rejected(self, nominal):
        with pytest.raises(VariationError):
            sample_chip_speeds(nominal, MATURE_PROCESS, count=100)

    def test_non_finite_population_rejected(self):
        with pytest.raises(VariationError, match="non-finite"):
            SpeedDistribution(
                frequencies_mhz=np.array([100.0, float("nan")]),
                nominal_mhz=100.0,
            )

    def test_filtered_window(self):
        dist = sample_chip_speeds(400.0, MATURE_PROCESS, count=2000,
                                  seed=3)
        sub = dist.filtered(min_mhz=dist.median_mhz)
        assert sub.count <= dist.count
        assert sub.percentile(0.0) >= dist.median_mhz

    def test_filtered_to_empty_raises_instead_of_nan(self):
        dist = sample_chip_speeds(400.0, MATURE_PROCESS, count=200,
                                  seed=3)
        with pytest.raises(VariationError, match="no samples remain"):
            dist.filtered(min_mhz=1e9)
