"""The ASIC implementation flow, as a stage composition on the engine.

The standard-cell methodology as the paper describes it: RTL-ish entry,
mapping onto a fixed library, automatic placement, discrete post-layout
sizing, a synthesised (10%-class) clock tree, and -- crucially, Section 8
-- a worst-case-corner frequency quote rather than typical-silicon
performance.  Every lever the paper says ASICs lack is an option here so
the benchmarks can turn them on one at a time and price them.

The flow itself is a declarative :class:`~repro.flows.engine.StageGraph`
(:func:`asic_flow_graph`) run by the shared
:class:`~repro.flows.engine.FlowEngine`: span instrumentation,
``keep_going`` degradation, fingerprint caching and checkpoint/resume
all come from the engine, so this module only declares what each stage
reads, writes and computes.

Failure policy: with the default ``on_error="raise"`` any stage failure
surfaces as a :class:`FlowError` naming the stage and chaining the root
cause; with ``on_error="keep_going"`` failed stages are recorded into
``FlowResult.diagnostics`` and the flow continues on best-effort
fallbacks (the per-stage ``recover`` hooks below).
"""

from __future__ import annotations

from repro.cells.builder import poor_asic_library, rich_asic_library
from repro.datapath.alu import alu
from repro.datapath.adders import kogge_stone_adder, ripple_carry_adder
from repro.datapath.cpu import cpu_execute_stage
from repro.datapath.multiplier import array_multiplier, wallace_multiplier
from repro.flows.engine import FlowContext, FlowEngine, Stage, StageGraph
from repro.flows.options import AsicFlowOptions, FlowOptions
from repro.flows.results import FlowError, FlowResult
from repro.physical.placement import place
from repro.pipeline.pipeliner import pipeline_module
from repro.robust.degrade import StageRunner, fallback_timing
from repro.robust.guards import (
    guarded_size_for_speed,
    guarded_solve_min_period,
)
from repro.robust.validate import preflight
from repro.sizing.buffering import buffer_high_fanout
from repro.sizing.tilos import total_area_um2
from repro.sta.clocking import asic_clock
from repro.sta.fo4 import fo4_depth, fo4_logic_depth
from repro.sta.sequential import register_boundaries
from repro.tech.process import CMOS250_ASIC, ProcessTechnology
from repro.variation.binning import asic_worst_case_quote, speed_tested_quote
from repro.variation.components import MATURE_PROCESS
from repro.variation.montecarlo import sample_chip_speeds

#: Named workload generators: (callable(bits, library), description).
WORKLOADS = {
    "alu": lambda bits, lib: alu(bits, lib, fast_adder=False),
    "alu_macro": lambda bits, lib: alu(bits, lib, fast_adder=True),
    "adder_ripple": ripple_carry_adder,
    "adder_kogge_stone": kogge_stone_adder,
    "multiplier_array": array_multiplier,
    "multiplier_wallace": wallace_multiplier,
    "cpu": lambda bits, lib: cpu_execute_stage(bits, lib, fast_adder=False),
    "cpu_macro": lambda bits, lib: cpu_execute_stage(
        bits, lib, fast_adder=True
    ),
}


def check_workload(options: FlowOptions) -> None:
    """Reject unknown workloads before any stage runs."""
    if options.workload not in WORKLOADS:
        raise FlowError(
            f"unknown workload {options.workload!r}; "
            f"known: {sorted(WORKLOADS)}",
            stage="map",
        )


def _stage_map(ctx: FlowContext) -> None:
    options = ctx.options
    library = (
        rich_asic_library(ctx.tech)
        if options.rich_library
        else poor_asic_library(ctx.tech)
    )
    comb = WORKLOADS[options.workload](options.bits, library)

    if options.pipeline_stages > 1:
        report = pipeline_module(comb, library, options.pipeline_stages)
        module = report.module
        stages = report.stages
    else:
        module = register_boundaries(comb, library)
        stages = 1
    ctx["library"] = library
    ctx["module"] = module
    ctx["stages"] = stages
    ctx["clock"] = asic_clock(20.0 * ctx.tech.fo4_delay_ps)
    ctx.span.set(cells=module.instance_count(), stages=stages,
                 library=library.name)


def _stage_place(ctx: FlowContext) -> None:
    options = ctx.options
    quality = "careful" if options.careful_placement else "sloppy"
    placement = place(
        ctx["module"], ctx["library"], quality=quality, seed=options.seed
    )
    ctx["placement"] = placement
    ctx["wire"] = placement.parasitics(ctx["library"])
    ctx.notes["wirelength_um"] = placement.total_wirelength_um()
    ctx.span.set(quality=quality,
                 wirelength_um=placement.total_wirelength_um())


def _recover_place(ctx: FlowContext) -> None:
    # Continuing without parasitics: downstream stages read wire=None.
    ctx.notes["wirelength_um"] = 0.0


def _stage_cts(ctx: FlowContext) -> None:
    library = ctx["library"]
    clock = ctx["clock"]
    if library.has_base("BUF"):
        buffered = buffer_high_fanout(ctx["module"], library, max_fanout=10)
        ctx.notes["buffers_added"] = float(buffered.buffers_added)
        ctx.span.set(buffers_added=buffered.buffers_added)
    ctx.span.set(skew_fraction=clock.skew_fraction)


def _stage_size(ctx: FlowContext) -> None:
    options = ctx.options
    if options.sizing_moves > 0:
        sizing = guarded_size_for_speed(
            ctx["module"], ctx["library"], ctx["clock"],
            wire=ctx.get("wire"), max_moves=options.sizing_moves,
        )
        ctx.notes["sizing_moves"] = float(sizing.moves)
        ctx.notes["sizing_speedup"] = sizing.speedup
        ctx.span.set(moves=sizing.moves, speedup=sizing.speedup,
                     area_growth=sizing.area_growth)


def _stage_sta(ctx: FlowContext) -> None:
    timing = guarded_solve_min_period(
        ctx["module"], ctx["library"], ctx["clock"], wire=ctx.get("wire"),
        use_array=ctx.options.use_array,
        check_array=ctx.options.check_array,
    )
    ctx["timing"] = timing
    ctx.span.set(min_period_ps=timing.min_period_ps,
                 typical_mhz=timing.max_frequency_mhz)


def _recover_sta(ctx: FlowContext) -> None:
    ctx["timing"] = fallback_timing(
        ctx["module"], ctx["library"], ctx["clock"]
    )


def _stage_quote(ctx: FlowContext) -> None:
    options = ctx.options
    typical_mhz = ctx["timing"].max_frequency_mhz
    dist = sample_chip_speeds(typical_mhz, MATURE_PROCESS,
                              count=4000, seed=options.seed)
    if options.speed_test:
        quoted = speed_tested_quote(dist)
        ctx.notes["quote_method"] = 1.0  # 1 = speed tested
    else:
        quoted = asic_worst_case_quote(dist)
        ctx.notes["quote_method"] = 0.0  # 0 = worst-case corner
    ctx["quoted"] = quoted
    ctx.span.set(quoted_mhz=quoted)


def _recover_quote(ctx: FlowContext) -> None:
    ctx["quoted"] = ctx["timing"].max_frequency_mhz
    ctx.notes["quote_method"] = -1.0  # -1 = quote stage degraded


def _preflight_hook(ctx: FlowContext, runner: StageRunner) -> None:
    # Pre-flight lint after buffering (so fanout findings are real, not
    # about-to-be-fixed) but before sizing/STA.
    if runner.keep_going and "module" in ctx:
        runner.diagnostics.extend(preflight(ctx["module"], ctx["library"]))


def _summary_attrs(ctx: FlowContext) -> dict:
    attrs: dict = {}
    if "module" in ctx:
        attrs["cells"] = ctx["module"].instance_count()
    if "timing" in ctx:
        attrs["min_period_ps"] = ctx["timing"].min_period_ps
    if "quoted" in ctx:
        attrs["quoted_mhz"] = ctx["quoted"]
    return attrs


def asic_flow_graph() -> StageGraph:
    """The ASIC flow's declarative stage graph."""
    return StageGraph(
        flow="asic",
        stages=(
            Stage(
                name="map", run=_stage_map, critical=True,
                outputs=("module", "library", "stages", "clock"),
                params=("workload", "bits", "pipeline_stages",
                        "rich_library"),
            ),
            Stage(
                name="place", run=_stage_place,
                inputs=("module", "library"),
                outputs=("placement", "wire"),
                params=("careful_placement", "seed"),
                recover=_recover_place,
            ),
            Stage(
                name="cts", run=_stage_cts,
                inputs=("module", "library", "clock"),
                outputs=("module",),
            ),
            Stage(
                name="size", run=_stage_size,
                inputs=("module", "library", "clock", "wire"),
                outputs=("module",),
                params=("sizing_moves",),
            ),
            Stage(
                name="sta", run=_stage_sta,
                inputs=("module", "library", "clock", "wire"),
                outputs=("timing",),
                recover=_recover_sta,
            ),
            Stage(
                name="quote", run=_stage_quote,
                inputs=("timing",),
                outputs=("quoted",),
                params=("speed_test", "seed"),
                recover=_recover_quote,
            ),
        ),
        hooks={"cts": _preflight_hook},
        root_attrs=lambda ctx: {"workload": ctx.options.workload,
                                "bits": ctx.options.bits},
        summary_attrs=_summary_attrs,
    )


#: Module-level graph instance the flow entry point and the CLI share.
ASIC_GRAPH = asic_flow_graph()


def finalize_asic(ctx: FlowContext,
                  tech: ProcessTechnology) -> FlowResult:
    """Build the result record from a completed ASIC flow context."""
    options = ctx.options
    module = ctx["module"]
    timing = ctx["timing"]
    return FlowResult(
        name=f"asic_{options.workload}{options.bits}_s{ctx['stages']}",
        style="asic",
        technology=tech,
        library_name=ctx["library"].name,
        typical_frequency_mhz=timing.max_frequency_mhz,
        quoted_frequency_mhz=ctx["quoted"],
        min_period_ps=timing.min_period_ps,
        fo4_depth=fo4_depth(timing, tech),
        logic_fo4=fo4_logic_depth(timing, tech),
        overhead_fraction=timing.overhead_fraction(),
        pipeline_stages=ctx["stages"],
        gate_count=module.instance_count(),
        area_um2=total_area_um2(module, ctx["library"]),
        notes=ctx.notes,
        diagnostics=ctx.diagnostics,
        stage_records=ctx.stage_records,
    )


def run_asic_flow(
    options: AsicFlowOptions = AsicFlowOptions(),
    tech: ProcessTechnology = CMOS250_ASIC,
    checkpoint: str | None = None,
    resume: bool = False,
    from_stage: str | None = None,
) -> FlowResult:
    """Run the full ASIC flow and return its result record.

    Args:
        options: flow knobs.
        tech: process technology.
        checkpoint: snapshot the context here after every stage.
        resume: restore completed stages from ``checkpoint``.
        from_stage: with ``resume``, re-run from this stage onward.

    Raises:
        FlowError: for unknown workloads, inconsistent options, or --
            under ``on_error="raise"`` -- any stage failure (with the
            stage name attached and the cause chained).
    """
    check_workload(options)
    ctx = FlowEngine(ASIC_GRAPH).run(
        options, tech, checkpoint=checkpoint, resume=resume,
        from_stage=from_stage,
    )
    return finalize_asic(ctx, tech)
