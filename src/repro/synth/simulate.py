"""Logic simulation of mapped netlists.

Used throughout the test suite to prove functional equivalence: an
expression, its optimised form, and its mapped netlist must agree on every
(sampled) input vector, and a pipelined datapath must produce the same
stream of results as its combinational original, delayed by its latency.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.netlist.nets import NetlistError


class SimulationError(ValueError):
    """Raised for incomplete stimulus or unsupported constructs."""


def simulate_combinational(
    module: Module, library: CellLibrary, inputs: dict[str, bool]
) -> dict[str, bool]:
    """Evaluate a purely combinational netlist.

    Args:
        module: mapped netlist (must contain no sequential cells).
        library: the library its cells come from.
        inputs: truth value per input port.

    Returns:
        Truth value per output port.
    """
    seq = library.sequential_cell_names()
    for inst in module.iter_instances():
        if inst.cell_name in seq:
            raise SimulationError(
                f"instance {inst.name} is sequential; use simulate_sequential"
            )
    values = _check_inputs(module, inputs)
    _propagate(module, library, values, seq=frozenset())
    return {out: values[out] for out in module.outputs()}


def simulate_sequential(
    module: Module,
    library: CellLibrary,
    input_stream: list[dict[str, bool]],
    initial_state: bool = False,
) -> list[dict[str, bool]]:
    """Cycle-accurate simulation of a netlist with flip-flops.

    Each entry of ``input_stream`` is the input-port assignment for one
    clock cycle; the returned list gives output-port values per cycle
    (sampled after combinational settling, before the next edge).  Clock
    ports feeding only sequential clock pins may be omitted from the
    stimulus.  Level-sensitive latches are simulated edge-triggered here
    (their transparency matters to timing, which STA models, not to the
    steady-state logic value).

    Args:
        module: mapped netlist.
        library: the library its cells come from.
        input_stream: per-cycle input assignments.
        initial_state: reset value of every register.
    """
    seq = library.sequential_cell_names()
    state: dict[str, bool] = {
        inst.name: initial_state
        for inst in module.iter_instances()
        if inst.cell_name in seq
    }
    trace: list[dict[str, bool]] = []
    clock_only = _clock_only_ports(module, library)
    order = topological_order(module, seq)
    for cycle, stimulus in enumerate(input_stream):
        values = _check_inputs(module, stimulus, optional=clock_only, cycle=cycle)
        # Register outputs present their held state.
        for inst_name, held in state.items():
            inst = module.instance(inst_name)
            for net in inst.outputs.values():
                values[net] = held
        _propagate(module, library, values, seq, order=order)
        trace.append({out: values[out] for out in module.outputs()})
        # Clock edge: capture D pins into state.
        for inst_name in state:
            inst = module.instance(inst_name)
            cell = library.get(inst.cell_name)
            data_pin = cell.data_input_names()[0]
            state[inst_name] = values[inst.inputs[data_pin]]
    return trace


def _clock_only_ports(module: Module, library: CellLibrary) -> set[str]:
    """Input ports whose only sinks are sequential clock pins."""
    clock_only = set()
    for port in module.inputs():
        sinks = module.sinks_of(port)
        if not sinks:
            continue
        all_clock = True
        for sink in sinks:
            if not isinstance(sink, tuple):
                all_clock = False
                break
            inst_name, pin = sink
            cell = library.get(module.instance(inst_name).cell_name)
            if not (cell.is_sequential and pin == cell.sequential.clock_pin):
                all_clock = False
                break
        if all_clock:
            clock_only.add(port)
    return clock_only


def _check_inputs(
    module: Module,
    inputs: dict[str, bool],
    optional: set[str] = frozenset(),
    cycle: int | None = None,
) -> dict[str, bool]:
    missing = set(module.inputs()) - set(inputs) - optional
    if missing:
        where = f" at cycle {cycle}" if cycle is not None else ""
        raise SimulationError(f"missing input values{where}: {sorted(missing)}")
    values: dict[str, bool] = {}
    for port in module.inputs():
        if port in inputs:
            values[port] = bool(inputs[port])
        else:
            values[port] = False  # idle clock placeholder
    return values


def _propagate(
    module: Module,
    library: CellLibrary,
    values: dict[str, bool],
    seq: frozenset[str] | set[str],
    order: list[str] | None = None,
) -> None:
    if order is None:
        order = topological_order(module, seq)
    for inst_name in order:
        inst = module.instance(inst_name)
        if inst.cell_name in seq:
            continue  # register outputs already injected
        cell = library.get(inst.cell_name)
        try:
            pin_values = {pin: values[net] for pin, net in inst.inputs.items()}
        except KeyError as exc:
            raise SimulationError(
                f"net {exc.args[0]!r} feeding {inst_name} has no value; "
                "is the netlist fully driven?"
            ) from None
        result = cell.evaluate(pin_values)
        for net in inst.outputs.values():
            values[net] = result


def exhaustive_equivalent(
    module_a: Module,
    library_a: CellLibrary,
    module_b: Module,
    library_b: CellLibrary,
    max_inputs: int = 12,
) -> bool:
    """Exhaustively compare two combinational netlists on all vectors.

    Both must have identical port interfaces.  Guarded to ``max_inputs``
    inputs (2^n vectors).
    """
    if module_a.inputs() != module_b.inputs() or (
        module_a.outputs() != module_b.outputs()
    ):
        raise SimulationError("modules have different interfaces")
    ports = module_a.inputs()
    if len(ports) > max_inputs:
        raise SimulationError(
            f"{len(ports)} inputs exceeds exhaustive limit {max_inputs}"
        )
    for bits in range(1 << len(ports)):
        vec = {p: bool((bits >> i) & 1) for i, p in enumerate(ports)}
        if simulate_combinational(module_a, library_a, vec) != (
            simulate_combinational(module_b, library_b, vec)
        ):
            return False
    return True
