"""FO4 normalisation of timing results.

Section 4 expresses every cycle-time comparison in fanout-of-four inverter
delays: "There are 15 FO4 delays in the Alpha 21264, and 13 FO4 delays in
the 1.0 GHz IBM PowerPC ... Tensilica's Xtensa processor is estimated to
have about 44 FO4 delays."  These helpers convert our absolute-picosecond
reports into that currency.
"""

from __future__ import annotations

from repro.sta.engine import TimingReport
from repro.tech.process import ProcessTechnology


def fo4_depth(report: TimingReport, tech: ProcessTechnology) -> float:
    """Total FO4 depth of a report's minimum period."""
    return report.min_period_ps / tech.fo4_delay_ps


def fo4_logic_depth(report: TimingReport, tech: ProcessTechnology) -> float:
    """FO4 depth of the combinational logic alone (no latch/skew overhead)."""
    return report.logic_delay_ps / tech.fo4_delay_ps


def fo4_overhead(report: TimingReport, tech: ProcessTechnology) -> float:
    """FO4 depth consumed by sequencing overhead (clk->Q + setup + skew)."""
    return fo4_depth(report, tech) - fo4_logic_depth(report, tech)


def frequency_for_depth(depth_fo4: float, tech: ProcessTechnology) -> float:
    """Clock frequency in MHz of a design with the given total FO4 depth."""
    return tech.frequency_mhz_from_fo4(depth_fo4)


def depth_for_frequency(freq_mhz: float, tech: ProcessTechnology) -> float:
    """Total FO4 depth implied by a clock frequency in this technology."""
    if freq_mhz <= 0:
        raise ValueError("frequency must be positive")
    return tech.fo4_from_period(1.0e6 / freq_mhz)
