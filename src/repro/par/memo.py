"""Memoized delay evaluation shared by STA and the sizers.

The hot arithmetic of the reproduction is the timing-arc query:
``arc.delay_ps(load, slew)`` plus ``arc.output_slew_ps(load, slew)``.
Sizing loops re-ask the same (arc, load, slew) triples thousands of
times -- a trial move perturbs one cone, and every analysis outside it
repeats verbatim -- so a process-wide cache turns most of the work of a
TILOS pass into dictionary hits.  The same applies to the closed-form
evaluations in :mod:`repro.sizing.logical_effort` and
:mod:`repro.sizing.joint`, which the design-space surveys call in tight
grids.

Correctness notes:

* Entries are keyed by ``id(arc)`` and *store the arc object*.  The
  stored reference keeps the arc alive, so an id can never be recycled
  while its entry exists, and the ``entry is arc`` identity check makes
  in-place arc replacement (what the fault injector does to poison a
  cell) an automatic miss instead of a stale hit.
* NaN keys never match themselves, so a poisoned query misses every
  time and the engine's finite-arrival guard still sees the live NaN.
* Caches are bounded: past :data:`MAX_ENTRIES` they are cleared, which
  costs one warm-up but keeps a fuzzing run from growing without limit.

Hit/miss counts are kept unconditionally (two integer bumps) and
exported to :mod:`repro.obs` gauges by :func:`publish`, which
``repro-gap stats`` and ``repro-gap bench`` call before rendering.
"""

from __future__ import annotations

import functools
import math
from typing import Any, Callable

#: Cache-size bound; clearing past it beats unbounded growth under
#: adversarial (e.g. NaN-poisoned) query streams.
MAX_ENTRIES = 200_000

#: Counter kinds, in the order ``stats()`` reports them.
KINDS = ("sta.arc", "sizing.le", "sizing.joint")

_enabled = True
_arc_cache: dict[tuple, tuple] = {}
_fn_caches: dict[str, dict] = {}
_hits: dict[str, int] = {kind: 0 for kind in KINDS}
_misses: dict[str, int] = {kind: 0 for kind in KINDS}


def set_enabled(flag: bool) -> None:
    """Switch memoization on/off process-wide (off = always recompute)."""
    global _enabled
    _enabled = bool(flag)
    if not flag:
        clear()


def enabled() -> bool:
    return _enabled


def clear() -> None:
    """Drop every cached entry; counters survive (see :func:`reset`)."""
    _arc_cache.clear()
    for cache in _fn_caches.values():
        cache.clear()


def reset() -> None:
    """Drop caches and zero the hit/miss counters."""
    clear()
    for kind in _hits:
        _hits[kind] = 0
        _misses[kind] = 0


def arc_eval(arc: Any, load_ff: float, slew_ps: float) -> tuple[float, float]:
    """Memoized ``(delay_ps, output_slew_ps)`` of one timing arc.

    Works for any arc model exposing ``delay_ps``/``output_slew_ps``
    (linear and NLDM alike).  Identity-keyed: replacing a cell's arc
    object -- drive re-scaling, fault injection -- invalidates its
    entries implicitly.
    """
    if not _enabled:
        return arc.delay_ps(load_ff, slew_ps), arc.output_slew_ps(load_ff, slew_ps)
    key = (id(arc), load_ff, slew_ps)
    entry = _arc_cache.get(key)
    if entry is not None and entry[0] is arc:
        _hits["sta.arc"] += 1
        return entry[1], entry[2]
    _misses["sta.arc"] += 1
    delay = arc.delay_ps(load_ff, slew_ps)
    out_slew = arc.output_slew_ps(load_ff, slew_ps)
    if not (math.isfinite(load_ff) and math.isfinite(slew_ps)):
        # A NaN key can never hit (NaN != NaN), so storing it would only
        # grow the cache until the MAX_ENTRIES wipe evicts the hot set.
        return delay, out_slew
    if len(_arc_cache) >= MAX_ENTRIES:
        _arc_cache.clear()
    _arc_cache[key] = (arc, delay, out_slew)
    return delay, out_slew


def memoized(kind: str) -> Callable[[Callable], Callable]:
    """Decorator: cache a pure function of hashable positional args.

    Unhashable or keyword arguments fall through to a plain call
    (counted as a miss), so decorating a function never changes its
    domain.  Results are shared process-wide under the given counter
    ``kind``.
    """
    if kind not in _hits:
        _hits[kind] = 0
        _misses[kind] = 0

    def decorate(func: Callable) -> Callable:
        cache = _fn_caches.setdefault(f"{kind}:{func.__qualname__}", {})

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return func(*args, **kwargs)
            if kwargs:
                # Keyword calls fall through to a plain call (counted as
                # a miss) rather than raising: positional and keyword
                # spellings of the same call would need key
                # normalisation against the signature to share entries.
                _misses[kind] += 1
                return func(*args, **kwargs)
            try:
                entry = cache.get(args, _SENTINEL)
            except TypeError:
                _misses[kind] += 1
                return func(*args)
            if entry is not _SENTINEL:
                _hits[kind] += 1
                return entry
            _misses[kind] += 1
            result = func(*args)
            if len(cache) >= MAX_ENTRIES:
                cache.clear()
            cache[args] = result
            return result

        wrapper.__wrapped__ = func
        return wrapper

    return decorate


_SENTINEL = object()


def stats() -> dict[str, dict[str, float]]:
    """Per-kind hit/miss/hit-rate snapshot."""
    out: dict[str, dict[str, float]] = {}
    for kind in _hits:
        hits = _hits[kind]
        misses = _misses[kind]
        total = hits + misses
        out[kind] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
    out["sta.arc"]["size"] = len(_arc_cache)
    return out


def publish() -> None:
    """Export the counters as ``par.memo.*`` gauges through repro.obs."""
    from repro import obs

    for kind, numbers in stats().items():
        for field, value in numbers.items():
            obs.gauge(f"par.memo.{kind}.{field}", float(value))
