"""Unit tests for repro.sizing.logical_effort and discrete helpers."""

import math

import pytest

from repro.sizing import (
    BEST_STAGE_EFFORT,
    PathStage,
    SizingError,
    best_stage_count,
    chain_delay_tau,
    delay_with_stage_count,
    geometric_drive_ladder,
    optimize_path,
    sizing_speedup_bound,
    worst_case_snap_penalty,
)


def inverter_stage():
    return PathStage(logical_effort=1.0, parasitic=1.0)


class TestOptimizePath:
    def test_single_inverter_fo4(self):
        # One inverter driving 4x its input cap: delay = 4 + 1 = 5 tau,
        # i.e. exactly one FO4.
        sol = optimize_path([inverter_stage()], electrical_effort=4.0)
        assert sol.delay_tau == pytest.approx(5.0)
        assert sol.stage_effort == pytest.approx(4.0)

    def test_textbook_three_stage_example(self):
        # Three identical inverters driving H=64: f = 4 per stage,
        # D = 3*4 + 3 = 15 tau.
        sol = optimize_path([inverter_stage()] * 3, electrical_effort=64.0)
        assert sol.stage_effort == pytest.approx(4.0)
        assert sol.delay_tau == pytest.approx(15.0)

    def test_optimal_caps_geometric(self):
        sol = optimize_path([inverter_stage()] * 3, electrical_effort=64.0)
        assert sol.input_caps[0] == pytest.approx(1.0)
        assert sol.input_caps[1] == pytest.approx(4.0)
        assert sol.input_caps[2] == pytest.approx(16.0)

    def test_nand_path_effort(self):
        stages = [
            PathStage(logical_effort=4 / 3, parasitic=2.0),
            PathStage(logical_effort=1.0, parasitic=1.0),
        ]
        sol = optimize_path(stages, electrical_effort=6.0)
        assert sol.path_effort == pytest.approx(8.0)
        assert sol.delay_tau == pytest.approx(
            2 * math.sqrt(8.0) + 3.0
        )

    def test_branching_multiplies_effort(self):
        plain = optimize_path([inverter_stage()] * 2, 4.0)
        branchy = optimize_path(
            [PathStage(1.0, 1.0, branching=3.0), inverter_stage()], 4.0
        )
        assert branchy.path_effort == pytest.approx(3 * plain.path_effort)
        assert branchy.delay_tau > plain.delay_tau

    def test_equal_stage_effort_beats_unbalanced(self):
        # A 2-stage path with H=16: optimal f=4 each gives 8+2 = 10 tau;
        # the unbalanced 2-then-8 split gives 10+2 = 12 tau.
        sol = optimize_path([inverter_stage()] * 2, 16.0)
        assert sol.delay_tau == pytest.approx(10.0)
        unbalanced = (2.0 + 1.0) + (8.0 + 1.0)
        assert sol.delay_tau < unbalanced

    def test_validation(self):
        with pytest.raises(SizingError):
            optimize_path([], 4.0)
        with pytest.raises(SizingError):
            optimize_path([inverter_stage()], -1.0)
        with pytest.raises(SizingError):
            PathStage(logical_effort=0.0, parasitic=1.0)
        with pytest.raises(SizingError):
            PathStage(logical_effort=1.0, parasitic=1.0, branching=0.5)


class TestStageCounts:
    def test_best_stage_effort_constant(self):
        assert BEST_STAGE_EFFORT == pytest.approx(3.59, abs=0.05)

    def test_best_stage_count_grows_with_effort(self):
        assert best_stage_count(4.0) == 1
        assert best_stage_count(64.0) in (3, 4)
        assert best_stage_count(4.0**6) > best_stage_count(4.0**3)

    def test_delay_curve_u_shaped(self):
        effort = 256.0
        delays = [delay_with_stage_count(effort, n) for n in range(1, 10)]
        best = min(range(len(delays)), key=lambda i: delays[i])
        assert 0 < best < len(delays) - 1  # interior minimum

    def test_chain_delay(self):
        assert chain_delay_tau(4, 4.0) == pytest.approx(20.0)
        with pytest.raises(SizingError):
            chain_delay_tau(0, 4.0)

    def test_speedup_bound(self):
        stages = [inverter_stage()] * 2
        bound = sizing_speedup_bound(stages, 16.0, actual_delay_tau=12.0)
        assert bound == pytest.approx(1.2)
        with pytest.raises(SizingError):
            sizing_speedup_bound(stages, 16.0, actual_delay_tau=5.0)


class TestDriveLadders:
    def test_geometric_ladder(self):
        ladder = geometric_drive_ladder(5, 1.0, 16.0)
        assert len(ladder) == 5
        assert ladder[0] == pytest.approx(1.0)
        assert ladder[-1] == pytest.approx(16.0)
        ratios = [b / a for a, b in zip(ladder, ladder[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_snap_penalty_shrinks_with_granularity(self):
        coarse = worst_case_snap_penalty(4.0)   # 2-drive ladder, r=4
        fine = worst_case_snap_penalty(1.5)     # 8-drive ladder class
        assert coarse > fine
        # The paper's 2-7% band corresponds to rich ladders.
        assert 0.02 < fine < 0.25
        with pytest.raises(SizingError):
            worst_case_snap_penalty(1.0)

    def test_single_drive_ladder(self):
        assert geometric_drive_ladder(1) == (1.0,)
        with pytest.raises(SizingError):
            geometric_drive_ladder(0)
