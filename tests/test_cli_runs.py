"""CLI tests for the run-ledger verbs (runs list/show/diff/regress,
stats --top, bench percentiles)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import ledger


FLOW = ["flow", "asic", "--bits", "4", "--sizing-moves", "2"]


def run_cli(capsys, *argv):
    capsys.readouterr()          # drop any setup-run output
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestLedgerLifecycle:
    def test_flow_appends_a_record(self, capsys):
        assert main(FLOW) == 0
        records = ledger.get_ledger().records()
        assert [r.kind for r in records] == ["flow"]
        assert records[0].label == "asic.alu4"
        assert not ledger.enabled()   # main() switched recording back off

    def test_no_ledger_opt_out(self, capsys):
        assert main(FLOW + ["--no-ledger"]) == 0
        assert ledger.get_ledger().records() == []

    def test_runs_dir_override(self, capsys, tmp_path):
        target = tmp_path / "elsewhere"
        assert main(FLOW + ["--runs-dir", str(target)]) == 0
        assert ledger.get_ledger().records() == []   # env dir untouched
        assert len(os.listdir(target)) == 1

    def test_variation_records_its_kind(self, capsys):
        assert main(["variation", "--count", "2000"]) == 0
        records = ledger.get_ledger().records()
        assert [r.kind for r in records] == ["variation"]
        assert "variation.typical_mhz" in records[0].metrics


class TestRunsVerbs:
    def test_list_empty(self, capsys):
        code, out = run_cli(capsys, "runs", "list")
        assert code == 0
        assert "no run records" in out

    def test_list_after_two_flows(self, capsys):
        main(FLOW)
        main(FLOW)
        code, out = run_cli(capsys, "runs", "list")
        assert code == 0
        assert out.count("asic.alu4") == 2
        # Both runs are the same design point.
        records = ledger.get_ledger().records()
        assert records[0].fingerprint == records[1].fingerprint

    def test_list_filters(self, capsys):
        main(FLOW)
        main(["variation", "--count", "2000"])
        code, out = run_cli(capsys, "runs", "list", "--kind", "flow")
        assert "variation" not in out
        code, out = run_cli(capsys, "runs", "list", "--last", "1")
        assert out.count("\n") == 2   # header + one row

    def test_show_last(self, capsys):
        main(FLOW)
        code, out = run_cli(capsys, "runs", "show")
        assert code == 0
        assert "stage waterfall" in out
        assert "asic.alu4" in out

    def test_show_json(self, capsys):
        main(FLOW)
        code, out = run_cli(capsys, "runs", "show", "last", "--json")
        payload = json.loads(out)
        assert payload["kind"] == "flow"
        assert [s["name"] for s in payload["stages"]][:2] == ["map",
                                                              "place"]

    def test_show_unknown_id(self, capsys):
        main(FLOW)
        assert main(["runs", "show", "zzzz"]) == 1

    def test_diff(self, capsys):
        main(FLOW)
        main(FLOW)
        first = ledger.get_ledger().records()[0].run_id
        code, out = run_cli(capsys, "runs", "diff", first)
        assert code == 0
        assert "diff" in out and "size" in out

    def test_regress_without_baseline_is_green(self, capsys):
        main(FLOW)
        code, out = run_cli(capsys, "runs", "regress", "--gate")
        assert code == 0
        assert "no baseline" in out

    def test_regress_ok_pair(self, capsys):
        main(FLOW)
        main(FLOW)
        code, out = run_cli(capsys, "runs", "regress")
        assert code == 0
        assert "OK" in out

    def test_gate_trips_on_slow_fault(self, capsys):
        # The acceptance scenario, end to end through the CLI: two
        # clean runs, then a slow:size fault run; the gate must exit
        # nonzero and name the slowed stage.
        main(FLOW)
        main(FLOW)
        main(FLOW + ["--inject-fault", "slow:size"])
        code, out = run_cli(capsys, "runs", "regress", "--gate")
        assert code == 3
        assert "stage_wall" in out and "size" in out
        # Without --gate the same findings report but exit 0.
        assert main(["runs", "regress"]) == 0

    def test_regress_json(self, capsys):
        main(FLOW)
        main(FLOW)
        code, out = run_cli(capsys, "runs", "regress", "--json")
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["checks"] >= 2


class TestStatsTop:
    def test_top_without_records(self, capsys):
        assert main(["stats", "--top", "3"]) == 1

    def test_top_reads_last_recorded_spans(self, capsys):
        main(["stats", "--bits", "4", "--sizing-moves", "2"])
        capsys.readouterr()
        code, out = run_cli(capsys, "stats", "--top", "3")
        assert code == 0
        assert "by self time" in out
        # header + run line + 3 rows
        assert len(out.strip().splitlines()) == 5


class TestBenchPercentiles:
    def test_json_includes_histogram_percentiles(self, capsys):
        code, out = run_cli(
            capsys, "bench", "--count", "2000", "--bits", "4",
            "--sizing-moves", "2", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        hist = [k for k in payload if k.startswith("hist.")]
        assert hist
        assert any(k.endswith(".p50") for k in hist)
        assert any(k.endswith(".p95") for k in hist)
        assert any(k.endswith(".max") for k in hist)
        # The bench also recorded itself in the ledger.
        kinds = [r.kind for r in ledger.get_ledger().records()]
        assert "bench" in kinds


class TestInjectFaultSpelling:
    def test_slow_spelling_accepted(self, capsys):
        assert main(FLOW + ["--inject-fault", "slow:size"]) == 0

    def test_unknown_stage_rejected(self):
        with pytest.raises(SystemExit):
            main(FLOW + ["--inject-fault", "slow:nonsense"])
        with pytest.raises(SystemExit):
            main(FLOW + ["--inject-fault", "nonsense"])
