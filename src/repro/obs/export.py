"""Exporters: JSON-lines traces, flat metric dumps, and a human report.

Three consumers, three formats:

* :func:`trace_to_jsonl` -- one JSON object per finished span, in start
  order, for machine post-processing (``repro-gap gap --trace t.jsonl``);
* :func:`metrics_to_flat` -- a flat ``{str: scalar}`` dict in the same
  shape as the repo's ``BENCH_*.json`` artifacts, so metric dumps and
  benchmark trajectories share tooling;
* :func:`report` -- the terminal table behind ``--profile`` and
  ``repro-gap stats``.

All output is deterministic given a deterministic clock: keys are
sorted, floats are rounded to fixed precision, and spans are emitted in
start order.
"""

from __future__ import annotations

import json

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Decimal places kept in exported floats (1 ns at second scale).
FLOAT_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), FLOAT_DIGITS)


def span_to_dict(span: Span) -> dict:
    """JSON-ready form of one finished span."""
    record = {
        "name": span.name,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "thread": span.thread,
        "start_s": _round(span.start_s),
        "duration_ms": _round(span.duration_s * 1e3),
        "self_ms": _round(span.self_s * 1e3),
    }
    if span.attributes:
        record["attrs"] = {
            key: (_round(val) if isinstance(val, float) else val)
            for key, val in sorted(span.attributes.items())
        }
    return record


def trace_to_jsonl(tracer: Tracer) -> str:
    """Finished spans as JSON-lines text (one object per line)."""
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True)
        for span in tracer.finished()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(tracer: Tracer, path: str) -> int:
    """Write the JSON-lines trace atomically; returns the span count.

    Atomic like the ``BENCH_*.json`` merge (temp file + ``os.replace``),
    so a crashed run can never leave a truncated trace behind.
    """
    from repro.obs.ledger import _atomic_write_text

    text = trace_to_jsonl(tracer)
    _atomic_write_text(path, text)
    return len(tracer.finished())


def _flat_label(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


def metrics_to_flat(registry: MetricsRegistry) -> dict:
    """Flatten every metric into a ``BENCH_*.json``-style scalar dict.

    Counters and gauges contribute one key per label set; histograms
    contribute count/mean/p50/p95/max summaries.
    """
    flat: dict = {}
    for metric in registry.all_metrics():
        for key in sorted(metric.series()):
            suffix = _flat_label(key)
            labels = dict(key)
            if isinstance(metric, Counter):
                flat[metric.name + suffix] = _round(metric.value(**labels))
            elif isinstance(metric, Gauge):
                flat[metric.name + suffix] = _round(metric.value(**labels))
            elif isinstance(metric, Histogram):
                base = metric.name + suffix
                flat[base + ".count"] = metric.count(**labels)
                flat[base + ".sum"] = _round(metric.total(**labels))
                flat[base + ".mean"] = _round(metric.mean(**labels))
                flat[base + ".p50"] = _round(metric.percentile(50, **labels))
                flat[base + ".p95"] = _round(metric.percentile(95, **labels))
                flat[base + ".max"] = _round(metric.percentile(100, **labels))
    return flat


def write_metrics(registry: MetricsRegistry, path: str) -> int:
    """Atomically write the flat metrics dump as JSON; returns the key
    count."""
    from repro.obs.ledger import _atomic_write_text

    flat = metrics_to_flat(registry)
    _atomic_write_text(
        path, json.dumps(flat, indent=2, sort_keys=True) + "\n"
    )
    return len(flat)


def report(tracer: Tracer, registry: MetricsRegistry) -> str:
    """Human-readable profile: span tree, then metrics.

    The span section is the indented call-path tree from
    :mod:`repro.obs.render` (total and self milliseconds per node,
    cache-hit and error annotations) rather than the old flat per-name
    table, so nesting -- which stage called which solver how often --
    survives into the terminal view.
    """
    from repro.obs.render import render_metrics, render_span_tree

    sections: list[str] = []
    spans = tracer.finished()
    if spans:
        sections.append(render_span_tree(spans))
    flat = metrics_to_flat(registry)
    if flat:
        sections.append(render_metrics(flat))
    if not sections:
        return "(no observability data recorded)"
    return "\n\n".join(sections)
