"""Process corners and derating.

Section 8 of the paper builds its "process variation and accessibility"
factor on the difference between *worst-case quoted* ASIC speeds and the
*typical or best* silicon a custom vendor ships:

* typical silicon is 60% to 70% faster than the worst-case numbers quoted
  for the slowest qualified fabrication plant;
* the fastest bins off the line are a further 20% to 40% faster than
  typical, but without ASIC-grade yield;
* overall the fastest custom chips may be ~90% faster than worst-case
  ASIC quotes in the same technology.

A *corner* captures one point in that spread as a multiplicative delay
derate: delay_at_corner = derate * nominal_delay.  Slower silicon has a
derate above one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tech.process import TechnologyError


class CornerType(enum.Enum):
    """Named process corners, ordered slowest to fastest."""

    WORST_CASE = "worst_case"
    SLOW = "slow"
    TYPICAL = "typical"
    FAST = "fast"
    BEST_CASE = "best_case"


@dataclass(frozen=True)
class ProcessCorner:
    """One process/voltage/temperature corner.

    Attributes:
        corner_type: the named corner this instance represents.
        delay_derate: multiplier applied to nominal (typical) delay;
            > 1 is slower silicon, < 1 faster.
        vdd_factor: supply relative to nominal (low voltage slows gates).
        temperature_c: junction temperature in Celsius.
    """

    corner_type: CornerType
    delay_derate: float
    vdd_factor: float = 1.0
    temperature_c: float = 25.0

    def __post_init__(self) -> None:
        if self.delay_derate <= 0:
            raise TechnologyError("delay derate must be positive")
        if self.vdd_factor <= 0:
            raise TechnologyError("vdd factor must be positive")

    def apply(self, nominal_delay_ps: float) -> float:
        """Delay at this corner given the nominal (typical) delay."""
        if nominal_delay_ps < 0:
            raise TechnologyError("delay must be non-negative")
        return nominal_delay_ps * self.delay_derate

    def frequency_factor(self) -> float:
        """Clock-frequency multiplier relative to typical (1/derate)."""
        return 1.0 / self.delay_derate


def _corner(kind: CornerType, derate: float, vdd: float, temp: float) -> ProcessCorner:
    return ProcessCorner(
        corner_type=kind, delay_derate=derate, vdd_factor=vdd, temperature_c=temp
    )


#: Standard corner set, calibrated to Section 8's numbers: typical silicon
#: is taken as 1.0; the ASIC worst-case quote is 1.65x slower in delay
#: (i.e. typical is 65% faster, the middle of the paper's 60-70% range);
#: the best bins are 1.30x faster than typical (middle of 20-40%).
STANDARD_CORNERS: dict[CornerType, ProcessCorner] = {
    CornerType.WORST_CASE: _corner(CornerType.WORST_CASE, 1.65, 0.9, 125.0),
    CornerType.SLOW: _corner(CornerType.SLOW, 1.30, 0.95, 85.0),
    CornerType.TYPICAL: _corner(CornerType.TYPICAL, 1.00, 1.0, 25.0),
    CornerType.FAST: _corner(CornerType.FAST, 1.0 / 1.15, 1.05, 0.0),
    CornerType.BEST_CASE: _corner(CornerType.BEST_CASE, 1.0 / 1.30, 1.1, 0.0),
}


def get_corner(corner_type: CornerType) -> ProcessCorner:
    """Return the standard corner of the requested type."""
    return STANDARD_CORNERS[corner_type]


def evaluate_corners(
    module,
    library,
    clock,
    corners: dict[CornerType, ProcessCorner] | None = None,
    wire=None,
    use_array: bool = True,
    **analyze_kwargs,
):
    """Timing reports across a corner set, one per corner.

    Runs the analysis at every corner's ``delay_derate``.  With
    ``use_array`` (the default) all corners share a single compiled
    timing graph and one batched propagation; the object engine runs
    each corner separately and serves as the exact oracle
    (``use_array=False``).

    Returns:
        dict mapping each :class:`CornerType` to its TimingReport.
    """
    # Imported lazily: tech is a leaf package the sta/ layers import
    # from, so a module-level import would create a cycle.
    if corners is None:
        corners = STANDARD_CORNERS
    types = list(corners)
    derates = [corners[t].delay_derate for t in types]
    if use_array:
        from repro.sta.array import batch_analyze

        reports = batch_analyze(
            module, library, clock, derates, wire=wire, **analyze_kwargs
        )
    else:
        from repro.sta.engine import analyze

        reports = [
            analyze(
                module, library, clock, wire=wire,
                delay_derate=d, **analyze_kwargs,
            )
            for d in derates
        ]
    return dict(zip(types, reports))


def worst_case_to_typical_speedup() -> float:
    """Frequency gain of typical silicon over the worst-case quote.

    Section 8: "Typical ASIC chips fabricated on a typical process may be
    60% to 70% faster than the worst case speeds quoted".  With our
    standard corners this returns 1.65.
    """
    return STANDARD_CORNERS[CornerType.WORST_CASE].delay_derate


def typical_to_best_speedup() -> float:
    """Frequency gain of the fastest bins over typical silicon.

    Section 8: "the fastest speeds produced in a plant may be 20% to 40%
    faster" -- our corners use the 30% midpoint.
    """
    return (
        STANDARD_CORNERS[CornerType.TYPICAL].delay_derate
        / STANDARD_CORNERS[CornerType.BEST_CASE].delay_derate
    )


def worst_case_to_best_speedup() -> float:
    """Frequency gain of the fastest custom bins over worst-case quotes.

    Section 8 concludes "the highest speed custom chips fabricated may be
    90% faster than an equivalent ASIC design running at worst case
    speeds"; 1.65 * 1.30 = 2.145 here, bracketing the paper's 1.9 from
    above because the paper assumes the custom vendor does not get the
    very best ASIC-grade worst-case line.
    """
    return worst_case_to_typical_speedup() * typical_to_best_speedup()
