"""Delay-weighted pipeline stage balancing.

Section 4.1: "In a custom processor, careful design can balance the logic
in pipeline stages after placement, ensuring that the delays in each
stage are close, whereas an ASIC may have unbalanced pipeline stages
resulting in more levels of logic on the critical path."

The default pipeliner buckets by *gate count* (unit levels).  This module
re-buckets by *accumulated delay*: each instance is assigned a stage so
that the estimated delay per stage is as even as possible, then the
cutset construction of :mod:`repro.pipeline.pipeliner` applies.  The
measurable payoff is a lower post-STA period at the same stage count --
exactly the custom team's balancing advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cells.library import CellLibrary
from repro.netlist.graph import instance_graph
from repro.netlist.module import Module
from repro.pipeline.overheads import PipelineError


@dataclass(frozen=True)
class BalanceReport:
    """Stage assignment quality.

    Attributes:
        stage_of: instance -> stage index.
        stage_delays_ps: estimated combinational delay per stage.
        stages: stage count.
    """

    stage_of: dict[str, int]
    stage_delays_ps: tuple[float, ...]
    stages: int

    @property
    def imbalance(self) -> float:
        """Max stage delay over mean stage delay (1.0 = perfect)."""
        mean = sum(self.stage_delays_ps) / len(self.stage_delays_ps)
        return max(self.stage_delays_ps) / mean if mean else 1.0


def estimate_gate_delays(
    module: Module, library: CellLibrary, fanout_cap_ff: float | None = None
) -> dict[str, float]:
    """Per-instance delay estimate at a nominal load.

    A quick pre-placement estimate: every gate drives its actual sink
    pins (or a default load); used as node weights for balancing.
    """
    delays: dict[str, float] = {}
    default_load = (
        fanout_cap_ff
        if fanout_cap_ff is not None
        else 4.0 * library.technology.unit_input_cap_ff
    )
    for inst in module.iter_instances():
        cell = library.get(inst.cell_name)
        if cell.is_sequential:
            delays[inst.name] = 0.0
            continue
        out_net = next(iter(inst.outputs.values()), None)
        load = default_load
        if out_net is not None:
            pin_load = 0.0
            for sink in module.sinks_of(out_net):
                if isinstance(sink, tuple):
                    sink_cell = library.get(
                        module.instance(sink[0]).cell_name
                    )
                    pin_load += sink_cell.input_cap_ff(sink[1])
            if pin_load > 0:
                load = pin_load
        delays[inst.name] = cell.worst_delay_ps(load)
    return delays


def balanced_stage_assignment(
    module: Module,
    library: CellLibrary,
    stages: int,
) -> BalanceReport:
    """Assign instances to stages with even *delay* per stage.

    Instances are processed in topological order; each is placed in the
    earliest stage consistent with its predecessors such that the
    accumulated critical delay within the stage stays below the target
    ``total_path_delay / stages``.

    Raises:
        PipelineError: for invalid stage counts or sequential inputs.
    """
    if stages < 1:
        raise PipelineError("stage count must be at least 1")
    seq = library.sequential_cell_names()
    for inst in module.iter_instances():
        if inst.cell_name in seq:
            raise PipelineError("balancing expects a combinational module")
    delays = estimate_gate_delays(module, library)
    graph = instance_graph(module)
    order = list(nx.topological_sort(graph))
    # Critical-path arrival with delay weights.
    arrival: dict[str, float] = {}
    for name in order:
        preds = list(graph.predecessors(name))
        arrival[name] = delays[name] + max(
            (arrival[p] for p in preds), default=0.0
        )
    total = max(arrival.values(), default=0.0)
    if total <= 0:
        raise PipelineError("module has no combinational delay")
    target = total / stages
    stage_of: dict[str, int] = {}
    for name in order:
        # Stage by delay position of the gate's *completion* time.
        stage = min(stages - 1, int((arrival[name] - 1e-9) // target))
        # Never earlier than any predecessor.
        for p in graph.predecessors(name):
            stage = max(stage, stage_of[p])
        stage_of[name] = stage
    stage_delays = [0.0] * stages
    stage_start: dict[str, float] = {}
    for name in order:
        preds = [
            p for p in graph.predecessors(name)
            if stage_of[p] == stage_of[name]
        ]
        start = max((stage_start[p] for p in preds), default=0.0)
        stage_start[name] = start + delays[name]
        stage_delays[stage_of[name]] = max(
            stage_delays[stage_of[name]], stage_start[name]
        )
    return BalanceReport(
        stage_of=stage_of,
        stage_delays_ps=tuple(stage_delays),
        stages=stages,
    )


def pipeline_module_balanced(
    module: Module,
    library: CellLibrary,
    stages: int,
    clock_name: str = "clk",
    use_latches: bool = False,
):
    """Pipeline with delay-balanced cuts instead of unit-level cuts.

    Returns the same :class:`~repro.pipeline.pipeliner.PipelineReport`
    as :func:`~repro.pipeline.pipeliner.pipeline_module`.
    """
    from repro.pipeline import pipeliner as _p

    if stages < 1:
        raise PipelineError("stage count must be at least 1")
    assignment = balanced_stage_assignment(module, library, stages)

    # Reuse the pipeliner by monkey-free injection: replicate its body
    # with our stage map.  (The pipeliner's bucketing is the only thing
    # that changes.)
    return _pipeline_with_stage_map(
        module, library, assignment.stage_of, stages, clock_name, use_latches
    )


def _pipeline_with_stage_map(
    module: Module,
    library: CellLibrary,
    stage_of: dict[str, int],
    stages: int,
    clock_name: str,
    use_latches: bool,
):
    from repro.pipeline.pipeliner import PipelineReport

    seq_cell = library.latch() if use_latches else library.flip_flop()
    clock_pin = seq_cell.sequential.clock_pin
    piped = Module(f"{module.name}_bal{stages}")
    clk = piped.add_input(clock_name)
    registers = 0

    source_stage: dict[str, int] = {}
    net_map_base: dict[str, str] = {}
    for port in module.inputs():
        outer = piped.add_input(port)
        inner = piped.add_net(f"{port}_s0")
        piped.add_instance(
            f"pin_{port}", seq_cell.name,
            inputs={"D": outer, clock_pin: clk},
            outputs={seq_cell.output: inner},
        )
        registers += 1
        net_map_base[port] = inner
        source_stage[port] = 0

    out_rename = {p: f"{p}_pre" for p in module.outputs()}
    for inst in module.iter_instances():
        for net in inst.outputs.values():
            source_stage[out_rename.get(net, net)] = stage_of[inst.name]

    chains: dict[str, list[str]] = {}
    count = [registers]

    def delayed(net: str, hops: int) -> str:
        if hops <= 0:
            return net_map_base.get(net, net)
        chain = chains.setdefault(net, [])
        while len(chain) < hops:
            src = chain[-1] if chain else net_map_base.get(net, net)
            out = piped.add_net(f"{net}_d{len(chain) + 1}")
            piped.add_instance(
                None, seq_cell.name,
                inputs={"D": src, clock_pin: clk},
                outputs={seq_cell.output: out},
            )
            count[0] += 1
            chain.append(out)
        return chain[hops - 1]

    for inst in module.iter_instances():
        my_stage = stage_of[inst.name]
        new_inputs = {}
        for pin, net in inst.inputs.items():
            renamed = out_rename.get(net, net)
            hops = my_stage - source_stage[renamed]
            if hops < 0:
                raise PipelineError(
                    f"balanced stage map inverts net {net} into {inst.name}"
                )
            new_inputs[pin] = delayed(renamed, hops)
        new_outputs = {
            pin: out_rename.get(net, net)
            for pin, net in inst.outputs.items()
        }
        piped.add_instance(
            inst.name, inst.cell_name,
            inputs=new_inputs, outputs=new_outputs,
            **dict(inst.attributes),
        )

    for port in module.outputs():
        pre = out_rename[port]
        hops = (stages - 1) - source_stage[pre]
        tapped = delayed(pre, hops) if hops > 0 else pre
        piped.add_output(port)
        piped.add_instance(
            f"pout_{port}", seq_cell.name,
            inputs={"D": tapped, clock_pin: clk},
            outputs={seq_cell.output: port},
        )
        count[0] += 1

    piped.assert_well_formed()
    # Per-stage unit-delay depth (longest same-stage gate chain).
    graph = instance_graph(module)
    depths = [0] * stages
    depth_in_stage: dict[str, int] = {}
    for name in nx.topological_sort(graph):
        same = [
            depth_in_stage[p]
            for p in graph.predecessors(name)
            if stage_of[p] == stage_of[name]
        ]
        depth_in_stage[name] = 1 + max(same, default=0)
        depths[stage_of[name]] = max(
            depths[stage_of[name]], depth_in_stage[name]
        )
    return PipelineReport(
        module=piped,
        stages=stages,
        registers_added=count[0],
        latency_cycles=stages + 1,
        stage_depths=tuple(max(1, d) for d in depths),
    )
