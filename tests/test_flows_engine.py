"""Engine semantics: ordering, fingerprints, caching, resume, degrade.

The flow engine is declarative -- stages declare inputs/outputs/params
and the engine derives execution order, cache keys and resume points --
so these tests pin the *semantics* of that derivation: deterministic
topological order, fingerprint sensitivity (and insensitivity to policy
fields), cache hit/miss and isolation, checkpoint/resume after an
injected fault, and degraded-stage propagation into diagnostics.
"""

import dataclasses

import pytest

from repro.flows import (
    ASIC_GRAPH,
    AsicFlowOptions,
    CustomFlowOptions,
    FlowEngine,
    FlowError,
    Stage,
    StageGraph,
    options_fingerprint,
    run_asic_flow,
    run_custom_flow,
    stage_fingerprint,
)
from repro.flows import cache as stage_cache
from repro.flows.engine import FlowContext
from repro.tech.process import CMOS250_ASIC

SMALL = dict(bits=4, sizing_moves=3)


def _noop(ctx):
    pass


def _statuses(result):
    return [(r.name, r.status) for r in result.stage_records]


def _comparable(result):
    payload = result.to_dict()
    payload.pop("stages")
    return payload


class TestTopologicalOrder:
    def test_asic_graph_order(self):
        assert ASIC_GRAPH.stage_names() == [
            "map", "place", "cts", "size", "sta", "quote"
        ]

    def test_declaration_order_breaks_ties(self):
        # b and c both depend only on a; declaration order decides.
        graph = StageGraph("t", (
            Stage("a", _noop, outputs=("x",)),
            Stage("c", _noop, inputs=("x",)),
            Stage("b", _noop, inputs=("x",)),
        ))
        assert graph.stage_names() == ["a", "c", "b"]

    def test_producer_before_consumer(self):
        # Declared consumer-first; the topo order flips them.
        graph = StageGraph("t", (
            Stage("use", _noop, inputs=("x",)),
            Stage("make", _noop, outputs=("x",)),
            Stage("seed", _noop, outputs=("y",)),
        ))
        order = graph.stage_names()
        assert order.index("make") < order.index("use")

    def test_rewriter_runs_after_earlier_readers(self):
        # "mut" rewrites x in place; the earlier-declared reader must
        # see the pre-mutation value, so mut sequences after it.
        graph = StageGraph("t", (
            Stage("make", _noop, outputs=("x",)),
            Stage("read", _noop, inputs=("x",)),
            Stage("mut", _noop, inputs=("x",), outputs=("x",)),
            Stage("late", _noop, inputs=("x",)),
        ))
        order = graph.stage_names()
        assert order.index("read") < order.index("mut") < order.index("late")

    def test_cycle_detected(self):
        with pytest.raises(FlowError, match="cycle"):
            StageGraph("t", (
                Stage("a", _noop, inputs=("y",), outputs=("x",)),
                Stage("b", _noop, inputs=("x",), outputs=("y",)),
            ))

    def test_duplicate_names_rejected(self):
        with pytest.raises(FlowError, match="duplicate"):
            StageGraph("t", (Stage("a", _noop), Stage("a", _noop)))

    def test_hook_for_unknown_stage_rejected(self):
        with pytest.raises(FlowError, match="unknown stages"):
            StageGraph("t", (Stage("a", _noop),),
                       hooks={"ghost": lambda ctx, runner: None})

    def test_get_unknown_stage(self):
        with pytest.raises(FlowError, match="unknown stage 'ghost'"):
            ASIC_GRAPH.get("ghost")

    def test_describe_lists_every_stage(self):
        text = ASIC_GRAPH.describe()
        for name in ASIC_GRAPH.stage_names():
            assert name in text


class TestFingerprints:
    def test_declared_param_changes_fingerprint(self):
        stage = ASIC_GRAPH.get("size")
        a = stage_fingerprint(ASIC_GRAPH, stage,
                              AsicFlowOptions(sizing_moves=5),
                              CMOS250_ASIC, {})
        b = stage_fingerprint(ASIC_GRAPH, stage,
                              AsicFlowOptions(sizing_moves=6),
                              CMOS250_ASIC, {})
        assert a != b

    def test_undeclared_field_does_not_change_fingerprint(self):
        # speed_test is a quote-stage param, invisible to sizing.
        stage = ASIC_GRAPH.get("size")
        a = stage_fingerprint(ASIC_GRAPH, stage, AsicFlowOptions(),
                              CMOS250_ASIC, {})
        b = stage_fingerprint(ASIC_GRAPH, stage,
                              AsicFlowOptions(speed_test=True),
                              CMOS250_ASIC, {})
        assert a == b

    def test_upstream_fingerprint_chains(self):
        stage = ASIC_GRAPH.get("sta")
        a = stage_fingerprint(ASIC_GRAPH, stage, AsicFlowOptions(),
                              CMOS250_ASIC, {"module": "fp1"})
        b = stage_fingerprint(ASIC_GRAPH, stage, AsicFlowOptions(),
                              CMOS250_ASIC, {"module": "fp2"})
        assert a != b

    def test_options_fingerprint_ignores_policy_fields(self):
        base = AsicFlowOptions(**SMALL)
        faulted = dataclasses.replace(base, fault="sta",
                                      on_error="keep_going")
        assert options_fingerprint(base) == options_fingerprint(faulted)
        assert (options_fingerprint(base)
                != options_fingerprint(AsicFlowOptions(bits=5)))


class TestStageCache:
    def test_identical_rerun_hits_every_stage(self):
        first = run_asic_flow(AsicFlowOptions(**SMALL))
        second = run_asic_flow(AsicFlowOptions(**SMALL))
        assert all(r.status == "ok" for r in first.stage_records)
        assert all(r.status == "cached" for r in second.stage_records)
        assert _comparable(first) == _comparable(second)

    def test_shared_prefix_reused_suffix_recomputed(self):
        run_asic_flow(AsicFlowOptions(**SMALL))
        other = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=2))
        assert _statuses(other) == [
            ("map", "cached"), ("place", "cached"), ("cts", "cached"),
            ("size", "ok"), ("sta", "ok"), ("quote", "ok"),
        ]

    def test_cached_results_are_isolated_copies(self):
        first = run_asic_flow(AsicFlowOptions(**SMALL))
        second = run_asic_flow(AsicFlowOptions(**SMALL))
        # Same content, distinct object graphs: a consumer mutating one
        # result's notes must not leak into later cache replays.
        assert first.notes == second.notes
        assert first.notes is not second.notes

    def test_disabled_cache_recomputes(self):
        run_asic_flow(AsicFlowOptions(**SMALL))
        stage_cache.set_enabled(False)
        rerun = run_asic_flow(AsicFlowOptions(**SMALL))
        assert all(r.status == "ok" for r in rerun.stage_records)

    def test_fault_run_bypasses_cache_entirely(self):
        result = run_asic_flow(
            AsicFlowOptions(bits=4, sizing_moves=3,
                            on_error="keep_going", fault="size")
        )
        assert any(r.status == "failed" for r in result.stage_records)
        stats = stage_cache.stats()
        assert stats["puts"] == 0 and stats["hits"] == 0

    def test_failed_stage_outputs_never_cached(self):
        run_asic_flow(
            AsicFlowOptions(bits=4, sizing_moves=3,
                            on_error="keep_going", fault="sta")
        )
        clean = run_asic_flow(AsicFlowOptions(bits=4, sizing_moves=3))
        # The degraded run left nothing behind: the clean run computes
        # every stage itself.
        assert all(r.status == "ok" for r in clean.stage_records)

    def test_custom_flow_caches_too(self):
        opts = CustomFlowOptions(bits=4, pipeline_stages=2, sizing_moves=3)
        first = run_custom_flow(opts)
        second = run_custom_flow(opts)
        assert all(r.status == "cached" for r in second.stage_records)
        assert _comparable(first) == _comparable(second)


class TestCheckpointResume:
    def test_resume_after_injected_fault(self, tmp_path):
        ck = str(tmp_path / "flow.ck")
        clean = run_asic_flow(AsicFlowOptions(**SMALL))
        stage_cache.reset()  # make the resumed run prove itself uncached

        with pytest.raises(FlowError) as excinfo:
            run_asic_flow(AsicFlowOptions(fault="sta", **SMALL),
                          checkpoint=ck)
        assert excinfo.value.stage == "sta"

        stage_cache.set_enabled(False)
        resumed = run_asic_flow(AsicFlowOptions(**SMALL),
                                checkpoint=ck, resume=True)
        assert _statuses(resumed) == [
            ("map", "resumed"), ("place", "resumed"), ("cts", "resumed"),
            ("size", "resumed"), ("sta", "ok"), ("quote", "ok"),
        ]
        assert _comparable(resumed) == _comparable(clean)

    def test_from_stage_recomputes_tail(self, tmp_path):
        ck = str(tmp_path / "flow.ck")
        clean = run_asic_flow(AsicFlowOptions(**SMALL), checkpoint=ck)
        stage_cache.set_enabled(False)
        redo = run_asic_flow(AsicFlowOptions(**SMALL), checkpoint=ck,
                             resume=True, from_stage="size")
        assert _statuses(redo) == [
            ("map", "resumed"), ("place", "resumed"), ("cts", "resumed"),
            ("size", "ok"), ("sta", "ok"), ("quote", "ok"),
        ]
        assert _comparable(redo) == _comparable(clean)

    def test_until_then_resume_completes(self, tmp_path):
        ck = str(tmp_path / "flow.ck")
        options = AsicFlowOptions(**SMALL)
        engine = FlowEngine(ASIC_GRAPH)
        partial = engine.run(options, CMOS250_ASIC, checkpoint=ck,
                             until="cts")
        statuses = {r.name: r.status for r in partial.stage_records}
        assert statuses["cts"] == "ok"
        assert statuses["size"] == statuses["quote"] == "skipped"
        assert "timing" not in partial

        stage_cache.set_enabled(False)
        finished = run_asic_flow(options, checkpoint=ck, resume=True)
        assert _statuses(finished)[:3] == [
            ("map", "resumed"), ("place", "resumed"), ("cts", "resumed"),
        ]
        assert finished.quoted_frequency_mhz > 0

    def test_resume_rejects_other_design_point(self, tmp_path):
        ck = str(tmp_path / "flow.ck")
        run_asic_flow(AsicFlowOptions(**SMALL), checkpoint=ck)
        with pytest.raises(FlowError, match="different design point"):
            run_asic_flow(AsicFlowOptions(bits=6, sizing_moves=3),
                          checkpoint=ck, resume=True)

    def test_resume_rejects_other_flow(self, tmp_path):
        ck = str(tmp_path / "flow.ck")
        run_asic_flow(AsicFlowOptions(**SMALL), checkpoint=ck)
        with pytest.raises(FlowError, match="is for flow"):
            run_custom_flow(
                CustomFlowOptions(bits=4, pipeline_stages=2,
                                  sizing_moves=3),
                checkpoint=ck, resume=True,
            )

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(FlowError, match="without a checkpoint"):
            run_asic_flow(AsicFlowOptions(**SMALL), resume=True)

    def test_from_requires_resume(self):
        with pytest.raises(FlowError, match="requires resuming"):
            run_asic_flow(AsicFlowOptions(**SMALL), from_stage="size")

    def test_unknown_stage_names_rejected(self, tmp_path):
        engine = FlowEngine(ASIC_GRAPH)
        with pytest.raises(FlowError, match="unknown --until"):
            engine.run(AsicFlowOptions(**SMALL), CMOS250_ASIC,
                       until="ghost")
        with pytest.raises(FlowError, match="unknown --from"):
            engine.run(AsicFlowOptions(**SMALL), CMOS250_ASIC,
                       checkpoint=str(tmp_path / "ck"), resume=True,
                       from_stage="ghost")

    def test_corrupt_checkpoint_is_a_flow_error(self, tmp_path):
        ck = tmp_path / "flow.ck"
        ck.write_bytes(b"not a pickle")
        with pytest.raises(FlowError, match="cannot load"):
            run_asic_flow(AsicFlowOptions(**SMALL),
                          checkpoint=str(ck), resume=True)


class TestDegradation:
    def test_failed_stage_lands_in_diagnostics_and_records(self):
        result = run_asic_flow(
            AsicFlowOptions(bits=4, sizing_moves=3,
                            on_error="keep_going", fault="sta")
        )
        statuses = {r.name: r.status for r in result.stage_records}
        assert statuses["sta"] == "failed"
        assert statuses["quote"] == "ok"  # recovered timing fed onward
        assert any(d.code == "flow.stage_failed" and d.subject == "sta"
                   for d in result.diagnostics)
        assert result.quoted_frequency_mhz > 0

    def test_critical_stage_raises_even_when_keep_going(self):
        with pytest.raises(FlowError) as excinfo:
            run_asic_flow(
                AsicFlowOptions(bits=4, sizing_moves=3,
                                on_error="keep_going", fault="map")
            )
        assert excinfo.value.stage == "map"

    def test_stage_records_reach_to_dict(self):
        result = run_asic_flow(AsicFlowOptions(**SMALL))
        stages = result.to_dict()["stages"]
        assert [s["name"] for s in stages] == ASIC_GRAPH.stage_names()
        for entry in stages:
            assert entry["status"] == "ok"
            assert entry["wall_s"] >= 0.0
            assert entry["cache_hit"] is False
            assert len(entry["fingerprint"]) == 16


class TestFlowContext:
    def test_missing_artifact_names_stage_and_keys(self):
        ctx = FlowContext("asic", AsicFlowOptions(), CMOS250_ASIC)
        ctx["module"] = object()
        with pytest.raises(FlowError, match="no artifact 'timing'"):
            ctx["timing"]

    def test_get_with_default(self):
        ctx = FlowContext("asic", AsicFlowOptions(), CMOS250_ASIC)
        assert ctx.get("wire") is None
        assert "wire" not in ctx
