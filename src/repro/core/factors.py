"""The Section 3 factor decomposition -- the paper's central model.

"The following gives our overview of the maximum contribution of various
factors to the speed differential between ASICs and custom ICs:

* x4.00 through architecture and logic design: heavy pipelining / few
  logic levels between registers
* x1.25 by good floorplanning and placement
* x1.25 with clever sizing of transistors and wires for speed and good
  circuit design
* x1.50 from use of dynamic logic on critical paths, instead of static
  CMOS logic
* x1.90 due to process variation and accessibility"

and the Section 9 synthesis: pipelining and process variation together
"account for all except a factor of about 2 to 3x"; adding dynamic logic
leaves "about 1.6x".
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from repro.tech.scaling import generations_equivalent


class FactorError(ValueError):
    """Raised for invalid factor-model queries."""


@dataclass(frozen=True)
class Factor:
    """One multiplicative contributor to the ASIC-custom gap.

    Attributes:
        name: short identifier.
        max_contribution: the paper's maximum speedup attributable to it.
        description: what the factor covers.
        section: paper section developing it.
    """

    name: str
    max_contribution: float
    description: str
    section: str

    def __post_init__(self) -> None:
        if self.max_contribution < 1.0:
            raise FactorError(
                f"factor {self.name}: contribution must be at least 1.0"
            )


#: The five factors, exactly as tabulated in Section 3.
MICROARCHITECTURE = Factor(
    name="microarchitecture",
    max_contribution=4.00,
    description=(
        "architecture and logic design: heavy pipelining, few logic "
        "levels between registers"
    ),
    section="4",
)
FLOORPLANNING = Factor(
    name="floorplanning",
    max_contribution=1.25,
    description="good floorplanning and placement",
    section="5",
)
SIZING = Factor(
    name="sizing",
    max_contribution=1.25,
    description=(
        "clever sizing of transistors and wires for speed and good "
        "circuit design"
    ),
    section="6",
)
DYNAMIC_LOGIC = Factor(
    name="dynamic_logic",
    max_contribution=1.50,
    description="dynamic logic on critical paths instead of static CMOS",
    section="7",
)
PROCESS_VARIATION = Factor(
    name="process_variation",
    max_contribution=1.90,
    description="process variation and accessibility",
    section="8",
)

PAPER_FACTORS: tuple[Factor, ...] = (
    MICROARCHITECTURE,
    FLOORPLANNING,
    SIZING,
    DYNAMIC_LOGIC,
    PROCESS_VARIATION,
)


class FactorModel:
    """The multiplicative gap model over a set of factors.

    The default instance is the paper's model; experiments construct
    alternative instances from *measured* contributions to compare
    against it.
    """

    def __init__(self, factors: Iterable[Factor] = PAPER_FACTORS) -> None:
        self.factors = tuple(factors)
        names = [f.name for f in self.factors]
        if len(set(names)) != len(names):
            raise FactorError("duplicate factor names")
        if not self.factors:
            raise FactorError("need at least one factor")

    def get(self, name: str) -> Factor:
        for factor in self.factors:
            if factor.name == name:
                return factor
        known = [f.name for f in self.factors]
        raise FactorError(f"no factor {name!r}; known: {known}")

    def total_product(self) -> float:
        """Maximum combined gap if every factor is fully exploited.

        For the paper's numbers: 4.0 * 1.25 * 1.25 * 1.5 * 1.9 = 17.8,
        "custom circuits could run 18x faster than their average ASIC
        counterparts".
        """
        return math.prod(f.max_contribution for f in self.factors)

    def product_of(self, names: Iterable[str]) -> float:
        """Combined contribution of a subset of factors."""
        return math.prod(self.get(name).max_contribution for name in names)

    def residual_after(self, names: Iterable[str]) -> float:
        """Gap left unexplained once the named factors are accounted for.

        Section 9's arithmetic: after pipelining and process variation,
        ``17.8 / (4.0 * 1.9) = 2.3`` ("all except a factor of about 2 to
        3x"); adding dynamic logic leaves ``1.56`` ("about 1.6x").
        """
        return self.total_product() / self.product_of(names)

    def explained_fraction(self, names: Iterable[str]) -> float:
        """Log-domain share of the total gap the named factors explain."""
        total = math.log(self.total_product())
        if total <= 0:
            raise FactorError("total gap must exceed 1x")
        return math.log(self.product_of(names)) / total

    def gap_in_generations(self) -> float:
        """The maximum gap expressed in process generations (Section 2)."""
        return generations_equivalent(self.total_product())

    def ranked(self) -> list[Factor]:
        """Factors sorted by contribution, largest first."""
        return sorted(
            self.factors, key=lambda f: f.max_contribution, reverse=True
        )

    def table(self) -> str:
        """The Section 3 table as text."""
        lines = [f"{'factor':<20s} {'max contribution':>18s}"]
        for factor in self.factors:
            lines.append(
                f"{factor.name:<20s} {factor.max_contribution:>17.2f}x"
            )
        lines.append(f"{'product':<20s} {self.total_product():>17.2f}x")
        return "\n".join(lines)


def measured_model(contributions: dict[str, float]) -> FactorModel:
    """Build a FactorModel from measured contributions.

    Args:
        contributions: factor name -> measured speedup.  Names reuse the
            paper's factor identities; descriptions are carried over when
            the name matches a paper factor.
    """
    paper_by_name = {f.name: f for f in PAPER_FACTORS}
    factors = []
    for name, value in contributions.items():
        template = paper_by_name.get(name)
        factors.append(
            Factor(
                name=name,
                max_contribution=value,
                description=(
                    template.description if template else "measured factor"
                ),
                section=template.section if template else "-",
            )
        )
    return FactorModel(factors)
