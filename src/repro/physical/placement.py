"""Gate-level placement: row grid, HPWL objective, annealing refinement.

Section 5: "the primary factor in wire delay is wire length.  Wire length
is obviously dependent on placement".  The placer assigns every instance
a slot on a row grid, then improves total half-perimeter wirelength by
simulated annealing on pairwise swaps.  Two quality settings bracket the
paper's comparison:

* ``careful`` -- topology-aware initial order plus a full annealing
  schedule (the custom / good-tool outcome);
* ``sloppy``  -- random scatter with no refinement (the unfloorplanned
  ASIC outcome Section 5.1 measures against).

The result exports :class:`~repro.sta.timing_graph.WireParasitics` via the
BACPAC-style models in :mod:`repro.physical.wires`, which is how placement
quality reaches the timing engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.cells.library import CellLibrary
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.netlist.nets import is_port_ref
from repro.optimize.anneal import anneal
from repro.physical.geometry import GeometryError, Point
from repro.physical.wires import optimal_repeater_plan, optimal_segment_um
from repro.sta.timing_graph import WireParasitics

#: Routed length is longer than HPWL by a detour factor; 1.15 is a common
#: empirical allowance for lightly congested designs.
ROUTE_DETOUR = 1.15


@dataclass
class Placement:
    """A placed netlist.

    Attributes:
        module: the placed netlist.
        positions: instance name -> location (um).
        port_positions: port name -> location on the die boundary.
        pitch_um: slot pitch of the placement grid.
    """

    module: Module
    positions: dict[str, Point]
    port_positions: dict[str, Point]
    pitch_um: float

    def net_length_um(self, net: str) -> float:
        """Estimated routed length of one net (HPWL x detour)."""
        pins = self._net_pins(net)
        if len(pins) < 2:
            return 0.0
        xs = [p.x for p in pins]
        ys = [p.y for p in pins]
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        return hpwl * ROUTE_DETOUR

    def _net_pins(self, net: str) -> list[Point]:
        pins: list[Point] = []
        driver = self.module.driver_of(net)
        if driver is not None:
            pins.append(self._endpoint_pos(driver, net))
        for sink in self.module.sinks_of(net):
            pins.append(self._endpoint_pos(sink, net))
        return pins

    def _endpoint_pos(self, endpoint: object, net: str) -> Point:
        if is_port_ref(endpoint):
            return self.port_positions[str(endpoint).split(":", 1)[1]]
        inst_name, _pin = endpoint
        return self.positions[inst_name]

    def total_wirelength_um(self) -> float:
        """Sum of estimated routed lengths over all nets."""
        return sum(self.net_length_um(net) for net in self.module.nets)

    def parasitics(self, library: CellLibrary) -> WireParasitics:
        """Wire parasitics for the timing engine.

        Short nets contribute their wire capacitance (seen by the driver)
        plus the distributed-RC flight time; nets longer than twice the
        optimal repeater segment are assumed repeated, contributing the
        repeater-chain delay and only the first repeater's input load.
        """
        tech = library.technology
        seg = optimal_segment_um(tech)
        extra_cap: dict[str, float] = {}
        extra_delay: dict[str, float] = {}
        for net in self.module.nets:
            length = self.net_length_um(net)
            if length <= 0.0:
                continue
            if length > 2.0 * seg:
                plan = optimal_repeater_plan(tech, length)
                extra_cap[net] = plan.repeater_drive * tech.unit_input_cap_ff
                extra_delay[net] = plan.delay_ps
            else:
                cw = tech.interconnect.wire_capacitance(length)
                rw = tech.interconnect.wire_resistance(length)
                extra_cap[net] = cw
                extra_delay[net] = 0.38 * rw * cw * 1e-3
        return WireParasitics(extra_cap_ff=extra_cap, extra_delay_ps=extra_delay)


def place(
    module: Module,
    library: CellLibrary,
    quality: str = "careful",
    seed: int = 1,
    utilization: float = 0.7,
    iterations: int | None = None,
    rng: random.Random | None = None,
) -> Placement:
    """Place a netlist on a row grid.

    Args:
        module: netlist to place.
        library: provides cell areas and the technology.
        quality: ``"careful"`` (topological seed + annealing) or
            ``"sloppy"`` (random scatter, no refinement).
        seed: RNG seed.  Flows thread ``FlowOptions.seed`` through here,
            so the seed stays part of the design point (it is a
            fingerprinted stage param, *not* a policy field -- two
            seeds are two different placements and must never share a
            cached stage or a resumed sweep point).
        utilization: cell area over die area.
        iterations: annealing steps (default scales with design size).
        rng: explicit RNG to draw from instead of ``Random(seed)``;
            lets callers (e.g. the structured placer's comparisons)
            share one stream across placement styles.

    Raises:
        GeometryError: for empty modules or bad parameters.
    """
    if quality not in ("careful", "sloppy"):
        raise GeometryError(f"unknown placement quality {quality!r}")
    if not 0.05 < utilization <= 1.0:
        raise GeometryError("utilization must be in (0.05, 1.0]")
    instances = list(module.instances)
    if not instances:
        raise GeometryError(f"module {module.name} has nothing to place")

    total_area = sum(
        library.get(module.instance(i).cell_name).area_um2 for i in instances
    )
    die_area = total_area / utilization
    cols = max(1, math.ceil(math.sqrt(len(instances))))
    rows = max(1, math.ceil(len(instances) / cols))
    pitch = math.sqrt(die_area / (rows * cols))
    if rng is None:
        rng = random.Random(seed)

    if quality == "careful":
        seq = library.sequential_cell_names()
        order = topological_order(module, seq)
    else:
        order = list(instances)
        rng.shuffle(order)

    positions: dict[str, Point] = {}
    for idx, name in enumerate(order):
        row, col = divmod(idx, cols)
        if row % 2 == 1:
            col = cols - 1 - col  # serpentine keeps neighbours adjacent
        positions[name] = Point((col + 0.5) * pitch, (row + 0.5) * pitch)

    die_w = cols * pitch
    die_h = rows * pitch
    port_positions: dict[str, Point] = {}
    ins = module.inputs()
    outs = module.outputs()
    for i, port in enumerate(ins):
        port_positions[port] = Point(0.0, die_h * (i + 1) / (len(ins) + 1))
    for i, port in enumerate(outs):
        port_positions[port] = Point(die_w, die_h * (i + 1) / (len(outs) + 1))

    placement = Placement(module, positions, port_positions, pitch)
    if quality == "careful":
        steps = iterations if iterations is not None else 40 * len(instances)
        _anneal(placement, rng, steps)
    return placement


def _instance_nets(module: Module) -> dict[str, list[str]]:
    """Instance -> nets it touches (for incremental cost updates)."""
    touching: dict[str, list[str]] = {name: [] for name in module.instances}
    for inst in module.iter_instances():
        for net in list(inst.inputs.values()) + list(inst.outputs.values()):
            touching[inst.name].append(net)
    return touching


class _PositionSwaps:
    """Annealing problem: pairwise position swaps on total HPWL.

    The move/cost half of the old in-place annealer; the schedule and
    acceptance rule now live in :func:`repro.optimize.anneal.anneal`.
    """

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        self.names = list(placement.positions)
        self.touching = _instance_nets(placement.module)

    def propose(self, rng: random.Random) -> tuple[str, str]:
        a, b = rng.sample(self.names, 2)
        return a, b

    def _swap(self, a: str, b: str) -> None:
        positions = self.placement.positions
        positions[a], positions[b] = positions[b], positions[a]

    def apply(self, move: tuple[str, str]) -> float:
        a, b = move
        # Sorted so the float summation order (and with it every
        # accept/reject decision) is independent of PYTHONHASHSEED.
        nets = sorted(set(self.touching[a]) | set(self.touching[b]))
        before = sum(self.placement.net_length_um(n) for n in nets)
        self._swap(a, b)
        after = sum(self.placement.net_length_um(n) for n in nets)
        return after - before

    def revert(self, move: tuple[str, str]) -> None:
        self._swap(*move)


def _anneal(placement: Placement, rng: random.Random, steps: int) -> None:
    """Pairwise-swap annealing on total HPWL."""
    if len(placement.positions) < 2:
        return
    anneal(
        _PositionSwaps(placement), rng, steps=steps,
        temperature=placement.pitch_um * 4.0,
    )
