"""Unit and property tests for the process-variation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.variation import (
    MATURE_PROCESS,
    NEW_PROCESS,
    VariationComponents,
    VariationError,
    access_gap,
    accessibility_penalty,
    asic_worst_case_quote,
    best_accessible_fab,
    bin_population,
    custom_flagship_frequency,
    default_foundry_set,
    expected_bin_spread,
    fab_distributions,
    fab_spread,
    maturity_trend,
    sample_chip_speeds,
    speed_tested_quote,
)


@pytest.fixture(scope="module")
def new_dist():
    return sample_chip_speeds(400.0, NEW_PROCESS, count=20000, seed=3)


@pytest.fixture(scope="module")
def mature_dist():
    return sample_chip_speeds(400.0, MATURE_PROCESS, count=20000, seed=3)


class TestComponents:
    def test_quadrature(self):
        c = VariationComponents(0.03, 0.04, 0.0, 0.02)
        assert c.chip_level_sigma == pytest.approx(0.05)

    def test_presets_ordered(self):
        assert NEW_PROCESS.chip_level_sigma > MATURE_PROCESS.chip_level_sigma

    def test_scaled(self):
        half = NEW_PROCESS.scaled(0.5)
        assert half.chip_level_sigma == pytest.approx(
            NEW_PROCESS.chip_level_sigma / 2
        )

    def test_new_process_bin_spread_in_paper_band(self):
        # Section 8.1.1: initial variation "about 30% to 40%".
        spread = expected_bin_spread(NEW_PROCESS)
        assert 1.25 < spread < 1.45

    def test_validation(self):
        with pytest.raises(VariationError):
            VariationComponents(-0.1, 0.0, 0.0, 0.0)
        with pytest.raises(VariationError):
            VariationComponents(0.0, 0.0, 0.0, 0.0, critical_paths=0)
        with pytest.raises(VariationError):
            NEW_PROCESS.scaled(-1.0)


class TestMonteCarlo:
    def test_deterministic_with_seed(self):
        a = sample_chip_speeds(400.0, NEW_PROCESS, count=500, seed=9)
        b = sample_chip_speeds(400.0, NEW_PROCESS, count=500, seed=9)
        assert np.array_equal(a.frequencies_mhz, b.frequencies_mhz)

    def test_median_below_nominal(self, new_dist):
        # Intra-die max-of-paths always slows a chip.
        assert new_dist.median_mhz < new_dist.nominal_mhz

    def test_spread_matches_paper_band(self, new_dist):
        # 533-733 MHz at 0.18 um launch is a 1.375 spread; our p99/p1 for
        # a new process lands in the same region.
        assert 1.30 < new_dist.spread < 1.55

    def test_mature_process_tighter(self, new_dist, mature_dist):
        assert mature_dist.spread < new_dist.spread

    def test_yield_monotone(self, new_dist):
        y_low = new_dist.yield_at(new_dist.percentile(5.0))
        y_high = new_dist.yield_at(new_dist.percentile(95.0))
        assert y_low > 0.9 > 0.1 > y_high

    def test_maturity_trend_improves(self):
        trend = maturity_trend(400.0, NEW_PROCESS, quarters=6, count=3000)
        assert trend[-1].spread < trend[0].spread
        assert trend[-1].median_mhz > trend[0].median_mhz

    def test_validation(self, new_dist):
        with pytest.raises(VariationError):
            sample_chip_speeds(0.0, NEW_PROCESS)
        with pytest.raises(VariationError):
            new_dist.percentile(123.0)
        with pytest.raises(VariationError):
            new_dist.yield_at(-1.0)


class TestAccessGap:
    def test_typical_over_quote_in_paper_band(self, new_dist):
        # Section 8: typical 60-70% faster than worst-case quotes; our
        # corner stack gives ~1.55-1.7.
        gap = access_gap(new_dist)
        assert 1.45 < gap.typical_over_quote < 1.75

    def test_flagship_over_typical_in_paper_band(self, new_dist):
        # Section 8: fastest bins 20-40% faster (we land at the low edge).
        gap = access_gap(new_dist)
        assert 1.15 < gap.flagship_over_typical < 1.40

    def test_overall_near_90_percent(self, new_dist):
        # Section 8: "the highest speed custom chips fabricated may be
        # 90% faster than an equivalent ASIC design running at worst case".
        gap = access_gap(new_dist)
        assert 1.7 < gap.flagship_over_quote < 2.1

    def test_speed_testing_buys_30_to_40(self, new_dist):
        # Section 8.3: at-speed testing -> 30-40% over worst case.
        gap = access_gap(new_dist)
        assert 1.25 < gap.tested_over_quote < 1.45

    def test_quote_below_all_shipping_grades(self, new_dist):
        gap = access_gap(new_dist)
        assert gap.asic_quote_mhz < gap.tested_mhz < gap.flagship_mhz

    def test_quote_respects_floor(self):
        # A catastrophically varying process floor binds below the corner.
        wild = VariationComponents(0.3, 0.2, 0.2, 0.05)
        dist = sample_chip_speeds(400.0, wild, count=5000, seed=2)
        quote = asic_worst_case_quote(dist)
        assert quote <= dist.percentile(0.5) + 1e-9

    def test_validation(self, new_dist):
        with pytest.raises(VariationError):
            asic_worst_case_quote(new_dist, yield_target=0.3)
        with pytest.raises(VariationError):
            speed_tested_quote(new_dist, test_margin=0.9)
        with pytest.raises(VariationError):
            custom_flagship_frequency(new_dist, flagship_yield=0.9)


class TestBinning:
    def test_fractions_sum_to_one(self, new_dist):
        edges = [300.0, 350.0, 400.0, 450.0]
        bins = bin_population(new_dist, edges)
        assert sum(b.fraction for b in bins) == pytest.approx(1.0)

    def test_higher_bins_rarer(self, new_dist):
        edges = [new_dist.percentile(p) for p in (10, 50, 90)]
        bins = bin_population(new_dist, edges)
        graded = [b for b in bins if b.frequency_mhz > 0]
        assert graded[-1].fraction < graded[0].fraction

    def test_bad_edges(self, new_dist):
        with pytest.raises(VariationError):
            bin_population(new_dist, [])
        with pytest.raises(VariationError):
            bin_population(new_dist, [-5.0])


class TestFabs:
    def test_fab_spread_in_paper_band(self):
        # Section 8.1.2: 20-25% between companies' fabs.
        fabs = default_foundry_set(MATURE_PROCESS)
        assert 1.18 < fab_spread(fabs) < 1.30

    def test_best_fab_access_asymmetry(self):
        fabs = default_foundry_set(MATURE_PROCESS)
        custom_best = best_accessible_fab(fabs, asic=False)
        asic_best = best_accessible_fab(fabs, asic=True)
        assert custom_best.speed_factor > asic_best.speed_factor
        assert accessibility_penalty(fabs) > 1.0

    def test_fab_distributions(self):
        fabs = default_foundry_set(MATURE_PROCESS)
        dists = fab_distributions(400.0, fabs, count=2000)
        assert set(dists) == {f.name for f in fabs}
        leader = dists["leader_internal"].median_mhz
        trailer = dists["merchant_c"].median_mhz
        assert leader > trailer


@settings(max_examples=20, deadline=None)
@given(
    sigma=st.floats(0.01, 0.12),
    nominal=st.floats(100.0, 2000.0),
)
def test_distribution_brackets_nominal(sigma, nominal):
    comp = VariationComponents(sigma, 0.0, 0.0, 0.01)
    dist = sample_chip_speeds(nominal, comp, count=2000, seed=5)
    assert dist.percentile(1.0) < nominal
    assert dist.percentile(99.9) < 2.1 * nominal
    assert dist.spread >= 1.0
