"""Tests for the live telemetry layer (repro.obs.live + transport).

The contracts under test: bus sequencing and delivery (subscriptions,
callbacks, forward hook, JSONL sink), the tracer/metrics listener
integration, heartbeats and stall detection, the sweep runner's
cross-process event streaming (events from pool workers arrive *while*
``run_sweep`` is still running, and the merged trace/metrics are
byte-identical with the bus on or off), and the dashboard's state
folding.
"""

import io
import threading
import time

import pytest

from repro import obs
from repro.obs import TickClock, metrics_to_flat, trace_to_jsonl
from repro.obs import live
from repro.obs.events import Event, EventError, parse_event, read_events
from repro.par.sweep import SweepStallError, run_sweep


@pytest.fixture(autouse=True)
def _clean_live_and_obs():
    """Every test starts and ends with both layers off and empty."""
    live.disable()
    live.configure_watch()
    live.get_aggregate().reset()
    obs.disable()
    obs.reset()
    yield
    live.disable()
    live.configure_watch()
    live.get_aggregate().reset()
    obs.disable()
    obs.reset()


def _ev(kind, name, source="main", **attrs):
    return Event(kind=kind, name=name, source=source, attrs=attrs)


class TestEvent:
    def test_round_trip_and_json(self):
        event = Event(kind="task.done", name="s", seq=4, ts=1.25,
                      source="worker-7", source_seq=2,
                      attrs={"index": 1, "wall_s": 0.5})
        again = Event.from_dict(event.to_dict())
        assert again == event
        assert parse_event(event.to_json()) == event

    def test_source_seq_omitted_when_native(self):
        event = Event(kind="log", name="x", seq=3, source_seq=3)
        assert "source_seq" not in event.to_dict()
        assert Event.from_dict(event.to_dict()).source_seq == 3

    def test_malformed_payloads_rejected(self):
        with pytest.raises(EventError):
            Event.from_dict({"name": "no kind"})
        with pytest.raises(EventError):
            Event.from_dict("not a dict")
        with pytest.raises(EventError):
            parse_event("{broken json")

    def test_read_events_skips_bad_and_partial_tail(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text(
            Event(kind="log", name="ok", seq=1).to_json() + "\n"
            + "{not json}\n"
            + '{"kind": "log", "name": "mid-write tail"'
        )
        assert [e.name for e in read_events(str(path))] == ["ok"]
        with pytest.raises(EventError):
            list(read_events(str(path), skip_bad=False))


class TestEventBus:
    def test_publish_assigns_monotonic_seq_and_clock(self):
        bus = live.EventBus(clock=TickClock())
        sub = bus.subscribe()
        bus.publish("log", "a")
        bus.publish("log", "b", note=1)
        events = sub.drain()
        assert [e.seq for e in events] == [1, 2]
        assert [e.ts for e in events] == [0.0, 1.0]
        assert events[1].attrs == {"note": 1}
        assert events[0].source_seq == events[0].seq

    def test_subscription_bounded_drops_oldest(self):
        bus = live.EventBus()
        sub = bus.subscribe(maxlen=3)
        for i in range(5):
            bus.publish("log", f"e{i}")
        assert sub.dropped == 2
        assert [e.name for e in sub.drain()] == ["e2", "e3", "e4"]
        assert len(sub) == 0
        assert bus.stats()["dropped"] == 2

    def test_ingest_resequences_but_keeps_origin(self):
        bus = live.EventBus()
        bus.publish("log", "local")
        event = bus.ingest({"kind": "task.done", "name": "s", "seq": 7,
                            "source": "worker-9", "ts": 1.5})
        assert event.seq == 2
        assert event.source == "worker-9"
        assert event.source_seq == 7
        assert bus.ingest({"name": "kindless"}) is None

    def test_broken_callback_does_not_break_publish(self):
        bus = live.EventBus()
        bus.add_callback(lambda e: 1 / 0)
        sub = bus.subscribe()
        bus.publish("log", "x")
        assert len(sub) == 1

    def test_forward_hook_gets_dicts_and_dies_on_error(self):
        bus = live.EventBus()
        seen = []
        bus.set_forward(seen.append)
        bus.publish("log", "a")

        def broken(payload):
            raise OSError("queue gone")

        bus.set_forward(broken)
        bus.publish("log", "b")  # hook raises once, then is dropped
        bus.publish("log", "c")
        assert [p["name"] for p in seen] == ["a"]
        assert isinstance(seen[0], dict)

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        bus = live.EventBus(clock=TickClock())
        bus.attach_jsonl(path)
        assert bus.sink_path == path
        bus.publish("log", "one", note="a")
        bus.publish("log", "two")
        bus.detach_jsonl()
        assert bus.sink_path is None
        events = list(read_events(path))
        assert [e.name for e in events] == ["one", "two"]
        assert [e.seq for e in events] == [1, 2]
        assert events[0].attrs == {"note": "a"}


class TestListenerIntegration:
    def test_span_and_metric_events_published(self):
        obs.enable()
        sub = live.enable().subscribe()
        with obs.span("stage.x", cells=4):
            obs.count("calls", 2.0)
        obs.gauge("speed", 5.0)
        events = sub.drain()
        kinds = [(e.kind, e.name) for e in events]
        assert ("span.open", "stage.x") in kinds
        assert ("span.close", "stage.x") in kinds
        assert ("metric.delta", "calls") in kinds
        assert ("metric.delta", "speed") in kinds
        close = next(e for e in events if e.kind == "span.close")
        assert "duration_ms" in close.attrs

    def test_disable_unhooks_listeners(self):
        obs.enable()
        sub = live.enable().subscribe()
        live.disable()
        with obs.span("quiet"):
            obs.count("calls")
        assert sub.drain() == []
        assert not live.enabled()
        live.emit("log", "nothing")  # no-op when off, must not raise

    def test_cross_thread_spans_interleave_with_consistent_stacks(self):
        obs.enable()
        sub = live.enable().subscribe()
        barrier = threading.Barrier(2)

        def work(tag):
            barrier.wait()
            for _ in range(10):
                with obs.span(f"{tag}.outer"):
                    with obs.span(f"{tag}.inner"):
                        pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",),
                             name=f"lane-{i}")
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = sub.drain()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)  # strictly monotonic merge
        opens = [e for e in events if e.kind == "span.open"]
        assert len(opens) == 40
        for lane in ("lane-0", "lane-1"):
            depths = [e.attrs["depth"] for e in opens
                      if e.attrs["thread"] == lane]
            # Each thread's own stack stays outer(0)/inner(1) however
            # the two streams interleave on the shared bus.
            assert depths == [0, 1] * 10
        assert len(obs.get_tracer().finished()) == 40


class TestFlowEngineEvents:
    def test_stages_publish_start_done_and_cache(self):
        from repro.flows import AsicFlowOptions, run_asic_flow

        sub = live.enable().subscribe()
        options = AsicFlowOptions(bits=4, sizing_moves=2)
        run_asic_flow(options)
        events = sub.drain()
        starts = [e for e in events if e.kind == "stage.start"]
        dones = [e for e in events if e.kind == "stage.done"]
        assert len(starts) == len(dones) >= 6
        assert starts[0].attrs["flow"] == "asic"
        assert starts[0].attrs["total"] == len(starts)
        assert all(e.attrs["status"] == "ok" for e in dones)
        # Same options again: the stage cache replays, and each replay
        # announces itself both ways.
        run_asic_flow(options)
        events = sub.drain()
        cached = [e for e in events if e.kind == "stage.cache"]
        replayed = [e for e in events if e.kind == "stage.done"
                    and e.attrs.get("cache_hit")]
        assert cached and replayed


class TestHeartbeat:
    def test_beacon_reports_task_and_busy_time(self):
        bus = live.EventBus(source="w")
        sub = bus.subscribe()
        beacon = live.Heartbeat(bus, 0.02).start()
        try:
            beacon.set_task(3)
            time.sleep(0.1)
        finally:
            beacon.stop()
        beats = [e for e in sub.drain() if e.kind == "heartbeat"]
        assert beats
        tasked = [b for b in beats if b.attrs.get("task") == "3"]
        assert tasked
        assert tasked[-1].attrs["busy_s"] >= 0.0
        count = len(beats)
        time.sleep(0.06)  # stopped: no further beats
        assert len([e for e in sub.drain()
                    if e.kind == "heartbeat"]) == 0
        assert count >= 2


class TestStallDetector:
    def test_flags_silent_busy_worker_worst_first(self):
        now = [0.0]
        detector = live.StallDetector(1.0, clock=lambda: now[0])
        detector.note(_ev("task.start", "s", source="w1", index=5))
        detector.note(_ev("task.start", "s", source="w2", index=6))
        now[0] = 0.5
        detector.note(_ev("heartbeat", "w2", source="w2", task="6"))
        now[0] = 1.2
        reports = detector.check()  # w1 silent 1.2 s; w2 only 0.7 s
        assert [r.source for r in reports] == ["w1"]
        assert reports[0].task == "5"
        assert reports[0].last_kind == "task.start"
        assert "w1" in reports[0].describe()
        now[0] = 2.0
        assert [r.source for r in detector.check()] == ["w1", "w2"]

    def test_idle_workers_never_stall(self):
        now = [0.0]
        detector = live.StallDetector(0.5, clock=lambda: now[0])
        detector.note(_ev("task.start", "s", source="w1", index=0))
        detector.note(_ev("task.done", "s", source="w1", index=0))
        now[0] = 10.0
        assert detector.check() == []

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            live.StallDetector(0.0)


class TestSweepAggregate:
    def test_folds_task_metrics_incrementally(self):
        aggregate = live.SweepAggregate()
        for value in (3.0, 1.0, 2.0):
            aggregate(_ev("task.done", "s", **{"m.mhz": value,
                                               "m.note": "text"}))
        aggregate(_ev("heartbeat", "w"))  # ignored kind
        assert aggregate.done == 3
        snap = aggregate.snapshot()
        assert set(snap) == {"mhz"}  # non-numeric attrs dropped
        assert snap["mhz"] == {"count": 3, "min": 1.0, "median": 2.0,
                               "max": 3.0, "mean": 2.0}
        aggregate.reset()
        assert aggregate.done == 0 and aggregate.snapshot() == {}


def square(x):
    """Top-level so it pickles into pool workers."""
    return x * x


def square_metrics(result):
    return {"sq": result}


def deterministic_traced(x):
    """Worker task with a fake clock: spans are byte-reproducible."""
    obs.get_tracer().clock = TickClock(start=1000.0 * x)
    with obs.span("det.task", x=x):
        obs.count("det.calls")
    return x


def slow_second_task(x):
    if x == 1:
        time.sleep(0.5)
    return x


class TestSweepStreaming:
    def test_serial_sweep_publishes_progress_and_aggregates(self):
        sub = live.enable().subscribe()
        run_sweep(square, [1, 2, 3], workers=1, label="s",
                  summarize=square_metrics)
        kinds = [e.kind for e in sub.drain()]
        assert kinds.count("task.start") == 3
        assert kinds.count("task.done") == 3
        assert kinds.count("sweep.progress") == 3
        assert live.get_aggregate().snapshot()["sq"]["max"] == 9.0

    def test_worker_events_arrive_before_run_sweep_returns(self):
        bus = live.enable()
        streamed_during_run = []

        def witness(event):
            if event.source.startswith("worker-"):
                streamed_during_run.append(event.kind)

        bus.add_callback(witness)
        results = run_sweep(square, list(range(8)), workers=2,
                            label="live.sweep", summarize=square_metrics,
                            heartbeat_s=0.02)
        # The callback only ever fires inside run_sweep's drain loop --
        # anything recorded proves streaming, not post-hoc merging.
        assert results == [x * x for x in range(8)]
        assert "task.done" in streamed_during_run
        assert live.get_aggregate().snapshot()["sq"]["count"] == 8
        stats = bus.stats()["by_kind"]
        assert stats["task.done"] == 8
        assert stats["sweep.progress"] >= 1

    def test_trace_and_metrics_identical_with_bus_on_and_off(self):
        def run_once():
            obs.enable()
            obs.get_tracer().clock = TickClock()
            results = run_sweep(deterministic_traced, [1, 2, 3, 4],
                                workers=2, label="det.sweep")
            trace = trace_to_jsonl(obs.get_tracer())
            flat = metrics_to_flat(obs.get_metrics())
            obs.disable()
            obs.reset()
            return results, trace, flat

        baseline = run_once()          # bus off: the plain pool path
        live.enable()
        with_bus = run_once()          # bus on: streaming transport
        live.disable()
        assert with_bus == baseline
        assert '"det.task"' in baseline[1]

    def test_stall_raises_structured_error(self):
        with pytest.raises(SweepStallError) as info:
            run_sweep(slow_second_task, [0, 1, 2, 3], workers=2,
                      label="stall.sweep", heartbeat_s=None,
                      stall_timeout_s=0.12)
        report = info.value.reports[0]
        assert report["source"].startswith("worker-")
        assert report["silent_s"] > 0.12
        assert "silent" in str(info.value)

    def test_heartbeat_keeps_slow_worker_alive(self):
        # Same slow task, longer than the stall timeout -- but the
        # beacon thread beats through the sleep, so no stall fires.
        results = run_sweep(slow_second_task, [0, 1, 2, 3], workers=2,
                            label="alive.sweep", heartbeat_s=0.05,
                            stall_timeout_s=0.3)
        assert results == [0, 1, 2, 3]

    def test_watch_config_supplies_defaults(self):
        live.configure_watch(heartbeat_s=None, stall_timeout_s=0.1)
        with pytest.raises(SweepStallError):
            run_sweep(slow_second_task, [0, 1, 2, 3], workers=2,
                      label="cfg.sweep")


class TestDashboard:
    def test_folds_progress_cache_lanes_and_stalls(self):
        dash = live.Dashboard(stream=io.StringIO(), refresh_s=999.0)
        dash.feed(_ev("stage.start", "flow.asic.map", flow="asic",
                      stage="map", index=0, total=6), paint=False)
        dash.feed(_ev("stage.done", "flow.asic.map", flow="asic",
                      stage="map", status="ok", wall_s=0.1,
                      cache_hit=False), paint=False)
        dash.feed(_ev("task.start", "sweep", source="worker-1",
                      index=0), paint=False)
        dash.feed(_ev("heartbeat", "worker-1", source="worker-1",
                      task="0", busy_s=2.0), paint=False)
        dash.feed(_ev("sweep.progress", "sweep", done=2, total=8,
                      eta_s=3.5), paint=False)
        dash.feed(_ev("stall", "worker-2",
                      detail="worker worker-2 silent for 1.00 s"),
                  paint=False)
        frame = dash.render()
        assert "flow asic" in frame
        assert "1/6" in frame
        assert "2/8" in frame and "eta" in frame
        assert "worker-1" in frame and "busy" in frame
        assert "STALL: worker worker-2" in frame

    def test_cache_replay_counted_once(self):
        # A replayed stage emits stage.cache AND stage.done(cache_hit);
        # the hit-rate counter must move once, not twice.
        dash = live.Dashboard(stream=io.StringIO(), refresh_s=999.0)
        dash.feed(_ev("stage.start", "flow.asic.map", flow="asic",
                      stage="map", index=0, total=1), paint=False)
        dash.feed(_ev("stage.cache", "flow.asic.map", flow="asic",
                      stage="map"), paint=False)
        dash.feed(_ev("stage.done", "flow.asic.map", flow="asic",
                      stage="map", status="ok", wall_s=0.0,
                      cache_hit=True), paint=False)
        assert "stage cache: 1 hits / 1 stages (100%)" in dash.render()

    def test_log_mode_appends_compact_lines(self):
        buffer = io.StringIO()
        dash = live.Dashboard(stream=buffer, refresh_s=0.0)
        for i in range(3):
            dash.feed(_ev("sweep.progress", "s", done=i + 1, total=3))
        output = buffer.getvalue()
        assert output.count("live telemetry") >= 1
        assert "\x1b[" not in output  # no ANSI when not a TTY
        assert "tasks 3/3" in output.splitlines()[-1]

    def test_final_frame_is_full_view(self):
        dash = live.Dashboard(stream=io.StringIO(), refresh_s=999.0)
        dash.feed(_ev("sweep.progress", "s", done=3, total=3),
                  paint=False)
        assert "3/3" in dash.final()
