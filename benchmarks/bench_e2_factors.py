"""E2 -- Section 3: the factor table (x4.0, x1.25, x1.25, x1.5, x1.9).

Checks the paper's own arithmetic (product ~18x) and then *measures* each
factor by toggling exactly one methodology lever in the flows, comparing
the measured contribution against the paper's maximum.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from paperbench import report, row, run_once

from repro.core import FactorModel
from repro.flows import AsicFlowOptions, run_asic_flow
from repro.circuit import DOMINO_PROFILE, sequential_speedup_from_combinational
from repro.variation import NEW_PROCESS, access_gap, sample_chip_speeds

BITS = 8


def _measure_levers():
    base = AsicFlowOptions(bits=BITS, sizing_moves=15)
    baseline = run_asic_flow(base)

    import dataclasses

    def freq(**changes):
        return run_asic_flow(
            dataclasses.replace(base, **changes)
        ).typical_frequency_mhz

    f0 = baseline.typical_frequency_mhz
    pipelining = run_asic_flow(
        dataclasses.replace(base, workload="alu_macro", pipeline_stages=5)
    ).typical_frequency_mhz / f0
    floorplanning = f0 / freq(careful_placement=False)
    sizing = f0 / freq(sizing_moves=0)
    return baseline, pipelining, floorplanning, sizing


def test_e2_factor_table(benchmark):
    baseline, pipelining, floorplanning, sizing = run_once(
        benchmark, _measure_levers
    )
    model = FactorModel()

    domino_seq = sequential_speedup_from_combinational(
        DOMINO_PROFILE.combinational_speedup, logic_fraction=0.75
    )
    dist = sample_chip_speeds(400.0, NEW_PROCESS, count=20000, seed=1)
    variation = access_gap(dist).flagship_over_quote

    rows = [
        row("factor product (paper arithmetic)", "~18x",
            model.total_product(), 17.5, 18.1),
        row("microarchitecture factor (measured)", "<= 4.0x",
            pipelining, 1.5, 4.6),
        row("floorplanning/placement factor", "<= 1.25x",
            floorplanning, 1.00, 1.40),
        row("sizing factor (measured)", "<= 1.25x", sizing, 1.00, 1.40),
        row("dynamic logic factor (sequential)", "~1.5x", domino_seq,
            1.3, 1.7),
        row("process variation+access factor", "<= 1.9x", variation,
            1.6, 2.1),
    ]
    report("E2  Section 3 factor decomposition", rows)
    for entry in rows:
        assert entry.ok, entry
