"""Encoder-family datapath generators: priority encoder, leading-zero
counter, incrementer.

More entries for the Section 4.2 macro library -- the irregular-but-
common blocks (arbiter priority logic, normalisation counts, program
counters) a good ASIC macro library stocks alongside adders and
shifters.

Port conventions:

* priority encoder: inputs ``d0..d{n-1}`` (d0 highest priority),
  outputs ``e0..e{k-1}`` (index of the highest-priority asserted input)
  and ``valid``;
* leading-zero counter: inputs ``d*`` (d{n-1} is the MSB), outputs
  ``z0..z{k}`` giving the count of leading zeros (n when all-zero);
* incrementer: inputs ``d*``, outputs ``q* = d + 1`` and ``cout``.
"""

from __future__ import annotations

import math

from repro.cells.library import CellLibrary
from repro.datapath.emitter import Emitter
from repro.netlist.module import Module
from repro.synth.ast import SynthesisError


def priority_encoder(
    bits: int, library: CellLibrary, name: str = "penc"
) -> Module:
    """Priority encoder: index of the highest-priority (lowest-numbered)
    asserted input, plus a valid flag."""
    if bits < 2:
        raise SynthesisError("encoder width must be at least 2")
    out_bits = max(1, math.ceil(math.log2(bits)))
    module = Module(name)
    d = [module.add_input(f"d{i}") for i in range(bits)]
    for k in range(out_bits):
        module.add_output(f"e{k}")
    module.add_output("valid")
    emit = Emitter(module, library)

    # grant_i = d_i & ~d_0 & ... & ~d_{i-1}  (one-hot winner).
    inverted = [emit.inv(net) for net in d]
    grants = [d[0]]
    for i in range(1, bits):
        mask = emit.and_tree(inverted[:i]) if i > 1 else inverted[0]
        grants.append(emit.and2(d[i], mask))
    # Binary-encode the winner.
    for k in range(out_bits):
        contributors = [grants[i] for i in range(bits) if (i >> k) & 1]
        if not contributors:
            never = emit.and2(d[0], inverted[0])
            emit.buf(never, out=f"e{k}")
        elif len(contributors) == 1:
            emit.buf(contributors[0], out=f"e{k}")
        else:
            emit.buf(emit.or_tree(contributors), out=f"e{k}")
    emit.buf(emit.or_tree(list(d)), out="valid")
    return module


def leading_zero_counter(
    bits: int, library: CellLibrary, name: str = "lzc"
) -> Module:
    """Count of leading zeros from the MSB (d{n-1}) downwards."""
    if bits < 2:
        raise SynthesisError("counter width must be at least 2")
    out_bits = math.ceil(math.log2(bits + 1))
    module = Module(name)
    d = [module.add_input(f"d{i}") for i in range(bits)]
    for k in range(out_bits):
        module.add_output(f"z{k}")
    emit = Emitter(module, library)

    inverted = [emit.inv(net) for net in d]
    # lead_j = "the top j bits are zero and bit (n-1-j) is one" for
    # j < n; all_zero for j = n.
    counts = []
    for j in range(bits):
        top_zero = (
            emit.and_tree([inverted[bits - 1 - t] for t in range(j)])
            if j > 1 else (inverted[bits - 1] if j == 1 else None)
        )
        bit_one = d[bits - 1 - j]
        if top_zero is None:
            counts.append(bit_one)
        else:
            counts.append(emit.and2(top_zero, bit_one))
    all_zero = emit.and_tree(inverted)
    counts.append(all_zero)

    for k in range(out_bits):
        contributors = [counts[j] for j in range(bits + 1) if (j >> k) & 1]
        if not contributors:
            never = emit.and2(d[0], inverted[0])
            emit.buf(never, out=f"z{k}")
        elif len(contributors) == 1:
            emit.buf(contributors[0], out=f"z{k}")
        else:
            emit.buf(emit.or_tree(contributors), out=f"z{k}")
    return module


def incrementer(
    bits: int, library: CellLibrary, name: str = "inc"
) -> Module:
    """``q = d + 1`` with a logarithmic AND-prefix carry chain."""
    if bits < 1:
        raise SynthesisError("incrementer width must be at least 1")
    module = Module(name)
    d = [module.add_input(f"d{i}") for i in range(bits)]
    for i in range(bits):
        module.add_output(f"q{i}")
    module.add_output("cout")
    emit = Emitter(module, library)

    # carry into bit i is AND(d0..d{i-1}); prefix-AND network.
    prefix = list(d)
    dist = 1
    while dist < bits:
        new_prefix = list(prefix)
        for i in range(dist, bits):
            new_prefix[i] = emit.and2(prefix[i], prefix[i - dist])
        prefix = new_prefix
        dist *= 2
    emit.inv(d[0], out="q0")
    for i in range(1, bits):
        emit.xor2(d[i], prefix[i - 1], out=f"q{i}")
    emit.buf(prefix[bits - 1], out="cout")
    return module


def simulate_encoder(
    module: Module, library: CellLibrary, bits: int, value: int
) -> tuple[int, bool]:
    """Drive a priority encoder; returns ``(index, valid)``."""
    from repro.synth.simulate import simulate_combinational

    out_bits = max(1, math.ceil(math.log2(bits)))
    vec = {f"d{i}": bool((value >> i) & 1) for i in range(bits)}
    out = simulate_combinational(module, library, vec)
    index = sum((1 << k) for k in range(out_bits) if out[f"e{k}"])
    return index, out["valid"]


def simulate_lzc(
    module: Module, library: CellLibrary, bits: int, value: int
) -> int:
    """Drive a leading-zero counter; returns the count."""
    from repro.synth.simulate import simulate_combinational

    out_bits = math.ceil(math.log2(bits + 1))
    vec = {f"d{i}": bool((value >> i) & 1) for i in range(bits)}
    out = simulate_combinational(module, library, vec)
    return sum((1 << k) for k in range(out_bits) if out[f"z{k}"])


def simulate_incrementer(
    module: Module, library: CellLibrary, bits: int, value: int
) -> tuple[int, int]:
    """Drive an incrementer; returns ``(q, cout)``."""
    from repro.synth.simulate import simulate_combinational

    vec = {f"d{i}": bool((value >> i) & 1) for i in range(bits)}
    out = simulate_combinational(module, library, vec)
    q = sum((1 << i) for i in range(bits) if out[f"q{i}"])
    return q, int(out["cout"])
