"""Prefabricated structured-ASIC fabric: slot grid, site types, utilization.

The structured-ASIC style (the middle point of the gap spectrum) does
not place cells on a continuous row grid: the vendor prefabricates a
master -- a fixed grid of identical slots, a fraction of them wired as
sequential sites -- and the design is *assigned* to slots, with only
the metal layers personalised.  That changes the physical problem in
three ways this module models:

* placement becomes a slot-assignment problem (greedy seed + the shared
  annealer of :mod:`repro.optimize.anneal` over slot moves/swaps);
* area is the master bought, not the cells used -- utilization
  accounting per site type is a first-class output;
* wirelength inherits the slot pitch (sized for the largest library
  cell, so sparser than a packed row grid) and a congestion detour that
  grows as the site supply tightens.

:class:`SlotAssignment` satisfies the same placement protocol as
:class:`~repro.physical.placement.Placement` (``net_length_um``,
``total_wirelength_um``, ``parasitics``), so the WLM/CTS/STA stages
downstream run unchanged on a structured design.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.cells.library import CellLibrary
from repro.netlist.graph import topological_order
from repro.netlist.module import Module
from repro.optimize.anneal import anneal
from repro.physical.geometry import GeometryError, Point
from repro.physical.placement import (
    Placement,
    ROUTE_DETOUR,
    _instance_nets,
)
from repro.physical.routing import CongestionModel

#: Every Nth fabric column is prefabricated as sequential sites; the
#: rest are logic sites.  1-in-4 matches the flop-rich fabrics the
#: structured vendors shipped for pipelined datapaths.
SEQ_COLUMN_PERIOD = 4

#: Slot pitch margin over the largest library cell's footprint: prefab
#: slots must host *any* cell, plus personalisation-via routing space.
SLOT_PITCH_MARGIN = 1.1

#: Master sizes (slots per edge) the fabric vendor actually stocks --
#: a rounded geometric family, because masks are amortised per master.
MASTER_EDGES = (4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256)


@dataclass(frozen=True)
class FabricUtilization:
    """Used vs prefabricated slots, per site type.

    Attributes:
        logic_used: combinational cells assigned to logic sites.
        logic_slots: logic sites on the master.
        seq_used: sequential cells assigned to sequential sites.
        seq_slots: sequential sites on the master.
    """

    logic_used: int
    logic_slots: int
    seq_used: int
    seq_slots: int

    @property
    def logic(self) -> float:
        """Logic-site utilization (0..1)."""
        return self.logic_used / self.logic_slots if self.logic_slots else 0.0

    @property
    def seq(self) -> float:
        """Sequential-site utilization (0..1)."""
        return self.seq_used / self.seq_slots if self.seq_slots else 0.0

    @property
    def overall(self) -> float:
        """All-site utilization (0..1)."""
        total = self.logic_slots + self.seq_slots
        return (self.logic_used + self.seq_used) / total if total else 0.0


@dataclass(frozen=True)
class Fabric:
    """A prefabricated slot-grid master.

    Attributes:
        rows: slot rows.
        cols: slot columns.
        pitch_um: slot pitch (slots are square).
        seq_column_period: every Nth column is sequential sites.
    """

    rows: int
    cols: int
    pitch_um: float
    seq_column_period: int = SEQ_COLUMN_PERIOD

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise GeometryError("fabric needs at least one slot")
        if self.pitch_um <= 0:
            raise GeometryError("slot pitch must be positive")
        if self.seq_column_period < 2:
            raise GeometryError("sequential column period must be >= 2")

    @property
    def slot_count(self) -> int:
        """All slots on the master."""
        return self.rows * self.cols

    @property
    def seq_slot_count(self) -> int:
        """Sequential sites on the master."""
        return self.rows * (self.cols // self.seq_column_period)

    @property
    def logic_slot_count(self) -> int:
        """Logic sites on the master."""
        return self.slot_count - self.seq_slot_count

    @property
    def die_width_um(self) -> float:
        """Master width."""
        return self.cols * self.pitch_um

    @property
    def die_height_um(self) -> float:
        """Master height."""
        return self.rows * self.pitch_um

    @property
    def die_edge_um(self) -> float:
        """Edge of the (square-ish) master the clock tree must span."""
        return max(self.die_width_um, self.die_height_um)

    @property
    def die_area_um2(self) -> float:
        """Area of the master bought -- the structured area cost."""
        return self.die_width_um * self.die_height_um

    def slot_kind(self, col: int) -> str:
        """Site type of a column: ``"seq"`` or ``"logic"``."""
        period = self.seq_column_period
        return "seq" if col % period == period - 1 else "logic"

    def slot_center(self, row: int, col: int) -> Point:
        """Geometric centre of one slot."""
        return Point((col + 0.5) * self.pitch_um, (row + 0.5) * self.pitch_um)

    def slots_of_kind(self, kind: str) -> list[tuple[int, int]]:
        """(row, col) slots of one site type, centre-out.

        Centre-out order lets a small design on a big master cluster in
        the middle (short wires at low utilization) instead of filling
        a corner.
        """
        cx = self.cols / 2.0
        cy = self.rows / 2.0
        slots = [
            (row, col)
            for row in range(self.rows)
            for col in range(self.cols)
            if self.slot_kind(col) == kind
        ]
        slots.sort(
            key=lambda rc: (
                (rc[0] + 0.5 - cy) ** 2 + (rc[1] + 0.5 - cx) ** 2,
                rc,
            )
        )
        return slots

    def utilization(self, logic_used: int, seq_used: int) -> FabricUtilization:
        """Utilization accounting for a given cell demand."""
        return FabricUtilization(
            logic_used=logic_used,
            logic_slots=self.logic_slot_count,
            seq_used=seq_used,
            seq_slots=self.seq_slot_count,
        )


def _cell_demand(module: Module, library: CellLibrary) -> tuple[int, int]:
    """(logic, sequential) cell counts of a netlist."""
    seq_names = library.sequential_cell_names()
    seq = sum(
        1 for inst in module.iter_instances() if inst.cell_name in seq_names
    )
    return module.instance_count() - seq, seq


def fabric_pitch_um(library: CellLibrary) -> float:
    """Slot pitch for a library: the largest cell fits any slot."""
    max_area = max(cell.area_um2 for cell in library)
    return math.sqrt(max_area) * SLOT_PITCH_MARGIN


def fabric_for(
    module: Module,
    library: CellLibrary,
    utilization: float = 0.6,
    seq_column_period: int = SEQ_COLUMN_PERIOD,
) -> Fabric:
    """Pick the smallest stocked master that fits a netlist.

    Args:
        module: netlist to host.
        library: provides cell areas and sequential cell names.
        utilization: target *maximum* site utilization per site type;
            lower targets buy a bigger master (more slack, more die).
        seq_column_period: fabric family's sequential column period.

    Raises:
        GeometryError: when the target is unphysical or the design does
            not fit the largest stocked master.
    """
    if not 0.0 < utilization <= 1.0:
        raise GeometryError("target utilization must be in (0, 1]")
    logic, seq = _cell_demand(module, library)
    if logic + seq == 0:
        raise GeometryError(f"module {module.name} has nothing to assign")
    pitch = fabric_pitch_um(library)
    for edge in MASTER_EDGES:
        fabric = Fabric(rows=edge, cols=edge, pitch_um=pitch,
                        seq_column_period=seq_column_period)
        if (logic <= fabric.logic_slot_count * utilization
                and seq <= fabric.seq_slot_count * utilization):
            return fabric
    raise GeometryError(
        f"module {module.name} ({logic} logic + {seq} seq cells) does not "
        f"fit the largest {MASTER_EDGES[-1]}x{MASTER_EDGES[-1]} master at "
        f"{utilization:.0%} utilization"
    )


@dataclass
class SlotAssignment(Placement):
    """A netlist assigned onto fabric slots (placement protocol).

    Inherits the HPWL bookkeeping and parasitics export from
    :class:`~repro.physical.placement.Placement`; the routed-length
    estimate swaps the flat detour allowance for a congestion-dependent
    one, because a tight master leaves the router fewer free tracks.

    Attributes:
        fabric: the master hosting the design.
        slot_of: instance name -> (row, col) slot.
        detour_factor: routed length over HPWL at this utilization.
        utilization: per-site-type accounting of the assignment.
    """

    fabric: Fabric = None
    slot_of: dict[str, tuple[int, int]] = field(default_factory=dict)
    detour_factor: float = ROUTE_DETOUR
    utilization: FabricUtilization = None

    def net_length_um(self, net: str) -> float:
        """Estimated routed length (HPWL x congestion detour)."""
        pins = self._net_pins(net)
        if len(pins) < 2:
            return 0.0
        xs = [p.x for p in pins]
        ys = [p.y for p in pins]
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        return hpwl * self.detour_factor


class _SlotMoves:
    """Annealing problem: move/swap instances across compatible slots.

    A move targets any compatible slot -- occupied (swap) or free
    (relocate) -- so the annealer can both untangle crossings and pull
    the design together on a sparse master.
    """

    def __init__(self, assignment: SlotAssignment,
                 kind_of: dict[str, str]) -> None:
        self.assignment = assignment
        self.names = list(assignment.positions)
        self.touching = _instance_nets(assignment.module)
        self.kind_of = kind_of
        self.slots_by_kind = {
            kind: assignment.fabric.slots_of_kind(kind)
            for kind in ("logic", "seq")
        }
        self.occupant: dict[tuple[int, int], str] = {
            slot: name for name, slot in assignment.slot_of.items()
        }
        self._last: tuple | None = None

    def propose(self, rng: random.Random) -> tuple[str, tuple[int, int]]:
        name = self.names[rng.randrange(len(self.names))]
        slots = self.slots_by_kind[self.kind_of[name]]
        return name, slots[rng.randrange(len(slots))]

    def _relocate(self, name: str, source: tuple[int, int],
                  target: tuple[int, int], other: str | None) -> None:
        assignment = self.assignment
        fabric = assignment.fabric
        assignment.slot_of[name] = target
        assignment.positions[name] = fabric.slot_center(*target)
        self.occupant[target] = name
        if other is None:
            del self.occupant[source]
        else:
            assignment.slot_of[other] = source
            assignment.positions[other] = fabric.slot_center(*source)
            self.occupant[source] = other

    def apply(self, move: tuple[str, tuple[int, int]]) -> float:
        name, target = move
        source = self.assignment.slot_of[name]
        if source == target:
            self._last = None
            return 0.0
        other = self.occupant.get(target)
        touched = set(self.touching[name])
        if other is not None:
            touched |= set(self.touching[other])
        # Sorted so the float summation order (and with it every
        # accept/reject decision) is independent of PYTHONHASHSEED.
        nets = sorted(touched)
        before = sum(self.assignment.net_length_um(n) for n in nets)
        self._relocate(name, source, target, other)
        after = sum(self.assignment.net_length_um(n) for n in nets)
        self._last = (name, source, target, other)
        return after - before

    def revert(self, move: tuple[str, tuple[int, int]]) -> None:
        if self._last is None:
            return
        name, source, target, other = self._last
        if other is None:
            self._relocate(name, target, source, None)
        else:
            self._relocate(other, source, target, name)
        self._last = None


def assign_slots(
    module: Module,
    library: CellLibrary,
    fabric: Fabric,
    seed: int = 1,
    refine: bool = True,
    iterations: int | None = None,
    rng: random.Random | None = None,
) -> SlotAssignment:
    """Assign a netlist onto a fabric: greedy seed + annealed refinement.

    The greedy pass walks the topological instance order into the
    centre-out slot order of each site type; refinement anneals slot
    moves/swaps with the shared annealer (same schedule family as the
    continuous placer's swap refinement).

    Args:
        module: netlist to assign.
        library: provides sequential cell names and the technology.
        fabric: the prefabricated master.
        seed: RNG seed (a fingerprinted design-point knob, like the
            continuous placer's).
        refine: anneal after the greedy seed.
        iterations: annealing steps (default scales with design size).
        rng: explicit RNG overriding ``Random(seed)``.

    Raises:
        GeometryError: when a site type is over-subscribed.
    """
    instances = list(module.instances)
    if not instances:
        raise GeometryError(f"module {module.name} has nothing to assign")
    seq_names = library.sequential_cell_names()
    kind_of = {
        name: ("seq" if module.instance(name).cell_name in seq_names
               else "logic")
        for name in instances
    }
    logic = sum(1 for kind in kind_of.values() if kind == "logic")
    seq = len(instances) - logic
    if logic > fabric.logic_slot_count or seq > fabric.seq_slot_count:
        raise GeometryError(
            f"module {module.name} needs {logic} logic + {seq} seq slots; "
            f"fabric offers {fabric.logic_slot_count} + "
            f"{fabric.seq_slot_count}"
        )
    if rng is None:
        rng = random.Random(seed)

    free = {kind: iter(fabric.slots_of_kind(kind))
            for kind in ("logic", "seq")}
    slot_of: dict[str, tuple[int, int]] = {}
    positions: dict[str, Point] = {}
    for name in topological_order(module, seq_names):
        slot = next(free[kind_of[name]])
        slot_of[name] = slot
        positions[name] = fabric.slot_center(*slot)

    die_w = fabric.die_width_um
    die_h = fabric.die_height_um
    port_positions: dict[str, Point] = {}
    ins = module.inputs()
    outs = module.outputs()
    for i, port in enumerate(ins):
        port_positions[port] = Point(0.0, die_h * (i + 1) / (len(ins) + 1))
    for i, port in enumerate(outs):
        port_positions[port] = Point(die_w, die_h * (i + 1) / (len(outs) + 1))

    utilization = fabric.utilization(logic_used=logic, seq_used=seq)
    detour = CongestionModel(base_detour=ROUTE_DETOUR).detour_factor(
        utilization.overall
    )
    assignment = SlotAssignment(
        module=module,
        positions=positions,
        port_positions=port_positions,
        pitch_um=fabric.pitch_um,
        fabric=fabric,
        slot_of=slot_of,
        detour_factor=detour,
        utilization=utilization,
    )
    if refine and len(instances) >= 2:
        steps = iterations if iterations is not None else 40 * len(instances)
        anneal(
            _SlotMoves(assignment, kind_of), rng, steps=steps,
            temperature=fabric.pitch_um * 4.0,
        )
    return assignment
