"""Minimal Liberty-style library writer and reader.

Real ASIC methodology revolves around ``.lib`` files (Section 6's "fixed
library"); we serialise our libraries in a small Liberty-like dialect so
examples can hand libraries between tools on disk and users can inspect
what the generators produced.

Only :class:`~repro.cells.delay.LinearDelayArc` timing is serialised;
libraries built with NLDM tables should be regenerated from their spec
rather than round-tripped through text.
"""

from __future__ import annotations

import re

from repro.cells.cell import (
    Cell,
    CellError,
    CellKind,
    InputPin,
    LogicFamily,
    SequentialTiming,
)
from repro.cells.delay import LinearDelayArc
from repro.cells.library import CellLibrary
from repro.tech.process import get_technology


class LibertyError(ValueError):
    """Raised for serialisation problems or malformed library text."""


def to_liberty(library: CellLibrary) -> str:
    """Serialise a library to Liberty-like text."""
    lines = [f"library ({library.name}) {{"]
    lines.append(f"  technology : {library.technology.name};")
    for cell in sorted(library, key=lambda c: c.name):
        lines.extend(_cell_block(cell))
    lines.append("}")
    return "\n".join(lines) + "\n"


def _cell_block(cell: Cell) -> list[str]:
    lines = [f"  cell ({cell.name}) {{"]
    lines.append(f"    base : {cell.base_name};")
    lines.append(f"    drive : {cell.drive:.6g};")
    lines.append(f"    family : {cell.family.value};")
    lines.append(f"    kind : {cell.kind.value};")
    lines.append(f"    area : {cell.area_um2:.6g};")
    lines.append(f"    max_load : {cell.max_load_ff:.6g};")
    lines.append(f"    inverting : {str(cell.inverting).lower()};")
    if cell.function:
        lines.append(f'    function : "{cell.function}";')
    lines.append(f"    output : {cell.output};")
    for pin in sorted(cell.inputs.values(), key=lambda p: p.name):
        lines.append(
            f"    pin ({pin.name}) {{ cap : {pin.cap_ff:.6g}; "
            f"effort : {pin.logical_effort:.6g}; }}"
        )
    for pin_name in sorted(cell.arcs):
        arc = cell.arcs[pin_name]
        if not isinstance(arc, LinearDelayArc):
            raise LibertyError(
                f"cell {cell.name}: only linear arcs are serialisable, "
                f"got {type(arc).__name__}"
            )
        lines.append(
            f"    arc ({pin_name}) {{ parasitic : {arc.parasitic_ps:.6g}; "
            f"effort_res : {arc.effort_ps_per_ff:.6g}; "
            f"slew_sens : {arc.slew_sensitivity:.6g}; "
            f"slew_ratio : {arc.slew_ratio:.6g}; }}"
        )
    if cell.sequential is not None:
        seq = cell.sequential
        lines.append(
            f"    ff {{ setup : {seq.setup_ps:.6g}; hold : {seq.hold_ps:.6g}; "
            f"clk_to_q : {seq.clk_to_q_ps:.6g}; clock_pin : {seq.clock_pin}; "
            f"transparent : {str(seq.transparent).lower()}; }}"
        )
    lines.append("  }")
    return lines


_LIB_RE = re.compile(r"library\s*\(\s*([\w$.]+)\s*\)")
_ATTR_RE = re.compile(r"([\w]+)\s*:\s*(\"[^\"]*\"|[^;{}]+)\s*;")
_CELL_RE = re.compile(r"cell\s*\(\s*([\w$.]+)\s*\)\s*\{")
_PIN_RE = re.compile(r"pin\s*\(\s*([\w$.]+)\s*\)\s*\{([^}]*)\}")
_ARC_RE = re.compile(r"arc\s*\(\s*([\w$.]+)\s*\)\s*\{([^}]*)\}")
_FF_RE = re.compile(r"ff\s*\{([^}]*)\}")


def from_liberty(text: str) -> CellLibrary:
    """Parse Liberty-like text back into a :class:`CellLibrary`.

    The referenced technology must be one of the registered
    :data:`repro.tech.process.TECHNOLOGIES`.
    """
    lib_match = _LIB_RE.search(text)
    if lib_match is None:
        raise LibertyError("no library header found")
    header_attrs = _attrs(text[: _first_cell_start(text)])
    tech_name = header_attrs.get("technology")
    if tech_name is None:
        raise LibertyError("library text has no technology attribute")
    tech = get_technology(tech_name)

    cells = []
    for name, body in _cell_bodies(text):
        cells.append(_parse_cell(name, body))
    library = CellLibrary(name=lib_match.group(1), technology=tech)
    for cell in cells:
        library.add(cell)
    return library


def _first_cell_start(text: str) -> int:
    m = _CELL_RE.search(text)
    return m.start() if m else len(text)


def _cell_bodies(text: str):
    """Yield (cell_name, body_text) by brace matching from each header."""
    for m in _CELL_RE.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        yield m.group(1), text[m.end(): i - 1]


def _attrs(body: str) -> dict[str, str]:
    out = {}
    for key, value in _ATTR_RE.findall(body):
        out[key] = value.strip().strip('"')
    return out


def _parse_cell(name: str, body: str) -> Cell:
    scalar_body = _PIN_RE.sub("", _ARC_RE.sub("", _FF_RE.sub("", body)))
    attrs = _attrs(scalar_body)
    inputs = {}
    for pin_name, pin_body in _PIN_RE.findall(body):
        pin_attrs = _attrs(pin_body)
        inputs[pin_name] = InputPin(
            name=pin_name,
            cap_ff=float(pin_attrs["cap"]),
            logical_effort=float(pin_attrs.get("effort", 1.0)),
        )
    arcs = {}
    for pin_name, arc_body in _ARC_RE.findall(body):
        arc_attrs = _attrs(arc_body)
        arcs[pin_name] = LinearDelayArc(
            parasitic_ps=float(arc_attrs["parasitic"]),
            effort_ps_per_ff=float(arc_attrs["effort_res"]),
            slew_sensitivity=float(arc_attrs.get("slew_sens", 0.15)),
            slew_ratio=float(arc_attrs.get("slew_ratio", 0.9)),
        )
    sequential = None
    ff_match = _FF_RE.search(body)
    if ff_match:
        ff_attrs = _attrs(ff_match.group(1))
        sequential = SequentialTiming(
            setup_ps=float(ff_attrs["setup"]),
            hold_ps=float(ff_attrs["hold"]),
            clk_to_q_ps=float(ff_attrs["clk_to_q"]),
            clock_pin=ff_attrs.get("clock_pin", "CK"),
            transparent=ff_attrs.get("transparent", "false") == "true",
        )
    try:
        kind = CellKind(attrs.get("kind", "combinational"))
        family = LogicFamily(attrs.get("family", "static"))
    except ValueError as exc:
        raise LibertyError(f"cell {name}: {exc}") from None
    return Cell(
        name=name,
        base_name=attrs.get("base", name.split("_")[0]),
        drive=float(attrs.get("drive", 1.0)),
        function=attrs.get("function", ""),
        inputs=inputs,
        output=attrs.get("output", "Y"),
        max_load_ff=float(attrs.get("max_load", 100.0)),
        area_um2=float(attrs.get("area", 10.0)),
        arcs=arcs,
        family=family,
        kind=kind,
        sequential=sequential,
        inverting=attrs.get("inverting", "false") == "true",
    )
