"""Unit tests for TILOS sizing, discretisation, buffering and wire sizing."""

import pytest

from repro.cells import custom_library, poor_asic_library, rich_asic_library
from repro.datapath import kogge_stone_adder, ripple_carry_adder
from repro.netlist import Module
from repro.sizing import (
    SizingError,
    buffer_high_fanout,
    discretization_penalty,
    downsize_off_critical,
    size_for_speed,
    size_wires,
    snap_to_library,
    total_area_um2,
)
from repro.sta import analyze, asic_clock
from repro.synth import exhaustive_equivalent, map_design, parse_expression
from repro.tech import CMOS250_ASIC, CMOS250_CUSTOM

RICH = rich_asic_library(CMOS250_ASIC)
CLK = asic_clock(20000.0)


def mapped(text, library=None, drive=1.0):
    lib = library or RICH
    return map_design({"y": parse_expression(text)}, lib, default_drive=drive)


class TestTilos:
    def test_sizing_improves_speed(self):
        # Map at minimum drive so there is headroom to recover.
        module = mapped("(a & b & c & d) | (e & f & g & h)", drive=1.0)
        result = size_for_speed(module, RICH, CLK, max_moves=40)
        assert result.final_period_ps < result.initial_period_ps
        assert result.speedup > 1.02
        assert result.moves > 0

    def test_sizing_grows_area(self):
        module = mapped("(a & b & c & d) | (e & f & g & h)", drive=1.0)
        before = total_area_um2(module, RICH)
        size_for_speed(module, RICH, CLK, max_moves=40)
        assert total_area_um2(module, RICH) >= before

    def test_sizing_preserves_function(self):
        text = "(a & b) | (~c & d)"
        module = mapped(text, drive=1.0)
        reference = mapped(text, drive=1.0)
        size_for_speed(module, RICH, CLK, max_moves=20)
        assert exhaustive_equivalent(module, RICH, reference, RICH)

    def test_target_period_stops_early(self):
        module = mapped("(a & b & c & d) | (e & f & g & h)", drive=1.0)
        loose = analyze(module, RICH, CLK).min_period_ps * 0.99
        result = size_for_speed(module, RICH, CLK, target_period_ps=loose)
        assert result.moves <= 3

    def test_continuous_sizing_beats_discrete(self):
        text = "(a & b & c & d) | (e & f & g & h)"
        custom = custom_library(CMOS250_CUSTOM)
        disc = mapped(text, RICH, drive=1.0)
        cont = map_design({"y": parse_expression(text)}, custom, default_drive=1.0)
        r_disc = size_for_speed(disc, RICH, CLK, max_moves=60)
        r_cont = size_for_speed(cont, custom, CLK, max_moves=60)
        # The custom library is faster per-FO4 anyway; compare speedup
        # headroom instead of absolute periods.
        assert r_cont.speedup >= r_disc.speedup * 0.8  # both converge

    def test_budget_validation(self):
        module = mapped("a & b")
        with pytest.raises(SizingError):
            size_for_speed(module, RICH, CLK, max_moves=-1)
        with pytest.raises(SizingError):
            size_for_speed(module, RICH, CLK, area_limit=0.5)

    def test_downsize_keeps_period(self):
        module = mapped("(a & b & c) | d", drive=8.0)
        base = analyze(module, RICH, CLK).min_period_ps
        shrunk = downsize_off_critical(module, RICH, CLK)
        after = analyze(module, RICH, CLK).min_period_ps
        assert shrunk > 0
        assert after <= base + 1e-6

    def test_downsize_saves_area(self):
        module = mapped("(a & b & c) | d", drive=8.0)
        before = total_area_um2(module, RICH)
        downsize_off_critical(module, RICH, CLK)
        assert total_area_um2(module, RICH) < before


class TestDiscretization:
    def test_penalty_positive_and_small_for_rich(self):
        custom = custom_library(CMOS250_CUSTOM)
        module = map_design(
            {"y": parse_expression("(a & b & c & d) | (e & f)")}, custom
        )
        size_for_speed(module, custom, CLK, max_moves=40)
        rich_custom_tech = rich_asic_library(CMOS250_CUSTOM)
        penalty = discretization_penalty(module, custom, rich_custom_tech, CLK)
        # Section 6.1: 2-7% or less for a rich library; guard banding in
        # our rich ASIC library adds a few percent on top.
        assert -0.02 <= penalty.penalty_fraction < 0.20

    def test_snap_preserves_function(self):
        custom = custom_library(CMOS250_CUSTOM)
        text = "(a & b) ^ (c | d)"
        module = map_design({"y": parse_expression(text)}, custom)
        rich_custom = rich_asic_library(CMOS250_CUSTOM)
        snapped = snap_to_library(module, custom, rich_custom)
        assert exhaustive_equivalent(module, custom, snapped, rich_custom)

    def test_snap_missing_base_raises(self):
        custom = custom_library(CMOS250_CUSTOM)
        module = map_design({"y": parse_expression("a & b")}, custom)
        poor = poor_asic_library(CMOS250_CUSTOM)
        # Continuous mapping chose AND2 which the poor library lacks.
        with pytest.raises(SizingError, match="lacks"):
            snap_to_library(module, custom, poor)


class TestBuffering:
    def _fanout_module(self, fanout=20):
        m = Module("fan")
        m.add_input("a")
        m.add_instance("drv", "INV_X1", inputs={"A": "a"}, outputs={"Y": "w"})
        for i in range(fanout):
            m.add_output(f"y{i}")
            m.add_instance(
                f"g{i}", "INV_X1", inputs={"A": "w"}, outputs={"Y": f"y{i}"}
            )
        return m

    def test_buffering_relieves_fanout(self):
        m = self._fanout_module()
        result = buffer_high_fanout(m, RICH, max_fanout=8)
        assert result.nets_split >= 1
        assert result.buffers_added >= 3
        m.assert_well_formed()
        assert len([s for s in m.sinks_of("w")]) <= 8

    def test_buffering_improves_timing(self):
        m1 = self._fanout_module(32)
        m2 = self._fanout_module(32)
        buffer_high_fanout(m2, RICH, max_fanout=8)
        r1 = analyze(m1, RICH, CLK)
        r2 = analyze(m2, RICH, CLK)
        assert r2.min_period_ps < r1.min_period_ps

    def test_no_buffer_cell_raises(self):
        poor = poor_asic_library(CMOS250_ASIC)
        m = self._fanout_module(4)
        with pytest.raises(SizingError, match="BUF"):
            buffer_high_fanout(m, poor)


class TestWireSizing:
    def test_wire_sizing_saves_delay_on_spread_design(self):
        from repro.physical import place

        adder = ripple_carry_adder(16, RICH)
        placement = place(adder, RICH, quality="sloppy", seed=3)
        result = size_wires(placement, CMOS250_ASIC, min_length_um=50.0)
        assert result.total_delay_saved_ps >= 0.0
        assert all(w >= 1.0 for w in result.widths.values())

    def test_short_nets_stay_minimum(self):
        from repro.physical import place

        adder = kogge_stone_adder(4, RICH)
        placement = place(adder, RICH, quality="careful", seed=3)
        result = size_wires(placement, CMOS250_ASIC, min_length_um=1e6)
        assert all(w == 1.0 for w in result.widths.values())
        assert result.area_increase_um2 == 0.0

    def test_menu_validation(self):
        from repro.physical import place

        adder = kogge_stone_adder(4, RICH)
        placement = place(adder, RICH, seed=1)
        with pytest.raises(SizingError):
            size_wires(placement, CMOS250_ASIC, width_menu=(0.5,))
