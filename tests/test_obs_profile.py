"""Tests for the deep-profiling layer (repro.obs.profile)."""

import json

import pytest

from repro import obs
from repro.flows import AsicFlowOptions, run_asic_flow
from repro.flows.results import StageRecord
from repro.obs import ObsError, Span, TickClock, Tracer, aggregate_spans
from repro.obs import ledger as run_ledger
from repro.obs import profile as obs_profile
from repro.obs import regress
from repro.obs.render import render_metrics


@pytest.fixture(autouse=True)
def _clean_profile_state():
    """Every test starts and ends with profiling off."""
    obs_profile.reset_state()
    obs.disable()
    obs.reset()
    yield
    obs_profile.reset_state()
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Module switch.


class TestSwitch:
    def test_off_by_default(self):
        assert not obs_profile.enabled()
        assert obs_profile.stage_probe() is obs_profile.NOOP_PROBE

    def test_configure_each_axis_independently(self):
        obs_profile.configure(cpu=True)
        assert obs_profile.cpu_enabled()
        assert not obs_profile.mem_enabled()
        obs_profile.configure(mem=True)
        assert obs_profile.cpu_enabled()  # unchanged by mem flip
        assert obs_profile.mem_mode() == "sampled"
        obs_profile.configure(mem="trace")
        assert obs_profile.mem_mode() == "trace"
        obs_profile.configure(mem=False)
        assert obs_profile.mem_mode() is None

    def test_unknown_mem_mode_rejected(self):
        with pytest.raises(ObsError, match="memory-profiling mode"):
            obs_profile.configure(mem="rss")

    def test_snapshot_apply_round_trip(self):
        obs_profile.configure(cpu=True, mem="trace")
        cfg = obs_profile.snapshot()
        obs_profile.reset_state()
        assert not obs_profile.enabled()
        obs_profile.apply(cfg)
        assert obs_profile.cpu_enabled()
        assert obs_profile.mem_mode() == "trace"

    def test_apply_none_is_noop(self):
        obs_profile.apply(None)
        assert not obs_profile.enabled()

    def test_apply_off_snapshot_disables_mem(self):
        obs_profile.configure(mem="sampled")
        obs_profile.apply((False, None))
        assert obs_profile.mem_mode() is None


# ---------------------------------------------------------------------------
# Stage probe.


class TestStageProbe:
    def test_noop_probe_contract(self):
        probe = obs_profile.NOOP_PROBE
        with probe:
            pass
        assert probe.active is False
        assert probe.cpu_s is None
        assert probe.peak_mem_kb is None
        assert probe.span_attrs() == {}

    def test_cpu_only(self):
        probe = obs_profile.StageProbe(cpu=True, mem=None)
        with probe:
            sum(range(10000))
        assert probe.cpu_s is not None and probe.cpu_s >= 0.0
        assert probe.peak_mem_kb is None
        assert probe.span_attrs() == {"cpu_s": probe.cpu_s}

    def test_trace_mode_measures_allocation(self):
        probe = obs_profile.StageProbe(cpu=False, mem="trace")
        with probe:
            block = bytearray(2 * 1024 * 1024)  # 2 MiB
            del block
        assert probe.cpu_s is None
        assert probe.peak_mem_kb is not None
        assert probe.peak_mem_kb >= 2048.0

    def test_trace_mode_nests_under_outer_tracing(self):
        import tracemalloc

        tracemalloc.start()
        try:
            probe = obs_profile.StageProbe(cpu=False, mem="trace")
            with probe:
                block = bytearray(1024 * 1024)
                del block
            # The probe must not stop tracing it did not start.
            assert tracemalloc.is_tracing()
            assert probe.peak_mem_kb is not None
            assert probe.peak_mem_kb >= 1024.0
        finally:
            tracemalloc.stop()

    def test_sampled_mode_reports_process_rss(self):
        if not obs_profile._RSS_AVAILABLE:
            pytest.skip("no /proc/self/statm on this platform")
        probe = obs_profile.StageProbe(cpu=True, mem="sampled")
        with probe:
            block = bytearray(8 * 1024 * 1024)
            del block
        # Absolute resident size: at least the interpreter's footprint.
        assert probe.peak_mem_kb is not None
        assert probe.peak_mem_kb > 1024.0
        assert set(probe.span_attrs()) == {"cpu_s", "peak_mem_kb"}

    def test_stage_probe_follows_configuration(self):
        obs_profile.configure(cpu=True)
        probe = obs_profile.stage_probe()
        assert isinstance(probe, obs_profile.StageProbe)
        assert probe.active is True


# ---------------------------------------------------------------------------
# Self-time rollup and critical path.


def _entries(tracer: Tracer) -> list[dict]:
    return aggregate_spans(tracer.finished())


class TestSelfTime:
    def test_rollup_math_on_synthetic_tree(self):
        # TickClock: every clock read advances 1s.
        tracer = Tracer(clock=TickClock())
        with tracer.span("flow"):           # start=0
            with tracer.span("place"):      # 1..2
                pass
            with tracer.span("sta"):        # 3..4
                pass
        # flow: 0..5 total 5s, children 2s, self 3s.
        spots = obs_profile.self_time_rollup(_entries(tracer))
        by_name = {s.name: s for s in spots}
        assert by_name["flow"].self_ms == pytest.approx(3000.0)
        assert by_name["flow"].total_ms == pytest.approx(5000.0)
        assert by_name["place"].self_ms == pytest.approx(1000.0)
        assert by_name["sta"].self_ms == pytest.approx(1000.0)
        # Self times add up to the run's wall time, no double counting.
        assert sum(s.self_ms for s in spots) == pytest.approx(5000.0)
        assert sum(s.self_pct for s in spots) == pytest.approx(100.0)

    def test_rollup_merges_same_label_across_paths(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("a"):
            with tracer.span("sta"):
                pass
        with tracer.span("b"):
            with tracer.span("sta"):
                pass
        spots = obs_profile.self_time_rollup(_entries(tracer))
        sta = next(s for s in spots if s.name == "sta")
        assert sta.calls == 2
        assert sta.self_ms == pytest.approx(2000.0)

    def test_rollup_sorted_hottest_first(self):
        entries = [
            {"name": "cold", "calls": 1, "self_ms": 1.0, "total_ms": 1.0},
            {"name": "hot", "calls": 1, "self_ms": 9.0, "total_ms": 9.0},
        ]
        spots = obs_profile.self_time_rollup(entries)
        assert [s.name for s in spots] == ["hot", "cold"]

    def test_rollup_empty(self):
        assert obs_profile.self_time_rollup([]) == []

    def test_hotspot_to_dict(self):
        spot = obs_profile.self_time_rollup(
            [{"name": "x", "calls": 2, "self_ms": 5.0, "total_ms": 7.0}]
        )[0]
        assert spot.to_dict() == {
            "name": "x", "calls": 2, "self_ms": 5.0, "total_ms": 7.0,
            "self_pct": 100.0,
        }


class TestCriticalPath:
    def test_descends_heaviest_chain(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("flow"):
            with tracer.span("place"):      # heavier: has a child
                with tracer.span("anneal"):
                    pass
            with tracer.span("cts"):
                pass
        chain = obs_profile.critical_path(_entries(tracer))
        assert [e["name"] for e in chain] == ["flow", "place", "anneal"]

    def test_picks_heaviest_root(self):
        entries = [
            {"path": "light", "name": "light", "total_ms": 1.0},
            {"path": "heavy", "name": "heavy", "total_ms": 9.0},
        ]
        chain = obs_profile.critical_path(entries)
        assert [e["name"] for e in chain] == ["heavy"]

    def test_empty(self):
        assert obs_profile.critical_path([]) == []

    def test_render_critical_path(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("flow"):
            with tracer.span("place"):
                pass
        text = obs_profile.render_critical_path(_entries(tracer))
        assert "critical path" in text
        assert "flow" in text and "place" in text
        assert "100.0%" in text

    def test_render_self_report_combines_both(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("flow"):
            pass
        text = obs_profile.render_self_report(_entries(tracer))
        assert "span (by self time)" in text
        assert "critical path" in text

    def test_render_empty(self):
        assert "no spans" in obs_profile.render_self_report([])


# ---------------------------------------------------------------------------
# Flame graphs.


def _span(name, index, start, end, parent=None, child_s=0.0):
    return Span(name=name, index=index, start_s=start, end_s=end,
                parent=parent, child_s=child_s)


class TestCollapsedStacks:
    def test_stacks_follow_parent_links(self):
        spans = [
            _span("root", 0, 0.0, 10.0, child_s=4.0),
            _span("leaf", 1, 1.0, 5.0, parent=0),
        ]
        lines = obs_profile.spans_to_collapsed(spans)
        assert lines == ["root 6000000", "root;leaf 4000000"]

    def test_frames_sanitized(self):
        spans = [_span("with space;semi", 0, 0.0, 1.0)]
        lines = obs_profile.spans_to_collapsed(spans)
        assert lines == ["with_space_semi 1000000"]

    def test_open_and_zero_self_spans_skipped(self):
        spans = [
            _span("open", 0, 0.0, None),
            _span("zero", 1, 0.0, 2.0, child_s=2.0),
        ]
        assert obs_profile.spans_to_collapsed(spans) == []

    def test_same_path_weights_aggregate(self):
        spans = [
            _span("work", 0, 0.0, 1.0),
            _span("work", 1, 2.0, 3.0),
        ]
        assert obs_profile.spans_to_collapsed(spans) == ["work 2000000"]

    def test_cprofile_collapse(self):
        import cProfile

        def busy():
            return sum(range(50000))

        profiler = cProfile.Profile()
        profiler.enable()
        busy()
        profiler.disable()
        lines = obs_profile.cprofile_to_collapsed(profiler)
        assert lines, "expected at least one collapsed stack"
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) > 0
        assert any("busy" in line for line in lines)

    def test_write_collapsed(self, tmp_path):
        target = tmp_path / "flame.txt"
        count = obs_profile.write_collapsed(["a;b 10", "a 5"],
                                            str(target))
        assert count == 2
        assert target.read_text() == "a;b 10\na 5\n"
        assert obs_profile.write_collapsed([], str(target)) == 0
        assert target.read_text() == ""


# ---------------------------------------------------------------------------
# Stage records and the flow engine.


class TestStageRecordProfileFields:
    LEGACY_KEYS = {"name", "status", "wall_s", "fingerprint",
                   "cache_hit"}

    def test_unprofiled_to_dict_is_legacy_shape(self):
        record = StageRecord(name="sta", status="ok", wall_s=0.1,
                             fingerprint="f", cache_hit=False)
        assert set(record.to_dict()) == self.LEGACY_KEYS

    def test_profiled_round_trip(self):
        record = StageRecord(name="sta", status="ok", wall_s=0.1,
                             fingerprint="f", cache_hit=False,
                             cpu_s=0.25, peak_mem_kb=512.5)
        payload = record.to_dict()
        assert payload["cpu_s"] == 0.25
        assert payload["peak_mem_kb"] == 512.5
        back = StageRecord.from_dict(json.loads(json.dumps(payload)))
        assert back.cpu_s == 0.25
        assert back.peak_mem_kb == 512.5

    def test_legacy_payload_still_parses(self):
        back = StageRecord.from_dict(
            {"name": "sta", "status": "ok", "wall_s": 0.1,
             "fingerprint": "f", "cache_hit": False})
        assert back.cpu_s is None
        assert back.peak_mem_kb is None


class TestEngineIntegration:
    OPTIONS = AsicFlowOptions(bits=4, sizing_moves=2)

    def test_profiling_off_leaves_stage_records_bare(self):
        result = run_asic_flow(self.OPTIONS)
        for record in result.stage_records:
            assert record.cpu_s is None
            assert record.peak_mem_kb is None

    def test_profiled_flow_prices_every_stage(self):
        obs_profile.configure(cpu=True, mem="trace")
        result = run_asic_flow(self.OPTIONS)
        assert result.stage_records
        for record in result.stage_records:
            assert record.cpu_s is not None, record.name
            assert record.peak_mem_kb is not None, record.name
            assert record.peak_mem_kb > 0.0

    def test_profiling_does_not_change_the_answer(self):
        baseline = run_asic_flow(self.OPTIONS).to_dict()
        obs_profile.configure(cpu=True, mem="trace")
        from repro.flows import cache as stage_cache

        stage_cache.reset()
        profiled = run_asic_flow(self.OPTIONS).to_dict()
        baseline.pop("stages")
        profiled.pop("stages")
        assert baseline == profiled

    def test_profiled_spans_carry_attribution(self):
        obs.enable()
        obs_profile.configure(cpu=True, mem="trace")
        run_asic_flow(self.OPTIONS)
        spans = obs.get_tracer().finished()
        stage_spans = [s for s in spans
                       if s.name.startswith("flow.asic.")]
        assert stage_spans
        for span in stage_spans:
            assert "cpu_s" in span.attributes, span.name
            assert "peak_mem_kb" in span.attributes, span.name


class TestSweepAggregation:
    def test_sweep_record_aggregates_profile_metrics(self):
        from repro.flows.sweep import run_flow_sweep_report

        run_ledger.set_enabled(True)
        obs_profile.configure(cpu=True, mem="trace")
        option_sets = [AsicFlowOptions(bits=4, sizing_moves=2),
                       AsicFlowOptions(bits=5, sizing_moves=2)]
        run_flow_sweep_report(option_sets, workers=1)
        sweeps = run_ledger.get_ledger().records(kind="sweep")
        assert sweeps
        metrics = sweeps[-1].metrics
        assert metrics["profile.cpu_s"] >= 0.0
        assert metrics["profile.peak_mem_kb"] > 0.0

    def test_unprofiled_sweep_record_has_no_profile_metrics(self):
        from repro.flows.sweep import run_flow_sweep_report

        run_ledger.set_enabled(True)
        run_flow_sweep_report([AsicFlowOptions(bits=4, sizing_moves=2)],
                              workers=1)
        metrics = run_ledger.get_ledger().records(kind="sweep")[-1].metrics
        assert "profile.cpu_s" not in metrics
        assert "profile.peak_mem_kb" not in metrics


# ---------------------------------------------------------------------------
# Host context.


class TestHostContext:
    def test_host_context_shape(self):
        host = run_ledger.host_context()
        assert host["python"]
        assert host["platform"]
        assert isinstance(host["cpu_count"], int)
        assert set(host) == {"python", "numpy", "platform", "machine",
                             "node", "cpu_count", "git_dirty"}

    def test_finalize_identity_stamps_host(self):
        record = run_ledger.RunRecord(kind="flow", label="x",
                                      fingerprint="fp")
        run_ledger.finalize_identity(record)
        assert record.host["python"] == run_ledger.host_context()["python"]

    def test_host_round_trips_through_dict(self):
        record = run_ledger.RunRecord(kind="flow", label="x",
                                      fingerprint="fp")
        run_ledger.finalize_identity(record)
        back = run_ledger.RunRecord.from_dict(record.to_dict())
        assert back.host == record.host

    def test_regress_warns_on_cross_host_baselines(self):
        current = run_ledger.RunRecord(kind="flow", label="x",
                                       fingerprint="fp", wall_s=1.0)
        run_ledger.finalize_identity(current)
        foreign = run_ledger.RunRecord.from_dict(current.to_dict())
        foreign.run_id = "baseline-1"
        foreign.host = dict(foreign.host)
        foreign.host["python"] = "2.7.18"
        foreign.host["node"] = "other-box"
        report = regress.compare(current, [foreign])
        mismatches = [f for f in report.findings
                      if f.kind == "host_mismatch"]
        assert len(mismatches) == 1
        assert mismatches[0].severity == "warn"
        assert "node" in mismatches[0].key
        assert "python" in mismatches[0].key

    def test_regress_same_host_has_no_mismatch(self):
        current = run_ledger.RunRecord(kind="flow", label="x",
                                       fingerprint="fp", wall_s=1.0)
        run_ledger.finalize_identity(current)
        twin = run_ledger.RunRecord.from_dict(current.to_dict())
        twin.run_id = "baseline-1"
        report = regress.compare(current, [twin])
        assert not [f for f in report.findings
                    if f.kind == "host_mismatch"]


# ---------------------------------------------------------------------------
# Perf budgets.


BUDGET_TOML = """\
# ceilings
[wall]
"bench.flow.s" = 2.0
plain_key = 1.5

[mem]
"bench.peak_kb" = 1024.0
"""


class TestBudgets:
    def test_load_budgets(self, tmp_path):
        path = tmp_path / "PERF_BUDGETS.toml"
        path.write_text(BUDGET_TOML)
        budgets = obs_profile.load_budgets(str(path))
        assert budgets == {
            "wall": {"bench.flow.s": 2.0, "plain_key": 1.5},
            "mem": {"bench.peak_kb": 1024.0},
        }

    def test_fallback_parser_matches_tomllib(self, tmp_path):
        doc = obs_profile._parse_budget_toml(BUDGET_TOML)
        assert doc == {
            "wall": {"bench.flow.s": 2.0, "plain_key": 1.5},
            "mem": {"bench.peak_kb": 1024.0},
        }

    def test_unknown_section_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[disk]\n"bench.x" = 1.0\n')
        with pytest.raises(ObsError, match="unknown section"):
            obs_profile.load_budgets(str(path))

    def test_non_positive_ceiling_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[wall]\n"bench.x" = 0.0\n')
        with pytest.raises(ObsError, match="positive number"):
            obs_profile.load_budgets(str(path))

    def test_fallback_parser_rejects_garbage(self):
        with pytest.raises(ObsError, match="expected"):
            obs_profile._parse_budget_toml("[wall]\nnot an assignment\n")
        with pytest.raises(ObsError, match="before any"):
            obs_profile._parse_budget_toml('"k" = 1.0\n')
        with pytest.raises(ObsError, match="non-numeric"):
            obs_profile._parse_budget_toml('[wall]\n"k" = fast\n')

    def test_check_budgets_severities(self):
        budgets = {"wall": {"over": 1.0, "close": 1.0, "fine": 1.0,
                            "absent": 1.0}}
        bench = {"over": 1.5, "close": 0.95, "fine": 0.5}
        report = obs_profile.check_budgets(budgets, bench)
        by_key = {f.key: f for f in report.findings}
        assert by_key["over"].severity == "fail"
        assert by_key["close"].severity == "warn"
        assert by_key["absent"].severity == "info"
        assert "fine" not in by_key
        assert report.checks == 4
        assert not report.ok  # the fail finding gates

    def test_check_budgets_all_green(self):
        report = obs_profile.check_budgets({"wall": {"x": 2.0}},
                                           {"x": 0.5})
        assert report.ok
        assert report.findings == []

    def test_findings_sorted_fail_first(self):
        budgets = {"wall": {"z_over": 1.0}, "mem": {"a_missing": 1.0}}
        report = obs_profile.check_budgets(budgets, {"z_over": 9.0})
        assert [f.severity for f in report.findings] == ["fail", "info"]

    def test_repo_budget_file_is_valid(self):
        budgets = obs_profile.load_budgets("PERF_BUDGETS.toml")
        assert "wall" in budgets
        assert all(v > 0 for table in budgets.values()
                   for v in table.values())


# ---------------------------------------------------------------------------
# Render details that ride along.


class TestRenderDetails:
    def test_render_metrics_nan_as_dashes(self):
        text = render_metrics({"ratio": float("nan"), "count": 3})
        line = next(ln for ln in text.splitlines() if "ratio" in ln)
        assert "--" in line
        assert "nan" not in line
